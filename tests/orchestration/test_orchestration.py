"""Execution states, convexity (Theorem 1), kernel identification, BLP, strategies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import TensorType
from repro.orchestration import (
    KernelIdentifier,
    KernelIdentifierConfig,
    KernelOrchestrationOptimizer,
    build_orchestration_blp,
    convex_subgraphs_from_states,
    enumerate_execution_states,
    is_convex,
    is_execution_state,
    order_kernels,
)
from repro.primitives import ElementwisePrimitive, PrimitiveGraph
from repro.solver import solve_blp


def _random_dag_pg(seed: int, num_nodes: int) -> PrimitiveGraph:
    """Random elementwise DAG used by the Theorem 1 property tests."""
    import numpy.random as npr

    rng = npr.default_rng(seed)
    pg = PrimitiveGraph(f"random{seed}")
    source = pg.add_input("x", TensorType((4,)))
    tensors = [source]
    for index in range(num_nodes):
        arity = 2 if len(tensors) > 1 and rng.random() < 0.4 else 1
        inputs = [tensors[int(i)] for i in rng.choice(len(tensors), size=arity, replace=False)]
        op = "Add" if arity == 2 else "Relu"
        node = pg.add_node(ElementwisePrimitive(op), inputs, name=f"n{index}")
        tensors.append(node.output)
    pg.add_output(tensors[-1])
    return pg


class TestExecutionStates:
    def test_chain_states_linear_in_depth(self):
        pg = _chain(4)
        states = enumerate_execution_states(pg)
        assert len(states) == 5  # empty + one per prefix
        for state in states:
            assert is_execution_state(pg, state)

    def test_diamond_states(self, attention_pg):
        states = enumerate_execution_states(attention_pg)
        assert frozenset() in states
        full = frozenset(n.name for n in attention_pg.nodes)
        assert full in states
        for state in states:
            assert is_execution_state(pg=attention_pg, nodes=state)

    def test_overflow_fallback_returns_prefixes(self):
        pg = _wide(10)
        states = enumerate_execution_states(pg, max_states=8)
        assert len(states) == len(pg.nodes) + 1
        for state in states:
            assert is_execution_state(pg, state)

    @given(st.integers(min_value=0, max_value=500), st.integers(min_value=2, max_value=7))
    @settings(max_examples=25, deadline=None)
    def test_theorem1_differences_are_convex(self, seed, size):
        """Theorem 1 (⇒): a difference of two execution states is convex."""
        pg = _random_dag_pg(seed, size)
        states = enumerate_execution_states(pg)
        for subset in convex_subgraphs_from_states(states, max_size=size):
            assert is_convex(pg, subset)

    @given(st.integers(min_value=0, max_value=500), st.integers(min_value=2, max_value=6))
    @settings(max_examples=25, deadline=None)
    def test_theorem1_convex_sets_are_differences(self, seed, size):
        """Theorem 1 (⇐): every convex set appears as a state difference."""
        import itertools

        pg = _random_dag_pg(seed, size)
        states = enumerate_execution_states(pg)
        differences = convex_subgraphs_from_states(states)
        names = [n.name for n in pg.nodes]
        for r in range(1, min(3, len(names)) + 1):
            for combo in itertools.combinations(names, r):
                if is_convex(pg, combo):
                    assert frozenset(combo) in differences


def _chain(depth: int) -> PrimitiveGraph:
    pg = PrimitiveGraph("chain")
    tensor = pg.add_input("x", TensorType((8,)))
    for index in range(depth):
        tensor = pg.add_node(ElementwisePrimitive("Relu"), [tensor], name=f"n{index}").output
    pg.add_output(tensor)
    return pg


def _wide(width: int) -> PrimitiveGraph:
    pg = PrimitiveGraph("wide")
    x = pg.add_input("x", TensorType((8,)))
    for index in range(width):
        node = pg.add_node(ElementwisePrimitive("Relu"), [x], name=f"n{index}")
        pg.add_output(node.output)
    return pg


class TestKernelIdentifier:
    def test_singletons_always_present(self, attention_pg, v100):
        candidates, report = KernelIdentifier(v100).identify(attention_pg)
        singleton_nodes = {next(iter(c.node_names)) for c in candidates if len(c.node_names) == 1}
        assert singleton_nodes == {n.name for n in attention_pg.nodes}
        assert report.num_candidates == len(candidates)

    def test_max_kernel_size_pruning(self, attention_pg, v100):
        config = KernelIdentifierConfig(max_kernel_size=1)
        candidates, _ = KernelIdentifier(v100, config=config).identify(attention_pg)
        assert all(len(c.node_names) == 1 for c in candidates)

    def test_at_most_one_linear_per_kernel(self, attention_pg, v100):
        candidates, _ = KernelIdentifier(v100).identify(attention_pg)
        for candidate in candidates:
            assert sum(1 for n in candidate.nodes if n.is_linear) <= 1

    def test_candidates_are_convex(self, candy_block_pg, v100):
        candidates, _ = KernelIdentifier(v100).identify(candy_block_pg)
        for candidate in candidates:
            assert is_convex(candy_block_pg, candidate.node_names)

    def test_dominance_pruning_reduces_candidates(self, attention_pg, v100):
        kept, _ = KernelIdentifier(v100).identify(attention_pg)
        config = KernelIdentifierConfig(prune_dominated=False)
        unpruned, report = KernelIdentifier(v100, config=config).identify(attention_pg)
        assert len(kept) <= len(unpruned)

    def test_latencies_positive(self, attention_pg, v100):
        candidates, _ = KernelIdentifier(v100).identify(attention_pg)
        assert all(c.latency_s > 0 for c in candidates)


class TestOrchestration:
    def test_blp_structure(self, attention_pg, v100):
        candidates, _ = KernelIdentifier(v100).identify(attention_pg)
        blp = build_orchestration_blp(attention_pg, candidates)
        assert blp.problem.num_variables == len(candidates)
        # One output constraint per produced graph output.
        output_constraints = [c for c in blp.problem.constraints if c.name.startswith("out[")]
        assert len(output_constraints) == len(attention_pg.outputs)

    def test_optimal_strategy_beats_singletons(self, attention_pg, v100):
        result = KernelOrchestrationOptimizer(v100).optimize(attention_pg)
        strategy = result.strategy
        singleton_total = sum(
            c.latency_s for c in result.candidates
            if len(c.node_names) == 1 and len(c.outputs) == 1
        )
        assert strategy.total_latency_s <= singleton_total + 1e-12
        assert strategy.num_kernels < len(attention_pg.nodes)
        assert strategy.solver_status in ("optimal", "feasible")

    def test_strategy_covers_outputs_and_dependencies(self, candy_block_pg, v100):
        strategy = KernelOrchestrationOptimizer(v100).optimize(candy_block_pg).strategy
        materialized = {t for k in strategy.kernels for t in k.outputs}
        for output in candy_block_pg.outputs:
            assert output in materialized
        seen: set[str] = set()
        for kernel in strategy.kernels:  # already ordered
            for tensor in kernel.external_inputs:
                assert candy_block_pg.is_source_tensor(tensor) or tensor in seen
            seen.update(kernel.outputs)

    def test_execution_counts_and_source_ops(self, attention_pg, v100):
        strategy = KernelOrchestrationOptimizer(v100).optimize(attention_pg).strategy
        counts = strategy.execution_counts()
        assert all(count >= 0 for count in counts.values())
        executed = {name for name, count in counts.items() if count > 0}
        needed = set()
        for kernel in strategy.kernels:
            needed |= kernel.node_names
        assert executed == needed
        softmax_kernels = strategy.kernels_executing_operator(
            next(n.source_op for n in attention_pg.nodes if n.prim.op == "Exp")
        )
        assert softmax_kernels

    def test_describe_mentions_all_kernels(self, attention_pg, v100):
        strategy = KernelOrchestrationOptimizer(v100).optimize(attention_pg).strategy
        text = strategy.describe()
        assert f"{strategy.num_kernels} kernels" in text

    def test_order_kernels_detects_missing_producer(self, attention_pg, v100):
        candidates, _ = KernelIdentifier(v100).identify(attention_pg)
        # Pick one non-source-reading kernel and pretend it is the whole plan.
        dependent = next(
            c for c in candidates
            if any(not attention_pg.is_source_tensor(t) for t in c.external_inputs)
        )
        with pytest.raises(Exception):
            order_kernels(attention_pg, [dependent])

    def test_greedy_solver_end_to_end(self, candy_block_pg, v100):
        optimizer = KernelOrchestrationOptimizer(v100, solver_method="greedy")
        strategy = optimizer.optimize(candy_block_pg).strategy
        exact = KernelOrchestrationOptimizer(v100, solver_method="scipy").optimize(candy_block_pg).strategy
        assert strategy.total_latency_s >= exact.total_latency_s - 1e-12

    def test_branch_and_bound_matches_scipy(self, candy_block_pg, v100):
        config = KernelIdentifierConfig(max_kernel_size=4)
        candidates, _ = KernelIdentifier(v100, config=config).identify(candy_block_pg)
        blp = build_orchestration_blp(candy_block_pg, candidates)
        scipy_result = solve_blp(blp.problem, method="scipy")
        bnb_result = solve_blp(blp.problem, method="branch-and-bound")
        assert bnb_result.objective == pytest.approx(scipy_result.objective, rel=1e-6)
