"""BitGraph packing and the bitset-native enumeration's bit-identity."""

import pytest

from repro.fission import FissionEngine
from repro.ir import GraphBuilder
from repro.models import build_candy_block, build_efficientvit_attention_block
from repro.orchestration import KernelIdentifierConfig, KernelIdentifierReport
from repro.orchestration.bitgraph import (
    BitGraph,
    convex_masks,
    iter_bits,
    mask_sort_key,
    state_masks,
)
from repro.orchestration.identifier import (
    enumerate_candidate_specs,
    enumerate_candidate_specs_reference,
    spec_key,
)


def diamond_graph():
    b = GraphBuilder("diamond")
    x = b.input("x", (4, 8))
    left = b.relu(x)
    right = b.sigmoid(x)
    b.output(b.add(left, right))
    return b.build()


def primitive_graph(graph):
    pg, _ = FissionEngine().run(graph)
    return pg


class TestBitGraph:
    def test_mask_roundtrip(self):
        bg = BitGraph(primitive_graph(diamond_graph()))
        names = set(bg.names[:2])
        assert bg.names_of(bg.mask_of(names)) == frozenset(names)
        assert bg.mask_of([]) == 0
        assert bg.names_of(bg.full_mask) == frozenset(bg.names)

    def test_sort_key_matches_reference_order(self):
        bg = BitGraph(primitive_graph(diamond_graph()))
        masks = [bg.mask_of([name]) for name in bg.names] + [bg.full_mask]
        by_mask = sorted(masks, key=mask_sort_key)
        by_names = sorted(
            masks, key=lambda m: (m.bit_count(), sorted(bg.names_of(m)))
        )
        assert by_mask == by_names

    def test_connectivity(self):
        pg = primitive_graph(diamond_graph())
        bg = BitGraph(pg)
        assert bg.is_connected(bg.full_mask)
        assert bg.is_connected(0)
        # Two branch nodes with no edge between them are disconnected.
        disconnected = next(
            (
                (1 << i) | (1 << j)
                for i in range(bg.num_nodes)
                for j in range(i + 1, bg.num_nodes)
                if not bg.adj_mask[i] & (1 << j)
            ),
            None,
        )
        assert disconnected is not None
        assert not bg.is_connected(disconnected)

    def test_required_outputs_match_subset_io(self):
        pg = primitive_graph(diamond_graph())
        bg = BitGraph(pg)
        for mask in range(1, 1 << min(bg.num_nodes, 8)):
            names = bg.names_of(mask)
            nodes = [node for node in pg.nodes if node.name in names]
            _, outputs = pg.subset_io(nodes)
            assert [bg.output_tensor[bit] for bit in bg.required_output_bits(mask)] == outputs

    def test_state_masks_are_downward_closed(self):
        bg = BitGraph(primitive_graph(diamond_graph()))
        states = state_masks(bg, max_states=10_000)
        assert 0 in states
        for state in states:
            for bit in iter_bits(state):
                assert bg.pred_mask[bit] & ~state == 0

    def test_state_overflow_falls_back_to_prefixes(self):
        bg = BitGraph(primitive_graph(diamond_graph()))
        states = state_masks(bg, max_states=2)
        assert len(states) == bg.num_nodes + 1  # prefixes incl. empty
        assert states[-1] == bg.full_mask

    def test_convex_masks_respect_max_size(self):
        bg = BitGraph(primitive_graph(diamond_graph()))
        states = state_masks(bg, max_states=10_000)
        small = convex_masks(states, max_size=1)
        assert small and all(mask.bit_count() == 1 for mask in small)
        unbounded = convex_masks(states, max_size=None)
        assert small <= unbounded


class TestEnumerationBitIdentity:
    @pytest.mark.parametrize(
        "build",
        [diamond_graph, build_candy_block, build_efficientvit_attention_block],
        ids=["diamond", "candy_block", "efficientvit_block"],
    )
    def test_specs_and_report_match_reference(self, build):
        pg = primitive_graph(build())
        config = KernelIdentifierConfig(max_kernel_size=8)
        fast_report = KernelIdentifierReport()
        slow_report = KernelIdentifierReport()
        fast = enumerate_candidate_specs(pg, config, fast_report)
        slow = enumerate_candidate_specs_reference(pg, config, slow_report)
        assert [spec_key(s) for s in fast] == [spec_key(s) for s in slow]
        assert [s.outputs for s in fast] == [s.outputs for s in slow]
        assert fast_report.num_execution_states == slow_report.num_execution_states
        assert fast_report.num_convex_sets == slow_report.num_convex_sets
        assert fast_report.num_candidates_considered == slow_report.num_candidates_considered
        assert fast_report.pruned_by_size == slow_report.pruned_by_size
        assert fast_report.pruned_by_linear == slow_report.pruned_by_linear
        assert fast_report.pruned_by_connectivity == slow_report.pruned_by_connectivity

    def test_truncation_parity_at_candidate_cap(self):
        pg = primitive_graph(build_candy_block())
        config = KernelIdentifierConfig(max_kernel_size=8, max_candidates=5)
        fast = enumerate_candidate_specs(pg, config, KernelIdentifierReport())
        slow = enumerate_candidate_specs_reference(pg, config, KernelIdentifierReport())
        assert [spec_key(s) for s in fast] == [spec_key(s) for s in slow]

    def test_skip_specs_removes_and_counts(self):
        pg = primitive_graph(build_candy_block())
        config = KernelIdentifierConfig(max_kernel_size=8)
        full = enumerate_candidate_specs(pg, config, KernelIdentifierReport())
        assert len(full) > 2
        skip = {spec_key(full[1]), spec_key(full[3])}
        report = KernelIdentifierReport()
        pruned = enumerate_candidate_specs(pg, config, report, skip_specs=skip)
        assert [spec_key(s) for s in pruned] == [
            spec_key(s) for s in full if spec_key(s) not in skip
        ]
        assert report.extra["memo_dominance_skips"] == 2

    def test_skipped_specs_still_count_toward_cap(self):
        """A skip must not let enumeration run past where the cold run's
        ``max_candidates`` truncation would have stopped it."""
        pg = primitive_graph(build_candy_block())
        config = KernelIdentifierConfig(max_kernel_size=8, max_candidates=6)
        capped = enumerate_candidate_specs(pg, config, KernelIdentifierReport())
        skip = {spec_key(capped[0])}
        report = KernelIdentifierReport()
        with_skip = enumerate_candidate_specs(pg, config, report, skip_specs=skip)
        # Exactly the cold truncated list minus the skipped spec — nothing
        # beyond the cap sneaks in to replace it.
        assert [spec_key(s) for s in with_skip] == [
            spec_key(s) for s in capped if spec_key(s) not in skip
        ]
