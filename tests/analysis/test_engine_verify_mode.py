"""Engine debug-mode tests: ``verify_level`` observes, never changes results."""

from __future__ import annotations


from repro.analysis.verify import verify_result
from repro.engine import KorchConfig, KorchEngine, KorchEngineConfig
from repro.ir import GraphBuilder


def attention_model(name: str, heads: int = 4):
    b = GraphBuilder(name)
    x = b.input("x", (1, heads, 32, 16))
    w = b.param("w", (1, heads, 16, 32))
    v = b.param("v", (1, heads, 32, 16))
    b.output(b.matmul(b.softmax(b.matmul(x, w), axis=-1), v))
    return b.build()


def strategy_fingerprint(result):
    return [
        [
            (sorted(k.node_names), list(k.external_inputs), list(k.outputs),
             k.latency_s, k.backend)
            for k in part.orchestration.strategy.kernels
        ]
        for part in result.partitions
    ]


def optimize(level: str, name: str = "verify_mode", **engine_kwargs):
    config = KorchConfig(
        gpu="V100",
        engine=KorchEngineConfig(verify_level=level, **engine_kwargs),
    )
    with KorchEngine(config) as engine:
        return engine.optimize(attention_model(name))


class TestBitIdentical:
    def test_full_verification_is_bit_identical_to_default(self):
        """Acceptance: verify_level="full" never changes the plan."""
        reference = optimize("off")
        verified = optimize("full")
        assert strategy_fingerprint(verified) == strategy_fingerprint(reference)
        assert verified.latency_s == reference.latency_s

    def test_plan_level_is_bit_identical_too(self):
        reference = optimize("off")
        verified = optimize("plan")
        assert strategy_fingerprint(verified) == strategy_fingerprint(reference)

    def test_full_verification_in_process_mode(self):
        """The worker prologue installs the same hooks as the thread path."""
        reference = optimize("off")
        verified = optimize("full", executor="process", process_workers=1)
        assert strategy_fingerprint(verified) == strategy_fingerprint(reference)


class TestDiagnosticsPlumbing:
    def test_default_level_records_no_diagnostics(self):
        result = optimize("off", "no_diag")
        assert all(part.diagnostics == [] for part in result.partitions)

    def test_verified_run_records_clean_diagnostics(self):
        """A healthy model produces zero diagnostics at every level."""
        result = optimize("full", "clean_diag")
        assert all(part.diagnostics == [] for part in result.partitions)
        assert verify_result(result) == []

    def test_verify_level_stays_out_of_cache_keys(self):
        """Debug mode must share plan/profile caches with default runs."""
        plain = KorchConfig(gpu="V100")
        debug = KorchConfig(
            gpu="V100", engine=KorchEngineConfig(verify_level="full")
        )
        assert plain.fingerprint() == debug.fingerprint()
