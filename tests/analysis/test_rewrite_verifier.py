"""Layer 1 tests: fission/rewrite verification and the optimizer hook."""

from __future__ import annotations

import pytest

from repro.analysis.verify import (
    checked_fission,
    checked_rewrite,
    pg_diagnostics,
    verify_fission,
    verify_rewrite,
)
from repro.diagnostics import DiagnosticError, Severity
from repro.fission import FissionEngine
from repro.gpu import V100
from repro.ir import GraphBuilder, TensorType
from repro.ir.dtype import DataType
from repro.primitives import ElementwisePrimitive, PrimitiveGraph
from repro.transforms import PrimitiveGraphOptimizer
from repro.transforms.base import Transform, TransformSite


def _attention_graph():
    b = GraphBuilder("attn")
    x = b.input("x", (1, 4, 32, 16))
    w = b.param("w", (1, 4, 16, 32))
    v = b.param("v", (1, 4, 32, 16))
    b.output(b.matmul(b.softmax(b.matmul(x, w), axis=-1), v))
    return b.build()


def _chain_pg(name: str = "chain") -> PrimitiveGraph:
    pg = PrimitiveGraph(name)
    tensor = pg.add_input("x", TensorType((4,)))
    for index in range(2):
        node = pg.add_node(
            ElementwisePrimitive("Relu"), [tensor], output=f"t{index}", name=f"n{index}"
        )
        tensor = node.output
    pg.add_output(tensor)
    return pg


def rules(diagnostics):
    return [d.rule for d in diagnostics]


class TestPgDiagnostics:
    def test_clean_graph(self):
        assert pg_diagnostics(_chain_pg()) == []

    def test_type_mutation_is_caught(self):
        """A rewrite that silently changes a tensor's shape is flagged."""
        pg = _chain_pg()
        pg.tensors["t0"] = TensorType((8,))
        found = pg_diagnostics(pg)
        # t0's declared type disagrees with n0's inference, and n1's output
        # re-infers to (8,) against the declared (4,).
        assert set(rules(found)) == {"rewrite/type-mismatch"}
        assert any("t0" in d.message for d in found)

    def test_structurally_invalid_graph(self):
        pg = _chain_pg()
        pg.nodes[0].inputs = ["ghost"]
        assert rules(pg_diagnostics(pg)) == ["rewrite/invalid-graph"]


class TestVerifyRewrite:
    def test_identity_rewrite_is_clean(self):
        pg = _chain_pg()
        assert verify_rewrite(pg, pg.copy(), "identity@n0") == []

    def test_swapped_interface_tensor(self):
        """Acceptance mutation: rename a graph output across the rewrite."""
        before = _chain_pg()
        after = before.copy()
        after.rename_output(after.nodes[-1], "renamed")
        found = verify_rewrite(before, after, "swap@n1")
        assert "rewrite/interface-output" in rules(found)
        assert all(d.severity is Severity.ERROR for d in found)
        assert "swap@n1" in found[0].location

    def test_dropped_input_is_interface_violation(self):
        before = _chain_pg()
        after = before.copy()
        after.inputs.remove("x")
        found = verify_rewrite(before, after)
        assert "rewrite/interface-input" in rules(found)

    def test_interface_type_change(self):
        before = _chain_pg()
        after = before.copy()
        after.tensors["x"] = TensorType((4,), DataType.FLOAT16)
        found = verify_rewrite(before, after)
        assert "rewrite/interface-type" in rules(found)

    def test_checked_rewrite_raises_diagnostic_error(self):
        before = _chain_pg()
        after = before.copy()
        after.rename_output(after.nodes[-1], "renamed")
        with pytest.raises(DiagnosticError) as excinfo:
            checked_rewrite(before, after, "swap@n1")
        assert excinfo.value.diagnostics
        assert "rewrite/interface-output" in str(excinfo.value)

    def test_checked_rewrite_clean_returns_none(self):
        pg = _chain_pg()
        assert checked_rewrite(pg, pg.copy(), "identity") is None


class TestVerifyFission:
    def test_real_fission_is_clean(self):
        graph = _attention_graph()
        pg, _ = FissionEngine().run(graph)
        assert verify_fission(graph, pg) == []
        checked_fission(graph, pg)  # must not raise

    def test_operator_tensor_type_drift(self):
        graph = _attention_graph()
        pg, _ = FissionEngine().run(graph)
        # Corrupt a preserved operator-level intermediate's type in the pg.
        shared = next(
            name
            for name in graph.tensors
            if name in pg.tensors
            and name not in graph.inputs
            and name not in graph.params
            and name not in graph.outputs
        )
        pg.tensors[shared] = TensorType((1,), DataType.FLOAT16)
        found = verify_fission(graph, pg)
        assert "fission/tensor-type" in rules(found)

    def test_dropped_output_raises_in_checked_mode(self):
        graph = _attention_graph()
        pg, _ = FissionEngine().run(graph)
        pg.outputs.clear()
        with pytest.raises(DiagnosticError):
            checked_fission(graph, pg)


class _BreakingTransform(Transform):
    """A deliberately unsound rewrite: renames the graph output."""

    name = "break_output"

    def find_sites(self, pg):
        return [TransformSite(self.name, pg.nodes[-1].name)]

    def apply(self, pg, site):
        out = pg.copy()
        out.rename_output(out.nodes[-1], "broken")
        return out


class TestOptimizerHook:
    def test_verifier_hook_catches_unsound_transform(self):
        pg = _chain_pg("hooked")
        optimizer = PrimitiveGraphOptimizer(
            V100, transforms=[_BreakingTransform()], verifier=checked_rewrite
        )
        with pytest.raises(DiagnosticError) as excinfo:
            optimizer.optimize(pg)
        assert "break_output" in str(excinfo.value)

    def test_no_verifier_by_default(self):
        optimizer = PrimitiveGraphOptimizer(V100)
        assert optimizer.verifier is None
