"""Layer 3 tests: AST concurrency lint rules and the scheduler resource check."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis.verify import check_task_resources, lint_paths, lint_source
from repro.diagnostics import Severity
from repro.engine.scheduler import Scheduler, SchedulerError, SerialExecutor
from repro.engine.scheduler.task import Task

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def lint(code: str):
    return lint_source(textwrap.dedent(code), "test.py")


def rules(diagnostics):
    return [d.rule for d in diagnostics]


class TestLambdaTask:
    def test_lambda_to_cpu_task(self):
        """Acceptance mutation: a lambda handed to a process-bound Task."""
        found = lint('t = Task(key="k", fn=lambda: 1, kind="cpu")')
        assert rules(found) == ["conc/lambda-task"]
        assert found[0].severity is Severity.ERROR
        assert found[0].location.startswith("test.py:")

    def test_positional_fn_lambda(self):
        found = lint('t = Task("k", lambda: 1, kind="cpu")')
        assert rules(found) == ["conc/lambda-task"]

    def test_nested_function_to_cpu_task(self):
        found = lint(
            """
            def build():
                def work():
                    return 1
                return Task(key="k", fn=work, kind="cpu")
            """
        )
        assert rules(found) == ["conc/lambda-task"]

    def test_default_kind_tasks_are_fine(self):
        """Thread-pool tasks may close over engine state."""
        assert lint('t = Task(key="k", fn=lambda: 1)') == []
        assert lint('t = Task(key="k", fn=lambda: 1, kind="default")') == []

    def test_module_level_fn_is_fine(self):
        assert lint('t = Task(key="k", fn=run_prologue, kind="cpu")') == []

    def test_closure_to_process_executor_submit(self):
        found = lint(
            """
            def go(process_pool):
                process_pool.submit(lambda: 1)
            """
        )
        assert rules(found) == ["conc/lambda-task"]

    def test_thread_executor_submit_is_fine(self):
        assert lint("def go(pool):\n    pool.submit(lambda: 1)") == []

    def test_pragma_suppresses(self):
        found = lint(
            't = Task(key="k", fn=lambda: 1, kind="cpu")'
            "  # korch-lint: ignore[conc/lambda-task] test fixture"
        )
        assert found == []


class TestUnpicklableContract:
    def test_missing_field_in_drop_list(self):
        found = lint(
            """
            class Ctx:
                _UNPICKLABLE = ("memo",)
                memo: IdentifyMemo | None = None
                store: CacheStore | None = None
            """
        )
        assert rules(found) == ["conc/unpicklable-context-field"]
        assert "store" in found[0].message

    def test_stale_drop_list_entry(self):
        found = lint(
            """
            class Ctx:
                _UNPICKLABLE = ("gone",)
                memo: int = 0
            """
        )
        assert rules(found) == ["conc/unpicklable-context-field"]
        assert "gone" in found[0].message

    def test_complete_contract_is_clean(self):
        assert lint(
            """
            class Ctx:
                _UNPICKLABLE = ("memo", "lock")
                memo: IdentifyMemo | None = None
                lock: RLock | None = None
                payload: list = None
            """
        ) == []

    def test_classes_without_drop_list_are_ignored(self):
        assert lint(
            """
            class Engine:
                optimizer: PrimitiveGraphOptimizer | None = None
            """
        ) == []

    def test_real_stage_context_lints_clean(self):
        """The shipped StageContext honours its own _UNPICKLABLE contract."""
        assert lint_paths([str(SRC / "engine" / "context.py")]) == []


class TestGlobalMutation:
    def test_unlocked_global_rebind(self):
        found = lint(
            """
            _CACHE = None

            def setup():
                global _CACHE
                _CACHE = {}
            """
        )
        assert rules(found) == ["conc/global-mutation"]
        assert found[0].severity is Severity.WARNING

    def test_locked_rebind_is_fine(self):
        assert lint(
            """
            import threading
            _CACHE = None
            _LOCK = threading.Lock()

            def setup():
                global _CACHE
                with _LOCK:
                    _CACHE = {}
            """
        ) == []

    def test_locked_by_convention_suffix(self):
        """``*_locked`` functions are treated as called under the lock."""
        assert lint(
            """
            _CACHE = None

            def _reset_locked():
                global _CACHE
                _CACHE = {}
            """
        ) == []

    def test_unlocked_mutator_call(self):
        found = lint(
            """
            _REGISTRY = {}

            def register(name, rule):
                _REGISTRY.update({name: rule})
            """
        )
        assert rules(found) == ["conc/global-mutation"]

    def test_unlocked_subscript_write(self):
        found = lint(
            """
            _REGISTRY = {}

            def register(name, rule):
                _REGISTRY[name] = rule
            """
        )
        assert rules(found) == ["conc/global-mutation"]

    def test_pragma_on_preceding_line_suppresses(self):
        assert lint(
            """
            _REGISTRY = {}

            def register(name, rule):
                # korch-lint: ignore[conc/global-mutation] import-time registration only
                _REGISTRY[name] = rule
            """
        ) == []

    def test_module_level_writes_are_fine(self):
        assert lint("_REGISTRY = {}\n_REGISTRY['x'] = 1") == []


class TestLintPaths:
    def test_syntax_error_is_reported_not_raised(self):
        found = lint("def broken(:\n    pass")
        assert rules(found) == ["conc/syntax-error"]

    def test_whole_package_lints_clean(self):
        """Satellite: the repository's own sources carry zero findings."""
        assert lint_paths([str(SRC)]) == []


class TestTaskResources:
    @staticmethod
    def _task(key, deps=(), resources=()):
        return Task(
            key=key, fn=lambda: None, deps=tuple(deps),
            meta={"resources": tuple(resources)} if resources else {},
        )

    def test_unordered_shared_resource(self):
        tasks = [
            self._task("a", resources=("store:plans",)),
            self._task("b", resources=("store:plans",)),
        ]
        found = check_task_resources(tasks)
        assert rules(found) == ["conc/unordered-resource"]
        assert "store:plans" in found[0].message

    def test_dependency_path_serializes_access(self):
        tasks = [
            self._task("a", resources=("store:plans",)),
            self._task("mid", deps=("a",)),
            self._task("b", deps=("mid",), resources=("store:plans",)),
        ]
        assert check_task_resources(tasks) == []

    def test_distinct_resources_are_independent(self):
        tasks = [
            self._task("a", resources=("store:plans",)),
            self._task("b", resources=("store:profiles",)),
        ]
        assert check_task_resources(tasks) == []

    def test_scheduler_rejects_unordered_resources(self):
        scheduler = Scheduler(SerialExecutor())
        try:
            tasks = [
                self._task("a", resources=("ns",)),
                self._task("b", resources=("ns",)),
            ]
            with pytest.raises(SchedulerError, match="unordered shared-resource"):
                scheduler.submit(tasks)
        finally:
            scheduler.close()

    def test_scheduler_accepts_ordered_resources(self):
        scheduler = Scheduler(SerialExecutor())
        try:
            results = scheduler.run(
                [
                    Task(key="a", fn=lambda: 1, meta={"resources": ("ns",)}),
                    Task(key="b", fn=lambda: 2, deps=("a",), meta={"resources": ("ns",)}),
                ]
            )
            assert results == {"a": 1, "b": 2}
        finally:
            scheduler.close()
