"""Layer 2 adversarial tests: mutated plans must trip the right rules.

Each test starts from a small hand-built primitive graph, fabricates kernel
lists with one specific defect, and asserts the verifier reports exactly the
expected rule id (acceptance: dropped cover entry, double cover, cyclic
dependency, removed dependency edge / misorder, swapped interface tensors).
"""

from __future__ import annotations


from repro.analysis.verify import verify_result, verify_strategy
from repro.diagnostics import Severity, errors
from repro.engine import KorchConfig, KorchEngine
from repro.gpu.cost_model import CostBreakdown
from repro.gpu.features import KernelFeatures
from repro.gpu.profiler import KernelProfile, KernelProfiler
from repro.ir import GraphBuilder, TensorType
from repro.orchestration.kernel import CandidateKernel
from repro.primitives import ElementwisePrimitive, PrimitiveGraph


def _profile(latency: float = 1e-5, backend: str = "test") -> KernelProfile:
    return KernelProfile(
        latency_s=latency,
        backend=backend,
        breakdown=CostBreakdown(latency, 0.0, 0.0, latency, 0, 0, 1.0, 1.0),
        features=KernelFeatures(),
    )


def chain_pg(depth: int = 2) -> PrimitiveGraph:
    """x -> n0 -> t0 -> n1 -> t1 [... ] with the last tensor as output."""
    pg = PrimitiveGraph("chain")
    tensor = pg.add_input("x", TensorType((4,)))
    for index in range(depth):
        node = pg.add_node(
            ElementwisePrimitive("Relu"), [tensor], output=f"t{index}", name=f"n{index}"
        )
        tensor = node.output
    pg.add_output(tensor)
    return pg


def make_kernel(pg, names, index=0, external_inputs=None, outputs=None):
    """CandidateKernel over ``names`` with honest IO unless overridden."""
    names = set(names)
    nodes = [n for n in pg.nodes if n.name in names]
    ins, outs = pg.subset_io(nodes)
    return CandidateKernel(
        index=index,
        node_names=frozenset(names),
        nodes=nodes,
        external_inputs=list(ins) if external_inputs is None else list(external_inputs),
        outputs=list(outs) if outputs is None else list(outputs),
        profile=_profile(),
    )


def rules(diagnostics):
    return [d.rule for d in diagnostics]


class TestCover:
    def test_clean_single_kernel_plan(self):
        pg = chain_pg()
        assert verify_strategy(pg, [make_kernel(pg, {"n0", "n1"})]) == []

    def test_clean_two_kernel_plan(self):
        pg = chain_pg()
        plan = [make_kernel(pg, {"n0"}, 0), make_kernel(pg, {"n1"}, 1)]
        assert verify_strategy(pg, plan) == []

    def test_dropped_cover_entry_is_uncovered_node(self):
        """Acceptance mutation: remove the kernel materializing an output."""
        pg = chain_pg()
        plan = [make_kernel(pg, {"n0"})]  # nobody materializes t1
        found = verify_strategy(pg, plan)
        assert rules(found) == ["plan/uncovered-node"]
        assert found[0].severity is Severity.ERROR
        assert "t1" in found[0].message

    def test_double_covered_node_is_warning(self):
        """Redundant materialization is legal under the >=1 BLP constraints."""
        pg = chain_pg()
        plan = [
            make_kernel(pg, {"n0", "n1"}, 0),
            make_kernel(pg, {"n0", "n1"}, 1),
        ]
        found = verify_strategy(pg, plan)
        assert rules(found) == ["plan/double-covered-node"]
        assert found[0].severity is Severity.WARNING
        assert errors(found) == []

    def test_dangling_input(self):
        pg = chain_pg()
        found = verify_strategy(pg, [make_kernel(pg, {"n1"})])
        assert rules(found) == ["plan/dangling-input"]
        assert "t0" in found[0].message


class TestOrdering:
    def test_removed_dependency_edge_is_order_violation(self):
        """Acceptance mutation: a reversed (misordered) but orderable plan."""
        pg = chain_pg()
        plan = [make_kernel(pg, {"n1"}, 0), make_kernel(pg, {"n0"}, 1)]
        found = verify_strategy(pg, plan)
        assert rules(found) == ["plan/order-violation"]
        assert "t0" in found[0].message

    def test_cyclic_kernel_dependency(self):
        """Acceptance mutation: two kernels waiting on each other's output."""
        pg = chain_pg()
        # k0 fabricates a read of k1's output; the declared IO also disagrees
        # with the node set (io-mismatch) but the greedy saturation must still
        # classify the deadlock as a cycle, not a misorder.
        k0 = make_kernel(pg, {"n0"}, 0, external_inputs=["x", "t1"], outputs=["t0"])
        k1 = make_kernel(pg, {"n1"}, 1, external_inputs=["t0"], outputs=["t1"])
        found = verify_strategy(pg, [k0, k1])
        assert "plan/cyclic-dependency" in rules(found)
        assert "plan/order-violation" not in rules(found)


class TestKernelWellFormedness:
    def test_swapped_interface_tensor_is_io_mismatch(self):
        """Acceptance mutation: swap a kernel's declared external input."""
        pg = chain_pg()
        kernel = make_kernel(pg, {"n1"}, external_inputs=["x"])
        k0 = make_kernel(pg, {"n0"}, 1)
        found = verify_strategy(pg, [k0, kernel])
        assert rules(found) == ["plan/io-mismatch"]
        assert "t0" in found[0].message

    def test_foreign_output_is_io_mismatch(self):
        pg = chain_pg()
        kernel = make_kernel(pg, {"n0", "n1"}, outputs=["t1", "t0", "x"])
        found = verify_strategy(pg, [kernel])
        assert "plan/io-mismatch" in rules(found)

    def test_empty_kernel(self):
        pg = chain_pg()
        empty = CandidateKernel(
            index=0, node_names=frozenset(), nodes=[], external_inputs=[],
            outputs=[], profile=_profile(),
        )
        found = verify_strategy(pg, [empty, make_kernel(pg, {"n0", "n1"}, 1)])
        assert "plan/empty-kernel" in rules(found)

    def test_unknown_node(self):
        pg = chain_pg()
        ghost = CandidateKernel(
            index=0, node_names=frozenset({"nope"}), nodes=[pg.nodes[0]],
            external_inputs=[], outputs=[], profile=_profile(),
        )
        found = verify_strategy(pg, [ghost, make_kernel(pg, {"n0", "n1"}, 1)])
        assert "plan/unknown-node" in rules(found)

    def test_non_convex_kernel(self):
        pg = chain_pg(depth=3)
        found = verify_strategy(pg, [make_kernel(pg, {"n0", "n2"})])
        assert "plan/non-convex-kernel" in rules(found)


class _MissCache:
    def get(self, signature, key=None):
        return False, None, False


class _HitCache:
    def get(self, signature, key=None):
        return True, _profile(), True


class TestProfileKeys:
    def test_missing_profile_key(self):
        pg = chain_pg()
        found = verify_strategy(
            pg, [make_kernel(pg, {"n0", "n1"})], profile_caches=[_MissCache()]
        )
        assert rules(found) == ["plan/profile-key-missing"]

    def test_any_cache_hit_satisfies(self):
        pg = chain_pg()
        found = verify_strategy(
            pg,
            [make_kernel(pg, {"n0", "n1"})],
            profile_caches=[_MissCache(), _HitCache()],
        )
        assert found == []

    def test_signature_agrees_with_profiler(self):
        """The verifier recomputes the exact profiler cache signature."""
        pg = chain_pg()
        kernel = make_kernel(pg, {"n0", "n1"})
        expected = KernelProfiler.kernel_signature(
            pg, kernel.nodes, kernel.external_inputs, kernel.outputs
        )

        seen = []

        class _Spy(_HitCache):
            def get(self, signature, key=None):
                seen.append(signature)
                return super().get(signature, key)

        assert verify_strategy(pg, [kernel], profile_caches=[_Spy()]) == []
        assert seen == [expected]


def _attention_model(name: str):
    b = GraphBuilder(name)
    x = b.input("x", (1, 4, 32, 16))
    w = b.param("w", (1, 4, 16, 32))
    v = b.param("v", (1, 4, 32, 16))
    b.output(b.matmul(b.softmax(b.matmul(x, w), axis=-1), v))
    return b.build()


class TestVerifyResult:
    def test_engine_plan_verifies_clean(self):
        with KorchEngine(KorchConfig(gpu="V100")) as engine:
            result = engine.optimize(_attention_model("verify_clean"))
        assert verify_result(result) == []

    def test_mutated_engine_plan_is_flagged(self):
        with KorchEngine(KorchConfig(gpu="V100")) as engine:
            result = engine.optimize(_attention_model("verify_mutated"))
        strategy = result.partitions[0].orchestration.strategy
        assert strategy.kernels, "expected at least one selected kernel"
        strategy.kernels[-1].outputs.clear()
        found = verify_result(result)
        assert any(d.rule in {"plan/uncovered-node", "plan/io-mismatch",
                              "plan/dangling-input"} for d in found)
        assert result.graph.name in found[0].location
