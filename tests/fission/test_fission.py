"""Operator fission: rules, engine behaviour, and numerical equivalence."""

import numpy as np
import pytest

from repro.fission import FISSION_RULES, FissionEngine, apply_operator_fission, register_fission_rule
from repro.gpu.executor import PrimitiveGraphExecutor
from repro.ir import GraphBuilder
from repro.primitives import PrimitiveCategory
from repro.runtime.reference import ReferenceExecutor


def _assert_equivalent(graph, tolerance=1e-4):
    """Fission output must match the operator-level reference executor."""
    pg, _ = FissionEngine().run(graph)
    reference = ReferenceExecutor(graph).run()
    candidate = PrimitiveGraphExecutor(pg).run()
    for name, expected in reference.items():
        np.testing.assert_allclose(candidate[name], expected, atol=tolerance, rtol=1e-3)
    return pg


class TestFissionRules:
    def test_softmax_rule_structure(self):
        """Figure 3: Softmax -> Exp, ReduceSum, Broadcast, Div."""
        b = GraphBuilder("g")
        x = b.input("x", (2, 8))
        b.output(b.softmax(x, axis=-1))
        pg = apply_operator_fission(b.build())
        ops = [n.prim.op for n in pg.topological_order()]
        assert ops == ["Exp", "Sum", "Broadcast", "Div"]
        assert all(n.source_op for n in pg.nodes)

    def test_instance_norm_rule_structure(self):
        """Figure 12b: Sub, ReduceMean, Mul, ReduceMean, Add, Sqrt, Div (+affine)."""
        b = GraphBuilder("g")
        x = b.input("x", (1, 4, 6, 6))
        b.output(b.instance_norm(x))
        pg = apply_operator_fission(b.build())
        histogram = pg.category_histogram()
        assert histogram["reduce"] == 2
        assert histogram["elementwise"] >= 6

    def test_split_becomes_slices(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 8))
        parts = b.split(x, 2, axis=1)
        b.output(*parts)
        pg = apply_operator_fission(b.build())
        assert all(n.prim.op == "Slice" for n in pg.nodes)
        assert len(pg.nodes) == 2

    def test_conv_keeps_single_linear_primitive(self):
        b = GraphBuilder("g")
        x = b.input("x", (1, 3, 8, 8))
        b.output(b.conv2d(x, 4, 3))
        pg = apply_operator_fission(b.build())
        assert len(pg.nodes) == 1
        assert pg.nodes[0].category is PrimitiveCategory.LINEAR

    def test_gelu_expansion(self):
        b = GraphBuilder("g")
        x = b.input("x", (4, 4))
        b.output(b.gelu(x))
        pg = apply_operator_fission(b.build())
        assert {n.prim.op for n in pg.nodes} == {"Mul", "Erf", "Add"}

    def test_topk_becomes_opaque(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 10))
        values, indices = b.node("TopK", [x], {"k": 3, "axis": -1}, num_outputs=2)
        b.output(values, indices)
        pg = apply_operator_fission(b.build())
        assert all(n.category is PrimitiveCategory.OPAQUE for n in pg.nodes)
        assert len(pg.nodes) == 2

    def test_every_registered_op_without_rule_errors(self):
        engine = FissionEngine(rules={})
        b = GraphBuilder("g")
        x = b.input("x", (2,))
        b.output(b.relu(x))
        with pytest.raises(KeyError):
            engine.run(b.build())

    def test_duplicate_rule_registration_rejected(self):
        with pytest.raises(ValueError):
            register_fission_rule("Relu", lambda ctx: None)

    def test_rule_coverage_for_registry(self):
        """Every operator used by the model zoo has a fission rule."""
        needed = {
            "Conv", "ConvTranspose", "MatMul", "Gemm", "Add", "Mul", "Relu", "LeakyRelu",
            "Sigmoid", "Silu", "Mish", "HardSwish", "Gelu", "Softmax", "LayerNormalization",
            "InstanceNormalization", "BatchNormalization", "MaxPool", "AveragePool",
            "GlobalAveragePool", "Transpose", "Reshape", "Concat", "Split", "Slice", "Pad",
            "Resize", "ReduceSum", "ReduceMean", "ReduceMax",
        }
        assert needed <= set(FISSION_RULES)


class TestFissionReport:
    def test_report_counts(self, attention_graph):
        pg, report = FissionEngine().run(attention_graph)
        assert report.num_operators == attention_graph.num_nodes
        assert report.num_primitives == len(pg.nodes)
        assert report.expansion_ratio > 1.0
        assert report.expanded_operators["Softmax"] == 4

    def test_source_op_tracking(self, candy_block_pg):
        instance_norm_prims = [n for n in candy_block_pg.nodes if "instance" in n.source_op.lower()]
        assert len(instance_norm_prims) >= 9


class TestFissionEquivalence:
    """Numerical equivalence of fission on representative operator mixes."""

    def test_attention(self, attention_graph):
        _assert_equivalent(attention_graph)

    def test_candy_block(self, candy_block_graph):
        _assert_equivalent(candy_block_graph)

    def test_normalizations(self):
        b = GraphBuilder("norms")
        x = b.input("x", (2, 6, 10))
        y = b.layer_norm(x)
        y = b.gelu(y)
        img = b.input("img", (1, 4, 8, 8))
        z = b.batch_norm(img)
        z = b.hard_swish(z)
        b.output(y, z)
        _assert_equivalent(b.build())

    def test_cnn_block(self):
        b = GraphBuilder("cnn")
        x = b.input("x", (1, 3, 16, 16))
        y = b.conv2d(x, 8, 3, stride=2)
        y = b.batch_norm(y)
        y = b.silu(y)
        y = b.max_pool(y, 2, 2)
        y = b.resize(y, 2.0)
        b.output(y)
        _assert_equivalent(b.build())

    def test_layout_mix(self):
        b = GraphBuilder("layout")
        x = b.input("x", (2, 4, 6))
        a, c = b.split(x, 2, axis=1)
        y = b.concat([b.transpose(a, (0, 2, 1)), b.transpose(c, (0, 2, 1))], axis=2)
        y = b.reshape(y, (2, 24))
        y = b.pad(y, (0, 0, 0, 4))
        y = b.reduce_max(y, axes=(1,), keepdims=True)
        b.output(y)
        _assert_equivalent(b.build())

    def test_mish_silu_chain(self):
        b = GraphBuilder("acts")
        x = b.input("x", (3, 7))
        b.output(b.mish(b.silu(b.leaky_relu(x, 0.2))))
        _assert_equivalent(b.build())

    def test_gemm_with_transposes(self):
        b = GraphBuilder("gemm")
        a = b.input("a", (6, 4))
        w = b.param("w", (8, 6))
        bias = b.param("bias", (8,))
        b.output(b.node("Gemm", [a, w, bias], {"trans_a": True, "trans_b": True})[0])
        _assert_equivalent(b.build())
