"""Fusion baselines: grouping policies, costing, and comparison with Korch."""


from repro.baselines import (
    DnnFusionBaseline,
    GreedyFusionBaseline,
    TensorRTFusionBaseline,
    UnfusedBaseline,
    baseline_suite,
    mapping_class,
)
from repro.fission import FissionEngine
from repro.ir import GraphBuilder
from repro.models import build_segformer_decoder_subgraph
from repro.orchestration import KernelOrchestrationOptimizer


def _conv_bn_relu_graph():
    b = GraphBuilder("cbr")
    x = b.input("x", (1, 8, 16, 16))
    y = b.conv2d(x, 16, 3, bias=False)
    y = b.batch_norm(y)
    y = b.relu(y)
    y = b.conv2d(y, 16, 3, bias=False)
    y = b.batch_norm(y)
    y = b.relu(y)
    b.output(y)
    return b.build()


class TestGrouping:
    def test_unfused_one_group_per_operator(self, attention_graph, v100):
        groups = UnfusedBaseline(v100).group_operators(attention_graph)
        assert all(len(group) == 1 for group in groups)
        assert len(groups) == attention_graph.num_nodes

    def test_tensorrt_fuses_conv_bn_relu(self, v100):
        graph = _conv_bn_relu_graph()
        groups = TensorRTFusionBaseline(v100).group_operators(graph)
        fused = [g for g in groups if len(g) == 3]
        assert len(fused) == 2  # both conv+BN+ReLU patterns fused

    def test_tensorrt_keeps_norms_separate(self, candy_block_graph, v100):
        groups = TensorRTFusionBaseline(v100).group_operators(candy_block_graph)
        by_op = {
            candy_block_graph.node(name).op_type
            for group in groups
            for name in group
            if len(group) == 1
        }
        assert "InstanceNormalization" in by_op  # Figure 12a: IN is its own kernel

    def test_tvm_fuses_decoder_into_one_kernel(self, v100):
        """Figure 11a: TVM fuses the whole Segformer decoder subgraph."""
        graph = build_segformer_decoder_subgraph(batch=1)
        groups = GreedyFusionBaseline(v100).group_operators(graph)
        assert len(groups) == 1

    def test_tvm_does_not_fuse_reduce_into_conv(self, candy_block_graph, v100):
        groups = GreedyFusionBaseline(v100).group_operators(candy_block_graph)
        for group in groups:
            ops = [candy_block_graph.node(name).op_type for name in group]
            if "Conv" in ops:
                assert "InstanceNormalization" not in ops

    def test_tvm_residual_pattern_is_acyclic(self, v100):
        """Residual adds must not merge a group with its own ancestors."""
        b = GraphBuilder("residual")
        x = b.input("x", (1, 8, 8, 8))
        y = b.relu(x)
        z = b.conv2d(y, 8, 3)
        z = b.relu(z)
        out = b.add(y, z)
        b.output(out)
        graph = b.build()
        baseline = GreedyFusionBaseline(v100)
        strategy = baseline.run(graph)  # raises if the plan is cyclic
        assert strategy.num_kernels >= 2

    def test_groups_cover_everything(self, attention_graph, v100):
        for baseline in baseline_suite(v100, include_dnnfusion=False):
            groups = baseline.group_operators(attention_graph)
            names = sorted(name for group in groups for name in group)
            assert names == sorted(node.name for node in attention_graph.nodes)

    def test_dnnfusion_mapping_classes(self, attention_graph, v100):
        softmax = next(n for n in attention_graph.nodes if n.op_type == "Softmax")
        matmul = next(n for n in attention_graph.nodes if n.op_type == "MatMul")
        assert mapping_class(softmax) == "many-to-one"
        assert mapping_class(matmul) == "many-to-many"
        strategy = DnnFusionBaseline(v100).run(attention_graph)
        assert strategy.num_kernels >= 2


class TestBaselineCosting:
    def test_strategies_are_valid_plans(self, candy_block_graph, v100):
        pg, _ = FissionEngine().run(candy_block_graph)
        for baseline in baseline_suite(v100):
            strategy = baseline.run(candy_block_graph, pg)
            assert strategy.total_latency_s > 0
            materialized = set()
            for kernel in strategy.kernels:
                for tensor in kernel.external_inputs:
                    assert pg.is_source_tensor(tensor) or tensor in materialized
                materialized.update(kernel.outputs)

    def test_fusion_beats_unfused(self, candy_block_graph, v100):
        pg, _ = FissionEngine().run(candy_block_graph)
        unfused = UnfusedBaseline(v100).run(candy_block_graph, pg)
        tensorrt = TensorRTFusionBaseline(v100).run(candy_block_graph, pg)
        assert tensorrt.total_latency_s < unfused.total_latency_s

    def test_korch_at_least_as_good_as_baselines(self, attention_graph, v100):
        """On the attention subgraph Korch must not lose to any baseline."""
        pg, _ = FissionEngine().run(attention_graph)
        korch = KernelOrchestrationOptimizer(v100).optimize(pg).strategy
        for baseline in baseline_suite(v100):
            strategy = baseline.run(attention_graph, pg)
            assert korch.total_latency_s <= strategy.total_latency_s * 1.001

    def test_eager_pays_framework_overhead(self, attention_graph, v100):
        pg, _ = FissionEngine().run(attention_graph)
        eager = UnfusedBaseline(v100).run(attention_graph, pg)
        assert eager.num_kernels == attention_graph.num_nodes
        # Every kernel pays at least launch + dispatcher overhead.
        assert eager.total_latency_s > eager.num_kernels * v100.kernel_launch_s
