"""KorchService: queueing semantics, priorities, lifecycle, and the
bit-identical contract against ``KorchEngine.optimize``."""

from __future__ import annotations

import threading
import time
from concurrent.futures import CancelledError

import pytest

from repro.engine import (
    AdmissionConfig,
    KorchConfig,
    KorchEngine,
    KorchService,
    Priority,
    ServiceClosed,
    ServiceDeadlineExceeded,
    ServiceOverloaded,
)
from repro.ir import GraphBuilder


def attention_model(name: str, heads: int = 4):
    b = GraphBuilder(name)
    x = b.input("x", (1, heads, 32, 16))
    w = b.param("w", (1, heads, 16, 32))
    v = b.param("v", (1, heads, 32, 16))
    b.output(b.matmul(b.softmax(b.matmul(x, w), axis=-1), v))
    return b.build()


def strategy_fingerprint(result):
    return [
        [
            (sorted(k.node_names), list(k.external_inputs), list(k.outputs),
             k.latency_s, k.backend)
            for k in part.orchestration.strategy.kernels
        ]
        for part in result.partitions
    ]


class _StubResult:
    """Just enough result surface for the service's stats plumbing."""

    def __init__(self, name: str):
        from repro.engine import CacheReport

        self.name = name
        self.stage_seconds: dict[str, float] = {}
        self.cache = CacheReport()


class _StubEngine:
    """Duck-typed engine with controllable timing, for queue-level tests."""

    def __init__(self):
        self.block = threading.Event()
        self.served: list[str] = []
        self.fail_on: set[str] = set()
        self.closed = False

    def optimize(self, graph):
        self.block.wait(10)
        self.served.append(graph.name)
        if graph.name in self.fail_on:
            raise RuntimeError(f"synthetic failure for {graph.name}")
        return _StubResult(graph.name)

    def close(self):
        self.closed = True


class TestBitIdentical:
    def test_submit_matches_engine_optimize(self):
        graph = attention_model("served")
        with KorchEngine(KorchConfig(gpu="V100")) as engine:
            direct = engine.optimize(attention_model("served"))
        with KorchService(config=KorchConfig(gpu="V100"), workers=2) as service:
            request = service.submit(graph)
            result = request.result(timeout=300)
        assert result.latency_s == direct.latency_s
        assert strategy_fingerprint(result) == strategy_fingerprint(direct)

    def test_request_stats_populated(self):
        with KorchService(config=KorchConfig(gpu="V100"), workers=1) as service:
            request = service.submit(attention_model("stats"))
            request.result(timeout=300)
        stats = request.stats
        assert stats.status == "done"
        assert stats.queue_wait_s is not None and stats.queue_wait_s >= 0.0
        assert stats.run_s is not None and stats.run_s > 0.0
        assert set(stats.stage_seconds) >= {"fission", "identify", "solve"}
        assert stats.backend_estimate_calls is not None
        assert stats.as_dict()["priority"] == "NORMAL"

    def test_submit_many_preserves_input_association(self):
        graphs = [attention_model("m1"), attention_model("m2", heads=2)]
        with KorchService(config=KorchConfig(gpu="V100"), workers=2) as service:
            requests = service.submit_many(graphs)
            results = [request.result(timeout=300) for request in requests]
        assert [r.graph.name for r in results] == ["m1", "m2"]


class TestQueueSemantics:
    def _service(self, **kwargs):
        stub = _StubEngine()
        service = KorchService(engine=stub, workers=1, **kwargs)
        return service, stub

    def test_priority_classes_order_the_queue(self):
        service, stub = self._service()
        try:
            # Occupy the single worker, then queue LOW before HIGH.
            first = service.submit(attention_model("first"))
            time.sleep(0.05)  # let the worker pick "first" up
            low = service.submit(attention_model("low"), priority=Priority.LOW)
            high = service.submit(attention_model("high"), priority=Priority.HIGH)
            stub.block.set()
            for request in (first, low, high):
                request.result(timeout=10)
            assert stub.served == ["first", "high", "low"]
        finally:
            service.close()

    def test_cancel_queued_request(self):
        service, stub = self._service()
        try:
            service.submit(attention_model("running"))
            time.sleep(0.05)
            victim = service.submit(attention_model("victim"))
            assert victim.cancel()
            assert victim.cancelled()
            stub.block.set()
            with pytest.raises(CancelledError):
                victim.result(timeout=10)
            service.drain(timeout=10)
            assert "victim" not in stub.served
            assert service.report.cancelled == 1
        finally:
            service.close()

    def test_failure_surfaces_in_future_and_stats(self):
        service, stub = self._service()
        try:
            stub.fail_on.add("doomed")
            stub.block.set()
            request = service.submit(attention_model("doomed"))
            assert isinstance(request.exception(timeout=10), RuntimeError)
            assert request.stats.status == "failed"
            assert "synthetic" in request.stats.error
            assert service.report.failed == 1
        finally:
            service.close()

    def test_overload_rejects_beyond_max_pending(self):
        service, stub = self._service(max_pending=1)
        try:
            service.submit(attention_model("running"))
            time.sleep(0.05)  # worker picks it up; queue is empty again
            service.submit(attention_model("queued"))
            with pytest.raises(ServiceOverloaded):
                service.submit(attention_model("rejected"))
            assert service.report.rejected == 1
            stub.block.set()
        finally:
            service.close()


class TestLifecycle:
    def test_drain_quiesces_and_reopens(self):
        stub = _StubEngine()
        stub.block.set()
        service = KorchService(engine=stub, workers=1)
        try:
            service.submit(attention_model("one")).result(timeout=10)
            assert service.drain(timeout=10)
            after = service.submit(attention_model("two"))  # accepted again
            after.result(timeout=10)
            assert stub.served == ["one", "two"]
        finally:
            service.close()

    def test_close_rejects_new_submissions(self):
        stub = _StubEngine()
        stub.block.set()
        service = KorchService(engine=stub, workers=1)
        service.close()
        with pytest.raises(ServiceClosed):
            service.submit(attention_model("late"))
        assert not stub.closed  # engine was caller-owned

    def test_close_waits_for_in_flight_and_cancels_queued(self):
        stub = _StubEngine()
        service = KorchService(engine=stub, workers=1)
        running = service.submit(attention_model("running"))
        time.sleep(0.05)
        queued = service.submit(attention_model("queued"))
        closer = threading.Thread(target=service.close, kwargs={"cancel_pending": True})
        closer.start()
        time.sleep(0.05)
        stub.block.set()
        closer.join(timeout=10)
        assert not closer.is_alive()
        assert running.result(timeout=10).name == "running"
        assert queued.cancelled()
        assert stub.served == ["running"]

    def test_drain_timeout_during_close_does_not_reopen_intake(self):
        """Regression: a drain() returning while close() is still waiting
        used to reset the draining flag, re-admitting submissions under a
        live closer."""
        stub = _StubEngine()
        service = KorchService(engine=stub, workers=1)
        service.submit(attention_model("running"))
        time.sleep(0.05)  # worker picks it up and blocks
        closer = threading.Thread(target=service.close)
        closer.start()
        time.sleep(0.05)  # closer is now waiting for quiescence
        assert service.drain(timeout=0.05) is False  # times out mid-close
        with pytest.raises(ServiceClosed):
            service.submit(attention_model("sneaky"))
        stub.block.set()
        closer.join(timeout=10)
        assert not closer.is_alive()

    def test_owned_engine_closed_with_service(self):
        service = KorchService(config=KorchConfig(gpu="V100"), workers=1)
        engine = service.engine
        service.close()
        with pytest.raises(RuntimeError):
            engine.optimize(attention_model("after-close"))

    def test_engine_and_config_are_mutually_exclusive(self):
        with pytest.raises(ValueError):
            KorchService(engine=_StubEngine(), config=KorchConfig(gpu="V100"))


class _SlowStub:
    """Engine stub with a fixed per-request service time (for deadline and
    admission tests that need a measurable mean run time)."""

    def __init__(self, delay: float):
        self.delay = delay
        self.served: list[str] = []

    def optimize(self, graph):
        time.sleep(self.delay)
        self.served.append(graph.name)
        return _StubResult(graph.name)

    def close(self):
        pass


class TestCancelledSlotReuse:
    def test_cancelled_request_frees_its_slot_immediately(self):
        """Regression: a cancelled heap entry used to count against
        ``max_pending`` until a worker happened to pop it, so overload
        rejections fired with the queue effectively empty."""
        stub = _StubEngine()
        service = KorchService(engine=stub, workers=1, max_pending=1)
        try:
            service.submit(attention_model("running"))
            time.sleep(0.05)  # worker picks it up; the one slot is free
            victim = service.submit(attention_model("victim"))
            assert service.pending == 1
            assert victim.cancel()
            # The slot is reusable right now, not after the next pop.
            assert service.pending == 0
            assert service.report.cancelled == 1
            replacement = service.submit(attention_model("replacement"))
            stub.block.set()
            assert replacement.result(timeout=10).name == "replacement"
            service.drain(timeout=10)
            assert stub.served == ["running", "replacement"]
        finally:
            service.close()

    def test_double_cancel_accounts_once(self):
        stub = _StubEngine()
        service = KorchService(engine=stub, workers=1)
        try:
            service.submit(attention_model("running"))
            time.sleep(0.05)
            victim = service.submit(attention_model("victim"))
            assert victim.cancel()
            assert victim.cancel()  # Future.cancel() keeps returning True
            assert service.report.cancelled == 1
            assert service.pending == 0
            stub.block.set()
        finally:
            service.close()


class TestCloseTimeout:
    def test_close_timeout_returns_false_and_leaves_owned_engine_open(self):
        """Regression: ``close(timeout=)`` used to mark the service closed
        and close a privately-owned engine even when in-flight requests were
        still inside it."""
        service = KorchService(config=KorchConfig(gpu="V100"), workers=1)
        engine = service.engine
        release = threading.Event()
        original = engine.optimize

        def blocking_optimize(graph):
            release.wait(30)
            return original(graph)

        engine.optimize = blocking_optimize
        request = service.submit(attention_model("slow"))
        time.sleep(0.05)  # worker enters the blocked engine call
        assert service.close(timeout=0.2) is False
        with pytest.raises(ServiceClosed):  # intake stays shut...
            service.submit(attention_model("late"))
        release.set()  # ...but the in-flight request still completes
        assert request.result(timeout=300).graph.name == "slow"
        assert service.close(timeout=30) is True
        with pytest.raises(RuntimeError):
            original(attention_model("after-close"))  # engine closed only now

    def test_close_timeout_is_one_deadline_not_per_worker(self):
        """Regression: the timeout used to be applied to the quiescence wait
        and then again to each worker join, so ``close(timeout=t)`` could
        block for ``(1 + workers) * t``."""
        stub = _StubEngine()
        service = KorchService(engine=stub, workers=4)
        try:
            service.submit(attention_model("running"))
            time.sleep(0.05)
            started = time.perf_counter()
            assert service.close(timeout=0.3) is False
            elapsed = time.perf_counter() - started
            assert elapsed < 1.0  # one deadline, not (1 + 4) * 0.3
        finally:
            stub.block.set()
            service.close()


class TestConcurrentDrain:
    def test_drainer_timeout_does_not_reopen_intake_under_another(self):
        """Regression: drain() used a boolean flag, so the first of two
        concurrent drainers to return flipped it off and re-admitted
        submissions under the drainer still waiting."""
        stub = _StubEngine()
        service = KorchService(engine=stub, workers=1)
        try:
            service.submit(attention_model("running"))
            time.sleep(0.05)  # worker picks it up and blocks
            outcome: dict[str, bool] = {}

            def long_drain():
                outcome["drained"] = service.drain(timeout=10)

            drainer = threading.Thread(target=long_drain)
            drainer.start()
            time.sleep(0.05)
            assert service.drain(timeout=0.05) is False  # short drainer times out
            with pytest.raises(ServiceClosed):  # long drainer still holds intake
                service.submit(attention_model("sneaky"))
            stub.block.set()
            drainer.join(timeout=10)
            assert not drainer.is_alive()
            assert outcome["drained"] is True
            # All drainers gone: the service accepts work again.
            after = service.submit(attention_model("after"))
            assert after.result(timeout=10).name == "after"
        finally:
            stub.block.set()
            service.close()


class TestDeadline:
    def test_deadline_accepted_when_no_run_data(self):
        stub = _SlowStub(delay=0.0)
        service = KorchService(engine=stub, workers=1)
        try:
            request = service.submit(attention_model("first"), deadline_s=0.0001)
            request.result(timeout=10)
            assert request.stats.deadline_s == 0.0001
            assert request.stats.as_dict()["deadline_s"] == 0.0001
        finally:
            service.close()

    def test_deadline_rejects_predicted_late_request(self):
        stub = _SlowStub(delay=0.2)
        service = KorchService(engine=stub, workers=1)
        try:
            # Establish the measured mean run time (~0.2 s).
            service.submit(attention_model("warmup")).result(timeout=10)
            # Keep the single worker busy and one request queued: two
            # requests ahead → predicted wait ≈ 0.4 s.
            inflight = service.submit(attention_model("inflight"))
            queued = service.submit(attention_model("queued"))
            with pytest.raises(ServiceDeadlineExceeded):
                service.submit(attention_model("impatient"), deadline_s=0.01)
            assert service.report.rejected == 1
            # A deadline-rejection is a ServiceOverloaded subclass, so
            # existing overload handling catches it too.
            with pytest.raises(ServiceOverloaded):
                service.submit(attention_model("impatient"), deadline_s=0.01)
            patient = service.submit(attention_model("patient"), deadline_s=30.0)
            for request in (inflight, queued, patient):
                request.result(timeout=10)
            rejections = service.metrics()["korch_service_rejections_total"]
            by_cause = {v["labels"]["cause"]: v["value"] for v in rejections["values"]}
            assert by_cause["deadline"] == 2.0
        finally:
            service.close()


class TestServiceMetrics:
    def test_metrics_nonzero_after_real_session(self):
        """Queue-wait/run histograms and cache-hit counters are non-zero
        after a small multi-request session against a real engine."""
        with KorchService(config=KorchConfig(gpu="V100"), workers=2) as service:
            requests = service.submit_many(
                [
                    attention_model("twin"),
                    attention_model("twin"),
                    attention_model("other", heads=2),
                ]
            )
            for request in requests:
                request.result(timeout=600)
            service.drain(timeout=60)
            metrics = service.metrics()
            text = service.metrics_text()
            report = service.report

        def value(name):
            return metrics[name]["values"][0]["value"]

        # Service layer: histograms saw every request; the duplicate "twin"
        # coalesced onto the first, so only two requests ran the engine.
        wait = metrics["korch_service_queue_wait_seconds"]["values"][0]
        assert wait["count"] == 3
        run = metrics["korch_service_run_seconds"]["values"][0]
        assert run["count"] == 2 and run["sum"] > 0.0
        assert value("korch_service_coalesced_total") == 1.0
        # Engine layer: per-stage histograms and cache hits flowed in.
        assert "korch_engine_stage_seconds" in metrics
        assert value("korch_cache_store_hits") > 0
        # The coalesced duplicate never reached the engine.
        assert value("korch_engine_models_optimized") == 2.0
        # Prometheus text exposition carries the same families.
        assert "# TYPE korch_service_queue_wait_seconds histogram" in text
        assert 'korch_service_requests_total{outcome="completed"} 3' in text
        # The report embeds the summaries.
        assert report.histograms["queue_wait_s"]["count"] == 3
        assert report.histograms["run_s"]["p99"] is not None

    def test_request_timestamps_are_ordered(self):
        stub = _SlowStub(delay=0.01)
        service = KorchService(engine=stub, workers=1)
        try:
            request = service.submit(attention_model("timed"))
            request.result(timeout=10)
            stats = request.stats.as_dict()
            assert stats["submitted_at"] <= stats["started_at"] <= stats["finished_at"]
            assert stats["started_at"] > 1e9  # epoch seconds, not perf_counter
        finally:
            service.close()

    def test_shared_registry_with_wrapped_engine(self):
        """Wrapping a real engine adopts its registry, so engine metrics and
        service metrics land in one export."""
        with KorchEngine(KorchConfig(gpu="V100")) as engine:
            service = KorchService(engine=engine, workers=1)
            try:
                assert service.registry is engine.metrics
                service.submit(attention_model("shared")).result(timeout=300)
                metrics = service.metrics()
                assert "korch_service_run_seconds" in metrics
                assert "korch_engine_stage_seconds" in metrics
            finally:
                service.close()


class _SlowEngineProxy:
    """Delegates to a real engine after a fixed delay: realistic results,
    controllable service time."""

    def __init__(self, engine: KorchEngine, delay: float):
        self._engine = engine
        self.delay = delay

    def optimize(self, graph):
        time.sleep(self.delay)
        return self._engine.optimize(graph)

    def close(self):
        pass


class TestAdmissionIntegration:
    def test_controller_shrinks_under_load_and_recovers(self):
        """End to end: a burst against a slow engine breaches the queue-wait
        SLO and shrinks the effective cap; a calm sequential phase grows it
        back — and served results stay bit-identical to the direct engine."""
        admission = AdmissionConfig(
            slo_p99_queue_wait_s=0.05,
            min_pending=1,
            max_pending=16,
            window=4,
            healthy_fraction=0.5,
        )
        with KorchEngine(KorchConfig(gpu="V100")) as engine:
            direct = engine.optimize(attention_model("admitted"))
            proxy = _SlowEngineProxy(engine, delay=0.15)
            # coalesce=False: this test needs 8 identical requests to each
            # hit the slow engine (submit one by one — submit_many would
            # pre-group them into a single optimization regardless).
            service = KorchService(
                engine=proxy, workers=1, admission=admission, coalesce=False
            )
            try:
                controller = service.admission
                assert controller.cap == 16
                # Burst: the single slow worker makes later requests wait
                # far beyond the 50 ms SLO.
                burst = [
                    service.submit(attention_model("admitted")) for _ in range(8)
                ]
                burst_results = [request.result(timeout=600) for request in burst]
                cap_after_burst = controller.cap
                assert cap_after_burst < 16
                assert controller.shrinks >= 1
                # Calm phase: sequential submits never queue, every window
                # is healthy, and the cap walks back up.
                proxy.delay = 0.0
                for _ in range(8):
                    service.submit(attention_model("admitted")).result(timeout=600)
                assert controller.grows >= 1
                assert controller.cap > cap_after_burst
                # Admission control changed scheduling only, not results.
                for result in burst_results:
                    assert strategy_fingerprint(result) == strategy_fingerprint(direct)
                adjustments = service.metrics()[
                    "korch_service_admission_adjustments_total"
                ]
                by_direction = {
                    v["labels"]["direction"]: v["value"] for v in adjustments["values"]
                }
                assert by_direction.get("shrink", 0) >= 1
                assert by_direction.get("grow", 0) >= 1
            finally:
                service.close()

    def test_shrunk_cap_rejects_submissions(self):
        from repro.engine import AdmissionController

        stub = _StubEngine()
        # Pre-shrink a controller (one breached window), then hand it to the
        # service: the effective cap is 1, not max_pending = 2.
        controller = AdmissionController(
            AdmissionConfig(slo_p99_queue_wait_s=0.01, min_pending=1, max_pending=2, window=4)
        )
        for _ in range(4):
            controller.observe(5.0)
        assert controller.cap == 1
        service = KorchService(engine=stub, workers=1, admission=controller)
        try:
            service.submit(attention_model("running"))
            time.sleep(0.05)  # worker picks it up
            service.submit(attention_model("queued"))
            with pytest.raises(ServiceOverloaded):
                service.submit(attention_model("over-cap"))
            assert service.report.rejected == 1
        finally:
            stub.block.set()
            service.close()


class TestQueueWaitAnchors:
    """Queue-wait durations come from monotonic anchors, clamped to >= 0 —
    a wall-clock step or a request without a submit anchor must never
    produce a negative (or absurdly large) wait."""

    def test_unset_submit_anchor_counts_as_started(self):
        from repro.engine.service import ServiceRequest

        stub = _StubEngine()
        stub.block.set()
        service = KorchService(engine=stub, workers=1)
        try:
            request = ServiceRequest(attention_model("anchorless"), Priority.NORMAL)
            request.stats._submitted_pc = 0.0  # foreign/deserialized stats
            service._serve(request)
            assert request.stats.status == "done"
            # Without the guard this would be ~time.perf_counter() seconds.
            assert request.stats.queue_wait_s == 0.0
        finally:
            service.close()

    def test_follower_wait_clamped_without_anchor(self):
        from repro.engine.service import ServiceRequest, ServiceStats

        stub = _StubEngine()
        stub.block.set()
        service = KorchService(engine=stub, workers=1)
        try:
            leader_stats = ServiceStats(model="leader", priority=Priority.NORMAL)
            leader_stats._started_pc = time.perf_counter()
            leader_stats.started_at = time.time()
            follower = ServiceRequest(attention_model("follower"), Priority.NORMAL)
            follower.stats._submitted_pc = 0.0
            assert service._deliver_follower(
                follower, leader_stats, result=_StubResult("leader")
            )
            assert follower.stats.queue_wait_s == 0.0
            assert follower.stats.run_s is not None and follower.stats.run_s >= 0.0
            assert follower.stats.coalesced
        finally:
            service.close()

    def test_wall_clock_step_backwards_keeps_waits_non_negative(self, monkeypatch):
        import repro.engine.service as service_module

        real_time = time

        class SteppingClock:
            """time.time() jumps 1h into the past after submission; the
            monotonic anchors are untouched."""

            def __init__(self):
                self.calls = 0

            def time(self):
                self.calls += 1
                offset = -3600.0 if self.calls > 1 else 0.0
                return real_time.time() + offset

            def __getattr__(self, name):  # perf_counter, monotonic, sleep, ...
                return getattr(real_time, name)

        stub = _StubEngine()
        stub.block.set()
        service = KorchService(engine=stub, workers=1)
        monkeypatch.setattr(service_module, "time", SteppingClock())
        try:
            request = service.submit(attention_model("clock-step"))
            request.result(timeout=10)
            stats = request.stats
            assert stats.queue_wait_s is not None and stats.queue_wait_s >= 0.0
            assert stats.run_s is not None and stats.run_s >= 0.0
            # The epoch timestamps do reflect the step (they join external
            # traces); only the durations are immune to it.
            assert stats.started_at < stats.submitted_at
        finally:
            monkeypatch.setattr(service_module, "time", real_time)
            service.close()
