"""KorchService: queueing semantics, priorities, lifecycle, and the
bit-identical contract against ``KorchEngine.optimize``."""

from __future__ import annotations

import threading
import time
from concurrent.futures import CancelledError

import pytest

from repro.engine import (
    KorchConfig,
    KorchEngine,
    KorchService,
    Priority,
    ServiceClosed,
    ServiceOverloaded,
)
from repro.ir import GraphBuilder


def attention_model(name: str, heads: int = 4):
    b = GraphBuilder(name)
    x = b.input("x", (1, heads, 32, 16))
    w = b.param("w", (1, heads, 16, 32))
    v = b.param("v", (1, heads, 32, 16))
    b.output(b.matmul(b.softmax(b.matmul(x, w), axis=-1), v))
    return b.build()


def strategy_fingerprint(result):
    return [
        [
            (sorted(k.node_names), list(k.external_inputs), list(k.outputs),
             k.latency_s, k.backend)
            for k in part.orchestration.strategy.kernels
        ]
        for part in result.partitions
    ]


class _StubResult:
    """Just enough result surface for the service's stats plumbing."""

    def __init__(self, name: str):
        from repro.engine import CacheReport

        self.name = name
        self.stage_seconds: dict[str, float] = {}
        self.cache = CacheReport()


class _StubEngine:
    """Duck-typed engine with controllable timing, for queue-level tests."""

    def __init__(self):
        self.block = threading.Event()
        self.served: list[str] = []
        self.fail_on: set[str] = set()
        self.closed = False

    def optimize(self, graph):
        self.block.wait(10)
        self.served.append(graph.name)
        if graph.name in self.fail_on:
            raise RuntimeError(f"synthetic failure for {graph.name}")
        return _StubResult(graph.name)

    def close(self):
        self.closed = True


class TestBitIdentical:
    def test_submit_matches_engine_optimize(self):
        graph = attention_model("served")
        with KorchEngine(KorchConfig(gpu="V100")) as engine:
            direct = engine.optimize(attention_model("served"))
        with KorchService(config=KorchConfig(gpu="V100"), workers=2) as service:
            request = service.submit(graph)
            result = request.result(timeout=300)
        assert result.latency_s == direct.latency_s
        assert strategy_fingerprint(result) == strategy_fingerprint(direct)

    def test_request_stats_populated(self):
        with KorchService(config=KorchConfig(gpu="V100"), workers=1) as service:
            request = service.submit(attention_model("stats"))
            request.result(timeout=300)
        stats = request.stats
        assert stats.status == "done"
        assert stats.queue_wait_s is not None and stats.queue_wait_s >= 0.0
        assert stats.run_s is not None and stats.run_s > 0.0
        assert set(stats.stage_seconds) >= {"fission", "identify", "solve"}
        assert stats.backend_estimate_calls is not None
        assert stats.as_dict()["priority"] == "NORMAL"

    def test_submit_many_preserves_input_association(self):
        graphs = [attention_model("m1"), attention_model("m2", heads=2)]
        with KorchService(config=KorchConfig(gpu="V100"), workers=2) as service:
            requests = service.submit_many(graphs)
            results = [request.result(timeout=300) for request in requests]
        assert [r.graph.name for r in results] == ["m1", "m2"]


class TestQueueSemantics:
    def _service(self, **kwargs):
        stub = _StubEngine()
        service = KorchService(engine=stub, workers=1, **kwargs)
        return service, stub

    def test_priority_classes_order_the_queue(self):
        service, stub = self._service()
        try:
            # Occupy the single worker, then queue LOW before HIGH.
            first = service.submit(attention_model("first"))
            time.sleep(0.05)  # let the worker pick "first" up
            low = service.submit(attention_model("low"), priority=Priority.LOW)
            high = service.submit(attention_model("high"), priority=Priority.HIGH)
            stub.block.set()
            for request in (first, low, high):
                request.result(timeout=10)
            assert stub.served == ["first", "high", "low"]
        finally:
            service.close()

    def test_cancel_queued_request(self):
        service, stub = self._service()
        try:
            service.submit(attention_model("running"))
            time.sleep(0.05)
            victim = service.submit(attention_model("victim"))
            assert victim.cancel()
            assert victim.cancelled()
            stub.block.set()
            with pytest.raises(CancelledError):
                victim.result(timeout=10)
            service.drain(timeout=10)
            assert "victim" not in stub.served
            assert service.report.cancelled == 1
        finally:
            service.close()

    def test_failure_surfaces_in_future_and_stats(self):
        service, stub = self._service()
        try:
            stub.fail_on.add("doomed")
            stub.block.set()
            request = service.submit(attention_model("doomed"))
            assert isinstance(request.exception(timeout=10), RuntimeError)
            assert request.stats.status == "failed"
            assert "synthetic" in request.stats.error
            assert service.report.failed == 1
        finally:
            service.close()

    def test_overload_rejects_beyond_max_pending(self):
        service, stub = self._service(max_pending=1)
        try:
            service.submit(attention_model("running"))
            time.sleep(0.05)  # worker picks it up; queue is empty again
            service.submit(attention_model("queued"))
            with pytest.raises(ServiceOverloaded):
                service.submit(attention_model("rejected"))
            assert service.report.rejected == 1
            stub.block.set()
        finally:
            service.close()


class TestLifecycle:
    def test_drain_quiesces_and_reopens(self):
        stub = _StubEngine()
        stub.block.set()
        service = KorchService(engine=stub, workers=1)
        try:
            service.submit(attention_model("one")).result(timeout=10)
            assert service.drain(timeout=10)
            after = service.submit(attention_model("two"))  # accepted again
            after.result(timeout=10)
            assert stub.served == ["one", "two"]
        finally:
            service.close()

    def test_close_rejects_new_submissions(self):
        stub = _StubEngine()
        stub.block.set()
        service = KorchService(engine=stub, workers=1)
        service.close()
        with pytest.raises(ServiceClosed):
            service.submit(attention_model("late"))
        assert not stub.closed  # engine was caller-owned

    def test_close_waits_for_in_flight_and_cancels_queued(self):
        stub = _StubEngine()
        service = KorchService(engine=stub, workers=1)
        running = service.submit(attention_model("running"))
        time.sleep(0.05)
        queued = service.submit(attention_model("queued"))
        closer = threading.Thread(target=service.close, kwargs={"cancel_pending": True})
        closer.start()
        time.sleep(0.05)
        stub.block.set()
        closer.join(timeout=10)
        assert not closer.is_alive()
        assert running.result(timeout=10).name == "running"
        assert queued.cancelled()
        assert stub.served == ["running"]

    def test_drain_timeout_during_close_does_not_reopen_intake(self):
        """Regression: a drain() returning while close() is still waiting
        used to reset the draining flag, re-admitting submissions under a
        live closer."""
        stub = _StubEngine()
        service = KorchService(engine=stub, workers=1)
        service.submit(attention_model("running"))
        time.sleep(0.05)  # worker picks it up and blocks
        closer = threading.Thread(target=service.close)
        closer.start()
        time.sleep(0.05)  # closer is now waiting for quiescence
        assert service.drain(timeout=0.05) is False  # times out mid-close
        with pytest.raises(ServiceClosed):
            service.submit(attention_model("sneaky"))
        stub.block.set()
        closer.join(timeout=10)
        assert not closer.is_alive()

    def test_owned_engine_closed_with_service(self):
        service = KorchService(config=KorchConfig(gpu="V100"), workers=1)
        engine = service.engine
        service.close()
        with pytest.raises(RuntimeError):
            engine.optimize(attention_model("after-close"))

    def test_engine_and_config_are_mutually_exclusive(self):
        with pytest.raises(ValueError):
            KorchService(engine=_StubEngine(), config=KorchConfig(gpu="V100"))
