"""Executor warm-up barrier and the worker profile-cache snapshot."""

import threading
import time

import pytest

from repro.cache import (
    CacheStore,
    PersistentProfileCache,
    export_snapshot,
    snapshot_nbytes,
)
from repro.engine.scheduler.executors import (
    _WARM_SLEEP_S,
    ProcessExecutor,
    ThreadExecutor,
    _warm,
    _warm_call,
)
from repro.engine.scheduler.worker import (
    _SnapshotProfileCache,
    install_profile_snapshot,
    profile_snapshot_size,
)
from repro.fission import FissionEngine
from repro.gpu import V100
from repro.gpu.profiler import KernelProfiler
from repro.ir import GraphBuilder


def attention_graph():
    b = GraphBuilder("snapshot_attention")
    x = b.input("x", (1, 2, 16, 8))
    w = b.param("w", (1, 2, 8, 16))
    v = b.param("v", (1, 2, 16, 8))
    b.output(b.matmul(b.softmax(b.matmul(x, w), axis=-1), v))
    return b.build()


def profile_one(profiler):
    pg, _ = FissionEngine().run(attention_graph())
    node = pg.nodes[0]
    external_inputs, _ = pg.subset_io([node])
    signature = profiler.kernel_signature(pg, [node], external_inputs, [node.output])
    return signature, profiler.profile(pg, [node], external_inputs, [node.output])


class TestWarmBarrier:
    def test_warm_call_runs_hook_before_barrier(self):
        calls = []
        _warm_call(calls.append, ("hello",), sleep_s=0)
        assert calls == ["hello"]
        _warm_call(None, (), sleep_s=0)  # no hook: just the barrier

    def test_warm_sleep_constant_is_shared(self):
        start = time.monotonic()
        _warm(sleep_s=0)
        assert time.monotonic() - start < _WARM_SLEEP_S

    def test_thread_warm_up_starts_every_thread(self):
        with ThreadExecutor(workers=3, cap=8) as executor:
            executor.warm_up()
            names = {t.name for t in threading.enumerate()}
            started = [n for n in names if n.startswith("korch")]
            assert len(started) >= 3

    def test_thread_warm_up_raises_after_shutdown(self):
        executor = ThreadExecutor(workers=1)
        executor.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            executor.warm_up()

    def test_process_warm_up_raises_after_shutdown(self):
        executor = ProcessExecutor(workers=1)
        executor.shutdown()  # pool never started; shutdown just closes
        with pytest.raises(RuntimeError, match="shut down"):
            executor.warm_up()


class TestSnapshotExport:
    def test_roundtrip_through_snapshot_cache(self, tmp_path):
        store = CacheStore(tmp_path)
        profiler = KernelProfiler(V100)
        cache = PersistentProfileCache(store, V100, profiler.backends)
        profiler.persistent_cache = cache
        signature, profile = profile_one(profiler)
        assert profile is not None

        snapshot = export_snapshot(store)
        assert len(snapshot) == 1
        assert snapshot_nbytes(snapshot) > 0
        assert cache.export_snapshot() == snapshot

        writes: list[tuple] = []
        warm = _SnapshotProfileCache(snapshot, V100, profiler.backends, writes)
        hit, got, tuned = warm.get(signature)
        assert hit and tuned
        assert got == profile
        assert got.latency_s == profile.latency_s  # exact through JSON
        assert not writes  # snapshot hits never write back

        store.close()

    def test_wrong_backend_set_misses(self, tmp_path):
        store = CacheStore(tmp_path)
        profiler = KernelProfiler(V100)
        profiler.persistent_cache = PersistentProfileCache(store, V100, profiler.backends)
        signature, _ = profile_one(profiler)

        snapshot = export_snapshot(store)
        writes: list[tuple] = []
        warm = _SnapshotProfileCache(snapshot, V100, profiler.backends, writes)
        # A different backend set changes the content-addressed key: the
        # shipped entries simply miss instead of leaking a wrong context.
        narrowed = warm.for_backends(profiler.backends[:1])
        hit, got, _ = narrowed.get(signature)
        assert not hit and got is None

        narrowed.put(signature, None, tuned=True)
        assert len(writes) == 1  # misses still record for the parent
        store.close()

    def test_max_entries_keeps_newest(self, tmp_path):
        store = CacheStore(tmp_path)
        for i in range(5):
            store.put_json("kernel-profiles", f"key{i}", {"v": 1, "i": i})
        snapshot = export_snapshot(store, max_entries=2)
        assert set(snapshot) == {"key3", "key4"}
        store.close()

    def test_undecodable_payloads_are_skipped(self, tmp_path):
        store = CacheStore(tmp_path)
        store.put("kernel-profiles", "bad", "{not json")
        store.put_json("kernel-profiles", "good", {"v": 1})
        snapshot = export_snapshot(store)
        assert set(snapshot) == {"good"}
        store.close()


class TestInstallSnapshot:
    def test_replaces_wholesale(self):
        try:
            assert install_profile_snapshot({"a": {}, "b": {}}) == 2
            assert profile_snapshot_size() == 2
            assert install_profile_snapshot({"c": {}}) == 1
            assert profile_snapshot_size() == 1
        finally:
            install_profile_snapshot({})
        assert profile_snapshot_size() == 0

    def test_broadcast_reaches_spawned_worker(self):
        """End-to-end: warm_up ships the snapshot into a real spawn worker."""
        snapshot = {"k1": {"v": 1}, "k2": {"v": 1}, "k3": {"v": 1}}
        with ProcessExecutor(workers=1) as executor:
            executor.warm_up(install_profile_snapshot, (snapshot,))
            assert executor.submit(profile_snapshot_size).result(timeout=60) == 3
