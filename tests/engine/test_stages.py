"""Stage-level tests: each stage's artifact matches the monolithic flow."""

from __future__ import annotations


from repro.engine import (
    DEFAULT_STAGES,
    FissionStage,
    GraphOptStage,
    IdentifyStage,
    KorchConfig,
    ProfileStage,
    StageContext,
    run_stages,
)
from repro.engine.result import STAGE_ORDER
from repro.fission import FissionEngine
from repro.gpu import V100
from repro.orchestration import KernelOrchestrationOptimizer
from repro.partition import GraphPartitioner


def make_context(graph, config=None, plan=None):
    config = config or KorchConfig(gpu="V100")
    partitions = GraphPartitioner(config.partition).partition(graph)
    assert len(partitions) == 1
    optimizer = KernelOrchestrationOptimizer(
        V100,
        identifier_config=config.identifier,
        solver_method=config.solver_method,
        solver_time_limit_s=config.solver_time_limit_s,
        solver_mip_rel_gap=config.solver_mip_rel_gap,
    )
    return StageContext(
        partition=partitions[0],
        config=config,
        spec=V100,
        fission=FissionEngine(),
        optimizer=optimizer,
        graph_optimizer=None,
        plan=plan,
    )


class TestStageEquivalence:
    """Running the stages one by one reproduces the monolithic pipeline."""

    def test_fission_stage_matches_engine(self, attention_graph):
        ctx = FissionStage().run(make_context(attention_graph))
        pg, report = FissionEngine().run(attention_graph)
        assert [n.name for n in ctx.pg.nodes] == [n.name for n in pg.nodes]
        assert ctx.fission_report.num_operators == report.num_operators

    def test_identify_and_profile_match_identifier(self, attention_graph):
        ctx = make_context(attention_graph)
        for stage in (FissionStage(), GraphOptStage(), IdentifyStage(), ProfileStage()):
            ctx = stage.run(ctx)

        reference = KernelOrchestrationOptimizer(
            V100, identifier_config=ctx.config.identifier
        )
        candidates, report = reference.identifier.identify(ctx.pg)
        assert len(ctx.candidate_specs) > 0
        assert ctx.identifier_report.num_candidates == report.num_candidates
        assert [
            (sorted(c.node_names), c.outputs, c.latency_s) for c in ctx.candidates
        ] == [(sorted(c.node_names), c.outputs, c.latency_s) for c in candidates]

    def test_full_stage_run_matches_monolithic_optimize(self, attention_graph):
        ctx = run_stages(make_context(attention_graph))
        pg, _ = FissionEngine().run(attention_graph)
        reference = KernelOrchestrationOptimizer(
            V100,
            identifier_config=ctx.config.identifier,
            solver_method=ctx.config.solver_method,
            solver_time_limit_s=ctx.config.solver_time_limit_s,
            solver_mip_rel_gap=ctx.config.solver_mip_rel_gap,
        ).optimize(pg)
        assert ctx.result is not None
        strategy = ctx.result.orchestration.strategy
        assert strategy.total_latency_s == reference.strategy.total_latency_s
        assert [sorted(k.node_names) for k in strategy.kernels] == [
            sorted(k.node_names) for k in reference.strategy.kernels
        ]
        assert ctx.result.executable.num_kernels == strategy.num_kernels

    def test_graph_opt_stage_is_noop_when_disabled(self, attention_graph):
        ctx = FissionStage().run(make_context(attention_graph))
        before = [n.name for n in ctx.pg.nodes]
        ctx = GraphOptStage().run(ctx)
        assert ctx.optimizer_report is None
        assert [n.name for n in ctx.pg.nodes] == before


class TestStageTiming:
    def test_run_stages_records_every_stage(self, attention_graph):
        ctx = run_stages(make_context(attention_graph))
        assert set(ctx.timings) == set(STAGE_ORDER)
        assert all(seconds >= 0.0 for seconds in ctx.timings.values())
        # The result carries the same timing dict, including assemble time.
        assert ctx.result.timings is ctx.timings

    def test_default_stage_names_match_canonical_order(self):
        assert tuple(stage.name for stage in DEFAULT_STAGES) == STAGE_ORDER


class TestReplayShortcut:
    def test_valid_plan_skips_profile_and_solve(self, attention_graph):
        # Solve once to obtain a replayable plan.
        from repro.cache import KernelPlan, PartitionPlan

        cold = run_stages(make_context(attention_graph))
        strategy = cold.result.orchestration.strategy
        plan = PartitionPlan(
            kernels=[
                KernelPlan(
                    node_names=sorted(k.node_names),
                    external_inputs=list(k.external_inputs),
                    outputs=list(k.outputs),
                )
                for k in strategy.kernels
            ],
            objective_s=strategy.objective_s,
            solver_status=strategy.solver_status,
            solver_method=strategy.solver_method,
            num_candidates=cold.result.orchestration.num_candidates,
        )

        ctx = make_context(attention_graph, plan=plan)
        ctx = run_stages(ctx)
        assert ctx.result.replayed
        assert ctx.candidate_specs is None  # enumeration never ran
        assert ctx.candidates is None  # profiling of non-selected candidates never ran
        replayed = ctx.result.orchestration.strategy
        assert replayed.total_latency_s == strategy.total_latency_s
        assert [sorted(k.node_names) for k in replayed.kernels] == [
            sorted(k.node_names) for k in strategy.kernels
        ]

    def test_stale_plan_falls_back_to_cold_path(self, attention_graph):
        from repro.cache import KernelPlan, PartitionPlan

        plan = PartitionPlan(
            kernels=[KernelPlan(node_names=["no_such_node"], external_inputs=[], outputs=["t"])],
            objective_s=1.0,
            solver_status="optimal",
            solver_method="milp",
        )
        ctx = run_stages(make_context(attention_graph, plan=plan))
        assert not ctx.result.replayed
        assert ctx.candidates  # cold path actually ran
        assert ctx.result.orchestration.strategy.num_kernels > 0
