"""Store-registry lifecycle: the public close/clear/cap API."""

from __future__ import annotations

import pytest

from repro.engine import KorchConfig, KorchEngine, KorchEngineConfig
from repro.engine import registry


@pytest.fixture(autouse=True)
def isolated_registry():
    registry.clear()
    saved_cap = registry.max_open_stores()
    yield
    registry.clear()
    registry.set_max_open_stores(saved_cap)


class TestPublicLifecycle:
    def test_close_store_evicts_and_reports(self, tmp_path):
        store, _ = registry.shared_store(tmp_path, max_entries=100)
        assert str(tmp_path.resolve()) in registry.open_stores()
        assert registry.close_store(tmp_path) is True
        assert registry.open_stores() == {}
        assert registry.close_store(tmp_path) is False  # already closed
        assert not store.persistent  # degraded per the eviction contract

    def test_clear_closes_everything(self, tmp_path):
        registry.shared_store(tmp_path / "a", max_entries=10)
        registry.shared_store(tmp_path / "b", max_entries=10)
        assert registry.clear() == 2
        assert registry.open_stores() == {}

    def test_reopen_after_close_sees_disk_state(self, tmp_path):
        store, _ = registry.shared_store(tmp_path, max_entries=100)
        store.put("ns", "k", "v")
        registry.close_store(tmp_path)
        reopened, _ = registry.shared_store(tmp_path, max_entries=100)
        assert reopened is not store
        assert reopened.get("ns", "k") == "v"


class TestOpenStoreCap:
    def test_cap_evicts_least_recently_used(self, tmp_path):
        registry.set_max_open_stores(2)
        registry.shared_store(tmp_path / "a", max_entries=10)
        registry.shared_store(tmp_path / "b", max_entries=10)
        registry.shared_store(tmp_path / "a", max_entries=10)  # LRU touch
        registry.shared_store(tmp_path / "c", max_entries=10)  # evicts "b"
        open_dirs = {key.rsplit("/", 1)[-1] for key in registry.open_stores()}
        assert open_dirs == {"a", "c"}

    def test_lowering_cap_evicts_immediately(self, tmp_path):
        registry.set_max_open_stores(4)
        for name in ("a", "b", "c"):
            registry.shared_store(tmp_path / name, max_entries=10)
        registry.set_max_open_stores(1)
        assert len(registry.open_stores()) == 1

    def test_engine_config_sets_cap(self, tmp_path):
        config = KorchConfig(
            gpu="V100",
            cache_dir=tmp_path,
            engine=KorchEngineConfig(max_open_stores=7),
        )
        with KorchEngine(config):
            assert registry.max_open_stores() == 7
