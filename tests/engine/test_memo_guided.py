"""Memo-guided pruning: profile keys, dominance/solve memos, engine wiring."""

import threading

from repro.engine import KorchConfig, KorchEngine, KorchEngineConfig
from repro.engine.memo import (
    DominanceMemo,
    IdentifyMemo,
    SolveMemo,
    SolveMemoEntry,
    pg_profile_key,
    pg_structure_key,
)
from repro.fission import FissionEngine
from repro.ir import GraphBuilder
from repro.models import build_efficientvit_attention_block
from repro.orchestration import KernelIdentifierConfig


def small_graph(name="m", width=8):
    b = GraphBuilder(name)
    x = b.input("x", (4, width))
    left = b.relu(x)
    right = b.sigmoid(x)
    b.output(b.add(left, right))
    return b.build()


def strategy_fingerprint(result):
    return [
        (tuple(k.node_names), tuple(k.outputs), k.latency_s, k.backend)
        for part in result.partitions
        for k in part.orchestration.strategy.kernels
    ]


class TestProfileKey:
    def test_refines_structure_key_by_tensor_shapes(self):
        config = KernelIdentifierConfig()
        pg_a, _ = FissionEngine().run(small_graph(width=8))
        pg_b, _ = FissionEngine().run(small_graph(width=16))
        # Same structure (names, signatures, wiring) — different shapes.
        assert pg_structure_key(pg_a, config) == pg_structure_key(pg_b, config)
        assert pg_profile_key(pg_a, config) != pg_profile_key(pg_b, config)

    def test_deterministic(self):
        config = KernelIdentifierConfig()
        pg, _ = FissionEngine().run(small_graph())
        assert pg_profile_key(pg, config) == pg_profile_key(pg, config)


class TestDominanceMemo:
    def test_put_merges_and_get_counts(self):
        memo = DominanceMemo(max_entries=4)
        assert memo.get("k") is None
        memo.put("k", frozenset({("a",)}))
        memo.put("k", frozenset({("b",)}))
        assert memo.get("k") == frozenset({("a",), ("b",)})
        assert (memo.hits, memo.misses) == (1, 1)

    def test_lru_eviction(self):
        memo = DominanceMemo(max_entries=2)
        memo.put("a", frozenset({1}))
        memo.put("b", frozenset({2}))
        assert memo.get("a") is not None  # touch: "b" is now LRU
        memo.put("c", frozenset({3}))
        assert memo.get("b") is None
        assert memo.get("a") is not None
        assert len(memo) == 2

    def test_disabled_at_zero_entries(self):
        memo = DominanceMemo(max_entries=0)
        assert not memo.enabled
        memo.put("k", frozenset({1}))
        assert memo.get("k") is None
        assert len(memo) == 0


class TestSolveMemo:
    def _entry(self, names, selected=()):
        return SolveMemoEntry(
            node_names=frozenset(names), selected=tuple(selected), objective=1.0
        )

    def test_neighbor_within_delta(self):
        memo = SolveMemo(max_entries=8)
        memo.put("k1", self._entry({"a", "b", "c"}))
        found = memo.neighbor(frozenset({"a", "b", "d"}), max_delta=2)
        assert found is not None and found.node_names == frozenset({"a", "b", "c"})
        assert memo.neighbor(frozenset({"x", "y", "z"}), max_delta=2) is None
        assert (memo.hits, memo.misses) == (1, 1)

    def test_nearest_wins_and_ties_stay_deterministic(self):
        memo = SolveMemo(max_entries=8)
        memo.put("far", self._entry({"a", "b", "x", "y", "z"}))  # delta 4
        memo.put("near", self._entry({"a", "b"}))  # delta 1
        found = memo.neighbor(frozenset({"a", "b", "c"}), max_delta=4)
        assert found.node_names == frozenset({"a", "b"})
        # Equal deltas: the earliest-recorded entry wins.
        memo2 = SolveMemo(max_entries=8)
        memo2.put("first", self._entry({"a", "b"}))
        memo2.put("second", self._entry({"b", "c"}))
        found = memo2.neighbor(frozenset({"a", "c"}), max_delta=2)
        assert found.node_names == frozenset({"a", "b"})

    def test_exclude_key(self):
        memo = SolveMemo(max_entries=8)
        memo.put("self", self._entry({"a", "b"}))
        assert memo.neighbor(frozenset({"a", "b"}), 2, exclude_key="self") is None


class TestIdentifyMemoConcurrency:
    def test_concurrent_get_put_respects_lru_cap(self):
        """Thread-mode stages hammer the memo concurrently; the cap must
        hold and every get must resolve to a hit or a miss, never corrupt."""
        pgs = [FissionEngine().run(small_graph(f"g{i}", width=8 + 8 * i))[0] for i in range(6)]
        config = KernelIdentifierConfig()
        memo = IdentifyMemo(max_entries=3)
        errors: list[BaseException] = []
        barrier = threading.Barrier(8)

        def worker(seed: int) -> None:
            try:
                barrier.wait()
                for i in range(120):
                    pg = pgs[(seed + i) % len(pgs)]
                    cached = memo.get(pg, config)
                    if cached is None:
                        from repro.orchestration import KernelIdentifierReport
                        from repro.orchestration.identifier import enumerate_candidate_specs

                        report = KernelIdentifierReport()
                        specs = enumerate_candidate_specs(pg, config, report)
                        memo.put(pg, config, specs, report)
                    else:
                        specs, report = cached
                        assert specs and report.num_candidates_considered >= 0
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(memo) <= 3
        assert memo.hits + memo.misses == 8 * 120


class TestConfigKnobs:
    def test_near_miss_flag_is_fingerprinted_and_core_is_not(self):
        base = KorchConfig().fingerprint()
        seeded = KorchConfig(solver_near_miss_incumbents=True).fingerprint()
        assert base != seeded
        reference = KorchConfig(solver_core="reference").fingerprint()
        assert base == reference  # pure speed knob: same cache keys

    def test_solver_config_resolution(self):
        config = KorchConfig(solver_core="reference", solver_near_miss_incumbents=True)
        solver_config = config.solver_config()
        assert solver_config.core == "reference"
        assert solver_config.near_miss_incumbents is True


class TestEngineMemoWiring:
    def _run(self, graph, **kwargs):
        config = KorchConfig(num_workers=1, enable_plan_cache=False, **kwargs)
        with KorchEngine(config) as engine:
            first = engine.optimize(graph)
            second = engine.optimize(graph)
            return engine, first, second

    def test_dominance_memo_hits_keep_results_identical(self):
        # The attention block is the smallest graph whose profiling actually
        # discards specs (same-I/O dominance), so the memo records entries.
        graph = build_efficientvit_attention_block()
        engine, first, second = self._run(graph)
        assert strategy_fingerprint(first) == strategy_fingerprint(second)
        assert engine.dominance_memo.hits > 0
        baseline_engine, baseline, _ = self._run(
            graph,
            engine=KorchEngineConfig(
                identify_memo_entries=0, dominance_memo_entries=0, solve_memo_entries=0
            ),
        )
        assert baseline_engine.dominance_memo.get("anything") is None
        assert strategy_fingerprint(baseline) == strategy_fingerprint(first)

    def test_near_miss_seeding_keeps_results_identical(self):
        graph = small_graph("near_miss_model")
        _, seeded_first, seeded_second = self._run(
            graph, solver_method="branch-and-bound", solver_near_miss_incumbents=True
        )
        _, cold_first, cold_second = self._run(graph, solver_method="branch-and-bound")
        assert strategy_fingerprint(seeded_first) == strategy_fingerprint(cold_first)
        assert strategy_fingerprint(seeded_second) == strategy_fingerprint(cold_second)

    def test_near_miss_marker_recorded_when_seed_applies(self):
        graph = small_graph("near_miss_marker")
        config = KorchConfig(
            num_workers=1,
            enable_plan_cache=False,
            solver_method="branch-and-bound",
            solver_near_miss_incumbents=True,
        )
        with KorchEngine(config) as engine:
            engine.optimize(graph)
            assert len(engine.solve_memo) > 0
            second = engine.optimize(graph)
        seeded = sum(
            part.orchestration.identifier_report.extra.get("near_miss_seeded", 0)
            for part in second.partitions
            if part.orchestration.identifier_report is not None
        )
        assert seeded > 0
