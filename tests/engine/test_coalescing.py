"""Service-tier scale-out: in-flight request coalescing, the engine-wide
scheduler, and the warm-once contract.

The interplay matrix the coalescing layer must get right: a follower
cancelling never touches its leader, a leader failing fails every follower,
a leader cancelled while queued promotes a follower, deadlines reject
followers without disturbing leaders, and a re-submission after completion
misses the in-flight map and is answered by the plan cache instead.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.engine import (
    KorchConfig,
    KorchEngine,
    KorchEngineConfig,
    KorchService,
    ServiceDeadlineExceeded,
)
from repro.ir import GraphBuilder


def attention_model(name: str, heads: int = 4):
    b = GraphBuilder(name)
    x = b.input("x", (1, heads, 32, 16))
    w = b.param("w", (1, heads, 16, 32))
    v = b.param("v", (1, heads, 32, 16))
    b.output(b.matmul(b.softmax(b.matmul(x, w), axis=-1), v))
    return b.build()


def strategy_fingerprint(result):
    return [
        [
            (sorted(k.node_names), list(k.external_inputs), list(k.outputs),
             k.latency_s, k.backend)
            for k in part.orchestration.strategy.kernels
        ]
        for part in result.partitions
    ]


class _StubResult:
    def __init__(self, name: str):
        from repro.engine import CacheReport

        self.name = name
        self.stage_seconds: dict[str, float] = {}
        self.cache = CacheReport()


class _StubEngine:
    """Duck-typed engine: blocks until released, records what it served."""

    def __init__(self):
        self.block = threading.Event()
        self.served: list[str] = []
        self.fail_on: set[str] = set()

    def optimize(self, graph):
        self.block.wait(10)
        self.served.append(graph.name)
        if graph.name in self.fail_on:
            raise RuntimeError(f"synthetic failure for {graph.name}")
        return _StubResult(graph.name)

    def close(self):
        pass


def _wait_running(service, count=1, timeout=5.0):
    deadline = time.monotonic() + timeout
    while service.active < count:
        if time.monotonic() > deadline:
            raise AssertionError(f"never saw {count} running requests")
        time.sleep(0.005)


class TestCoalescing:
    def test_identical_inflight_requests_share_one_optimization(self):
        stub = _StubEngine()
        service = KorchService(engine=stub, workers=1)
        try:
            leader = service.submit(attention_model("twin"))
            _wait_running(service)  # leader is inside the (blocked) engine
            followers = [service.submit(attention_model("twin")) for _ in range(3)]
            other = service.submit(attention_model("other"))
            # Followers consume no queue capacity; only "other" is pending.
            assert service.pending == 1
            stub.block.set()
            result = leader.result(timeout=10)
            for follower in followers:
                assert follower.result(timeout=10) is result
            other.result(timeout=10)
            service.drain(timeout=10)
            # One optimization served four futures.
            assert stub.served == ["twin", "other"]
            for follower in followers:
                stats = follower.stats
                assert stats.coalesced and stats.status == "done"
                assert stats.plan_cache == "coalesced"
                assert stats.queue_wait_s >= 0.0 and stats.run_s >= 0.0
            assert not leader.stats.coalesced
            report = service.report
            assert report.submitted == 5
            assert report.completed == 5
            assert report.coalesced == 3
            metrics = service.metrics()
            assert metrics["korch_service_coalesced_total"]["values"][0]["value"] == 3.0
            fanout = metrics["korch_service_coalesce_fanout"]["values"][0]
            assert fanout["count"] == 1 and fanout["sum"] == 4.0
            assert report.histograms["coalesce_fanout"]["count"] == 1
        finally:
            stub.block.set()
            service.close()

    def test_follower_cancel_never_cancels_the_leader(self):
        stub = _StubEngine()
        service = KorchService(engine=stub, workers=1)
        try:
            leader = service.submit(attention_model("twin"))
            _wait_running(service)
            follower = service.submit(attention_model("twin"))
            survivor = service.submit(attention_model("twin"))
            assert follower.cancel()
            assert not leader.cancelled()
            stub.block.set()
            result = leader.result(timeout=10)
            assert survivor.result(timeout=10) is result
            assert follower.cancelled()
            service.drain(timeout=10)
            assert stub.served == ["twin"]
            report = service.report
            assert report.cancelled == 1
            assert report.coalesced == 1  # only the survivor was delivered
        finally:
            stub.block.set()
            service.close()

    def test_leader_failure_propagates_to_all_followers(self):
        stub = _StubEngine()
        stub.fail_on.add("doomed")
        service = KorchService(engine=stub, workers=1)
        try:
            leader = service.submit(attention_model("doomed"))
            _wait_running(service)
            followers = [service.submit(attention_model("doomed")) for _ in range(2)]
            stub.block.set()
            with pytest.raises(RuntimeError, match="synthetic failure"):
                leader.result(timeout=10)
            error = leader.exception()
            for follower in followers:
                assert follower.exception(timeout=10) is error
                assert follower.stats.status == "failed"
                assert follower.stats.coalesced
            service.drain(timeout=10)
            report = service.report
            assert report.failed == 3
            assert report.coalesced == 2
            assert stub.served == ["doomed"]
        finally:
            stub.block.set()
            service.close()

    def test_leader_cancelled_while_queued_promotes_a_follower(self):
        stub = _StubEngine()
        service = KorchService(engine=stub, workers=1)
        try:
            service.submit(attention_model("running"))
            _wait_running(service)  # occupies the only worker
            leader = service.submit(attention_model("twin"))  # queued
            follower = service.submit(attention_model("twin"))
            straggler = service.submit(attention_model("twin"))
            assert leader.cancel()
            assert not follower.cancelled() and not straggler.cancelled()
            stub.block.set()
            result = follower.result(timeout=10)
            assert straggler.result(timeout=10) is result
            service.drain(timeout=10)
            # The promoted follower ran the engine exactly once.
            assert stub.served == ["running", "twin"]
            assert leader.cancelled()
            assert not follower.stats.coalesced  # it became the leader
            assert straggler.stats.coalesced
        finally:
            stub.block.set()
            service.close()

    def test_deadline_rejects_follower_but_not_leader(self):
        stub = _StubEngine()
        service = KorchService(engine=stub, workers=1)
        try:
            stub.block.set()
            service.submit(attention_model("warm")).result(timeout=10)  # mean run > 0
            stub.block.clear()
            leader = service.submit(attention_model("twin"))
            _wait_running(service)
            with pytest.raises(ServiceDeadlineExceeded):
                service.submit(attention_model("twin"), deadline_s=0.0)
            assert not leader.cancelled() and not leader.done()
            patient = service.submit(attention_model("twin"), deadline_s=60.0)
            stub.block.set()
            assert patient.result(timeout=10) is leader.result(timeout=10)
            service.drain(timeout=10)
            assert service.report.rejected == 1
            assert stub.served == ["warm", "twin"]
        finally:
            stub.block.set()
            service.close()

    def test_resubmit_after_completion_hits_plan_cache_not_inflight_map(self):
        with KorchService(config=KorchConfig(gpu="V100"), workers=1) as service:
            first = service.submit(attention_model("repeat")).result(timeout=600)
            again = service.submit(attention_model("repeat"))
            result = again.result(timeout=600)
            # Not coalesced (nothing was in flight) — answered by the
            # engine's plan cache memory tier instead.
            assert not again.stats.coalesced
            assert again.stats.plan_cache == "memory-hit"
            assert strategy_fingerprint(result) == strategy_fingerprint(first)
            metrics = service.metrics()
            assert metrics["korch_service_coalesced_total"]["values"][0]["value"] == 0.0

    def test_flag_off_disables_cross_submission_coalescing(self):
        stub = _StubEngine()
        service = KorchService(engine=stub, workers=1, coalesce=False)
        try:
            service.submit(attention_model("twin"))
            _wait_running(service)
            service.submit(attention_model("twin"))
            assert service.pending == 1  # queued, not attached
            stub.block.set()
            service.drain(timeout=10)
            assert stub.served == ["twin", "twin"]
        finally:
            stub.block.set()
            service.close()


class TestSubmitManyPregrouping:
    def test_batch_duplicates_pregroup_even_with_flag_off(self):
        stub = _StubEngine()
        service = KorchService(engine=stub, workers=1, coalesce=False)
        try:
            requests = service.submit_many(
                [
                    attention_model("a"),
                    attention_model("a"),
                    attention_model("b"),
                    attention_model("a"),
                ]
            )
            stub.block.set()
            first = requests[0].result(timeout=10)
            assert requests[1].result(timeout=10) is first
            assert requests[3].result(timeout=10) is first
            requests[2].result(timeout=10)
            service.drain(timeout=10)
            assert stub.served == ["a", "b"]
            assert requests[1].stats.coalesced and requests[3].stats.coalesced
            assert service.report.coalesced == 2
            assert service.report.submitted == 4
        finally:
            stub.block.set()
            service.close()

    def test_batch_results_bit_identical_to_serial_submission(self):
        graphs = [attention_model("dup"), attention_model("dup"),
                  attention_model("solo", heads=2)]
        with KorchEngine(KorchConfig(gpu="V100")) as engine:
            serial = [strategy_fingerprint(engine.optimize(g)) for g in graphs]
        with KorchService(config=KorchConfig(gpu="V100"), workers=2) as service:
            requests = service.submit_many(graphs)
            served = [strategy_fingerprint(r.result(timeout=600)) for r in requests]
        assert served == serial


class _FakeProcessExecutor:
    """Stands in for the process pool so warm-once is testable in-process."""

    instances: list["_FakeProcessExecutor"] = []

    def __init__(self, workers, start_method):
        self.workers = max(1, int(workers) or 1)
        self.start_method = start_method
        self.warm_calls = 0
        _FakeProcessExecutor.instances.append(self)

    def warm_up(self, fn=None, args=()):
        self.warm_calls += 1

    def submit(self, fn, *args):  # pragma: no cover - engine never runs here
        raise AssertionError("warm-once test must not execute tasks")

    def shutdown(self, wait=True):
        pass


class TestWarmOnce:
    def test_concurrent_warm_up_warms_exactly_once(self, monkeypatch):
        monkeypatch.setattr(
            "repro.engine.engine.ProcessExecutor", _FakeProcessExecutor
        )
        _FakeProcessExecutor.instances.clear()
        config = KorchConfig(
            gpu="V100", engine=KorchEngineConfig(executor="process", process_workers=2)
        )
        with KorchEngine(config) as engine:
            barrier = threading.Barrier(4)
            outcomes: list[bool] = []

            def racer():
                barrier.wait()
                outcomes.append(engine.warm_up())

            threads = [threading.Thread(target=racer) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert sorted(outcomes) == [False, False, False, True]
            assert len(_FakeProcessExecutor.instances) == 1
            assert _FakeProcessExecutor.instances[0].warm_calls == 1
            # Later warm-ups are no-ops...
            assert engine.warm_up() is False
            assert _FakeProcessExecutor.instances[0].warm_calls == 1
            # ...unless a refresh is requested explicitly.
            assert engine.warm_up(refresh=True) is True
            assert _FakeProcessExecutor.instances[0].warm_calls == 2

    def test_thread_mode_warm_up_is_a_noop(self):
        with KorchEngine(KorchConfig(gpu="V100")) as engine:
            assert engine.warm_up() is False


class TestEngineWideScheduler:
    def test_one_scheduler_spans_calls_and_stays_clean(self):
        with KorchEngine(KorchConfig(gpu="V100", num_workers=2)) as engine:
            assert engine.scheduler is None  # created lazily
            engine.optimize(attention_model("first"))
            scheduler = engine.scheduler
            assert scheduler is not None
            engine.optimize(attention_model("second", heads=2))
            assert engine.scheduler is scheduler
            # Batches retire their keys: a long-lived scheduler stays bounded.
            assert not scheduler._futures and not scheduler._tasks
            assert not scheduler._results and not scheduler._failures

    def test_serial_mode_uses_no_shared_scheduler(self):
        config = KorchConfig(gpu="V100", engine=KorchEngineConfig(executor="serial"))
        with KorchEngine(config) as engine:
            engine.optimize(attention_model("serial"))
            assert engine.scheduler is None

    def test_concurrent_optimize_many_calls_share_one_scheduler(self):
        """Two service-style threads drive one engine at once: results are
        bit-identical to serial, and both calls ran on the same scheduler."""
        graphs_a = [attention_model("ca"), attention_model("cb", heads=2)]
        graphs_b = [attention_model("cc", heads=8), attention_model("cd", heads=3)]
        with KorchEngine(KorchConfig(gpu="V100")) as engine:
            serial = {
                g.name: strategy_fingerprint(engine.optimize(g))
                for g in graphs_a + graphs_b
            }
        with KorchEngine(KorchConfig(gpu="V100", num_workers=2)) as engine:
            results: dict[str, list] = {}
            errors: list[BaseException] = []

            def run(graphs):
                try:
                    for graph, result in zip(graphs, engine.optimize_many(graphs)):
                        results[graph.name] = strategy_fingerprint(result)
                except BaseException as exc:  # pragma: no cover - fail loud
                    errors.append(exc)

            threads = [
                threading.Thread(target=run, args=(graphs_a,)),
                threading.Thread(target=run, args=(graphs_b,)),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            scheduler = engine.scheduler
            assert scheduler is not None and not scheduler._futures
        assert results == serial
