"""Scheduler/executor core: dependency ordering, admission, lifecycle.

The edge cases that matter for a serving engine: cancellation mid-queue,
``close()`` with in-flight tasks, a crashed process-pool worker surfacing as
a failed future (never a hang), and failure propagation through dependents.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.engine.scheduler import (
    Dep,
    DependencyFailed,
    ProcessExecutor,
    Scheduler,
    SchedulerError,
    SerialExecutor,
    Task,
    TaskCancelled,
    ThreadExecutor,
)


class TestDependencyOrdering:
    def test_chain_runs_in_order_and_passes_results(self):
        order: list[str] = []

        def step(name, prev=None):
            order.append(name)
            return (prev or 0) + 1

        scheduler = Scheduler(SerialExecutor())
        results = scheduler.run([
            Task(key="c", fn=step, args=("c", Dep("b")), deps=("b",)),
            Task(key="a", fn=step, args=("a",)),
            Task(key="b", fn=step, args=("b", Dep("a")), deps=("a",)),
        ])
        assert order == ["a", "b", "c"]
        assert results == {"a": 1, "b": 2, "c": 3}

    def test_priority_orders_ready_tasks(self):
        order: list[str] = []
        scheduler = Scheduler(SerialExecutor())
        scheduler.run([
            Task(key="low", fn=order.append, args=("low",), priority=2),
            Task(key="high", fn=order.append, args=("high",), priority=0),
            Task(key="mid", fn=order.append, args=("mid",), priority=1),
        ])
        assert order == ["high", "mid", "low"]

    def test_round_robin_across_models_within_priority(self):
        order: list[str] = []
        scheduler = Scheduler(SerialExecutor())
        scheduler.run([
            Task(key="a1", fn=order.append, args=("a1",), model_id=1),
            Task(key="a2", fn=order.append, args=("a2",), model_id=1),
            Task(key="b1", fn=order.append, args=("b1",), model_id=2),
            Task(key="b2", fn=order.append, args=("b2",), model_id=2),
        ])
        assert order == ["a1", "b1", "a2", "b2"]

    def test_unknown_dependency_rejected(self):
        with pytest.raises(SchedulerError, match="unknown"):
            Scheduler(SerialExecutor()).submit([Task(key="a", fn=int, deps=("ghost",))])

    def test_cycle_rejected(self):
        with pytest.raises(SchedulerError, match="cycle"):
            Scheduler(SerialExecutor()).submit([
                Task(key="a", fn=int, deps=("b",)),
                Task(key="b", fn=int, deps=("a",)),
            ])

    def test_duplicate_keys_rejected(self):
        with pytest.raises(SchedulerError, match="duplicate"):
            Scheduler(SerialExecutor()).submit([Task(key="a", fn=int), Task(key="a", fn=int)])

    def test_self_dependency_rejected(self):
        with pytest.raises(ValueError, match="itself"):
            Task(key="a", fn=int, deps=("a",))

    def test_resubmitting_existing_key_rejected(self):
        """Regression: a later batch reusing a key used to clobber the old
        task's future and feed dependents the stale result."""
        scheduler = Scheduler(SerialExecutor())
        scheduler.run([Task(key="a", fn=lambda: "first")])
        with pytest.raises(SchedulerError, match="already submitted"):
            scheduler.submit([Task(key="a", fn=lambda: "second")])

    def test_dependency_across_submit_batches(self):
        scheduler = Scheduler(SerialExecutor())
        scheduler.run([Task(key="a", fn=lambda: 41)])
        results = scheduler.run([
            Task(key="b", fn=lambda prev: prev + 1, args=(Dep("a"),), deps=("a",))
        ])
        assert results["b"] == 42


class TestFailurePropagation:
    def test_failed_task_fails_dependents_not_siblings(self):
        def boom():
            raise ValueError("boom")

        scheduler = Scheduler(SerialExecutor())
        futures = scheduler.submit([
            Task(key="bad", fn=boom),
            Task(key="child", fn=int, deps=("bad",)),
            Task(key="grandchild", fn=int, deps=("child",)),
            Task(key="independent", fn=lambda: "ok"),
        ])
        assert isinstance(futures["bad"].exception(timeout=5), ValueError)
        assert isinstance(futures["child"].exception(timeout=5), DependencyFailed)
        assert isinstance(futures["grandchild"].exception(timeout=5), DependencyFailed)
        assert futures["independent"].result(timeout=5) == "ok"

    def test_later_batch_depending_on_failed_task_fails_too(self):
        """Regression: a cross-batch dependency on a failed task used to
        resolve its Dep to None and run anyway."""
        def boom():
            raise ValueError("boom")

        scheduler = Scheduler(SerialExecutor())
        first = scheduler.submit([Task(key="bad", fn=boom)])
        assert isinstance(first["bad"].exception(timeout=5), ValueError)
        second = scheduler.submit([
            Task(key="late", fn=lambda prev: ("ran", prev), args=(Dep("bad"),), deps=("bad",))
        ])
        assert isinstance(second["late"].exception(timeout=5), DependencyFailed)

    def test_later_batch_depending_on_cancelled_task_fails_too(self):
        executor = ThreadExecutor(1)
        try:
            release = threading.Event()
            scheduler = Scheduler(executor, admission_cap=1)
            futures = scheduler.submit([
                Task(key="blocker", fn=release.wait, args=(10,)),
                Task(key="victim", fn=int),
            ])
            assert scheduler.cancel("victim")
            release.set()
            late = scheduler.submit([Task(key="late", fn=int, deps=("victim",))])
            assert isinstance(late["late"].exception(timeout=5), TaskCancelled)
            assert futures["blocker"].result(timeout=5)
        finally:
            executor.shutdown()

    def test_run_raises_first_failure(self):
        def boom():
            raise RuntimeError("kaput")

        with pytest.raises(RuntimeError, match="kaput"):
            Scheduler(SerialExecutor()).run([Task(key="bad", fn=boom)])


class TestAdmissionCap:
    def test_in_flight_never_exceeds_cap(self):
        executor = ThreadExecutor(8)
        try:
            running = 0
            peak = 0
            lock = threading.Lock()

            def tracked():
                nonlocal running, peak
                with lock:
                    running += 1
                    peak = max(peak, running)
                time.sleep(0.02)
                with lock:
                    running -= 1

            scheduler = Scheduler(executor, admission_cap=2)
            scheduler.run([Task(key=f"t{i}", fn=tracked) for i in range(8)])
            assert peak <= 2
        finally:
            executor.shutdown()


class TestCancellation:
    def test_cancel_mid_queue_skips_task_and_dependents(self):
        executor = ThreadExecutor(1)
        try:
            release = threading.Event()
            ran: list[str] = []

            scheduler = Scheduler(executor, admission_cap=1)
            futures = scheduler.submit([
                Task(key="blocker", fn=release.wait, args=(10,)),
                Task(key="victim", fn=ran.append, args=("victim",)),
                Task(key="dependent", fn=ran.append, args=("dependent",), deps=("victim",)),
                Task(key="survivor", fn=ran.append, args=("survivor",)),
            ])
            assert scheduler.cancel("victim")
            release.set()
            assert scheduler.drain(timeout=10)
            assert futures["victim"].cancelled()
            assert isinstance(futures["dependent"].exception(timeout=5), TaskCancelled)
            assert futures["survivor"].result(timeout=5) is None
            assert ran == ["survivor"]
        finally:
            executor.shutdown()

    def test_cancel_does_not_stall_later_dispatch(self):
        """Regression: cancelling a queued task must not corrupt the ready
        queue — the next completion used to hit an empty deque and stall
        every remaining task forever."""
        executor = ThreadExecutor(1)
        try:
            release = threading.Event()
            scheduler = Scheduler(executor, admission_cap=1)
            futures = scheduler.submit([
                Task(key="a", fn=release.wait, args=(10,)),
                Task(key="b", fn=lambda: "b"),
                Task(key="c", fn=lambda: "c"),
            ])
            assert scheduler.cancel("b")
            release.set()
            assert futures["c"].result(timeout=10) == "c"
            assert scheduler.drain(timeout=10)
        finally:
            executor.shutdown()

    def test_cancel_running_task_fails(self):
        executor = ThreadExecutor(1)
        try:
            started = threading.Event()
            release = threading.Event()

            def blocker():
                started.set()
                release.wait(10)
                return "done"

            scheduler = Scheduler(executor)
            futures = scheduler.submit([Task(key="run", fn=blocker)])
            assert started.wait(5)
            assert not scheduler.cancel("run")
            release.set()
            assert futures["run"].result(timeout=5) == "done"
        finally:
            executor.shutdown()


class TestClose:
    def test_close_waits_for_in_flight_tasks(self):
        executor = ThreadExecutor(1)
        try:
            done: list[str] = []

            def slow():
                time.sleep(0.05)
                done.append("slow")

            scheduler = Scheduler(executor)
            futures = scheduler.submit([Task(key="slow", fn=slow)])
            scheduler.close(wait=True)
            assert done == ["slow"]
            assert futures["slow"].done()
        finally:
            executor.shutdown()

    def test_close_cancels_pending_tasks(self):
        executor = ThreadExecutor(1)
        try:
            release = threading.Event()
            scheduler = Scheduler(executor, admission_cap=1)
            futures = scheduler.submit([
                Task(key="blocker", fn=release.wait, args=(10,)),
                Task(key="queued", fn=int),
            ])
            release.set()
            scheduler.close(wait=True, cancel_pending=True)
            assert futures["blocker"].done()
            assert futures["queued"].cancelled() or futures["queued"].done()
            with pytest.raises(SchedulerError):
                scheduler.submit([Task(key="late", fn=int)])
        finally:
            executor.shutdown()


class TestProcessExecutor:
    def test_worker_crash_surfaces_as_failed_future_not_hang(self):
        executor = ProcessExecutor(workers=1, start_method="spawn")
        try:
            scheduler = Scheduler({"default": SerialExecutor(), "cpu": executor})
            futures = scheduler.submit([
                # os._exit kills the worker without unwinding: the classic
                # native-crash stand-in.  The pool reports BrokenProcessPool.
                Task(key="crash", fn=os._exit, args=(13,), kind="cpu"),
                Task(key="dependent", fn=int, deps=("crash",)),
            ])
            error = futures["crash"].exception(timeout=60)
            assert error is not None
            assert isinstance(futures["dependent"].exception(timeout=5), DependencyFailed)
        finally:
            executor.shutdown()

    def test_process_task_returns_result(self):
        executor = ProcessExecutor(workers=1, start_method="spawn")
        try:
            scheduler = Scheduler({"default": SerialExecutor(), "cpu": executor})
            futures = scheduler.submit([
                Task(key="cube", fn=pow, args=(3, 3), kind="cpu"),
            ])
            assert futures["cube"].result(timeout=60) == 27
        finally:
            executor.shutdown()


def _bump(value: int = 0) -> int:
    return value + 1


def _boom() -> None:
    raise RuntimeError("boom")


def _chain(depth: int, root_fn) -> list[Task]:
    tasks = [Task(key="t0", fn=root_fn)]
    for index in range(1, depth):
        prev = f"t{index - 1}"
        tasks.append(Task(key=f"t{index}", fn=_bump, args=(Dep(prev),), deps=(prev,)))
    return tasks


class TestDeepChains:
    def test_5000_deep_chain_completes_without_recursion_error(self):
        """Regression: cycle validation recursed one frame per dependency
        edge, so deep-but-acyclic chains overflowed the interpreter stack
        before a single task ran."""
        depth = 5000
        scheduler = Scheduler(SerialExecutor())
        results = scheduler.run(_chain(depth, _bump))
        assert results[f"t{depth - 1}"] == depth

    def test_deep_chain_cycle_is_still_detected(self):
        depth = 5000
        tasks = _chain(depth, _bump)
        # Close the loop: the root now depends on the deepest task.
        tasks[0] = Task(key="t0", fn=_bump, deps=(f"t{depth - 1}",))
        scheduler = Scheduler(SerialExecutor())
        with pytest.raises(SchedulerError):
            scheduler.run(tasks)

    def test_deep_failure_chain_propagates_without_recursion(self):
        """Regression: failure propagation walked dependents recursively and
        nested each full error message inside the next, going quadratic on
        deep chains."""
        depth = 2000
        scheduler = Scheduler(SerialExecutor())
        futures = scheduler.submit(_chain(depth, _boom))
        assert isinstance(futures["t0"].exception(timeout=60), RuntimeError)
        last = futures[f"t{depth - 1}"].exception(timeout=60)
        assert isinstance(last, DependencyFailed)
        # The cause repr is truncated, so messages stay bounded at any depth.
        assert len(str(last)) < 1000


class TestLongLivedScheduler:
    """The engine-wide scheduler's batch lifecycle: keys are retired with
    ``forget`` after each batch and the admission cap only ever grows."""

    def test_forget_retires_settled_keys_and_frees_them_for_reuse(self):
        scheduler = Scheduler(SerialExecutor())
        scheduler.run([Task(key="a", fn=lambda: 1)])
        scheduler.forget(["a"])
        assert not scheduler._futures and not scheduler._tasks
        assert not scheduler._results
        # The key is reusable: long-lived schedulers never clobber.
        assert scheduler.run([Task(key="a", fn=lambda: 2)]) == {"a": 2}

    def test_forget_retires_failed_and_cancelled_keys(self):
        def boom():
            raise RuntimeError("no")

        scheduler = Scheduler(SerialExecutor())
        futures = scheduler.submit([Task(key="bad", fn=boom)])
        assert isinstance(futures["bad"].exception(timeout=10), RuntimeError)
        scheduler.forget(["bad"])
        assert not scheduler._failures
        # A fresh batch under the same key is a clean slate, not a
        # propagated failure.
        assert scheduler.run([Task(key="bad", fn=lambda: "ok")]) == {"bad": "ok"}

    def test_forget_refuses_unsettled_keys(self):
        release = threading.Event()
        executor = ThreadExecutor(1)
        scheduler = Scheduler(executor)
        try:
            scheduler.submit([Task(key="slow", fn=release.wait, args=(10,))])
            with pytest.raises(SchedulerError, match="unsettled"):
                scheduler.forget(["slow"])
        finally:
            release.set()
            scheduler.close(wait=True)
            executor.shutdown(wait=True)

    def test_forget_unknown_keys_is_idempotent(self):
        scheduler = Scheduler(SerialExecutor())
        scheduler.forget(["never-submitted"])  # no error

    def test_admission_cap_only_grows(self):
        scheduler = Scheduler(SerialExecutor(), admission_cap=4)
        scheduler.set_admission_cap(2)  # shrink ignored: admitted work is safe
        assert scheduler.admission_cap == 4
        scheduler.set_admission_cap(8)
        assert scheduler.admission_cap == 8
        scheduler.set_admission_cap(None)  # lift entirely
        assert scheduler.admission_cap is None
        scheduler.set_admission_cap(2)  # unbounded stays unbounded
        assert scheduler.admission_cap is None
