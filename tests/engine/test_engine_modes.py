"""Engine executor modes and identify-stage memoization.

The contracts: every executor mode ("serial", "thread", "process") returns
bit-identical strategies for the same graph, and repeated partition
structures skip enumeration via the identify memo (counted in
``EngineStats.identify_memo_hits``) without changing any result.
"""

from __future__ import annotations

import pytest

from repro.engine import KorchConfig, KorchEngine, KorchEngineConfig
from repro.engine.memo import IdentifyMemo, pg_structure_key
from repro.fission import FissionEngine
from repro.ir import GraphBuilder
from repro.orchestration import KernelIdentifierConfig, KernelIdentifierReport
from repro.orchestration.identifier import enumerate_candidate_specs


def attention_model(name: str, heads: int = 4):
    b = GraphBuilder(name)
    x = b.input("x", (1, heads, 32, 16))
    w = b.param("w", (1, heads, 16, 32))
    v = b.param("v", (1, heads, 32, 16))
    b.output(b.matmul(b.softmax(b.matmul(x, w), axis=-1), v))
    return b.build()


def strategy_fingerprint(result):
    return [
        [
            (sorted(k.node_names), list(k.external_inputs), list(k.outputs),
             k.latency_s, k.backend)
            for k in part.orchestration.strategy.kernels
        ]
        for part in result.partitions
    ]


class TestExecutorModes:
    def reference(self):
        with KorchEngine(KorchConfig(gpu="V100")) as engine:
            return engine.optimize(attention_model("modes"))

    def test_serial_mode_matches_thread_mode(self):
        reference = self.reference()
        config = KorchConfig(gpu="V100", engine=KorchEngineConfig(executor="serial"))
        with KorchEngine(config) as engine:
            result = engine.optimize(attention_model("modes"))
        assert strategy_fingerprint(result) == strategy_fingerprint(reference)
        assert result.latency_s == reference.latency_s

    def test_process_mode_bit_identical_to_thread_mode(self):
        """The acid test of the process executor: shipping the prologue to a
        worker process changes wall-clock, never results."""
        reference = self.reference()
        config = KorchConfig(
            gpu="V100",
            num_workers=2,
            engine=KorchEngineConfig(executor="process", process_workers=1),
        )
        with KorchEngine(config) as engine:
            engine.warm_up()
            result = engine.optimize(attention_model("modes"))
            summary = result.summary()
        assert strategy_fingerprint(result) == strategy_fingerprint(reference)
        assert result.latency_s == reference.latency_s
        # The worker's prologue timings made it back into the summary.
        assert summary["stage_fission_s"] >= 0.0
        assert summary["stage_identify_s"] > 0.0

    def test_process_mode_replays_plans_from_memory_tier(self):
        config = KorchConfig(
            gpu="V100",
            engine=KorchEngineConfig(executor="process", process_workers=1),
        )
        with KorchEngine(config) as engine:
            first = engine.optimize(attention_model("replayed"))
            second = engine.optimize(attention_model("replayed"))
        assert second.cache.plan_cache == "memory-hit"
        assert second.latency_s == first.latency_s

    def test_process_mode_replays_stored_plans_from_disk(self, tmp_path):
        """With a stored plan, the worker skips enumeration and the parent
        replays — the warm path must stay warm in process mode."""
        from repro.engine import registry

        def config():
            return KorchConfig(
                gpu="V100",
                cache_dir=tmp_path,
                engine=KorchEngineConfig(executor="process", process_workers=1),
            )

        with KorchEngine(config()) as engine:
            cold = engine.optimize(attention_model("disk_replay"))
        registry.close_store(tmp_path)  # simulate a fresh serving process
        with KorchEngine(config()) as engine:
            warm = engine.optimize(attention_model("disk_replay"))
        assert warm.cache.plan_cache == "disk-hit"
        assert warm.cache.partitions_replayed == len(warm.partitions)
        assert warm.latency_s == cold.latency_s
        assert strategy_fingerprint(warm) == strategy_fingerprint(cold)

    def test_process_mode_preserves_tuning_accounting_across_models(self):
        """Regression: replaying worker cache writes used to demote
        tuned=True entries, re-charging tuning time on the next model."""
        def run(executor):
            config = KorchConfig(
                gpu="V100",
                engine=KorchEngineConfig(executor=executor, process_workers=1),
            )
            with KorchEngine(config) as engine:
                engine.optimize(attention_model("tuning_a"))
                second = engine.optimize(attention_model("tuning_b"))
            return second

        thread_second = run("thread")
        process_second = run("process")
        assert process_second.tuning.total_seconds == thread_second.tuning.total_seconds
        assert process_second.tuning.num_candidates == thread_second.tuning.num_candidates
        assert strategy_fingerprint(process_second) == strategy_fingerprint(thread_second)

    def test_process_mode_honors_overridden_stages(self):
        """Regression: a subclass's extra pre-identify stage must still run
        in process mode (the engine falls back to parent-side prologues
        instead of silently skipping the custom stage)."""
        from repro.engine import DEFAULT_STAGES, Stage

        calls: list[str] = []

        class MarkerStage(Stage):
            name = "marker"

            def run(self, ctx):
                calls.append(ctx.partition.graph.name)
                return ctx

        class CustomEngine(KorchEngine):
            def stages(self):
                return (MarkerStage(), *DEFAULT_STAGES)

        config = KorchConfig(
            gpu="V100",
            engine=KorchEngineConfig(executor="process", process_workers=1),
        )
        reference = self.reference()
        with CustomEngine(config) as engine:
            result = engine.optimize(attention_model("modes"))
        assert calls, "custom stage was skipped in process mode"
        assert strategy_fingerprint(result) == strategy_fingerprint(reference)

    def test_invalid_executor_kind_rejected(self):
        config = KorchConfig(gpu="V100", engine=KorchEngineConfig(executor="quantum"))
        with pytest.raises(ValueError, match="executor"):
            KorchEngine(config)


class TestIdentifyMemo:
    def test_twin_models_hit_the_memo(self):
        with KorchEngine(KorchConfig(gpu="V100")) as engine:
            first = engine.optimize(attention_model("twin_a"))
            second = engine.optimize(attention_model("twin_b"))
            assert engine.stats.identify_memo_hits > 0
            assert engine.stats.as_dict()["identify_memo_hits"] > 0
        assert strategy_fingerprint(second) == strategy_fingerprint(first)

    def test_memo_disabled_by_config(self):
        config = KorchConfig(gpu="V100", engine=KorchEngineConfig(identify_memo_entries=0))
        with KorchEngine(config) as engine:
            engine.optimize(attention_model("twin_a"))
            engine.optimize(attention_model("twin_b"))
            assert engine.stats.identify_memo_hits == 0

    def test_memoized_specs_equal_fresh_enumeration(self):
        pg, _ = FissionEngine().run(attention_model("memo_eq"))
        config = KernelIdentifierConfig()
        fresh_report = KernelIdentifierReport()
        fresh = enumerate_candidate_specs(pg, config, fresh_report)

        memo = IdentifyMemo(8)
        memo.put(pg, config, fresh, fresh_report)
        cached = memo.get(pg, config)
        assert cached is not None
        specs, report = cached
        assert specs == fresh
        assert report == fresh_report
        assert report is not fresh_report  # downstream mutation must not leak

    def test_structure_key_sensitivity(self):
        config = KernelIdentifierConfig()
        pg_a, _ = FissionEngine().run(attention_model("same"))
        pg_b, _ = FissionEngine().run(attention_model("same", heads=4))

        b = GraphBuilder("same")  # same name, different structure
        x = b.input("x", (1, 4, 32, 16))
        w = b.param("w", (1, 4, 16, 32))
        b.output(b.relu(b.matmul(x, w)))
        pg_c, _ = FissionEngine().run(b.build())

        assert pg_structure_key(pg_a, config) == pg_structure_key(pg_b, config)
        assert pg_structure_key(pg_a, config) != pg_structure_key(pg_c, config)
        other_config = KernelIdentifierConfig(max_kernel_size=3)
        assert pg_structure_key(pg_a, config) != pg_structure_key(pg_a, other_config)

    def test_memo_lru_eviction(self):
        memo = IdentifyMemo(1)
        config = KernelIdentifierConfig()
        pg_a, _ = FissionEngine().run(attention_model("a"))
        b = GraphBuilder("b")
        x = b.input("x", (1, 4, 32, 16))
        w = b.param("w", (1, 4, 16, 32))
        b.output(b.relu(b.matmul(x, w)))
        pg_b, _ = FissionEngine().run(b.build())
        report = KernelIdentifierReport()
        memo.put(pg_a, config, [], report)
        memo.put(pg_b, config, [], report)
        assert len(memo) == 1
        assert memo.get(pg_a, config) is None
        assert memo.get(pg_b, config) is not None
