"""Engine-level tests: multi-model serving semantics of ``KorchEngine``.

The contract:

* ``engine.optimize`` is bit-identical to the old ``KorchPipeline`` /
  ``optimize_model`` path;
* ``optimize_many`` returns the same results for any ``max_concurrency``;
* structurally shared kernels are profiled once across models — the second
  model's shared kernels touch no backend (``cross_model_profile_reuses``);
* the compatibility wrapper preserves the original cache accounting.
"""

from __future__ import annotations

import pytest

from repro.engine import EngineStats, KorchConfig, KorchEngine
from repro.ir import GraphBuilder
from repro.pipeline import KorchPipeline, optimize_model


def attention_model(name: str, heads: int = 4):
    b = GraphBuilder(name)
    x = b.input("x", (1, heads, 32, 16))
    w = b.param("w", (1, heads, 16, 32))
    v = b.param("v", (1, heads, 32, 16))
    b.output(b.matmul(b.softmax(b.matmul(x, w), axis=-1), v))
    return b.build()


def chain_model(name: str, depth: int = 24):
    """Multi-partition elementwise chain (same shapes as attention inputs)."""
    b = GraphBuilder(name)
    x = b.input("x", (2, 8, 8))
    y = x
    for i in range(depth):
        y = b.relu(b.add(y, x) if i % 3 == 0 else y)
    b.output(b.reduce_sum(y, axes=(-1,), keepdims=True))
    return b.build()


def strategy_fingerprint(result):
    return [
        [
            (sorted(k.node_names), list(k.external_inputs), list(k.outputs),
             k.latency_s, k.backend)
            for k in part.orchestration.strategy.kernels
        ]
        for part in result.partitions
    ]


class TestEngineEquivalence:
    def test_engine_matches_optimize_model(self):
        graph = attention_model("equiv")
        serial = optimize_model(attention_model("equiv"), gpu="V100")
        with KorchEngine(KorchConfig(gpu="V100")) as engine:
            result = engine.optimize(graph)
        assert result.latency_s == serial.latency_s
        assert strategy_fingerprint(result) == strategy_fingerprint(serial)

    def test_optimize_many_matches_serial_engine_runs(self):
        graphs = [attention_model("a"), chain_model("b")]
        with KorchEngine(KorchConfig(gpu="V100")) as engine:
            many = engine.optimize_many([attention_model("a"), chain_model("b")])
        singles = [
            KorchEngine(KorchConfig(gpu="V100")).optimize(graph) for graph in graphs
        ]
        for got, expected in zip(many, singles):
            assert got.latency_s == expected.latency_s
            assert strategy_fingerprint(got) == strategy_fingerprint(expected)

    @pytest.mark.parametrize("concurrency", [1, 4])
    def test_optimize_many_stable_under_concurrency(self, concurrency):
        graphs = [chain_model("c1"), chain_model("c2", depth=18)]
        reference = KorchEngine(KorchConfig(gpu="V100")).optimize_many(
            [chain_model("c1"), chain_model("c2", depth=18)], max_concurrency=1
        )
        with KorchEngine(KorchConfig(gpu="V100")) as engine:
            results = engine.optimize_many(graphs, max_concurrency=concurrency)
        assert [r.latency_s for r in results] == [r.latency_s for r in reference]
        assert [strategy_fingerprint(r) for r in results] == [
            strategy_fingerprint(r) for r in reference
        ]
        # Results come back in input order regardless of completion order.
        assert [r.graph.name for r in results] == ["c1", "c2"]


class TestCrossModelReuse:
    def test_second_identical_model_touches_no_backend(self):
        with KorchEngine(KorchConfig(gpu="V100")) as engine:
            first = engine.optimize(attention_model("m1"))
            second = engine.optimize(attention_model("m2"))
        assert first.cache.backend_estimate_calls > 0
        assert second.cache.backend_estimate_calls == 0
        assert second.latency_s == first.latency_s
        assert engine.stats.cross_model_profile_reuses > 0

    def test_reuse_counted_in_optimize_many(self):
        with KorchEngine(KorchConfig(gpu="V100")) as engine:
            engine.optimize_many(
                [attention_model("m1"), attention_model("m2")], max_concurrency=1
            )
            assert engine.stats.cross_model_profile_reuses > 0

    def test_no_reuse_within_single_model(self):
        """Hits inside one model run are not *cross-model* reuses."""
        with KorchEngine(KorchConfig(gpu="V100")) as engine:
            engine.optimize(chain_model("solo"))
            assert engine.stats.cross_model_profile_reuses == 0

    def test_stats_accounting(self):
        with KorchEngine(KorchConfig(gpu="V100")) as engine:
            result = engine.optimize(chain_model("s1"))
            engine.optimize(chain_model("s1"))  # memory-tier hit
            stats = engine.stats
        assert isinstance(stats, EngineStats)
        assert stats.models_optimized == 2
        assert stats.plan_memory_hits == 1
        assert stats.partitions_optimized == len(result.partitions)
        summary = stats.as_dict()
        assert summary["models_optimized"] == 2
        assert summary["profiler_backend_estimate_calls"] > 0


class TestEngineLifecycle:
    def test_close_is_idempotent_and_blocks_reuse(self):
        engine = KorchEngine(KorchConfig(gpu="V100"))
        engine.optimize(attention_model("once"))
        engine.close()
        engine.close()
        with pytest.raises(RuntimeError):
            engine.optimize(attention_model("again"))

    def test_engine_with_persistent_cache_shares_registry_store(self, tmp_path):
        config = KorchConfig(gpu="V100", cache_dir=tmp_path)
        first = KorchEngine(config)
        second = KorchEngine(KorchConfig(gpu="V100", cache_dir=tmp_path))
        assert first.store is second.store
        first.close()  # shared store must survive one engine closing
        assert second.store.persistent


class TestPipelineWrapper:
    def test_wrapper_preserves_cache_off_accounting(self):
        result = KorchPipeline(KorchConfig(gpu="V100")).optimize(attention_model("w"))
        assert result.summary()["plan_cache"] == "off"
        assert result.cache.store is None

    def test_wrapper_exposes_engine_attributes(self):
        pipe = KorchPipeline(KorchConfig(gpu="V100"))
        assert pipe.spec.name == "V100"
        assert pipe.backends
        assert pipe.store is None and pipe.plan_cache is None
        assert pipe.engine is not None

    def test_summary_contains_stage_timings(self):
        result = optimize_model(attention_model("timed"), gpu="V100")
        summary = result.summary()
        for stage in ("fission", "graph_opt", "identify", "profile", "solve", "assemble"):
            assert f"stage_{stage}_s" in summary
        assert summary["stage_solve_s"] > 0.0
