"""Regression tests for the MatMul-centric substitutions (Figure 2b).

The seed bug: ``MergeSharedInputMatMuls.apply`` called ``replace_with`` for
the first MatMul before the second MatMul's consumers were rewired, and the
embedded dead-node sweep deleted the second Slice — leaving consumers
pointing at a producer-less tensor (``..._part_N_out_M``) that
``PrimitiveGraph.validate`` rejects.  These tests validate the rewritten
graph directly and check numerical equivalence against the operator-level
reference executor.
"""

from __future__ import annotations

import numpy as np

from repro.fission import FissionEngine
from repro.gpu import V100
from repro.ir import GraphBuilder
from repro.runtime.verification import verify_primitive_graph
from repro.transforms.matmul import MergeSharedInputMatMuls, SwapDivPastMatMul
from repro.transforms.optimizer import PrimitiveGraphOptimizer


def shared_left_matmul_graph():
    """Two MatMuls sharing their left operand, combined downstream.

    This is the EfficientViT attention shape that exposed the bug: both
    MatMul results stay *internal* tensors (consumed by Div/Add), so neither
    replacement goes through the graph-output renaming path, and the second
    Slice is momentarily dead during the rewrite.
    """
    b = GraphBuilder("shared_left")
    x = b.input("x", (1, 2, 8, 4))
    w1 = b.param("w1", (1, 2, 4, 6))
    w2 = b.param("w2", (1, 2, 4, 6))
    a = b.relu(x)
    m1 = b.matmul(a, w1)
    m2 = b.matmul(a, w2)
    eps = b.constant("eps", np.full((1,), 0.5, dtype=np.float32))
    denom = b.add(m2, eps)
    out = b.div(m1, denom)
    b.output(out)
    return b.build()


def feeds_for(graph, seed=0):
    rng = np.random.default_rng(seed)
    feeds = {}
    for name in list(graph.inputs) + list(graph.params):
        ttype = graph.tensor_type(name)
        feeds[name] = rng.standard_normal(ttype.shape).astype(np.float32)
    return feeds


class TestMergeSharedInputMatMuls:
    def test_rewritten_graph_validates(self):
        graph = shared_left_matmul_graph()
        pg, _ = FissionEngine().run(graph)
        transform = MergeSharedInputMatMuls()
        sites = transform.find_sites(pg)
        assert sites, "expected a merge site for matmuls sharing their left operand"
        for site in sites:
            rewritten = transform.apply(pg, site)
            rewritten.validate()  # seed: PrimitiveGraphError (producer-less input)

    def test_merge_emits_concat_matmul_slices(self):
        graph = shared_left_matmul_graph()
        pg, _ = FissionEngine().run(graph)
        transform = MergeSharedInputMatMuls()
        rewritten = transform.apply(pg, transform.find_sites(pg)[0])
        ops = [node.prim.op for node in rewritten.nodes]
        assert ops.count("MatMul") == 1  # the two originals were merged
        assert ops.count("Concat") == 1
        assert ops.count("Slice") == 2

    def test_merge_preserves_semantics(self):
        graph = shared_left_matmul_graph()
        pg, _ = FissionEngine().run(graph)
        transform = MergeSharedInputMatMuls()
        rewritten = transform.apply(pg, transform.find_sites(pg)[0])
        result = verify_primitive_graph(graph, rewritten, feeds=feeds_for(graph))
        assert result.equivalent, f"max error {result.max_abs_error}"

    def test_merge_with_graph_outputs(self):
        """Both MatMul results as graph outputs exercises the renaming path."""
        b = GraphBuilder("shared_left_outputs")
        x = b.input("x", (2, 8, 4))
        w1 = b.param("w1", (2, 4, 6))
        w2 = b.param("w2", (2, 4, 6))
        m1 = b.matmul(x, w1)
        m2 = b.matmul(x, w2)
        b.output(m1, m2)
        graph = b.build()
        pg, _ = FissionEngine().run(graph)
        transform = MergeSharedInputMatMuls()
        rewritten = transform.apply(pg, transform.find_sites(pg)[0])
        rewritten.validate()
        assert rewritten.outputs == pg.outputs  # output names survive rewrites
        result = verify_primitive_graph(graph, rewritten, feeds=feeds_for(graph))
        assert result.equivalent, f"max error {result.max_abs_error}"


class TestSwapDivPastMatMul:
    def test_moved_div_keeps_original_attribution(self):
        """The swapped division is still softmax's normalization (§6.4)."""
        b = GraphBuilder("softmax_matmul")
        x = b.input("x", (1, 2, 8, 8))
        v = b.param("v", (1, 2, 8, 4))
        probs = b.softmax(x, axis=-1)
        out = b.matmul(probs, v)
        b.output(out)
        graph = b.build()
        pg, _ = FissionEngine().run(graph)
        softmax_op = next(n.name for n in graph.nodes if n.op_type == "Softmax")

        transform = SwapDivPastMatMul()
        sites = transform.find_sites(pg)
        assert sites
        rewritten = transform.apply(pg, sites[0])
        rewritten.validate()
        moved_div = next(
            node for node in rewritten.nodes
            if node.prim.op == "Div" and node.name.endswith(tuple("0123456789"))
            and "postdiv" in node.name
        )
        assert moved_div.source_op == softmax_op
        result = verify_primitive_graph(graph, rewritten, feeds=feeds_for(graph))
        assert result.equivalent, f"max error {result.max_abs_error}"


def test_optimizer_handles_efficientvit_attention_partition():
    """End-to-end: the beam search over the shape that crashed the seed."""
    from repro.models import build_efficientvit_attention_block
    from repro.partition import GraphPartitioner

    graph = build_efficientvit_attention_block()
    optimizer = PrimitiveGraphOptimizer(V100)
    for partition in GraphPartitioner().partition(graph):
        pg, _ = FissionEngine().run(partition.graph)
        optimized, report = optimizer.optimize(pg)
        optimized.validate()
        assert report.final_cost_s <= report.initial_cost_s


def test_copy_preserves_name_generation_state():
    """unique_name on a copy must not regenerate names already in use."""
    graph = shared_left_matmul_graph()
    pg, _ = FissionEngine().run(graph)
    names = {node.name for node in pg.nodes} | set(pg.tensors)
    clone = pg.copy()
    fresh = [clone.unique_name("matmul") for _ in range(50)]
    assert not (set(fresh) & names)
    assert len(set(fresh)) == len(fresh)
