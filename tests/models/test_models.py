"""Model zoo: the five workloads and the case-study subgraphs."""

import pytest

from repro.fission import FissionEngine
from repro.ir import validate_graph
from repro.models import (
    MODEL_BUILDERS,
    build_candy,
    build_candy_block,
    build_efficientvit_attention_block,
    build_model,
    build_segformer_attention_block,
    build_segformer_decoder_subgraph,
)


class TestModelZoo:
    @pytest.mark.parametrize("name", sorted(MODEL_BUILDERS))
    def test_models_build_and_validate(self, name):
        graph = build_model(name)
        validate_graph(graph)
        assert graph.num_nodes > 50
        assert graph.inputs and graph.outputs

    @pytest.mark.parametrize("name", sorted(MODEL_BUILDERS))
    def test_models_fission(self, name):
        graph = build_model(name)
        pg, report = FissionEngine().run(graph)
        assert report.expansion_ratio > 1.0
        assert len(pg.nodes) > graph.num_nodes

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            build_model("resnet")

    def test_candy_resolution_and_output_shape(self):
        graph = build_candy(resolution=224)
        out = graph.tensor_type(graph.outputs[0])
        assert out.shape == (1, 3, 224, 224)

    def test_model_input_resolutions_match_paper(self):
        assert build_model("candy").tensor_type("image").shape[-1] == 224
        assert build_model("yolov4").tensor_type("image").shape[-1] == 416
        assert build_model("yolox").tensor_type("image").shape[-1] == 416
        assert build_model("segformer").tensor_type("image").shape[-1] == 512
        assert build_model("efficientvit").tensor_type("image").shape[-1] == 2048

    def test_yolo_has_three_heads(self):
        assert len(build_model("yolov4").outputs) == 3
        assert len(build_model("yolox").outputs) == 3


class TestCaseStudySubgraphs:
    def test_candy_block_pattern(self):
        graph = build_candy_block()
        ops = graph.op_type_histogram()
        assert ops == {"InstanceNormalization": 1, "Pad": 1, "Relu": 1}

    def test_segformer_attention_pattern(self):
        graph = build_segformer_attention_block()
        ops = graph.op_type_histogram()
        assert ops["MatMul"] == 2 and ops["Softmax"] == 1 and ops["Div"] == 1

    def test_segformer_decoder_pattern(self):
        graph = build_segformer_decoder_subgraph(batch=1)
        ops = graph.op_type_histogram()
        assert ops["Resize"] == 3 and ops["Concat"] == 1 and ops["Add"] == 4
        batch16 = build_segformer_decoder_subgraph(batch=16)
        assert batch16.tensor_type(batch16.outputs[0]).shape[0] == 16

    def test_efficientvit_attention_has_extreme_gemm(self):
        """The 16384-token / 16-dim linear attention of Figure 8."""
        graph = build_efficientvit_attention_block()
        pg, _ = FissionEngine().run(graph)
        gemm_inputs = [
            pg.tensor_type(n.inputs[0]).shape for n in pg.nodes if n.prim.op == "MatMul"
        ]
        assert any(shape[-2] // 16 >= 1024 or shape[-1] * 1024 <= shape[-2] for shape in gemm_inputs)
        ops = {n.prim.op for n in pg.nodes}
        assert {"Slice", "Relu", "Transpose", "MatMul", "Sum", "Add", "Div"} <= ops
