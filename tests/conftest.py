"""Shared fixtures: small graphs exercising every layer of the stack."""

from __future__ import annotations

import pytest

from repro.fission import FissionEngine
from repro.gpu import V100
from repro.ir import GraphBuilder


@pytest.fixture(scope="session")
def v100():
    return V100


@pytest.fixture()
def attention_graph():
    """Small softmax self-attention subgraph (Figure 2a shape)."""
    b = GraphBuilder("attention")
    x = b.input("x", (1, 4, 32, 16))
    w = b.param("w", (1, 4, 16, 32))
    scores = b.matmul(x, w)
    probs = b.softmax(scores, axis=-1)
    v = b.param("v", (1, 4, 32, 16))
    out = b.matmul(probs, v)
    b.output(out)
    return b.build()


@pytest.fixture()
def candy_block_graph():
    """Conv → InstanceNorm → ReLU → Pad block (Figure 12 pattern)."""
    b = GraphBuilder("candy_block")
    x = b.input("x", (1, 8, 16, 16))
    y = b.conv2d(x, 8, kernel=3)
    y = b.instance_norm(y)
    y = b.relu(y)
    y = b.pad(y, (0, 0, 1, 1, 0, 0, 1, 1))
    b.output(y)
    return b.build()


@pytest.fixture()
def branchy_graph():
    """Two elementwise branches joined by a concat (partition/fusion tests)."""
    b = GraphBuilder("branchy")
    x = b.input("x", (2, 8, 8))
    left = b.relu(x)
    left = b.exp(left)
    right = b.sigmoid(x)
    joined = b.concat([left, right], axis=1)
    out = b.reduce_sum(joined, axes=(-1,), keepdims=True)
    b.output(out)
    return b.build()


@pytest.fixture()
def attention_pg(attention_graph):
    pg, _ = FissionEngine().run(attention_graph)
    return pg


@pytest.fixture()
def candy_block_pg(candy_block_graph):
    pg, _ = FissionEngine().run(candy_block_graph)
    return pg
