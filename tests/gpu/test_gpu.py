"""GPU specs, kernel features, roofline cost model, profiler, executor."""

import numpy as np
import pytest

from repro.backends import (
    CublasBackend,
    FrameworkEagerBackend,
    TensorRTBackend,
    TvmMetaScheduleBackend,
    default_korch_backends,
)
from repro.fission import FissionEngine
from repro.gpu import (
    A100,
    GPU_SPECS,
    H100,
    P100,
    V100,
    KernelProfiler,
    PrimitiveGraphExecutor,
    extract_features,
    get_gpu,
    gpu_generation_trends,
    parallelism_factor,
    roofline_latency,
    synthesize_tensor,
)
from repro.ir import DataType, GraphBuilder, TensorType
from repro.primitives import MatMulPrimitive, PrimitiveGraph, ReducePrimitive


class TestSpecs:
    def test_lookup(self):
        assert get_gpu("v100") is V100
        assert get_gpu("A100") is A100
        with pytest.raises(KeyError):
            get_gpu("B200")

    def test_figure5_trends_monotone(self):
        """Figure 5: FLOPs grow faster than memory bandwidth across generations."""
        trends = gpu_generation_trends()
        assert trends["P100"] == {"mem_bw": 1.0, "fp32": 1.0, "fp16": 1.0}
        order = ["P100", "V100", "A100", "H100"]
        for metric in ("mem_bw", "fp32", "fp16"):
            values = [trends[g][metric] for g in order]
            assert values == sorted(values)
        # The compute/bandwidth ratio widens with every generation.
        ratios = [trends[g]["fp16"] / trends[g]["mem_bw"] for g in order]
        assert ratios == sorted(ratios)

    def test_peak_flops_by_dtype(self):
        assert A100.peak_flops(DataType.TF32) > A100.peak_flops(DataType.FLOAT32)
        assert V100.peak_flops(DataType.FLOAT16) > V100.peak_flops(DataType.FLOAT32)
        assert P100.ridge_intensity(DataType.FLOAT32) < H100.ridge_intensity(DataType.FLOAT32)

    def test_all_specs_sane(self):
        for spec in GPU_SPECS.values():
            assert spec.mem_bandwidth_bytes > 1e11
            assert spec.kernel_launch_s > 0
            assert spec.saturation_elements > 0


def _softmax_pg():
    b = GraphBuilder("softmax")
    x = b.input("x", (64, 1024))
    b.output(b.softmax(x, axis=-1))
    pg, _ = FissionEngine().run(b.build())
    return pg


class TestFeatures:
    def test_softmax_kernel_features(self):
        pg = _softmax_pg()
        nodes = list(pg.nodes)
        ins, outs = pg.subset_io(nodes)
        features = extract_features(pg, nodes, ins, outs)
        assert features.num_primitives == 4
        assert features.num_reduce == 1
        assert features.is_memory_bound
        # Fusing the reduction with its consumers costs a second pass.
        assert features.multipass_bytes == 2 * 64 * 1024 * 4
        assert features.traffic_bytes > features.input_bytes + features.output_bytes

    def test_unfused_reduce_has_no_multipass(self):
        pg = _softmax_pg()
        reduce_node = next(n for n in pg.nodes if isinstance(n.prim, ReducePrimitive))
        ins, outs = pg.subset_io([reduce_node])
        features = extract_features(pg, [reduce_node], ins, outs)
        assert features.multipass_bytes == 0

    def test_gemm_features(self):
        pg = PrimitiveGraph("gemm")
        a = pg.add_input("a", TensorType((256, 64)))
        w = pg.add_param("w", TensorType((64, 512)))
        node = pg.add_node(MatMulPrimitive(), [a, w])
        pg.add_output(node.output)
        features = extract_features(pg, [node], [a, w], [node.output])
        assert not features.is_memory_bound
        assert len(features.gemms) == 1
        gemm = features.gemms[0]
        assert (gemm.m, gemm.n, gemm.k) == (256, 512, 64)
        assert features.linear_flops == 2 * 256 * 512 * 64
        assert gemm.aspect_ratio == 8.0

    def test_resize_heterogeneity(self):
        from repro.models import build_segformer_decoder_subgraph

        pg, _ = FissionEngine().run(build_segformer_decoder_subgraph(batch=1))
        nodes = list(pg.nodes)
        ins, outs = pg.subset_io(nodes)
        features = extract_features(pg, nodes, ins, outs)
        assert len(set(features.resize_factors)) == 3
        assert features.branch_heterogeneity >= 2


class TestCostModel:
    def test_roofline_memory_bound(self):
        pg = _softmax_pg()
        nodes = list(pg.nodes)
        features = extract_features(pg, nodes, *pg.subset_io(nodes))
        breakdown = roofline_latency(features, V100, 0.8, 0.6)
        assert breakdown.bound == "memory"
        assert breakdown.latency_s > V100.kernel_launch_s
        assert breakdown.latency_us == pytest.approx(breakdown.latency_s * 1e6)

    def test_higher_bandwidth_gpu_is_faster(self):
        pg = _softmax_pg()
        nodes = list(pg.nodes)
        features = extract_features(pg, nodes, *pg.subset_io(nodes))
        assert (
            roofline_latency(features, A100, 0.8, 0.6).latency_s
            < roofline_latency(features, V100, 0.8, 0.6).latency_s
        )

    def test_parallelism_factor_bounds(self):
        pg = _softmax_pg()
        nodes = list(pg.nodes)
        features = extract_features(pg, nodes, *pg.subset_io(nodes))
        assert 0.1 <= parallelism_factor(features, V100) <= 1.0

    def test_efficiency_clamped(self):
        pg = _softmax_pg()
        nodes = list(pg.nodes)
        features = extract_features(pg, nodes, *pg.subset_io(nodes))
        breakdown = roofline_latency(features, V100, 5.0, 5.0)
        assert breakdown.bandwidth_efficiency <= 1.0


class TestBackends:
    def _gemm_features(self, m, n, k):
        pg = PrimitiveGraph("g")
        a = pg.add_input("a", TensorType((m, k)))
        w = pg.add_param("w", TensorType((k, n)))
        node = pg.add_node(MatMulPrimitive(), [a, w])
        pg.add_output(node.output)
        return extract_features(pg, [node], [a, w], [node.output])

    def test_cublas_rejects_memory_kernels(self):
        pg = _softmax_pg()
        nodes = list(pg.nodes)
        features = extract_features(pg, nodes, *pg.subset_io(nodes))
        assert CublasBackend().estimate(features, V100) is None
        assert TvmMetaScheduleBackend().estimate(features, V100) is not None

    def test_extreme_aspect_ratio_gemm_is_slower(self):
        """The Figure 8 effect: a 1024:1 GEMM runs far below peak."""
        square = self._gemm_features(512, 512, 512)
        skewed = self._gemm_features(16384, 16, 16)
        square_eff = CublasBackend().estimate(square, V100).compute_efficiency
        skewed_eff = CublasBackend().estimate(skewed, V100).compute_efficiency
        assert skewed_eff < 0.5 * square_eff

    def test_tvm_heterogeneity_penalty_grows_with_working_set(self):
        from repro.models import build_segformer_decoder_subgraph

        backend = TvmMetaScheduleBackend()
        latencies = {}
        for batch in (1, 16):
            pg, _ = FissionEngine().run(build_segformer_decoder_subgraph(batch=batch))
            nodes = list(pg.nodes)
            features = extract_features(pg, nodes, *pg.subset_io(nodes))
            latencies[batch] = backend.estimate(features, V100)
        eff1 = latencies[1].bandwidth_efficiency
        eff16 = latencies[16].bandwidth_efficiency
        assert eff16 < eff1  # the fused kernel degrades as the working set grows

    def test_tensorrt_rejects_heterogeneous_fusion(self):
        from repro.models import build_segformer_decoder_subgraph

        pg, _ = FissionEngine().run(build_segformer_decoder_subgraph(batch=1))
        nodes = list(pg.nodes)
        features = extract_features(pg, nodes, *pg.subset_io(nodes))
        assert TensorRTBackend().estimate(features, V100) is None
        assert FrameworkEagerBackend().estimate(features, V100) is not None

    def test_cudnn_conv_efficiency_channels(self):
        from repro.gpu.features import ConvShape
        from repro.backends import conv_efficiency

        wide = ConvShape(1, 256, 256, 3, 3, 56, 56)
        narrow = ConvShape(1, 3, 16, 3, 3, 224, 224)
        assert conv_efficiency(wide) > conv_efficiency(narrow)
        depthwise = ConvShape(1, 64, 64, 3, 3, 56, 56, groups=64)
        assert conv_efficiency(depthwise) < conv_efficiency(wide)

    def test_default_backend_sets(self):
        names = [b.name for b in default_korch_backends()]
        assert "TensorRT" not in names
        names_trt = [b.name for b in default_korch_backends(enable_tensorrt=True)]
        assert "TensorRT" in names_trt


class TestProfilerAndExecutor:
    def test_profiler_picks_vendor_backend_for_gemm(self, attention_pg, v100):
        profiler = KernelProfiler(v100)
        matmul = next(n for n in attention_pg.nodes if n.is_linear)
        ins, outs = attention_pg.subset_io([matmul])
        profile = profiler.profile(attention_pg, [matmul], ins, outs)
        assert profile.backend == "cuBLAS"

    def test_profiler_cache_and_tuning_dedup(self, attention_pg, v100):
        profiler = KernelProfiler(v100)
        matmuls = [n for n in attention_pg.nodes if n.is_linear]
        for node in matmuls:
            ins, outs = attention_pg.subset_io([node])
            profiler.profile(attention_pg, [node], ins, outs)
        report = profiler.tuning_model.report
        assert report.num_candidates >= 1
        assert report.num_profiled <= report.num_candidates

    def test_synthesize_tensor_deterministic(self):
        t = TensorType((3, 4))
        a = synthesize_tensor("weight", t)
        b = synthesize_tensor("weight", t)
        np.testing.assert_array_equal(a, b)
        assert synthesize_tensor("other", t).shape == (3, 4)
        assert (synthesize_tensor("bn_running_var", t) > 0).all()

    def test_executor_kernel_subset(self, attention_pg):
        executor = PrimitiveGraphExecutor(attention_pg)
        full = executor.run(keep_intermediates=True)
        exp_node = next(n for n in attention_pg.nodes if n.prim.op == "Exp")
        sum_node = next(n for n in attention_pg.nodes if n.prim.op == "Sum")
        inputs = {exp_node.inputs[0]: full[exp_node.inputs[0]]}
        outputs = executor.run_kernel([exp_node, sum_node], inputs, [sum_node.output])
        np.testing.assert_allclose(outputs[sum_node.output], full[sum_node.output], rtol=1e-5)

    def test_executor_kernel_missing_input(self, attention_pg):
        executor = PrimitiveGraphExecutor(attention_pg)
        exp_node = next(n for n in attention_pg.nodes if n.prim.op == "Exp")
        with pytest.raises(KeyError):
            executor.run_kernel([exp_node], {}, [exp_node.output])
