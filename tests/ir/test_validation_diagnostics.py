"""Collect-all graph validation: structured diagnostics instead of fail-fast."""

from __future__ import annotations

import pytest

from repro.diagnostics import Severity
from repro.ir import Graph, GraphError, Node, TensorType
from repro.ir.validation import graph_diagnostics, validate_graph


def rules(diagnostics):
    return [d.rule for d in diagnostics]


def inject(graph: Graph, node: Node) -> None:
    """Insert a node bypassing ``add_node``'s eager checks.

    The collect-all validator exists exactly for graphs that arrive broken
    (deserialized, hand-mutated); the builder API refuses to construct them.
    """
    graph.nodes.append(node)
    graph._nodes_by_name[node.name] = node


class TestGraphDiagnostics:
    def test_clean_graph_has_no_diagnostics(self, attention_graph):
        assert graph_diagnostics(attention_graph) == []

    def test_multiple_defects_all_reported(self):
        """One malformed node does not mask the next (collect-all)."""
        g = Graph("broken")
        g.add_input("x", TensorType((4,)))
        g.add_tensor("y", TensorType((4,)))
        inject(g, Node("bad_op", "NoSuchOp", ["x"], ["y"]))
        g.add_tensor("x2", TensorType((4,)))
        inject(g, Node("bad_arity", "Relu", [], ["x2"]))
        g.outputs.append("dangling")
        found = graph_diagnostics(g)
        assert "graph/unknown-op" in rules(found)
        assert "graph/arity" in rules(found)
        assert "graph/undeclared-tensor" in rules(found)
        assert all(d.severity is Severity.ERROR for d in found)
        assert all(d.location == "graph 'broken'" for d in found)

    def test_cycle_rule(self):
        g = Graph("cyclic")
        g.add_tensor("a", TensorType((2,)))
        g.add_tensor("b", TensorType((2,)))
        g.add_node(Node("n1", "Relu", ["b"], ["a"]))
        g.add_node(Node("n2", "Relu", ["a"], ["b"]))
        found = graph_diagnostics(g)
        assert "graph/cycle" in rules(found)
        # a and b are consumed before being "produced" in scan order, so the
        # missing-producer scan stays quiet; the cycle rule carries the news.

    def test_shape_mismatch_needs_clean_structure(self):
        """Type checks run only once the structure is sound (no cascades)."""
        g = Graph("shapes")
        g.add_input("x", TensorType((2, 3)))
        g.add_tensor("y", TensorType((9, 9)))
        g.add_node(Node("n", "Relu", ["x"], ["y"]))
        g.add_output("y")
        assert rules(graph_diagnostics(g)) == ["graph/shape-mismatch"]

    def test_source_write_rule(self):
        g = Graph("writes_param")
        g.add_input("x", TensorType((2,)))
        g.add_param("w", TensorType((2,)))
        g.add_node(Node("n", "Relu", ["x"], ["w"]))
        g.add_output("w")
        assert "graph/source-write" in rules(graph_diagnostics(g))


class TestValidateGraph:
    def test_error_names_graph_and_lists_every_finding(self):
        g = Graph("multi_fault")
        g.add_input("x", TensorType((4,)))
        g.add_tensor("y", TensorType((4,)))
        inject(g, Node("bad_op", "NoSuchOp", ["x"], ["y"]))
        g.outputs.append("ghost")
        with pytest.raises(GraphError) as excinfo:
            validate_graph(g)
        message = str(excinfo.value)
        assert "'multi_fault'" in message
        assert "graph/unknown-op" in message
        assert "graph/undeclared-tensor" in message
        assert "2 error(s)" in message

    def test_clean_graph_passes(self, attention_graph):
        validate_graph(attention_graph)
