"""Unit and property tests for DataType and TensorType."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir import DataType, TensorType

shapes = st.lists(st.integers(min_value=1, max_value=8), min_size=0, max_size=4).map(tuple)


class TestDataType:
    def test_itemsize(self):
        assert DataType.FLOAT32.itemsize == 4
        assert DataType.FLOAT16.itemsize == 2
        assert DataType.TF32.itemsize == 4
        assert DataType.INT64.itemsize == 8
        assert DataType.BOOL.itemsize == 1

    def test_is_floating(self):
        assert DataType.FLOAT32.is_floating
        assert DataType.TF32.is_floating
        assert not DataType.INT32.is_floating

    def test_numpy_roundtrip(self):
        assert DataType.FLOAT32.to_numpy() == np.dtype("float32")
        assert DataType.from_numpy(np.dtype("float32")) is DataType.FLOAT32
        assert DataType.from_numpy(np.dtype("int64")) is DataType.INT64

    def test_tf32_maps_to_float32_numpy(self):
        assert DataType.TF32.to_numpy() == np.dtype("float32")

    def test_from_numpy_unknown(self):
        with pytest.raises(ValueError):
            DataType.from_numpy(np.dtype("complex64"))


class TestTensorType:
    def test_basic_properties(self):
        t = TensorType((2, 3, 4))
        assert t.rank == 3
        assert t.num_elements == 24
        assert t.size_bytes == 96
        assert t.dtype is DataType.FLOAT32

    def test_scalar(self):
        t = TensorType(())
        assert t.rank == 0
        assert t.num_elements == 1

    def test_int_shape_coerced(self):
        assert TensorType(5).shape == (5,)

    def test_negative_dim_rejected(self):
        with pytest.raises(ValueError):
            TensorType((2, -1))

    def test_with_shape_and_dtype(self):
        t = TensorType((2, 3))
        assert t.with_shape((6,)).shape == (6,)
        assert t.with_dtype(DataType.FLOAT16).size_bytes == 12

    def test_squeeze_unsqueeze(self):
        t = TensorType((2, 1, 3))
        assert t.squeeze(1).shape == (2, 3)
        assert t.unsqueeze(0).shape == (1, 2, 1, 3)
        with pytest.raises(ValueError):
            t.squeeze(0)

    def test_reduce(self):
        t = TensorType((2, 3, 4))
        assert t.reduce(1).shape == (2, 4)
        assert t.reduce(1, keepdims=True).shape == (2, 1, 4)
        assert t.reduce(-1).shape == (2, 3)

    def test_broadcast(self):
        t = TensorType((2, 1, 4))
        assert t.broadcast(0, 7).shape == (7, 2, 1, 4)

    def test_transpose(self):
        t = TensorType((2, 3, 4))
        assert t.transpose((2, 0, 1)).shape == (4, 2, 3)
        with pytest.raises(ValueError):
            t.transpose((0, 0, 1))

    def test_equality_and_hash(self):
        assert TensorType((2, 3)) == TensorType((2, 3))
        assert TensorType((2, 3)) != TensorType((2, 3), DataType.FLOAT16)
        assert len({TensorType((2, 3)), TensorType((2, 3))}) == 1

    def test_str(self):
        assert str(TensorType((2, 3))) == "float32[2x3]"

    @given(shapes)
    def test_num_elements_matches_numpy(self, shape):
        t = TensorType(shape)
        assert t.num_elements == int(np.prod(shape)) if shape else 1

    @given(shapes, st.integers(min_value=0, max_value=3))
    def test_transpose_preserves_elements(self, shape, seed):
        t = TensorType(shape)
        rng = np.random.default_rng(seed)
        perm = tuple(rng.permutation(len(shape)).tolist())
        assert t.transpose(perm).num_elements == t.num_elements
