"""Graph structure, builder, validation, serialization and shape inference."""

import numpy as np
import pytest

from repro.ir import (
    REGISTRY,
    DataType,
    Graph,
    GraphBuilder,
    GraphError,
    Node,
    OpKind,
    TensorType,
    broadcast_shapes,
    graph_from_dict,
    graph_to_dict,
    infer_node_types,
    validate_graph,
)


class TestRegistry:
    def test_known_operators_present(self):
        for name in ("Conv", "MatMul", "Softmax", "InstanceNormalization", "Concat", "Resize"):
            assert name in REGISTRY

    def test_kinds(self):
        assert REGISTRY.get("Add").kind is OpKind.ELEMENTWISE
        assert REGISTRY.get("Conv").kind is OpKind.COMPUTE
        assert REGISTRY.get("Softmax").kind is OpKind.COMPOSITE
        assert REGISTRY.get("Transpose").kind is OpKind.LAYOUT
        assert REGISTRY.get("TopK").kind is OpKind.OPAQUE

    def test_arity_validation(self):
        with pytest.raises(ValueError):
            REGISTRY.get("Add").validate_arity(3, 1)
        REGISTRY.get("Concat").validate_arity(5, 1)

    def test_unknown_operator(self):
        with pytest.raises(KeyError):
            REGISTRY.get("NotAnOp")

    def test_by_kind(self):
        compute = [spec.name for spec in REGISTRY.by_kind(OpKind.COMPUTE)]
        assert "MatMul" in compute and "Conv" in compute


class TestBroadcast:
    def test_basic(self):
        assert broadcast_shapes((2, 3), (3,)) == (2, 3)
        assert broadcast_shapes((2, 1, 4), (5, 1)) == (2, 5, 4)

    def test_incompatible(self):
        with pytest.raises(GraphError):
            broadcast_shapes((2, 3), (4,))


class TestBuilder:
    def test_conv_shapes(self):
        b = GraphBuilder("g")
        x = b.input("x", (1, 3, 32, 32))
        y = b.conv2d(x, 16, kernel=3, stride=2)
        assert b.shape(y) == (1, 16, 16, 16)

    def test_pooling_and_reduce(self):
        b = GraphBuilder("g")
        x = b.input("x", (1, 4, 8, 8))
        assert b.shape(b.max_pool(x, 2, 2)) == (1, 4, 4, 4)
        assert b.shape(b.global_avg_pool(x)) == (1, 4, 1, 1)
        assert b.shape(b.reduce_mean(x, axes=(1,), keepdims=False)) == (1, 8, 8)

    def test_layout_ops(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 6, 4))
        assert b.shape(b.transpose(x, (0, 2, 1))) == (2, 4, 6)
        assert b.shape(b.reshape(x, (2, 24))) == (2, 24)
        assert b.shape(b.pad(x, (0, 0, 1, 0, 0, 1))) == (2, 6, 6)
        parts = b.split(x, 2, axis=1)
        assert [b.shape(p) for p in parts] == [(2, 3, 4), (2, 3, 4)]
        assert b.shape(b.concat(parts, axis=2)) == (2, 3, 8)
        assert b.shape(b.slice(x, (1,), (5,), axes=(1,))) == (2, 4, 4)

    def test_matmul_and_linear(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 5, 8))
        y = b.linear(x, 12)
        assert b.shape(y) == (2, 5, 12)
        with pytest.raises(GraphError):
            b.matmul(x, b.param("bad", (5, 4)))

    def test_resize(self):
        b = GraphBuilder("g")
        x = b.input("x", (1, 3, 8, 8))
        assert b.shape(b.resize(x, 2.0)) == (1, 3, 16, 16)
        assert b.shape(b.resize_to(x, (1, 3, 32, 32))) == (1, 3, 32, 32)

    def test_build_requires_output(self):
        b = GraphBuilder("g")
        b.input("x", (1,))
        with pytest.raises(ValueError):
            b.build()

    def test_graph_queries(self):
        b = GraphBuilder("g")
        x = b.input("x", (4,))
        y = b.relu(x)
        z = b.exp(y)
        b.output(z)
        g = b.build()
        relu = g.producer(y)
        assert relu.op_type == "Relu"
        assert [n.op_type for n in g.consumers(y)] == ["Exp"]
        assert g.is_source_tensor(x)
        order = [n.op_type for n in g.topological_order()]
        assert order.index("Relu") < order.index("Exp")
        assert g.stats()["num_nodes"] == 2
        assert g.op_type_histogram() == {"Exp": 1, "Relu": 1}

    def test_subgraph_tensors(self):
        b = GraphBuilder("g")
        x = b.input("x", (4,))
        y = b.relu(x)
        z = b.exp(y)
        w = b.sigmoid(z)
        b.output(w)
        g = b.build()
        nodes = [g.producer(y), g.producer(z)]
        ins, outs = g.subgraph_tensors(nodes)
        assert ins == {x}
        assert outs == {z}


class TestGraphErrors:
    def test_duplicate_node_name(self):
        g = Graph("g")
        g.add_input("x", TensorType((2,)))
        g.add_tensor("y", TensorType((2,)))
        g.add_node(Node("n", "Relu", ["x"], ["y"]))
        with pytest.raises(GraphError):
            g.add_node(Node("n", "Relu", ["x"], ["y2"]))

    def test_unknown_input_tensor(self):
        g = Graph("g")
        with pytest.raises(GraphError):
            g.add_node(Node("n", "Relu", ["missing"], ["y"]))

    def test_cycle_detection(self):
        g = Graph("g")
        g.add_tensor("a", TensorType((2,)))
        g.add_tensor("b", TensorType((2,)))
        g.add_node(Node("n1", "Relu", ["b"], ["a"]))
        g.add_node(Node("n2", "Relu", ["a"], ["b"]))
        with pytest.raises(GraphError):
            g.topological_order()

    def test_validation_catches_shape_mismatch(self):
        g = Graph("g")
        g.add_input("x", TensorType((2, 3)))
        g.add_tensor("y", TensorType((9, 9)))
        g.add_node(Node("n", "Relu", ["x"], ["y"]))
        g.add_output("y")
        with pytest.raises(GraphError):
            validate_graph(g)

    def test_output_without_producer(self):
        g = Graph("g")
        g.add_tensor("y", TensorType((2,)))
        g.add_output("y")
        with pytest.raises(GraphError):
            validate_graph(g)


class TestSerialization:
    def test_roundtrip(self, attention_graph):
        data = graph_to_dict(attention_graph)
        restored = graph_from_dict(data)
        validate_graph(restored)
        assert restored.num_nodes == attention_graph.num_nodes
        assert restored.inputs == attention_graph.inputs
        assert restored.outputs == attention_graph.outputs
        assert set(restored.params) == set(attention_graph.params)

    def test_roundtrip_preserves_constants(self):
        b = GraphBuilder("g")
        x = b.input("x", (2, 2))
        c = b.constant("ones", np.ones((2, 2), dtype=np.float32))
        b.output(b.add(x, c))
        g = b.build()
        restored = graph_from_dict(graph_to_dict(g))
        np.testing.assert_allclose(restored.constants[c], np.ones((2, 2)))

    def test_save_and_load(self, tmp_path, candy_block_graph):
        from repro.ir import load_graph, save_graph

        path = save_graph(candy_block_graph, tmp_path / "graph.json")
        restored = load_graph(path)
        assert restored.num_nodes == candy_block_graph.num_nodes

    def test_version_check(self):
        with pytest.raises(ValueError):
            graph_from_dict({"format_version": 99})


class TestShapeInference:
    def test_gemm_transpose_flags(self):
        node = Node("n", "Gemm", ["a", "b"], ["c"], {"trans_a": True, "trans_b": True})
        out = infer_node_types(node, [TensorType((8, 4)), TensorType((6, 8))])
        assert out[0].shape == (4, 6)

    def test_topk_outputs(self):
        node = Node("n", "TopK", ["x"], ["v", "i"], {"k": 3, "axis": -1})
        values, indices = infer_node_types(node, [TensorType((2, 10))])
        assert values.shape == (2, 3)
        assert indices.dtype is DataType.INT64

    def test_unknown_op(self):
        node = Node("n", "Bogus", ["x"], ["y"])
        with pytest.raises(GraphError):
            infer_node_types(node, [TensorType((2,))])
