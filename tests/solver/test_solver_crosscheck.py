"""Cross-checks between the solver backends on small enumerable BLPs.

On problems small enough to brute-force, the solver stack must obey the
textbook ordering for minimization:

    LP relaxation (simplex)  <=  exact optimum (scipy MILP == branch&bound
                                 == brute force)  <=  greedy heuristic

and ``solve_blp(method="auto")`` must return the exact optimum — i.e. match
the best exact method available.  Objective ties are compared within a small
float tolerance.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.solver import (
    BinaryLinearProgram,
    scipy_milp_available,
    solve_blp,
    solve_branch_and_bound,
    solve_greedy,
    solve_lp,
    solve_with_scipy,
)

TOL = 1e-7


def brute_force(problem: BinaryLinearProgram) -> tuple[float, list[int]]:
    """Exact optimum by enumerating every binary assignment."""
    best_obj, best_x = float("inf"), None
    for bits in itertools.product((0, 1), repeat=problem.num_variables):
        x = list(bits)
        if problem.is_feasible(x):
            obj = problem.objective(x)
            if obj < best_obj:
                best_obj, best_x = obj, x
    assert best_x is not None, "test problem must be feasible"
    return best_obj, best_x


def lp_relaxation_objective(problem: BinaryLinearProgram) -> float:
    c, a_ub, b_ub, a_eq, b_eq = problem.to_matrices()
    result = solve_lp(c, a_ub, b_ub, a_eq, b_eq)
    assert result.status == "optimal"
    return result.objective


def cover_problem(seed: int, num_items: int = 5, num_sets: int = 7) -> BinaryLinearProgram:
    """Randomized set-cover-style BLP shaped like the orchestration problem:
    minimize summed kernel costs subject to every primitive being covered."""
    rng = np.random.default_rng(seed)
    problem = BinaryLinearProgram(f"cover_{seed}")
    memberships = []
    for j in range(num_sets):
        cost = float(rng.uniform(1.0, 10.0))
        problem.add_variable(f"k{j}", cost)
        size = int(rng.integers(1, num_items + 1))
        members = set(rng.choice(num_items, size=size, replace=False).tolist())
        memberships.append(members)
    # Guarantee feasibility: one singleton set per item.
    for i in range(num_items):
        problem.add_variable(f"single{i}", float(rng.uniform(5.0, 15.0)))
        memberships.append({i})
    for i in range(num_items):
        coeffs = {j: 1.0 for j, members in enumerate(memberships) if i in members}
        problem.add_constraint(coeffs, ">=", 1.0, name=f"cover_{i}")
    return problem


@pytest.mark.parametrize("seed", range(6))
def test_exact_methods_match_brute_force(seed):
    problem = cover_problem(seed)
    optimum, _ = brute_force(problem)

    bnb = solve_branch_and_bound(problem)
    assert bnb.is_feasible
    assert bnb.objective == pytest.approx(optimum, abs=TOL)
    assert problem.is_feasible(bnb.values)

    if scipy_milp_available():
        milp = solve_with_scipy(problem)
        assert milp.is_feasible
        assert milp.objective == pytest.approx(optimum, abs=TOL)
        assert problem.is_feasible(milp.values)


@pytest.mark.parametrize("seed", range(6))
def test_objective_ordering_greedy_exact_relaxation(seed):
    """greedy >= exact >= LP relaxation (minimization)."""
    problem = cover_problem(seed)
    optimum, _ = brute_force(problem)

    greedy = solve_greedy(problem)
    assert greedy.is_feasible
    assert problem.is_feasible(greedy.values)
    assert greedy.objective >= optimum - TOL

    relaxed = lp_relaxation_objective(problem)
    assert relaxed <= optimum + TOL


@pytest.mark.parametrize("seed", range(6))
def test_auto_matches_best_exact_method(seed):
    problem = cover_problem(seed)
    auto = solve_blp(problem, method="auto")
    assert auto.is_feasible

    exact_objectives = [solve_branch_and_bound(problem).objective]
    if scipy_milp_available():
        exact_objectives.append(solve_with_scipy(problem).objective)
    best_exact = min(exact_objectives)
    assert auto.objective == pytest.approx(best_exact, abs=TOL)

    expected_method = "scipy" if scipy_milp_available() else "branch-and-bound"
    assert expected_method in auto.method


def test_relaxation_tight_on_integral_problem():
    """With disjoint sets the LP relaxation is integral: all three agree."""
    problem = BinaryLinearProgram("disjoint")
    for j, cost in enumerate([3.0, 1.0, 2.0]):
        problem.add_variable(f"k{j}", cost)
        problem.add_constraint({j: 1.0}, ">=", 1.0)
    optimum, _ = brute_force(problem)
    assert optimum == pytest.approx(6.0)
    assert lp_relaxation_objective(problem) == pytest.approx(optimum)
    assert solve_branch_and_bound(problem).objective == pytest.approx(optimum)
    assert solve_greedy(problem).objective == pytest.approx(optimum)


def test_infeasible_problem_reported():
    problem = BinaryLinearProgram("infeasible")
    problem.add_variable("a", 1.0)
    problem.add_constraint({0: 1.0}, ">=", 2.0)  # needs a >= 2, but a <= 1
    for solve in (solve_branch_and_bound, solve_greedy):
        result = solve(problem)
        assert not result.is_feasible
    if scipy_milp_available():
        assert not solve_with_scipy(problem).is_feasible
