"""Bitset solver core: packing, evaluation, and bit-identity vs reference."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver import (
    BinaryLinearProgram,
    BitsetProblem,
    SolverConfig,
    SolveStatus,
    solve_branch_and_bound,
    solve_greedy,
)
from repro.solver.bitset import iter_bits, solve_greedy_bitset
from repro.solver.greedy import _solve_greedy_reference

BITSET = SolverConfig(core="bitset")
REFERENCE = SolverConfig(core="reference")


def random_cover_problem(rng: random.Random, n: int | None = None) -> BinaryLinearProgram:
    """A random program inside the ±1/integer fragment (the BLP's shape)."""
    n = n or rng.randint(2, 12)
    p = BinaryLinearProgram("random")
    for i in range(n):
        p.add_variable(f"k{i}", round(rng.uniform(0.5, 5.0), 3))
    for _ in range(rng.randint(1, 2 * n)):
        size = rng.randint(1, min(4, n))
        indices = rng.sample(range(n), size)
        coeffs = {i: rng.choice([1, 1, 1, -1]) for i in indices}
        sense = rng.choice([">=", ">=", "<=", "=="])
        rhs = rng.randint(-1, 2) if sense != "<=" else rng.randint(0, 2)
        p.add_constraint(coeffs, sense, rhs)
    return p


class TestIterBits:
    def test_ascending_indices(self):
        assert list(iter_bits(0)) == []
        assert list(iter_bits(0b1011)) == [0, 1, 3]
        assert list(iter_bits(1 << 70)) == [70]

    def test_roundtrip(self):
        mask = 0b1101001
        assert sum(1 << i for i in iter_bits(mask)) == mask


class TestSolverConfig:
    def test_rejects_unknown_core(self):
        with pytest.raises(ValueError, match="unknown solver core"):
            SolverConfig(core="quantum")

    def test_defaults(self):
        config = SolverConfig()
        assert config.core == "bitset"


class TestBitsetProblem:
    def test_pack_and_evaluate(self):
        p = BinaryLinearProgram()
        for i in range(3):
            p.add_variable(f"x{i}", 1.0)
        p.add_constraint({0: 1, 1: 1}, ">=", 1)
        p.add_constraint({1: 1, 2: -1}, ">=", 0)
        bits = BitsetProblem.from_problem(p)
        assert bits is not None
        assert bits.pos == [0b011, 0b010]
        assert bits.neg == [0b000, 0b100]
        assert bits.lhs(0, 0b001) == 1
        assert bits.lhs(1, 0b100) == -1
        assert bits.is_feasible(0b010)
        assert not bits.is_feasible(0b100)

    def test_violated_matches_reference_semantics(self):
        p = BinaryLinearProgram()
        for i in range(2):
            p.add_variable(f"x{i}", 1.0)
        p.add_constraint({0: 1}, ">=", 1)
        p.add_constraint({1: 1}, "<=", 0)
        p.add_constraint({0: 1, 1: 1}, "==", 1)
        bits = BitsetProblem.from_problem(p)
        # x = {x1}: constraint 0 short by 1, constraint 1 over by 1, eq ok.
        assert bits.violated(0b10) == [(0, 1), (1, 1)]
        assert bits.violated(0b01) == []

    def test_refuses_non_unit_coefficients(self):
        p = BinaryLinearProgram()
        p.add_variable("x", 1.0)
        p.add_constraint({0: 2.0}, ">=", 1)
        assert BitsetProblem.from_problem(p) is None

    def test_refuses_fractional_rhs(self):
        p = BinaryLinearProgram()
        p.add_variable("x", 1.0)
        p.add_constraint({0: 1.0}, ">=", 0.5)
        assert BitsetProblem.from_problem(p) is None

    def test_mask_roundtrip(self):
        p = BinaryLinearProgram()
        for i in range(4):
            p.add_variable(f"x{i}", 1.0)
        bits = BitsetProblem.from_problem(p)
        values = [1, 0, 1, 0]
        assert bits.values_of(BitsetProblem.mask_of(values)) == values
        assert BitsetProblem.mask_of([0.9, 0.1, 1.0, 0.0]) == 0b101


class TestGreedyEquivalence:
    def test_non_unit_program_falls_back_to_reference(self):
        p = BinaryLinearProgram()
        p.add_variable("x", 1.0)
        p.add_constraint({0: 2.0}, ">=", 1)
        result = solve_greedy(p, config=BITSET)
        reference = solve_greedy(p, config=REFERENCE)
        assert result.status == reference.status
        assert result.values == reference.values

    def test_randomized_bit_identity(self):
        rng = random.Random(20260808)
        for _ in range(300):
            p = random_cover_problem(rng)
            fast = solve_greedy(p, config=BITSET)
            slow = solve_greedy(p, config=REFERENCE)
            assert fast.status == slow.status
            assert fast.values == slow.values
            # Same float summation order => exactly equal, not approximately.
            assert fast.objective == slow.objective

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_hypothesis_bit_identity(self, seed):
        p = random_cover_problem(random.Random(seed))
        fast = solve_greedy(p, config=BITSET)
        slow = solve_greedy(p, config=REFERENCE)
        assert (fast.status, fast.values, fast.objective) == (
            slow.status,
            slow.values,
            slow.objective,
        )


class TestGreedyMaxRounds:
    def _chain_problem(self, n: int = 6) -> BinaryLinearProgram:
        p = BinaryLinearProgram("chain")
        for i in range(n):
            p.add_variable(f"x{i}", 1.0 + i)
        for i in range(n):
            p.add_constraint({i: 1}, ">=", 1)
        return p

    def test_infeasible_when_rounds_exhausted(self):
        p = self._chain_problem(6)
        assert solve_greedy(p, max_rounds=2, config=BITSET).status == SolveStatus.INFEASIBLE
        assert solve_greedy(p, max_rounds=2, config=REFERENCE).status == SolveStatus.INFEASIBLE

    def test_reference_exits_as_soon_as_feasible(self, monkeypatch):
        """Regression: the loop must stop when violations empty mid-round,
        not keep scanning until ``max_rounds``."""
        from repro.solver import greedy as greedy_module

        calls = {"n": 0}
        original = greedy_module._violated_constraints

        def counting(problem, x):
            calls["n"] += 1
            return original(problem, x)

        monkeypatch.setattr(greedy_module, "_violated_constraints", counting)
        p = self._chain_problem(4)
        result = _solve_greedy_reference(p, max_rounds=10_000)
        assert result.status == SolveStatus.FEASIBLE
        # One scan up front + one per selection round; the old loop did
        # max_rounds scans regardless.
        assert calls["n"] == 5

    def test_bitset_exits_as_soon_as_feasible(self):
        class CountingBits(BitsetProblem):
            calls = 0

            def violated(self, x):
                type(self).calls += 1
                return super().violated(x)

        p = self._chain_problem(4)
        packed = BitsetProblem.from_problem(p)
        bits = CountingBits(
            packed.num_variables, packed.senses, packed.pos, packed.neg, packed.rhs
        )
        result = solve_greedy_bitset(p, bits, max_rounds=10_000)
        assert result.status == SolveStatus.FEASIBLE
        assert CountingBits.calls == 5


class TestBranchAndBoundEquivalence:
    def test_randomized_bit_identity(self):
        rng = random.Random(7)
        for _ in range(40):
            p = random_cover_problem(rng, n=rng.randint(2, 8))
            fast = solve_branch_and_bound(p, config=BITSET)
            slow = solve_branch_and_bound(p, config=REFERENCE)
            assert fast.status == slow.status
            assert fast.values == slow.values
            assert fast.objective == slow.objective

    def test_warm_incumbent_keeps_optimum(self):
        p = BinaryLinearProgram()
        for i, cost in enumerate([3.0, 2.0, 4.0, 1.5]):
            p.add_variable(f"k{i}", cost)
        p.add_constraint({0: 1, 1: 1}, ">=", 1)
        p.add_constraint({2: 1, 3: 1}, ">=", 1)
        cold = solve_branch_and_bound(p)
        seeded = solve_branch_and_bound(p, incumbent_values=[1, 1, 1, 1])
        assert seeded.status == cold.status == SolveStatus.OPTIMAL
        assert seeded.objective == cold.objective

    def test_infeasible_incumbent_is_ignored(self):
        p = BinaryLinearProgram()
        p.add_variable("a", 1.0)
        p.add_variable("b", 2.0)
        p.add_constraint({0: 1, 1: 1}, ">=", 1)
        # The seed violates the constraint; the solver must not trust it.
        result = solve_branch_and_bound(p, incumbent_values=[0, 0])
        assert result.status == SolveStatus.OPTIMAL
        assert result.objective == 1.0
