"""The 0/1 ILP solver stack: problem model, simplex, greedy, B&B, scipy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linprog

from repro.solver import (
    BinaryLinearProgram,
    BranchAndBoundSolver,
    SolveStatus,
    solve_blp,
    solve_branch_and_bound,
    solve_greedy,
    solve_lp,
    solve_with_scipy,
)


def _cover_problem():
    """Small weighted set-cover with a dependency-style constraint."""
    p = BinaryLinearProgram("cover")
    for i, cost in enumerate([3.0, 2.0, 4.0, 1.5, 2.5]):
        p.add_variable(f"k{i}", cost)
    p.add_constraint({0: 1, 1: 1}, ">=", 1)
    p.add_constraint({1: 1, 2: 1}, ">=", 1)
    p.add_constraint({2: 1, 3: 1, 4: 1}, ">=", 1)
    p.add_constraint({0: 1, 1: 1, 3: -1}, ">=", 0)
    return p


class TestProblemModel:
    def test_objective_and_feasibility(self):
        p = _cover_problem()
        assert p.num_variables == 5
        assert p.num_constraints == 4
        assert p.objective([0, 1, 0, 1, 0]) == pytest.approx(3.5)
        assert p.is_feasible([0, 1, 0, 1, 0])
        assert not p.is_feasible([0, 0, 0, 1, 0])

    def test_constraint_senses(self):
        p = BinaryLinearProgram()
        p.add_variable("a", 1.0)
        p.add_constraint({0: 1}, "<=", 0)
        p.add_constraint({0: 1}, "==", 0)
        assert p.is_feasible([0])
        assert not p.is_feasible([1])
        with pytest.raises(ValueError):
            p.add_constraint({0: 1}, ">", 0)

    def test_bad_variable_index(self):
        p = BinaryLinearProgram()
        p.add_variable("a", 1.0)
        with pytest.raises(IndexError):
            p.add_constraint({3: 1}, ">=", 1)

    def test_to_matrices(self):
        p = _cover_problem()
        c, a_ub, b_ub, a_eq, b_eq = p.to_matrices()
        assert c.shape == (5,)
        assert a_ub.shape == (4, 5)
        assert a_eq.shape == (0, 5)
        # ">= rhs" rows are negated into "<= -rhs".
        assert b_ub[0] == -1


class TestSimplex:
    def test_matches_scipy_on_cover_relaxation(self):
        p = _cover_problem()
        c, a_ub, b_ub, a_eq, b_eq = p.to_matrices()
        mine = solve_lp(c, a_ub, b_ub, a_eq, b_eq)
        reference = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=[(0, 1)] * 5, method="highs")
        assert mine.status == "optimal"
        assert mine.objective == pytest.approx(reference.fun, abs=1e-6)

    def test_equality_constraints(self):
        # min x0 + 2 x1  s.t. x0 + x1 == 1
        result = solve_lp(np.array([1.0, 2.0]), np.zeros((0, 2)), np.zeros(0),
                          np.array([[1.0, 1.0]]), np.array([1.0]))
        assert result.status == "optimal"
        assert result.objective == pytest.approx(1.0)
        np.testing.assert_allclose(result.x, [1.0, 0.0], atol=1e-7)

    def test_infeasible(self):
        # x0 >= 2 with x0 <= 1 is infeasible.
        result = solve_lp(np.array([1.0]), np.array([[-1.0]]), np.array([-2.0]))
        assert result.status == "infeasible"

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_random_lps_match_scipy(self, seed):
        rng = np.random.default_rng(seed)
        n, m = rng.integers(2, 6), rng.integers(1, 5)
        c = rng.uniform(0.1, 2.0, n)
        a_ub = -rng.integers(0, 2, size=(m, n)).astype(float)
        # Ensure each cover row has at least one variable.
        for row in a_ub:
            if not row.any():
                row[rng.integers(0, n)] = -1.0
        b_ub = -np.ones(m)
        mine = solve_lp(c, a_ub, b_ub)
        reference = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=[(0, 1)] * n, method="highs")
        assert mine.status == "optimal" and reference.success
        assert mine.objective == pytest.approx(reference.fun, abs=1e-6)


class TestExactSolvers:
    def test_all_methods_agree_on_cover(self):
        p = _cover_problem()
        results = {
            "scipy": solve_with_scipy(p),
            "bnb": solve_branch_and_bound(p),
            "bnb-simplex": BranchAndBoundSolver(use_scipy_relaxation=False).solve(p),
        }
        for name, result in results.items():
            assert result.is_feasible, name
            assert result.objective == pytest.approx(3.5), name
        greedy = solve_greedy(p)
        assert greedy.is_feasible
        assert greedy.objective >= 3.5 - 1e-9

    def test_infeasible_problem(self):
        p = BinaryLinearProgram()
        p.add_variable("a", 1.0)
        p.add_constraint({0: 1}, ">=", 2)
        assert solve_with_scipy(p).status == SolveStatus.INFEASIBLE
        assert solve_branch_and_bound(p).status == SolveStatus.INFEASIBLE
        assert solve_greedy(p).status == SolveStatus.INFEASIBLE

    def test_empty_problem(self):
        p = BinaryLinearProgram()
        assert solve_blp(p).status == SolveStatus.OPTIMAL

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            solve_blp(_cover_problem(), method="quantum")

    def test_selected_helper(self):
        result = solve_with_scipy(_cover_problem())
        assert result.selected() == [i for i, v in enumerate(result.values) if v]

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_branch_and_bound_matches_scipy_on_random_covers(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 8))
        m = int(rng.integers(2, 6))
        p = BinaryLinearProgram("random")
        for i in range(n):
            p.add_variable(f"x{i}", float(rng.uniform(0.5, 3.0)))
        for _ in range(m):
            members = rng.choice(n, size=rng.integers(1, n), replace=False)
            p.add_constraint({int(i): 1.0 for i in members}, ">=", 1.0)
        exact = solve_with_scipy(p)
        bnb = solve_branch_and_bound(p)
        assert bnb.is_feasible and exact.is_feasible
        assert bnb.objective == pytest.approx(exact.objective, rel=1e-6)
        greedy = solve_greedy(p)
        assert greedy.is_feasible
        assert greedy.objective >= exact.objective - 1e-9
