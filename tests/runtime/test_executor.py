"""Plan execution runtime: kernel libraries, the executor, measured profiling.

Covers the executor end to end: per-primitive kernel dispatch through the
library layer, full-plan equivalence against the operator-level reference on
the case-study blocks, intermediate lifetime accounting, the measured-latency
backend's profile-cache round trip (including the model-version
non-collision guarantee against analytic entries), and re-ranking — injected
timings that invert the analytic order change the solved plan.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import (
    MEASURED_MODEL_VERSION,
    MeasuredBackend,
    default_korch_backends,
)
from repro.backends.measured import features_key
from repro.cache import PersistentProfileCache, backend_fingerprint
from repro.engine import KorchEngine
from repro.engine.config import KorchConfig
from repro.engine.stages import ExecuteStage, ExecutionVerificationError
from repro.ir import GraphBuilder
from repro.runtime import (
    PlanExecutor,
    available_libraries,
    get_library,
    resolve_library,
    torch_available,
    trimmed_mean,
)
from repro.runtime.executable import Executable, KernelLaunch
from repro.runtime.library import NumpyKernelLibrary


def small_graph(name="exec_small"):
    """A small graph with branching reuse (exercises lifetime refcounts)."""
    b = GraphBuilder(name)
    x = b.input("x", (2, 4, 8))
    left = b.exp(b.relu(x))
    right = b.sigmoid(x)
    joined = b.add(left, right)
    b.output(b.reduce_sum(joined, axes=(-1,), keepdims=True))
    return b.build()


@pytest.fixture(scope="module")
def engine():
    with KorchEngine(KorchConfig(gpu="V100")) as eng:
        yield eng


@pytest.fixture(scope="module")
def small_result(engine):
    return engine.optimize(small_graph())


# ------------------------------------------------------------- trimmed mean
class TestTrimmedMean:
    def test_plain_mean_when_nothing_trimmed(self):
        assert trimmed_mean([1.0, 2.0, 3.0], trim=0.0) == pytest.approx(2.0)

    def test_drops_extremes(self):
        # 20% of 5 samples = 1 dropped at each end.
        assert trimmed_mean([100.0, 1.0, 2.0, 3.0, 0.0], trim=0.2) == pytest.approx(2.0)

    def test_single_sample(self):
        assert trimmed_mean([7.0]) == 7.0

    def test_heavy_trim_keeps_median(self):
        assert trimmed_mean([1.0, 2.0, 9.0], trim=0.5) == pytest.approx(2.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            trimmed_mean([])


# ---------------------------------------------------------------- libraries
class TestKernelLibrary:
    def test_numpy_library_runs_primitive_chain(self, attention_pg):
        """Recursive dispatch resolves the intra-kernel dataflow."""
        lib = NumpyKernelLibrary()
        pg = attention_pg
        # One kernel spanning the whole primitive graph.
        from repro.gpu.executor import PrimitiveGraphExecutor

        values = PrimitiveGraphExecutor(pg).source_values({})
        out = lib.run_kernel(list(pg.nodes), values, list(pg.outputs))
        expected = PrimitiveGraphExecutor(pg).run(feeds=None)
        for name in pg.outputs:
            np.testing.assert_allclose(out[name], expected[name], atol=1e-5)

    def test_missing_tensor_raises_key_error(self, attention_pg):
        lib = NumpyKernelLibrary()
        node = attention_pg.nodes[-1]
        with pytest.raises(KeyError):
            lib.run_kernel([node], {}, [node.output])

    def test_registry(self):
        table = available_libraries()
        assert table["numpy"] is True
        assert isinstance(get_library("numpy"), NumpyKernelLibrary)
        with pytest.raises(KeyError):
            get_library("tvm")
        lib = NumpyKernelLibrary()
        assert resolve_library(lib) is lib
        assert isinstance(resolve_library(None), NumpyKernelLibrary)
        assert isinstance(resolve_library("numpy"), NumpyKernelLibrary)

    def test_torch_library_gated(self):
        from repro.runtime.library import TorchKernelLibrary

        if not torch_available():
            with pytest.raises(RuntimeError):
                TorchKernelLibrary()
            return
        lib = TorchKernelLibrary()  # pragma: no cover - torch environments
        value = np.arange(6, dtype=np.float32).reshape(2, 3)
        assert np.array_equal(lib.from_device(lib.to_device(value)), value)


# ----------------------------------------------------------------- executor
class TestPlanExecutor:
    def test_outputs_match_plain_executable_run(self, small_result):
        report = PlanExecutor(small_result).run()
        plain = small_result.executable.run()
        assert set(report.outputs) >= set(small_result.graph.outputs)
        for name in small_result.graph.outputs:
            np.testing.assert_array_equal(report.outputs[name], plain[name])

    def test_verify_against_reference(self, small_result):
        result = PlanExecutor(small_result).verify()
        assert result.equivalent, f"max abs error {result.max_abs_error:.3e}"

    def test_per_kernel_records_and_hook(self, small_result):
        seen = []
        report = PlanExecutor(small_result, on_kernel=seen.append).run()
        assert report.num_kernels == len(seen) == len(report.kernels)
        assert report.num_kernels == small_result.num_kernels
        for execution in report.kernels:
            assert execution.wall_s >= 0.0
            assert execution.predicted_s > 0.0
            assert execution.backend
            assert execution.output_bytes > 0

    def test_lifetime_accounting(self, small_result):
        freeing = PlanExecutor(small_result).run()
        keeping = PlanExecutor(small_result).run(keep_intermediates=True)
        # Keeping every intermediate can only raise the peak, and the
        # freeing run must actually release the dead intermediates.
        assert keeping.freed_bytes == 0
        assert freeing.peak_live_bytes <= keeping.peak_live_bytes
        if small_result.num_kernels > 1:
            assert freeing.freed_bytes > 0

    def test_feeds_flow_through(self, small_result):
        rng = np.random.default_rng(7)
        feeds = {"x": rng.standard_normal((2, 4, 8)).astype(np.float32)}
        report = PlanExecutor(small_result).run(feeds=feeds)
        verification = PlanExecutor(small_result).verify(feeds=feeds)
        assert verification.equivalent
        assert set(small_result.graph.outputs) <= set(report.outputs)

    @pytest.mark.parametrize(
        "name",
        ["candy_block", "efficientvit_block", "segformer_attention"],
    )
    def test_case_blocks_equivalent(self, engine, name):
        from repro.runtime.cli import _model_builders

        result = engine.optimize(_model_builders()[name]())
        verification = PlanExecutor(result).verify()
        assert verification.equivalent, (
            f"{name}: executed plan diverges, max abs error "
            f"{verification.max_abs_error:.3e}"
        )

    def test_unexecutable_plan_raises(self, small_result):
        part = small_result.executable.parts[0]
        bad_launch = KernelLaunch(
            index=0,
            node_names=part.launches[0].node_names,
            inputs=("tensor_from_nowhere",),
            outputs=part.launches[0].outputs,
            backend="cublas",
            latency_s=1e-6,
        )
        bad = Executable(pg=part.pg, strategy=part.strategy, launches=[bad_launch])
        executor = PlanExecutor.for_executable(small_result.graph, bad)
        with pytest.raises(RuntimeError, match="no executable order"):
            executor.run()


# ------------------------------------------------------------- ExecuteStage
class TestExecuteStage:
    def test_runs_and_verifies(self, small_result):
        class Ctx:
            pass

        from repro.partition import GraphPartitioner

        ctx = Ctx()
        ctx.partition = GraphPartitioner().partition(small_result.graph)[0]
        ctx.executable = small_result.executable.parts[0]
        stage = ExecuteStage()
        assert stage.name == "execute"
        stage.run(ctx)
        assert ctx.execution.verification.equivalent
        assert ctx.execution.num_kernels >= 1

    def test_not_in_default_stages(self):
        from repro.engine.stages import DEFAULT_STAGES

        assert not any(isinstance(stage, ExecuteStage) for stage in DEFAULT_STAGES)

    def test_divergence_raises(self, small_result, monkeypatch):
        from repro.partition import GraphPartitioner

        class Ctx:
            pass

        ctx = Ctx()
        ctx.partition = GraphPartitioner().partition(small_result.graph)[0]
        ctx.executable = small_result.executable.parts[0]

        class LyingLibrary(NumpyKernelLibrary):
            name = "lying"

            def compute_node(self, node, inputs):
                return super().compute_node(node, inputs) + 1.0

        with pytest.raises(ExecutionVerificationError):
            ExecuteStage(library=LyingLibrary()).run(ctx)


# ------------------------------------------------------------ engine.execute
class TestEngineExecute:
    def test_execute_with_metrics(self, engine, small_result):
        report = engine.execute(small_result, verify=True)
        assert report.verification.equivalent
        export = engine.metrics.as_dict()
        assert any("korch_runtime_kernel_seconds" in name for name in export)
        assert any("korch_runtime_executions_total" in name for name in export)
        assert any("korch_runtime_verifications_total" in name for name in export)

    def test_execute_measure_attaches_backend(self, engine, small_result):
        report = engine.execute(small_result, measure=True, warmup=0, repeats=2)
        assert report.measurement is not None
        assert len(report.measurement.kernels) == report.num_kernels
        assert report.measured_backend.num_measurements >= 1
        for kernel in report.measurement.kernels:
            assert kernel.measured_s > 0.0
            assert kernel.repeats == 2

    def test_measure_rejects_zero_repeats(self, small_result):
        with pytest.raises(ValueError):
            PlanExecutor(small_result).measure(repeats=0)


# -------------------------------------------------------- measured profiling
class TestMeasuredBackend:
    def test_model_version_never_collides_with_analytic(self):
        measured = backend_fingerprint([MeasuredBackend()])
        analytic = backend_fingerprint(default_korch_backends(True))
        assert MEASURED_MODEL_VERSION == MeasuredBackend.MODEL_VERSION
        assert not set(measured) & set(analytic)

    def test_cache_round_trip(self, engine, small_result):
        measurement = PlanExecutor(small_result).measure(warmup=0, repeats=2)
        backend = MeasuredBackend()
        assert backend.ingest(measurement) == len(measurement.kernels)

        store = engine.store
        measured_cache = PersistentProfileCache(store, engine.spec, [backend])
        written = backend.write_profiles(measured_cache)
        assert written == backend.num_measurements

        # A fresh cache context over the same store and the same backend
        # answers every measured signature; the analytic context keys the
        # same signatures differently, so the measured writes can never
        # shadow (or be shadowed by) the analytic entries the optimization
        # already stored for these exact kernels.
        fresh = PersistentProfileCache(store, engine.spec, [MeasuredBackend()])
        analytic = PersistentProfileCache(store, engine.spec, default_korch_backends())
        for kernel in measurement.kernels:
            assert fresh.key(kernel.signature) != analytic.key(kernel.signature)
            hit, profile, tuned = fresh.get(kernel.signature)
            assert hit and tuned
            assert profile.backend == "measured"
            assert profile.latency_s == pytest.approx(kernel.measured_s)
            analytic_hit, analytic_profile, _ = analytic.get(kernel.signature)
            if analytic_hit:  # the analytic entry survived untouched
                assert analytic_profile.backend != "measured"

    def test_estimate_answers_from_table_then_fallback(self, small_result):
        measurement = PlanExecutor(small_result).measure(warmup=0, repeats=1)
        kernel = measurement.kernels[0]
        backend = MeasuredBackend(fallback=default_korch_backends())
        spec = KorchConfig(gpu="V100").resolve_gpu()

        missing = backend_estimate = backend.estimate(kernel.features, spec)
        assert missing is not None  # fallback answers before any recording
        backend.record(kernel.signature, kernel.features, 0.123)
        assert backend.supports(kernel.features)
        hit = backend.estimate(kernel.features, spec)
        assert hit.latency_s == pytest.approx(0.123)
        assert hit.latency_s != backend_estimate.latency_s
        assert backend.tuning_time_s(kernel.features) == 0.0

    def test_without_fallback_rejects_unmeasured(self, small_result):
        measurement = PlanExecutor(small_result).measure(warmup=0, repeats=1)
        kernel = measurement.kernels[0]
        backend = MeasuredBackend()
        spec = KorchConfig(gpu="V100").resolve_gpu()
        assert not backend.supports(kernel.features)
        assert backend.estimate(kernel.features, spec) is None

    def test_features_key_is_stable_and_hashable(self, small_result):
        measurement = PlanExecutor(small_result).measure(warmup=0, repeats=1)
        for kernel in measurement.kernels:
            key = features_key(kernel.features)
            assert hash(key) == hash(features_key(kernel.features))


# ------------------------------------------------------------------ re-rank
class TestMeasuredReranking:
    def test_injected_timings_change_plan(self):
        """Huge injected latencies on the analytic winners flip the solve."""
        graph = small_graph("rerank_small")
        with KorchEngine(KorchConfig(gpu="V100")) as analytic_engine:
            analytic_result = analytic_engine.optimize(graph)
            measurement = PlanExecutor(analytic_result).measure(warmup=0, repeats=1)

        backend = MeasuredBackend(fallback=default_korch_backends())
        for kernel in measurement.kernels:
            # The analytic plan's kernels become prohibitively slow; every
            # alternative still prices analytically through the fallback.
            backend.record(kernel.signature, kernel.features, 10.0)

        with KorchEngine(KorchConfig(gpu="V100"), backends=[backend]) as engine:
            reranked = engine.optimize(graph)

        def plan_shape(result):
            return sorted(
                tuple(launch.node_names)
                for part in result.executable.parts
                for launch in part.launches
            )

        assert plan_shape(reranked) != plan_shape(analytic_result)

    def test_measured_engine_answers_from_persistent_profiles(self, tmp_path):
        """The full loop: measure → persist → a measured-backend engine
        re-solves with profile lookups served by the persisted entries."""
        graph = small_graph("persist_small")
        cache_dir = tmp_path / "cache"
        with KorchEngine(KorchConfig(gpu="V100", cache_dir=str(cache_dir))) as eng:
            result = eng.optimize(graph)
            report = eng.execute(result, measure=True, warmup=0, repeats=1)
            assert report.measured_backend.num_measurements >= 1

        # Same store, measured fingerprint: the profiler consults the
        # persistent cache before calling estimate, so the measured entries
        # are authoritative for the kernels the plan executed.
        backend = MeasuredBackend(fallback=default_korch_backends())
        with KorchEngine(
            KorchConfig(gpu="V100", cache_dir=str(cache_dir)), backends=[backend]
        ) as eng:
            cache = PersistentProfileCache(eng.store, eng.spec, [backend])
            for kernel in report.measurement.kernels:
                hit, profile, _ = cache.get(kernel.signature)
                assert hit
                assert profile.backend == "measured"
            reranked = eng.optimize(graph)
        assert reranked.num_kernels >= 1
