"""Numeric verification of the fission rules, family by family.

For every fission rule family (softmax, normalization, reduction,
elementwise, linear, layout) build a small operator graph, decompose it with
the fission engine, and assert the primitive graph evaluates equal — within
tolerance — to the operator-level reference executor
(:mod:`repro.runtime.reference`) on small random tensors.  This is the
verification backbone behind the pipeline's structural correctness argument:
the reference executor is intentionally independent of the fission rules and
the primitive implementations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fission import FissionEngine
from repro.ir import GraphBuilder
from repro.runtime.verification import verify_primitive_graph

TOLERANCE = 1e-4


def random_feeds(graph, seed=0, scale=1.0):
    """Small random values for every input and parameter of ``graph``."""
    rng = np.random.default_rng(seed)
    feeds = {}
    for name in list(graph.inputs) + list(graph.params):
        ttype = graph.tensor_type(name)
        if "var" in name:
            # Variance parameters (BatchNorm) must be non-negative.
            feeds[name] = rng.uniform(0.5, 1.5, ttype.shape).astype(np.float32)
        else:
            feeds[name] = (scale * rng.standard_normal(ttype.shape)).astype(np.float32)
    return feeds


def check(graph, seed=0, scale=1.0, tolerance=TOLERANCE):
    pg, report = FissionEngine().run(graph)
    assert report.num_primitives >= report.num_operators
    result = verify_primitive_graph(graph, pg, feeds=random_feeds(graph, seed, scale), tolerance=tolerance)
    assert result.equivalent, (
        f"{graph.name}: fissioned graph diverges, max abs error "
        f"{result.max_abs_error:.3e} > {tolerance}"
    )


# ------------------------------------------------------------------ softmax
class TestSoftmaxFamily:
    @pytest.mark.parametrize("axis", [-1, 3])
    def test_softmax_last_axis(self, axis):
        b = GraphBuilder("softmax_last")
        x = b.input("x", (2, 3, 4, 8))
        b.output(b.softmax(x, axis=axis))
        # Softmax fission uses plain exp/sum (no max subtraction); keep the
        # inputs small so the reference and the primitives are both stable.
        check(b.build(), scale=0.5)

    def test_softmax_inner_axis(self):
        b = GraphBuilder("softmax_inner")
        x = b.input("x", (2, 6, 5))
        b.output(b.softmax(x, axis=1))
        check(b.build(), scale=0.5)

    def test_softmax_of_matmul(self):
        """Softmax composed with the attention MatMuls (Figure 2a)."""
        b = GraphBuilder("softmax_attention")
        q = b.input("q", (1, 2, 8, 4))
        k = b.param("k", (1, 2, 4, 8))
        v = b.param("v", (1, 2, 8, 4))
        b.output(b.matmul(b.softmax(b.matmul(q, k), axis=-1), v))
        check(b.build(), scale=0.3)


# ------------------------------------------------------------ normalization
class TestNormalizationFamily:
    def test_layer_norm(self):
        b = GraphBuilder("layer_norm")
        x = b.input("x", (2, 6, 16))
        b.output(b.layer_norm(x, axis=-1))
        check(b.build())

    def test_instance_norm(self):
        b = GraphBuilder("instance_norm")
        x = b.input("x", (2, 4, 6, 6))
        b.output(b.instance_norm(x))
        check(b.build())

    def test_batch_norm(self):
        b = GraphBuilder("batch_norm")
        x = b.input("x", (2, 5, 4, 4))
        b.output(b.batch_norm(x))
        check(b.build())


# ----------------------------------------------------------------- reduction
class TestReductionFamily:
    @pytest.mark.parametrize("op", ["reduce_sum", "reduce_mean", "reduce_max"])
    @pytest.mark.parametrize("keepdims", [True, False])
    def test_reduce(self, op, keepdims):
        b = GraphBuilder(f"{op}_{keepdims}")
        x = b.input("x", (3, 5, 7))
        b.output(getattr(b, op)(x, axes=(-1,), keepdims=keepdims))
        check(b.build())

    def test_reduce_multiple_axes(self):
        b = GraphBuilder("reduce_axes")
        x = b.input("x", (2, 4, 5, 6))
        b.output(b.reduce_sum(x, axes=(1, 3), keepdims=True))
        check(b.build())

    def test_global_average_pool(self):
        b = GraphBuilder("gap")
        x = b.input("x", (2, 3, 8, 8))
        b.output(b.global_avg_pool(x))
        check(b.build())

    @pytest.mark.parametrize("pool", ["max_pool", "avg_pool"])
    def test_pooling(self, pool):
        b = GraphBuilder(pool)
        x = b.input("x", (1, 4, 8, 8))
        b.output(getattr(b, pool)(x, kernel=2, stride=2))
        check(b.build())


# --------------------------------------------------------------- elementwise
class TestElementwiseFamily:
    @pytest.mark.parametrize(
        "op", ["relu", "sigmoid", "tanh", "exp", "gelu", "silu", "mish", "hard_swish"]
    )
    def test_unary(self, op):
        b = GraphBuilder(op)
        x = b.input("x", (3, 4, 5))
        b.output(getattr(b, op)(x))
        check(b.build())

    @pytest.mark.parametrize("op", ["add", "sub", "mul"])
    def test_binary(self, op):
        b = GraphBuilder(op)
        x = b.input("x", (2, 4, 6))
        y = b.input("y", (2, 4, 6))
        b.output(getattr(b, op)(x, y))
        check(b.build())

    def test_clip_and_leaky_relu(self):
        b = GraphBuilder("clipleaky")
        x = b.input("x", (4, 8))
        b.output(b.clip(x, 0.0, 6.0), b.leaky_relu(x, alpha=0.1))
        check(b.build())


# -------------------------------------------------------------------- linear
class TestLinearFamily:
    def test_matmul(self):
        b = GraphBuilder("matmul")
        x = b.input("x", (2, 5, 6))
        w = b.param("w", (2, 6, 4))
        b.output(b.matmul(x, w))
        check(b.build())

    def test_gemm_with_bias(self):
        b = GraphBuilder("gemm")
        x = b.input("x", (5, 6))
        b.output(b.linear(x, out_features=3))
        check(b.build())

    def test_conv2d(self):
        b = GraphBuilder("conv")
        x = b.input("x", (1, 3, 8, 8))
        b.output(b.conv2d(x, out_channels=4, kernel=3))
        check(b.build())

    def test_conv_transpose2d(self):
        b = GraphBuilder("convt")
        x = b.input("x", (1, 4, 6, 6))
        b.output(b.conv_transpose2d(x, out_channels=2))
        check(b.build())


# -------------------------------------------------------------------- layout
class TestLayoutFamily:
    def test_transpose_reshape_concat_slice(self):
        b = GraphBuilder("layout_mix")
        x = b.input("x", (2, 3, 4))
        t = b.transpose(x, (0, 2, 1))
        r = b.reshape(t, (2, 12))
        y = b.input("y", (2, 12))
        c = b.concat([r, y], axis=1)
        s = b.slice(c, starts=(0,), ends=(16,), axes=(1,))
        b.output(s)
        check(b.build())

    def test_pad_and_resize(self):
        b = GraphBuilder("pad_resize")
        x = b.input("x", (1, 2, 4, 4))
        p = b.pad(x, (0, 0, 1, 1, 0, 0, 1, 1))
        b.output(b.resize(p, scale=2.0))
        check(b.build())

    def test_split(self):
        b = GraphBuilder("split")
        x = b.input("x", (2, 8, 4))
        parts = b.split(x, num=2, axis=1)
        b.output(*parts)
        check(b.build())


# ------------------------------------------------------------------ combined
def test_attention_block_end_to_end(attention_graph):
    check(attention_graph, scale=0.3)


def test_candy_block_end_to_end(candy_block_graph):
    check(candy_block_graph)
