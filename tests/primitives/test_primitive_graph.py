"""PrimitiveGraph structure: producers, topological order, subset I/O, copy."""

import numpy as np
import pytest

from repro.ir import TensorType
from repro.primitives import (
    ElementwisePrimitive,
    PrimitiveGraph,
    PrimitiveGraphError,
    ReducePrimitive,
)


def _chain_graph():
    pg = PrimitiveGraph("chain")
    x = pg.add_input("x", TensorType((4, 8)))
    a = pg.add_node(ElementwisePrimitive("Exp"), [x], name="exp")
    b = pg.add_node(ReducePrimitive("Sum", axes=(-1,)), [a.output], name="sum")
    c = pg.add_node(ElementwisePrimitive("Div"), [a.output, b.output], name="div")
    pg.add_output(c.output)
    return pg, (a, b, c)


class TestPrimitiveGraph:
    def test_structure(self):
        pg, (a, b, c) = _chain_graph()
        assert pg.producer(a.output) is a
        assert pg.consumers(a.output) == [b, c]
        assert pg.predecessors(c) == [a, b]
        assert pg.successors(a) == [b, c]
        assert [n.name for n in pg.topological_order()] == ["exp", "sum", "div"]
        pg.validate()

    def test_output_type_inference(self):
        pg, (a, b, c) = _chain_graph()
        assert pg.tensor_type(b.output).shape == (4, 1)
        assert pg.tensor_type(c.output).shape == (4, 8)

    def test_subset_io(self):
        pg, (a, b, c) = _chain_graph()
        ins, outs = pg.subset_io([a, b])
        assert ins == ["x"]
        assert sorted(outs) == sorted([a.output, b.output])
        ins, outs = pg.subset_io([c])
        assert set(ins) == {a.output, b.output}
        assert outs == [c.output]
        ins, outs = pg.subset_io([a, b, c])
        assert ins == ["x"] and outs == [c.output]

    def test_ancestors_and_reachability(self):
        pg, (a, b, c) = _chain_graph()
        assert pg.ancestors(c) == {"exp", "sum"}
        reach = pg.reachability()
        assert reach["exp"] == {"sum", "div"}
        assert reach["div"] == frozenset()

    def test_duplicate_producer_rejected(self):
        pg, (a, b, c) = _chain_graph()
        with pytest.raises(PrimitiveGraphError):
            pg.add_node(ElementwisePrimitive("Relu"), ["x"], output=a.output)

    def test_unknown_input_rejected(self):
        pg = PrimitiveGraph("g")
        with pytest.raises(PrimitiveGraphError):
            pg.add_node(ElementwisePrimitive("Relu"), ["missing"])

    def test_copy_is_independent(self):
        pg, (a, b, c) = _chain_graph()
        clone = pg.copy()
        clone.remove_node(clone.node("div"))
        assert len(clone.nodes) == 2
        assert len(pg.nodes) == 3
        pg.validate()

    def test_rename_output(self):
        pg, (a, b, c) = _chain_graph()
        pg.rename_output(c, "final")
        assert pg.outputs == ["final"]
        assert pg.producer("final") is c

    def test_constants_and_params(self):
        pg = PrimitiveGraph("g")
        pg.add_input("x", TensorType((2, 2)))
        pg.add_param("w", TensorType((2, 2)))
        pg.add_constant("ones", np.ones((2, 2), dtype=np.float32))
        assert pg.is_source_tensor("w") and pg.is_source_tensor("ones")
        node = pg.add_node(ElementwisePrimitive("Add"), ["x", "ones"])
        pg.add_output(node.output)
        pg.validate()
        assert pg.category_histogram() == {"elementwise": 1}
        assert pg.stats()["num_primitives"] == 1

    def test_reserved_names_avoid_collisions(self):
        pg = PrimitiveGraph("g")
        pg.reserve_names(["exp_0"])
        assert pg.unique_name("exp") != "exp_0"

    def test_cycle_detection(self):
        pg = PrimitiveGraph("g")
        pg.add_input("x", TensorType((2,)))
        a = pg.add_node(ElementwisePrimitive("Relu"), ["x"], name="a")
        # Manually create a cycle by rewiring inputs.
        a.inputs = [a.output]
        with pytest.raises(PrimitiveGraphError):
            pg.topological_order()
