"""Semantics of each primitive category against numpy references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays
from scipy import special

from repro.ir import TensorType
from repro.primitives import (
    ELEMENTWISE_OPS,
    BroadcastPrimitive,
    ConvPrimitive,
    ConvTransposePrimitive,
    ElementwisePrimitive,
    LayoutPrimitive,
    MatMulPrimitive,
    OpaquePrimitive,
    PrimitiveCategory,
    ReducePrimitive,
    WindowReducePrimitive,
    category_of_operator,
)

small_arrays = arrays(
    np.float32,
    array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=5),
    elements=st.floats(-2, 2, width=32),
)


class TestElementwise:
    @pytest.mark.parametrize("op,fn", [
        ("Exp", np.exp), ("Sqrt", lambda x: np.sqrt(np.abs(x))), ("Relu", lambda x: np.maximum(x, 0)),
        ("Sigmoid", special.expit), ("Tanh", np.tanh), ("Erf", special.erf), ("Neg", np.negative),
    ])
    def test_unary(self, op, fn):
        prim = ElementwisePrimitive(op)
        x = np.linspace(0.1, 2.0, 12, dtype=np.float32).reshape(3, 4)
        expected = fn(x) if op != "Sqrt" else np.sqrt(x)
        np.testing.assert_allclose(prim.compute([x]), expected, rtol=1e-6)

    @pytest.mark.parametrize("op,fn", [
        ("Add", np.add), ("Sub", np.subtract), ("Mul", np.multiply),
        ("Div", np.divide), ("Maximum", np.maximum), ("Minimum", np.minimum),
    ])
    def test_binary(self, op, fn):
        prim = ElementwisePrimitive(op)
        a = np.arange(1, 13, dtype=np.float32).reshape(3, 4)
        c = np.full((3, 4), 2.0, dtype=np.float32)
        np.testing.assert_allclose(prim.compute([a, c]), fn(a, c))

    def test_broadcasting_binary(self):
        prim = ElementwisePrimitive("Add")
        a = np.ones((2, 3, 4), dtype=np.float32)
        bias = np.arange(4, dtype=np.float32)
        out = prim.compute([a, bias])
        assert out.shape == (2, 3, 4)
        assert prim.infer_type([TensorType((2, 3, 4)), TensorType((4,))]).shape == (2, 3, 4)

    def test_leaky_relu_and_clip_attrs(self):
        x = np.array([-2.0, 3.0], dtype=np.float32)
        np.testing.assert_allclose(
            ElementwisePrimitive("LeakyRelu", alpha=0.2).compute([x]), [-0.4, 3.0]
        )
        np.testing.assert_allclose(
            ElementwisePrimitive("Clip", min=0.0, max=1.0).compute([x]), [0.0, 1.0]
        )

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            ElementwisePrimitive("Conv")

    def test_arity_and_flops(self):
        add = ElementwisePrimitive("Add")
        assert add.arity == 2
        assert add.flops([TensorType((4,)), TensorType((4,))], TensorType((4,))) == 4
        sig = ElementwisePrimitive("Sigmoid")
        assert sig.arity == 1
        assert sig.flops([TensorType((4,))], TensorType((4,))) == 8

    def test_equality_and_hash(self):
        assert ElementwisePrimitive("Add") == ElementwisePrimitive("Add")
        assert ElementwisePrimitive("Clip", min=0.0, max=6.0) != ElementwisePrimitive("Clip", min=0.0, max=1.0)
        assert hash(ElementwisePrimitive("Exp")) == hash(ElementwisePrimitive("Exp"))

    @given(small_arrays)
    @settings(max_examples=25, deadline=None)
    def test_exp_matches_numpy(self, x):
        np.testing.assert_allclose(ElementwisePrimitive("Exp").compute([x]), np.exp(x), rtol=1e-5)

    def test_all_ops_listed(self):
        assert "Add" in ELEMENTWISE_OPS and "Erf" in ELEMENTWISE_OPS


class TestReduceBroadcast:
    @pytest.mark.parametrize("op,fn", [("Sum", np.sum), ("Mean", np.mean), ("Max", np.max)])
    def test_reduce(self, op, fn):
        x = np.random.default_rng(0).normal(size=(2, 3, 4)).astype(np.float32)
        prim = ReducePrimitive(op, axes=(-1,), keepdims=True)
        np.testing.assert_allclose(prim.compute([x]), fn(x, axis=-1, keepdims=True), rtol=1e-6)
        assert prim.infer_type([TensorType((2, 3, 4))]).shape == (2, 3, 1)

    def test_reduce_no_keepdims(self):
        prim = ReducePrimitive("Sum", axes=(0, 2), keepdims=False)
        assert prim.infer_type([TensorType((2, 3, 4))]).shape == (3,)

    def test_reduce_flops(self):
        prim = ReducePrimitive("Mean", axes=(-1,))
        assert prim.flops([TensorType((2, 8))], TensorType((2, 1))) == 18

    def test_broadcast(self):
        x = np.arange(6, dtype=np.float32).reshape(2, 3, 1)
        prim = BroadcastPrimitive(axis=2, size=4)
        out = prim.compute([x])
        assert out.shape == (2, 3, 4)
        np.testing.assert_allclose(out, np.broadcast_to(x, (2, 3, 4)))
        assert prim.flops([TensorType((2, 3, 1))], TensorType((2, 3, 4))) == 0

    def test_broadcast_requires_unit_axis(self):
        with pytest.raises(ValueError):
            BroadcastPrimitive(axis=1, size=4).infer_type([TensorType((2, 3))])

    def test_window_reduce_matches_naive(self):
        x = np.random.default_rng(1).normal(size=(1, 2, 6, 6)).astype(np.float32)
        prim = WindowReducePrimitive("Max", kernel=(2, 2), strides=(2, 2))
        out = prim.compute([x])
        assert out.shape == (1, 2, 3, 3)
        assert np.isclose(out[0, 0, 0, 0], x[0, 0, :2, :2].max())
        assert prim.infer_type([TensorType((1, 2, 6, 6))]).shape == (1, 2, 3, 3)

    def test_invalid_reduce_op(self):
        with pytest.raises(ValueError):
            ReducePrimitive("Prod")


class TestLayout:
    def test_transpose_reshape(self):
        x = np.arange(24, dtype=np.float32).reshape(2, 3, 4)
        t = LayoutPrimitive("Transpose", perm=(2, 0, 1))
        np.testing.assert_array_equal(t.compute([x]), x.transpose(2, 0, 1))
        r = LayoutPrimitive("Reshape", shape=(6, 4))
        np.testing.assert_array_equal(r.compute([x]), x.reshape(6, 4))

    def test_slice_pad_concat(self):
        x = np.arange(12, dtype=np.float32).reshape(3, 4)
        s = LayoutPrimitive("Slice", starts=(1,), ends=(3,), axes=(1,), steps=(1,))
        np.testing.assert_array_equal(s.compute([x]), x[:, 1:3])
        p = LayoutPrimitive("Pad", pads=(0, 1, 0, 1), value=0.0)
        assert p.compute([x]).shape == (3, 6)
        c = LayoutPrimitive("Concat", axis=0)
        np.testing.assert_array_equal(c.compute([x, x]), np.concatenate([x, x], axis=0))
        assert c.infer_type([TensorType((3, 4)), TensorType((3, 4))]).shape == (6, 4)

    def test_resize_nearest(self):
        x = np.arange(4, dtype=np.float32).reshape(1, 1, 2, 2)
        prim = LayoutPrimitive("Resize", sizes=(1, 1, 4, 4), mode="nearest")
        out = prim.compute([x])
        assert out.shape == (1, 1, 4, 4)
        assert out[0, 0, 0, 0] == x[0, 0, 0, 0]
        assert out[0, 0, 3, 3] == x[0, 0, 1, 1]

    def test_resize_bilinear_preserves_constant(self):
        x = np.full((1, 1, 4, 4), 3.5, dtype=np.float32)
        prim = LayoutPrimitive("Resize", sizes=(1, 1, 8, 8), mode="bilinear")
        np.testing.assert_allclose(prim.compute([x]), 3.5, rtol=1e-6)

    def test_zero_flops(self):
        prim = LayoutPrimitive("Transpose", perm=(1, 0))
        assert prim.flops([TensorType((2, 3))], TensorType((3, 2))) == 0
        assert prim.category is PrimitiveCategory.LAYOUT

    def test_bad_reshape(self):
        with pytest.raises(ValueError):
            LayoutPrimitive("Reshape", shape=(5, 5)).infer_type([TensorType((2, 3))])


class TestLinear:
    def test_matmul_batched(self):
        a = np.random.default_rng(0).normal(size=(2, 3, 4)).astype(np.float32)
        w = np.random.default_rng(1).normal(size=(4, 5)).astype(np.float32)
        prim = MatMulPrimitive()
        np.testing.assert_allclose(prim.compute([a, w]), a @ w, rtol=1e-5)
        assert prim.infer_type([TensorType((2, 3, 4)), TensorType((4, 5))]).shape == (2, 3, 5)
        assert prim.flops([TensorType((3, 4)), TensorType((4, 5))], TensorType((3, 5))) == 2 * 3 * 5 * 4
        assert prim.gemm_dims([TensorType((2, 3, 4)), TensorType((2, 4, 5))]) == (2, 3, 5, 4)

    def test_conv_against_scipy(self):
        from scipy.signal import correlate

        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 3, 9, 9)).astype(np.float32)
        w = rng.normal(size=(4, 3, 3, 3)).astype(np.float32)
        prim = ConvPrimitive(strides=(1, 1), pads=(1, 1, 1, 1))
        out = prim.compute([x, w])
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        expected = np.zeros_like(out)
        for o in range(4):
            for c in range(3):
                expected[0, o] += correlate(xp[0, c], w[o, c], mode="valid")
        np.testing.assert_allclose(out, expected, atol=1e-4)

    def test_conv_stride_and_groups(self):
        prim = ConvPrimitive(strides=(2, 2), pads=(1, 1, 1, 1), group=2)
        out_type = prim.infer_type([TensorType((1, 4, 8, 8)), TensorType((6, 2, 3, 3))])
        assert out_type.shape == (1, 6, 4, 4)

    def test_conv_channel_mismatch(self):
        with pytest.raises(ValueError):
            ConvPrimitive().infer_type([TensorType((1, 4, 8, 8)), TensorType((6, 3, 3, 3))])

    def test_conv_transpose_shape_and_value(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(1, 2, 4, 4)).astype(np.float32)
        w = rng.normal(size=(2, 3, 3, 3)).astype(np.float32)
        prim = ConvTransposePrimitive(strides=(2, 2), pads=(1, 1, 1, 1), output_padding=(1, 1))
        out = prim.compute([x, w])
        assert out.shape == (1, 3, 8, 8)
        assert prim.infer_type([TensorType(x.shape), TensorType(w.shape)]).shape == (1, 3, 8, 8)

    def test_linear_category(self):
        assert MatMulPrimitive().is_linear
        assert not MatMulPrimitive().is_memory_bound


class TestOpaqueAndRegistry:
    def test_opaque(self):
        prim = OpaquePrimitive("TopK.values", TensorType((2, 3)), compute_fn=lambda xs: xs[0][:, :3])
        assert prim.category is PrimitiveCategory.OPAQUE
        assert prim.infer_type([TensorType((2, 10))]).shape == (2, 3)
        out = prim.compute([np.arange(20).reshape(2, 10)])
        assert out.shape == (2, 3)

    def test_opaque_without_impl(self):
        prim = OpaquePrimitive("Mystery", TensorType((1,)))
        with pytest.raises(NotImplementedError):
            prim.compute([np.zeros(1)])

    def test_table1_categories(self):
        assert category_of_operator("Relu") is PrimitiveCategory.ELEMENTWISE
        assert category_of_operator("MaxPool") is PrimitiveCategory.REDUCE
        assert category_of_operator("Transpose") is PrimitiveCategory.LAYOUT
        assert category_of_operator("Conv") is PrimitiveCategory.LINEAR
        assert category_of_operator("TopK") is PrimitiveCategory.OPAQUE
        assert category_of_operator("Softmax") is None  # composite: fission expands it

    def test_memory_bound_classification(self):
        assert PrimitiveCategory.ELEMENTWISE.is_memory_bound
        assert not PrimitiveCategory.LINEAR.is_memory_bound
