"""The ``python -m repro.metrics dump`` smoke: exports must show a live
instrumented path (non-zero service histograms and cache activity)."""

import json

from repro.metrics.cli import main


class TestDump:
    def test_json_dump_has_live_series(self, capsys):
        assert main(["dump", "--requests", "2", "--workers", "1"]) == 0
        payload = json.loads(capsys.readouterr().out)
        run = payload["korch_service_run_seconds"]["values"][0]
        assert run["count"] == 2 and run["sum"] > 0.0
        wait = payload["korch_service_queue_wait_seconds"]["values"][0]
        assert wait["count"] == 2
        stages = payload["korch_engine_stage_seconds"]["values"]
        assert {v["labels"]["stage"] for v in stages} >= {"fission", "solve"}

    def test_prometheus_dump_is_exposition_format(self, capsys):
        assert main(["dump", "--requests", "2", "--workers", "1", "--format", "prometheus"]) == 0
        text = capsys.readouterr().out
        assert "# TYPE korch_service_run_seconds histogram" in text
        assert 'korch_service_requests_total{outcome="completed"} 2' in text
        assert "korch_service_queue_wait_seconds_bucket" in text
