"""Unit tests for the AIMD admission controller (deterministic, no timers)."""

import pytest

from repro.engine import AdmissionConfig, AdmissionController


def feed(controller, samples):
    """Feed samples; return the list of non-None decisions."""
    return [d for d in (controller.observe(s) for s in samples) if d is not None]


class TestAdmissionConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(slo_p99_queue_wait_s=0.0)
        with pytest.raises(ValueError):
            AdmissionConfig(slo_p99_queue_wait_s=1.0, min_pending=0)
        with pytest.raises(ValueError):
            AdmissionConfig(slo_p99_queue_wait_s=1.0, min_pending=8, max_pending=4)
        with pytest.raises(ValueError):
            AdmissionConfig(slo_p99_queue_wait_s=1.0, shrink_factor=1.0)
        with pytest.raises(ValueError):
            AdmissionConfig(slo_p99_queue_wait_s=1.0, healthy_fraction=0.0)


class TestAdmissionController:
    def test_starts_at_max_pending(self):
        c = AdmissionController(AdmissionConfig(slo_p99_queue_wait_s=1.0, max_pending=8))
        assert c.cap == 8

    def test_no_decision_until_window_fills(self):
        c = AdmissionController(
            AdmissionConfig(slo_p99_queue_wait_s=1.0, max_pending=8, window=4)
        )
        assert feed(c, [5.0, 5.0, 5.0]) == []
        assert c.cap == 8
        assert c.observe(5.0) == "shrink"

    def test_multiplicative_shrink_on_breach(self):
        c = AdmissionController(
            AdmissionConfig(slo_p99_queue_wait_s=1.0, max_pending=8, window=4)
        )
        assert feed(c, [5.0] * 4) == ["shrink"]
        assert c.cap == 4
        assert feed(c, [5.0] * 4) == ["shrink"]
        assert c.cap == 2
        assert c.last_window_p99_s == pytest.approx(5.0)
        assert c.shrinks == 2

    def test_shrink_respects_min_pending(self):
        c = AdmissionController(
            AdmissionConfig(
                slo_p99_queue_wait_s=1.0, min_pending=2, max_pending=8, window=2
            )
        )
        feed(c, [5.0] * 8)
        assert c.cap == 2
        # Once at the floor the controller reports no further change.
        assert feed(c, [5.0] * 2) == []
        assert c.cap == 2

    def test_additive_growth_when_healthy(self):
        c = AdmissionController(
            AdmissionConfig(slo_p99_queue_wait_s=1.0, max_pending=8, window=4)
        )
        feed(c, [5.0] * 8)  # shrink to 2
        assert c.cap == 2
        assert feed(c, [0.1] * 4) == ["grow"]
        assert c.cap == 3
        assert c.grows == 1

    def test_hysteresis_band_makes_no_change(self):
        # p99 between healthy_fraction*slo and slo: neither shrink nor grow.
        c = AdmissionController(
            AdmissionConfig(
                slo_p99_queue_wait_s=1.0, max_pending=8, window=4, healthy_fraction=0.5
            )
        )
        feed(c, [5.0] * 8)  # shrink to 2
        assert feed(c, [0.8] * 4) == []
        assert c.cap == 2

    def test_growth_capped_at_max_pending(self):
        c = AdmissionController(
            AdmissionConfig(slo_p99_queue_wait_s=1.0, max_pending=4, window=2)
        )
        assert feed(c, [0.1] * 6) == []
        assert c.cap == 4

    def test_p99_is_nearest_rank_not_mean(self):
        # Nearest-rank p99 of a 100-sample window is the 99th order statistic:
        # a single outlier is tolerated, two slow requests trigger backoff.
        config = AdmissionConfig(slo_p99_queue_wait_s=1.0, max_pending=8, window=100)
        tolerant = AdmissionController(config)
        assert feed(tolerant, [0.01] * 99 + [10.0]) == []
        assert tolerant.last_window_p99_s == pytest.approx(0.01)
        strict = AdmissionController(config)
        assert feed(strict, [0.01] * 98 + [10.0, 10.0]) == ["shrink"]
        assert strict.last_window_p99_s == pytest.approx(10.0)

    def test_recovery_round_trip(self):
        c = AdmissionController(
            AdmissionConfig(slo_p99_queue_wait_s=1.0, max_pending=8, window=4)
        )
        feed(c, [5.0] * 4)
        assert c.cap == 4
        # Six healthy windows walk the cap back up to the ceiling.
        feed(c, [0.1] * 24)
        assert c.cap == 8
        stats = c.as_dict()
        assert stats["shrinks"] == 1
        assert stats["grows"] == 4
        assert stats["cap"] == 8
