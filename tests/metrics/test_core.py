"""Unit tests for the metrics primitives and registry export formats."""

import json

import pytest

from repro.metrics import DEFAULT_LATENCY_BUCKETS, Counter, Gauge, Histogram, MetricRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter()
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increment(self):
        c = Counter()
        with pytest.raises(ValueError):
            c.inc(-1.0)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(4.0)
        g.inc()
        g.dec(2.0)
        assert g.value == 3.0


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self):
        h = Histogram(buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 100.0):
            h.observe(value)
        counts = dict(h.bucket_counts())
        assert counts[1.0] == 1
        assert counts[2.0] == 2
        assert counts[4.0] == 3
        assert counts[float("inf")] == 4

    def test_quantiles_interpolate_and_clamp(self):
        h = Histogram(buckets=(1.0, 2.0, 4.0))
        for _ in range(2):
            h.observe(1.5)
        for _ in range(2):
            h.observe(3.0)
        s = h.summary()
        assert s["count"] == 4
        assert s["sum"] == pytest.approx(9.0)
        assert s["mean"] == pytest.approx(2.25)
        # p50 falls on the boundary of the (1, 2] bucket; p99 is clamped to
        # the observed maximum rather than the bucket upper bound (4.0).
        assert s["p50"] == pytest.approx(2.0)
        assert s["p99"] == pytest.approx(3.0)
        assert s["min"] == pytest.approx(1.5)
        assert s["max"] == pytest.approx(3.0)

    def test_empty_histogram_summary_is_all_zero(self):
        s = Histogram().summary()
        assert s["count"] == 0
        assert s["sum"] == 0.0
        assert s["p50"] == 0.0
        assert s["p99"] == 0.0

    def test_quantile_never_exceeds_observed_range(self):
        h = Histogram(buckets=DEFAULT_LATENCY_BUCKETS)
        h.observe(0.0123)
        s = h.summary()
        assert s["p50"] == pytest.approx(0.0123)
        assert s["p99"] == pytest.approx(0.0123)

    def test_rejects_duplicate_and_infinite_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, float("inf")))


class TestRegistry:
    def test_get_or_create_returns_same_metric(self):
        r = MetricRegistry()
        a = r.counter("c", "help")
        b = r.counter("c", "help")
        assert a is b

    def test_kind_mismatch_raises(self):
        r = MetricRegistry()
        r.counter("c", "help")
        with pytest.raises(ValueError):
            r.gauge("c", "help")

    def test_label_mismatch_raises(self):
        r = MetricRegistry()
        r.counter("c", "help", labelnames=("cause",))
        with pytest.raises(ValueError):
            r.counter("c", "help", labelnames=("other",))

    def test_labeled_family_children_are_distinct(self):
        r = MetricRegistry()
        fam = r.counter("rej", "help", labelnames=("cause",))
        fam.labels(cause="overloaded").inc()
        fam.labels(cause="closed").inc(2)
        fam.labels(cause="overloaded").inc()
        data = r.as_dict()["rej"]
        by_cause = {v["labels"]["cause"]: v["value"] for v in data["values"]}
        assert by_cause == {"overloaded": 2.0, "closed": 2.0}

    def test_json_export_round_trips(self):
        r = MetricRegistry()
        r.gauge("g", "a gauge").set(7)
        payload = json.loads(r.render_json())
        assert payload["g"]["type"] == "gauge"
        assert payload["g"]["values"][0]["value"] == 7.0

    def test_prometheus_export_shape(self):
        r = MetricRegistry()
        h = r.histogram("lat_seconds", "latency", buckets=(1.0, 2.0))
        h.observe(1.5)
        r.counter("req_total", "requests", labelnames=("outcome",)).labels(
            outcome="ok"
        ).inc()
        text = r.render_prometheus()
        assert "# TYPE lat_seconds histogram" in text
        assert 'lat_seconds_bucket{le="1"} 0' in text
        assert 'lat_seconds_bucket{le="2"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_count 1" in text
        assert 'req_total{outcome="ok"} 1' in text

    def test_collectors_run_before_export(self):
        r = MetricRegistry()
        g = r.gauge("live", "refreshed at export")
        state = {"value": 0}
        r.add_collector(lambda: g.set(state["value"]))
        state["value"] = 42
        assert r.as_dict()["live"]["values"][0]["value"] == 42.0

    def test_concurrent_observe_is_consistent(self):
        import threading

        r = MetricRegistry()
        h = r.histogram("lat", "help", buckets=(1.0,))
        c = r.counter("num", "help")

        def work():
            for _ in range(1000):
                h.observe(0.5)
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 4000.0
        assert h.summary()["count"] == 4000
