"""Partitioner, runtime executables, verification and the end-to-end pipeline."""

import numpy as np
import pytest

from repro.fission import FissionEngine
from repro.gpu import V100
from repro.ir import GraphBuilder
from repro.orchestration import KernelOrchestrationOptimizer
from repro.partition import GraphPartitioner, PartitionConfig, partition_graph
from repro.pipeline import KorchConfig, KorchPipeline, optimize_model
from repro.runtime import (
    Executable,
    ReferenceExecutor,
    verify_executable,
    verify_model_executable,
    verify_primitive_graph,
)
from repro.transforms import PrimitiveGraphOptimizer


def _deep_graph(depth: int = 24):
    b = GraphBuilder("deep")
    x = b.input("x", (1, 8, 16, 16))
    y = x
    for index in range(depth):
        if index % 4 == 0:
            y = b.conv2d(y, 8, 3, name=f"conv{index}")
        elif index % 4 == 1:
            y = b.relu(y)
        elif index % 4 == 2:
            y = b.sigmoid(y)
        else:
            y = b.add(y, x) if b.shape(y) == b.shape(x) else b.exp(y)
    b.output(y)
    return b.build()


class TestPartitioner:
    def test_partitions_cover_and_respect_limits(self):
        graph = _deep_graph()
        config = PartitionConfig(max_operators=6, hard_limit=8)
        partitions = GraphPartitioner(config).partition(graph)
        names = [name for p in partitions for name in p.node_names]
        assert sorted(names) == sorted(n.name for n in graph.nodes)
        assert all(p.num_operators <= config.hard_limit for p in partitions)
        assert len(partitions) >= graph.num_nodes // config.hard_limit

    def test_partition_graphs_are_valid(self):
        graph = _deep_graph()
        for partition in partition_graph(graph, max_operators=6):
            partition.graph.topological_order()
            assert partition.boundary_outputs

    def test_concatenated_execution_matches_reference(self):
        graph = _deep_graph(12)
        reference = ReferenceExecutor(graph).run()
        memory = {}
        for partition in partition_graph(graph, max_operators=5):
            outputs = ReferenceExecutor(partition.graph).run(memory)
            memory.update(outputs)
        for name, expected in reference.items():
            np.testing.assert_allclose(memory[name], expected, atol=1e-4)

    def test_small_graph_single_partition(self, attention_graph):
        partitions = partition_graph(attention_graph, max_operators=10)
        assert len(partitions) == 1


class TestTransforms:
    def test_simplify_and_matmul_transforms_preserve_semantics(self, attention_graph, v100):
        pg, _ = FissionEngine().run(attention_graph)
        optimized, report = PrimitiveGraphOptimizer(v100).optimize(pg)
        optimized.validate()
        assert report.final_cost_s <= report.initial_cost_s + 1e-12
        result = verify_primitive_graph(attention_graph, optimized)
        assert result.equivalent, result.per_output_error

    def test_reduce_to_matmul_applied_on_softmax_matmul(self, attention_graph, v100):
        """Figure 2b: the softmax reduction can be turned into a MatMul."""
        from repro.transforms import ReduceSumToMatMul

        pg, _ = FissionEngine().run(attention_graph)
        sites = ReduceSumToMatMul().find_sites(pg)
        assert sites
        rewritten = ReduceSumToMatMul().apply(pg, sites[0])
        assert sum(1 for n in rewritten.nodes if n.is_linear) == sum(
            1 for n in pg.nodes if n.is_linear
        ) + 1
        assert verify_primitive_graph(attention_graph, rewritten).equivalent

    def test_identity_elimination(self, v100):
        from repro.transforms import IdentityElimination

        b = GraphBuilder("idg")
        x = b.input("x", (4, 4))
        y = b.op("Identity", b.relu(x))
        b.output(b.exp(y))
        graph = b.build()
        pg, _ = FissionEngine().run(graph)
        transform = IdentityElimination()
        sites = transform.find_sites(pg)
        assert sites
        rewritten = transform.apply(pg, sites[0])
        assert len(rewritten.nodes) == len(pg.nodes) - 1
        assert verify_primitive_graph(graph, rewritten).equivalent


class TestRuntime:
    def test_executable_matches_reference(self, attention_graph, v100):
        pg, _ = FissionEngine().run(attention_graph)
        strategy = KernelOrchestrationOptimizer(v100).optimize(pg).strategy
        executable = Executable.from_strategy(strategy)
        assert executable.num_kernels == strategy.num_kernels
        assert executable.predicted_latency_s == pytest.approx(strategy.total_latency_s)
        result = verify_executable(attention_graph, executable)
        assert result.equivalent, result.per_output_error
        assert executable.peak_memory_bytes() > 0

    def test_executable_with_feeds(self, candy_block_graph, v100):
        pg, _ = FissionEngine().run(candy_block_graph)
        strategy = KernelOrchestrationOptimizer(v100).optimize(pg).strategy
        executable = Executable.from_strategy(strategy)
        feeds = {"x": np.random.default_rng(0).normal(size=(1, 8, 16, 16)).astype(np.float32)}
        reference = ReferenceExecutor(candy_block_graph).run(feeds)
        outputs = executable.run(feeds)
        for name, expected in reference.items():
            np.testing.assert_allclose(outputs[name], expected, atol=1e-4)

    def test_verification_detects_mismatch(self, candy_block_graph):
        b = GraphBuilder("other")
        x = b.input("x", (1, 8, 16, 16))
        b.output(b.relu(x))
        wrong_pg, _ = FissionEngine().run(b.build())
        # Compare candy block against an unrelated primitive graph: outputs differ.
        result = verify_primitive_graph(candy_block_graph, wrong_pg)
        assert not result.equivalent


class TestPipeline:
    def test_end_to_end_small_model(self, v100):
        graph = _deep_graph(16)
        config = KorchConfig(gpu="V100", partition=PartitionConfig(max_operators=6))
        result = KorchPipeline(config).optimize(graph)
        assert result.latency_ms > 0
        assert result.num_kernels <= result.num_primitives
        assert len(result.partitions) >= 2
        verification = verify_model_executable(graph, result.executable)
        assert verification.equivalent, verification.per_output_error
        summary = result.summary()
        assert summary["model"] == "deep" and summary["gpu"] == "V100"

    def test_pipeline_beats_unfused_baseline(self, v100):
        from repro.baselines import UnfusedBaseline

        graph = _deep_graph(16)
        result = optimize_model(graph, gpu="V100")
        unfused = UnfusedBaseline(v100).run(graph)
        assert result.latency_s < unfused.total_latency_s

    def test_graph_optimizer_toggle(self, attention_graph):
        fast = optimize_model(attention_graph, gpu="V100", enable_graph_optimizer=False)
        optimized = optimize_model(attention_graph, gpu="V100", enable_graph_optimizer=True)
        assert optimized.latency_s <= fast.latency_s * 1.05

    def test_a100_faster_than_v100(self, attention_graph):
        v100_result = optimize_model(attention_graph, gpu="V100")
        a100_result = optimize_model(attention_graph, gpu="A100")
        assert a100_result.latency_s < v100_result.latency_s

    def test_tuning_report_populated(self, candy_block_graph):
        result = optimize_model(candy_block_graph, gpu="V100")
        assert result.tuning.num_candidates > 0
        assert result.tuning.total_seconds > 0


class TestAnalysis:
    def test_model_stats_and_tables(self, candy_block_graph):
        from repro.analysis import ComparisonRow, ModelStats, comparison_table, format_table

        result = optimize_model(candy_block_graph, gpu="V100")
        stats = ModelStats.from_result(result)
        assert stats.num_candidate_kernels >= stats.num_selected_kernels
        row = ComparisonRow("candy_block", "V100", {"Korch": 1.0, "TensorRT": 1.4})
        assert row.speedup_of("Korch", "TensorRT") == pytest.approx(1.4)
        table = comparison_table([row])
        assert table[0]["TensorRT"] == pytest.approx(1.4)
        text = format_table([stats.as_row()])
        assert "candidate" in text
