"""Correctness tests for the persistent profile/plan cache.

The contract under test:

* a warm-cache run returns *bit-identical* strategies and latencies to the
  cold run that populated the cache, with zero backend estimate calls;
* corrupted or version-mismatched cache files are ignored, never fatal;
* eviction keeps the store bounded;
* parallel partition orchestration produces results identical to serial.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.engine import registry
from repro.cache import (
    CacheStore,
    PersistentProfileCache,
    backend_fingerprint,
    decode_profile,
    encode_profile,
    plan_key,
    profile_key,
    stable_hash,
)
from repro.cache.store import SCHEMA_VERSION
from repro.fission import FissionEngine
from repro.gpu import V100
from repro.gpu.profiler import KernelProfiler
from repro.ir import GraphBuilder
from repro.ir.serialization import graph_to_dict
from repro.pipeline import KorchConfig, KorchPipeline


def plan_key_of(pipe, graph):
    return plan_key(
        graph_to_dict(graph),
        pipe.spec,
        backend_fingerprint(pipe.backends),
        pipe.config.fingerprint(),
    )


@pytest.fixture(autouse=True)
def isolated_store_registry():
    """Close stores this test opened, without touching stores other suites
    (e.g. a session-scoped benchmark engine) still hold open."""
    before = set(registry.open_stores())
    yield
    for key in set(registry.open_stores()) - before:
        registry.close_store(key)


def small_attention_graph():
    b = GraphBuilder("cache_attention")
    x = b.input("x", (1, 2, 16, 8))
    w = b.param("w", (1, 2, 8, 16))
    v = b.param("v", (1, 2, 16, 8))
    b.output(b.matmul(b.softmax(b.matmul(x, w), axis=-1), v))
    return b.build()


def strategy_fingerprint(result):
    """Everything that defines the chosen strategies, for exact comparison."""
    return [
        [
            (sorted(k.node_names), list(k.external_inputs), list(k.outputs),
             k.latency_s, k.backend)
            for k in part.orchestration.strategy.kernels
        ]
        for part in result.partitions
    ]


# ------------------------------------------------------------------- store
class TestCacheStore:
    def test_roundtrip_and_persistence(self, tmp_path):
        store = CacheStore(tmp_path)
        store.put("ns", "k1", "payload-1")
        assert store.get("ns", "k1") == "payload-1"
        assert store.get("ns", "missing") is None
        store.close()
        reopened = CacheStore(tmp_path)
        assert reopened.get("ns", "k1") == "payload-1"

    def test_namespaces_are_disjoint(self, tmp_path):
        store = CacheStore(tmp_path)
        store.put("a", "k", "va")
        store.put("b", "k", "vb")
        assert store.get("a", "k") == "va"
        assert store.get("b", "k") == "vb"
        store.clear("a")
        assert store.get("a", "k") is None
        assert store.get("b", "k") == "vb"

    def test_corrupted_file_is_not_fatal(self, tmp_path):
        path = tmp_path / "korch_cache.sqlite"
        path.write_bytes(b"this is definitely not a sqlite database" * 10)
        store = CacheStore(tmp_path)
        # Degraded to memory: still a working cache for this process.
        store.put("ns", "k", "v")
        assert store.get("ns", "k") == "v"
        assert store.stats.errors >= 1

    def test_version_mismatch_discards_entries(self, tmp_path):
        store = CacheStore(tmp_path)
        store.put("ns", "k", "v")
        store.close()
        conn = sqlite3.connect(tmp_path / "korch_cache.sqlite")
        conn.execute(
            "UPDATE meta SET value = ? WHERE key = 'schema_version'",
            (str(SCHEMA_VERSION + 1),),
        )
        conn.commit()
        conn.close()
        reopened = CacheStore(tmp_path)
        assert reopened.get("ns", "k") is None  # stale contents dropped
        reopened.put("ns", "k2", "v2")  # and the store still works
        assert reopened.get("ns", "k2") == "v2"

    def test_lru_eviction_bounds_entries(self, tmp_path):
        store = CacheStore(tmp_path, max_entries=10)
        for i in range(30):
            store.put("ns", f"k{i}", f"v{i}")
        assert store.count("ns") <= 10
        assert store.stats.evictions >= 20
        # The most recent entry survives.
        assert store.get("ns", "k29") == "v29"

    def test_undecodable_json_payload_is_a_miss(self, tmp_path):
        store = CacheStore(tmp_path)
        store.put("ns", "k", "{not valid json")
        assert store.get_json("ns", "k") is None


# ------------------------------------------------------------------- keys
class TestKeys:
    def test_stable_hash_is_order_insensitive_for_dicts(self):
        assert stable_hash({"a": 1, "b": (2, 3)}) == stable_hash({"b": [2, 3], "a": 1})

    def test_profile_key_depends_on_gpu_and_backends(self):
        from repro.gpu import A100

        sig = (("prim", (1, 2)),)
        k1 = profile_key(sig, V100, ["B1"])
        assert k1 == profile_key(sig, V100, ["B1"])
        assert k1 != profile_key(sig, A100, ["B1"])
        assert k1 != profile_key(sig, V100, ["B2"])
        assert k1 != profile_key((("prim", (1, 3)),), V100, ["B1"])


# ----------------------------------------------------------- profile cache
class TestProfileCache:
    def profile_one(self, profiler):
        graph = small_attention_graph()
        pg, _ = FissionEngine().run(graph)
        node = pg.nodes[0]
        external_inputs, _ = pg.subset_io([node])
        return profiler.profile(pg, [node], external_inputs, [node.output])

    def test_encode_decode_roundtrip(self, tmp_path):
        profiler = KernelProfiler(V100)
        profile = self.profile_one(profiler)
        assert profile is not None
        ok, decoded = decode_profile(encode_profile(profile))
        assert ok and decoded == profile

    def test_negative_result_roundtrip(self):
        ok, decoded = decode_profile(encode_profile(None))
        assert ok and decoded is None

    def test_version_mismatched_payload_is_a_miss(self):
        payload = encode_profile(None)
        payload["v"] = 999
        ok, decoded = decode_profile(payload)
        assert not ok and decoded is None

    def test_persistent_hit_skips_backend_estimates(self, tmp_path):
        store = CacheStore(tmp_path)
        cold = KernelProfiler(V100)
        cold.persistent_cache = PersistentProfileCache(store, V100, cold.backends)
        p1 = self.profile_one(cold)
        assert cold.stats.misses == 1 and cold.stats.backend_estimate_calls > 0

        warm = KernelProfiler(V100)
        warm.persistent_cache = PersistentProfileCache(store, V100, warm.backends)
        p2 = self.profile_one(warm)
        assert warm.stats.persistent_hits == 1
        assert warm.stats.backend_estimate_calls == 0
        assert p2 == p1
        assert p2.latency_s == p1.latency_s  # bit-identical through JSON


# --------------------------------------------------------------- pipeline
class TestPipelineCache:
    def test_warm_run_is_bit_identical_with_zero_estimates(self, tmp_path):
        graph = small_attention_graph()
        cold = KorchPipeline(KorchConfig(gpu="V100", cache_dir=tmp_path)).optimize(graph)
        assert cold.summary()["plan_cache"] == "miss"
        assert cold.cache.backend_estimate_calls > 0

        # New pipeline + cleared registries simulates a new process.
        registry.close_store(tmp_path)
        warm = KorchPipeline(KorchConfig(gpu="V100", cache_dir=tmp_path)).optimize(graph)
        assert warm.summary()["plan_cache"] == "disk-hit"
        assert warm.cache.partitions_replayed == len(warm.partitions)
        assert warm.cache.backend_estimate_calls == 0
        assert warm.latency_s == cold.latency_s
        assert strategy_fingerprint(warm) == strategy_fingerprint(cold)

    def test_memory_tier_returns_stored_result(self, tmp_path):
        graph = small_attention_graph()
        pipe = KorchPipeline(KorchConfig(gpu="V100", cache_dir=tmp_path))
        first = pipe.optimize(graph)
        second = pipe.optimize(graph)
        assert second.summary()["plan_cache"] == "memory-hit"
        assert second.latency_s == first.latency_s

    def test_corrupted_plan_payload_falls_back_to_cold(self, tmp_path):
        graph = small_attention_graph()
        pipe = KorchPipeline(KorchConfig(gpu="V100", cache_dir=tmp_path))
        cold = pipe.optimize(graph)
        key = plan_key_of(pipe, graph)
        pipe.store.put("orchestration-plans", key, "{broken json")

        registry.close_store(tmp_path)
        rerun = KorchPipeline(KorchConfig(gpu="V100", cache_dir=tmp_path)).optimize(graph)
        assert rerun.summary()["plan_cache"] == "miss"  # fell back, not fatal
        assert rerun.latency_s == cold.latency_s

    def test_stale_plan_shape_falls_back_to_cold(self, tmp_path):
        graph = small_attention_graph()
        pipe = KorchPipeline(KorchConfig(gpu="V100", cache_dir=tmp_path))
        cold = pipe.optimize(graph)
        key = plan_key_of(pipe, graph)
        stored = pipe.plan_cache.load(key)
        # Sabotage: reference a node that does not exist in the graph.
        stored.partitions[0].kernels[0].node_names = ["no_such_node"]
        pipe.plan_cache.save(key, stored)

        registry.close_store(tmp_path)
        rerun = KorchPipeline(KorchConfig(gpu="V100", cache_dir=tmp_path)).optimize(graph)
        assert rerun.cache.partitions_replayed < len(rerun.partitions)
        assert rerun.latency_s == cold.latency_s

    def test_different_config_misses_plan_cache(self, tmp_path):
        graph = small_attention_graph()
        KorchPipeline(KorchConfig(gpu="V100", cache_dir=tmp_path)).optimize(graph)
        registry.close_store(tmp_path)
        other = KorchPipeline(
            KorchConfig(gpu="V100", cache_dir=tmp_path, solver_mip_rel_gap=0.0)
        ).optimize(graph)
        assert other.summary()["plan_cache"] == "miss"

    def test_no_cache_dir_keeps_cache_off(self):
        graph = small_attention_graph()
        result = KorchPipeline(KorchConfig(gpu="V100")).optimize(graph)
        assert result.summary()["plan_cache"] == "off"
        assert result.cache.store is None


# --------------------------------------------------------------- parallel
class TestParallelOrchestration:
    def multi_partition_graph(self):
        """Long elementwise chain that splits into several partitions."""
        b = GraphBuilder("chain")
        x = b.input("x", (2, 8, 8))
        y = x
        for i in range(24):
            y = b.relu(b.add(y, x) if i % 3 == 0 else y)
        b.output(b.reduce_sum(y, axes=(-1,), keepdims=True))
        return b.build()

    def test_parallel_results_identical_to_serial(self):
        graph = self.multi_partition_graph()
        serial = KorchPipeline(KorchConfig(gpu="V100", num_workers=1)).optimize(graph)
        parallel = KorchPipeline(KorchConfig(gpu="V100", num_workers=4)).optimize(graph)
        assert len(serial.partitions) > 1, "test graph must span several partitions"
        assert parallel.cache.num_workers > 1
        assert parallel.latency_s == serial.latency_s
        assert strategy_fingerprint(parallel) == strategy_fingerprint(serial)
        assert [p.partition.node_names for p in parallel.partitions] == [
            p.partition.node_names for p in serial.partitions
        ]

    def test_parallel_with_cache_matches_serial_cold(self, tmp_path):
        graph = self.multi_partition_graph()
        serial = KorchPipeline(KorchConfig(gpu="V100")).optimize(graph)
        parallel = KorchPipeline(
            KorchConfig(gpu="V100", cache_dir=tmp_path, num_workers=0)  # 0 = all cores
        ).optimize(graph)
        assert parallel.latency_s == serial.latency_s
        assert strategy_fingerprint(parallel) == strategy_fingerprint(serial)


class TestWarmRunStatistics:
    """A disk-replayed run must report the cold run's Table 2 statistics."""

    def test_replay_preserves_candidate_and_tuning_stats(self, tmp_path):
        graph = small_attention_graph()
        cold = KorchPipeline(KorchConfig(gpu="V100", cache_dir=tmp_path)).optimize(graph)
        assert cold.num_candidate_kernels > cold.num_kernels
        assert cold.tuning.total_seconds > 0

        registry.close_store(tmp_path)
        warm = KorchPipeline(KorchConfig(gpu="V100", cache_dir=tmp_path)).optimize(graph)
        assert warm.summary()["plan_cache"] == "disk-hit"
        assert warm.num_candidate_kernels == cold.num_candidate_kernels
        assert warm.tuning.total_seconds == cold.tuning.total_seconds
        assert warm.tuning.num_candidates == cold.tuning.num_candidates
        assert warm.tuning.per_backend_seconds == cold.tuning.per_backend_seconds

    def test_replay_accepts_plans_that_skip_dead_primitives(self, tmp_path):
        """The BLP only materializes required outputs, so a stored plan may
        legally omit primitives that feed no output; replay must not reject
        it (observed on SegFormer's last partition: dead reshape/transpose)."""
        b = GraphBuilder("dead_branch")
        x = b.input("x", (4, 4))
        main = b.exp(x)
        b.sigmoid(x)  # dangling operator: feeds no graph output
        b.output(main)
        graph = b.build()

        cold = KorchPipeline(KorchConfig(gpu="V100", cache_dir=tmp_path)).optimize(graph)
        executed = {n for p in cold.partitions for k in p.orchestration.strategy.kernels
                    for n in k.node_names}
        assert not any("sigmoid" in name for name in executed), "solver should skip dead work"

        registry.close_store(tmp_path)
        warm = KorchPipeline(KorchConfig(gpu="V100", cache_dir=tmp_path)).optimize(graph)
        assert warm.summary()["plan_cache"] == "disk-hit"
        assert warm.cache.partitions_replayed == len(warm.partitions)
        assert warm.latency_s == cold.latency_s
