"""Tests for the cache maintenance CLI (``python -m repro.cache``)."""

from __future__ import annotations

import json

import pytest

from repro.cache import CacheStore
from repro.cache.cli import current_backend_versions, main, stale_keys
from repro.pipeline import KorchConfig, KorchPipeline


def populated_cache(tmp_path):
    from repro.ir import GraphBuilder

    b = GraphBuilder("cli_model")
    x = b.input("x", (1, 2, 16, 8))
    w = b.param("w", (1, 2, 8, 16))
    b.output(b.matmul(x, w))
    KorchPipeline(KorchConfig(gpu="V100", cache_dir=tmp_path)).optimize(b.build())
    return tmp_path


class TestStaleDetection:
    def test_current_entries_are_not_stale(self, tmp_path):
        populated_cache(tmp_path)
        store = CacheStore(tmp_path)
        assert store.count("kernel-profiles") > 0
        assert stale_keys(store, "kernel-profiles") == []
        store.close()

    def test_outdated_model_version_is_stale(self, tmp_path):
        store = CacheStore(tmp_path)
        store.put_json(
            "kernel-profiles",
            "old-entry",
            {"v": 1, "supported": False, "backends": ["CublasBackend:cuBLAS:v0"]},
        )
        store.put_json(
            "kernel-profiles",
            "unknown-backend",
            {"v": 1, "supported": False, "backends": ["FutureBackend:future:v9"]},
        )
        assert stale_keys(store, "kernel-profiles") == ["old-entry"]
        store.close()

    def test_undecodable_payload_is_stale(self, tmp_path):
        store = CacheStore(tmp_path)
        store.put("kernel-profiles", "broken", "{not json")
        assert stale_keys(store, "kernel-profiles") == ["broken"]
        store.close()

    def test_versions_cover_every_default_backend(self):
        versions = current_backend_versions()
        for name in ("CublasBackend", "CudnnBackend", "TvmMetaScheduleBackend",
                     "TensorRTBackend", "FrameworkEagerBackend"):
            assert versions[name] >= 1


class TestCommands:
    def test_stats(self, tmp_path, capsys):
        populated_cache(tmp_path)
        assert main(["--dir", str(tmp_path), "stats"]) == 0
        out = capsys.readouterr().out
        assert "kernel-profiles" in out and "orchestration-plans" in out
        assert "worker snapshot:" in out and "MB serialized" in out

    def test_stats_snapshot_cap(self, tmp_path, capsys):
        store = CacheStore(tmp_path)
        for i in range(4):
            store.put_json("kernel-profiles", f"key{i}", {"v": 1})
        store.close()
        assert main(["--dir", str(tmp_path), "stats", "--snapshot-entries", "2"]) == 0
        out = capsys.readouterr().out
        assert "worker snapshot: 2 entries" in out and "(cap 2)" in out

    def test_gc_drops_stale_and_trims(self, tmp_path, capsys):
        populated_cache(tmp_path)
        store = CacheStore(tmp_path)
        store.put_json(
            "kernel-profiles",
            "old-entry",
            {"v": 1, "supported": False, "backends": ["CublasBackend:cuBLAS:v0"]},
        )
        total = store.count("kernel-profiles")
        store.close()

        assert main(["--dir", str(tmp_path), "gc", "--keep", "5"]) == 0
        out = capsys.readouterr().out
        assert "dropped 1 stale profile/plan entries" in out

        reopened = CacheStore(tmp_path)
        assert reopened.get("kernel-profiles", "old-entry") is None
        assert reopened.count("kernel-profiles") == min(5, total - 1)
        reopened.close()

    def test_gc_keeps_everything_under_cap(self, tmp_path):
        populated_cache(tmp_path)
        store = CacheStore(tmp_path)
        before = store.count()
        store.close()
        assert main(["--dir", str(tmp_path), "gc"]) == 0
        after = CacheStore(tmp_path)
        assert after.count() == before
        after.close()

    def test_clear_namespace_and_all(self, tmp_path, capsys):
        populated_cache(tmp_path)
        assert main(["--dir", str(tmp_path), "clear", "--namespace", "orchestration-plans"]) == 0
        store = CacheStore(tmp_path)
        assert store.count("orchestration-plans") == 0
        assert store.count("kernel-profiles") > 0
        store.close()
        assert main(["--dir", str(tmp_path), "clear"]) == 0
        emptied = CacheStore(tmp_path)
        assert emptied.count() == 0
        emptied.close()

    def test_missing_database_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--dir", str(tmp_path / "nope"), "stats"])

    def test_dir_required(self, monkeypatch):
        monkeypatch.delenv("KORCH_CACHE_DIR", raising=False)
        with pytest.raises(SystemExit):
            main(["stats"])

    def test_gc_drops_stale_plans_too(self, tmp_path, capsys):
        populated_cache(tmp_path)
        store = CacheStore(tmp_path)
        # A plan left behind by a backend recalibration: its key (which
        # embeds the old MODEL_VERSION) can never be looked up again.
        store.put_json(
            "orchestration-plans",
            "old-plan",
            {"v": 1, "partitions": [], "backends": ["CudnnBackend:cuDNN:v0"]},
        )
        current_plans = store.count("orchestration-plans")
        store.close()

        assert main(["--dir", str(tmp_path), "gc"]) == 0
        out = capsys.readouterr().out
        assert "dropped 1 stale profile/plan entries" in out
        reopened = CacheStore(tmp_path)
        assert reopened.get("orchestration-plans", "old-plan") is None
        assert reopened.count("orchestration-plans") == current_plans - 1
        reopened.close()

    def test_nonexistent_sqlite_path_errors_instead_of_creating(self, tmp_path):
        target = tmp_path / "typo" / "korch_cache.sqlite"
        with pytest.raises(SystemExit):
            main(["--dir", str(target), "stats"])
        assert not target.exists()
