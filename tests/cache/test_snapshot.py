"""Shared cache tier: snapshot export/merge across store paths.

The contracts: export → merge into a fresh store is lossless (rows,
timestamps and all); conflicting keys keep the *local* payload; merging is
idempotent; incompatible snapshots are refused instead of polluting a
healthy store; and the service publishes/absorbs snapshots on its
drain/startup hooks.
"""

from __future__ import annotations

import json

import pytest

from repro.cache import (
    CacheStore,
    SnapshotError,
    dump_snapshot,
    load_snapshot,
    merge_snapshot,
)
from repro.cache.cli import main as cache_cli


def seeded_store(path, rows=8) -> CacheStore:
    store = CacheStore(path)
    for index in range(rows):
        store.put("kernel-profiles", f"profile-{index}", json.dumps({"n": index}))
        store.put("orchestration-plans", f"plan-{index}", json.dumps({"p": index}))
    return store


class TestSnapshotRoundTrip:
    def test_export_merge_is_lossless_across_two_store_paths(self, tmp_path):
        source = seeded_store(tmp_path / "host_a")
        snapshot = tmp_path / "published.json"
        exported = dump_snapshot(source, snapshot)
        assert exported == source.count() == 16

        target = CacheStore(tmp_path / "host_b")
        added = merge_snapshot(target, snapshot)
        assert added == 16
        # Lossless: every row — payloads and LRU timestamps included —
        # survives the trip into a different store path.
        assert target.dump() == source.dump()
        source.close()
        target.close()

    def test_merge_is_idempotent_and_local_wins(self, tmp_path):
        source = seeded_store(tmp_path / "host_a")
        snapshot = tmp_path / "published.json"
        dump_snapshot(source, snapshot)

        target = CacheStore(tmp_path / "host_b")
        target.put("kernel-profiles", "profile-0", json.dumps({"local": True}))
        assert merge_snapshot(target, snapshot) == 15  # the conflict is skipped
        assert json.loads(target.get("kernel-profiles", "profile-0")) == {"local": True}
        assert merge_snapshot(target, snapshot) == 0  # republishing is free
        source.close()
        target.close()

    def test_namespace_scoped_export(self, tmp_path):
        source = seeded_store(tmp_path / "host_a")
        snapshot = tmp_path / "profiles-only.json"
        assert dump_snapshot(source, snapshot, namespace="kernel-profiles") == 8
        rows = load_snapshot(snapshot)
        assert {row[0] for row in rows} == {"kernel-profiles"}
        source.close()

    def test_memory_fallback_stores_round_trip_too(self, tmp_path):
        source = CacheStore(None)  # pure in-memory
        source.put("kernel-profiles", "k", "v")
        snapshot = tmp_path / "mem.json"
        assert dump_snapshot(source, snapshot) == 1
        target = CacheStore(None)
        assert merge_snapshot(target, snapshot) == 1
        assert target.get("kernel-profiles", "k") == "v"

    def test_merge_respects_the_namespace_cap(self, tmp_path):
        source = seeded_store(tmp_path / "host_a")
        snapshot = tmp_path / "published.json"
        dump_snapshot(source, snapshot)
        target = CacheStore(tmp_path / "host_b", max_entries=4)
        merge_snapshot(target, snapshot)
        assert target.count("kernel-profiles") <= 4
        assert target.count("orchestration-plans") <= 4
        source.close()
        target.close()


class TestSnapshotValidation:
    def test_incompatible_snapshot_is_refused(self, tmp_path):
        snapshot = tmp_path / "future.json"
        snapshot.write_text(
            json.dumps(
                {
                    "format": "korch-cache-snapshot",
                    "snapshot_version": 999,
                    "schema_version": 1,
                    "entries": [],
                }
            )
        )
        store = CacheStore(tmp_path / "store")
        with pytest.raises(SnapshotError, match="version"):
            merge_snapshot(store, snapshot)
        assert store.count() == 0
        store.close()

    def test_non_snapshot_files_are_refused(self, tmp_path):
        not_snapshot = tmp_path / "random.json"
        not_snapshot.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(SnapshotError):
            load_snapshot(not_snapshot)
        garbage = tmp_path / "garbage.json"
        garbage.write_text("{not json")
        with pytest.raises(SnapshotError):
            load_snapshot(garbage)
        with pytest.raises(SnapshotError):
            load_snapshot(tmp_path / "missing.json")


class TestSnapshotCli:
    def test_export_then_merge_round_trips(self, tmp_path, capsys):
        store = seeded_store(tmp_path / "host_a")
        store.close()
        snapshot = tmp_path / "snap.json"
        assert (
            cache_cli(
                ["--dir", str(tmp_path / "host_a"), "export", "--out", str(snapshot)]
            )
            == 0
        )
        assert "exported 16 entries" in capsys.readouterr().out
        # merge creates the target store if absent — that's the point of
        # converging a fresh host on the fleet's published snapshot.
        assert (
            cache_cli(
                ["--dir", str(tmp_path / "host_b"), "merge", "--snapshot", str(snapshot)]
            )
            == 0
        )
        assert "merged 16 new entries" in capsys.readouterr().out
        merged = CacheStore(tmp_path / "host_b")
        original = CacheStore(tmp_path / "host_a")
        assert merged.dump() == original.dump()
        merged.close()
        original.close()

    def test_merge_refuses_bad_snapshot(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"format": "nope"}))
        with pytest.raises(SystemExit):
            cache_cli(["--dir", str(tmp_path / "store"), "merge", "--snapshot", str(bad)])


class TestServiceSnapshotHooks:
    def _model(self, name: str):
        from repro.ir import GraphBuilder

        b = GraphBuilder(name)
        x = b.input("x", (1, 2, 16, 8))
        w = b.param("w", (1, 2, 8, 16))
        b.output(b.matmul(x, w))
        return b.build()

    def test_drain_publishes_and_startup_merges(self, tmp_path):
        from repro.engine import KorchConfig, KorchService

        snapshot = tmp_path / "fleet.json"
        config_a = KorchConfig(gpu="V100", cache_dir=tmp_path / "proc_a")
        with KorchService(config=config_a, workers=1, snapshot_path=snapshot) as service:
            service.submit(self._model("published")).result(timeout=600)
            assert service.drain(timeout=60)
            assert snapshot.exists()
            rows = load_snapshot(snapshot)
            assert rows  # profiles/plans made it out

        # A second process (different store path) absorbs the snapshot at
        # startup and replays the plan instead of optimizing cold.
        config_b = KorchConfig(gpu="V100", cache_dir=tmp_path / "proc_b")
        with KorchService(config=config_b, workers=1, snapshot_path=snapshot) as service:
            assert service.engine.store.count("orchestration-plans") > 0
            request = service.submit(self._model("published"))
            request.result(timeout=600)
            assert request.stats.plan_cache in ("memory-hit", "disk-hit")

    def test_close_publishes(self, tmp_path):
        from repro.engine import KorchConfig, KorchService

        snapshot = tmp_path / "fleet.json"
        config = KorchConfig(gpu="V100", cache_dir=tmp_path / "proc_a")
        service = KorchService(config=config, workers=1, snapshot_path=snapshot)
        try:
            service.submit(self._model("closing")).result(timeout=600)
        finally:
            assert service.close()
        assert snapshot.exists()
        assert load_snapshot(snapshot)


class TestDumpFaultInjection:
    """A failed export must not strand its temp file next to the snapshot."""

    def test_failed_write_cleans_up_tmp_file(self, tmp_path, monkeypatch):
        import pathlib

        store = seeded_store(tmp_path / "store")
        target = tmp_path / "published" / "snap.json"

        def exploding_write_text(self, *args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(pathlib.Path, "write_text", exploding_write_text)
        with pytest.raises(OSError, match="disk full"):
            dump_snapshot(store, target)
        monkeypatch.undo()
        # The error propagated, nothing was published, and no `.tmp.` file
        # was left behind for pollers (or later exports) to trip over.
        assert not target.exists()
        assert list(target.parent.iterdir()) == []
        store.close()

    def test_failed_replace_cleans_up_tmp_file(self, tmp_path, monkeypatch):
        import repro.cache.snapshot as snapshot_module

        store = seeded_store(tmp_path / "store")
        target = tmp_path / "snap.json"

        def exploding_replace(src, dst):
            raise PermissionError("target locked")

        monkeypatch.setattr(snapshot_module.os, "replace", exploding_replace)
        with pytest.raises(PermissionError):
            dump_snapshot(store, target)
        monkeypatch.undo()
        assert not target.exists()
        assert not list(target.parent.glob(".*.tmp.*"))
        store.close()

    def test_successful_dump_leaves_no_tmp_file(self, tmp_path):
        store = seeded_store(tmp_path / "store")
        target = tmp_path / "snap.json"
        dump_snapshot(store, target)
        assert target.exists()
        assert not list(target.parent.glob(".*.tmp.*"))
        store.close()


class TestIdleDrainPublishes:
    def test_drain_publishes_with_zero_requests(self, tmp_path):
        """An idle service still shares its store on drain: profiles merged
        at startup (or left over from a previous process) must reach the
        fleet even when this drain served nothing."""
        from repro.engine import KorchConfig, KorchService

        seeded = seeded_store(tmp_path / "seed")
        inherited = tmp_path / "inherited.json"
        dump_snapshot(seeded, inherited)
        seeded.close()

        published = tmp_path / "published.json"
        config = KorchConfig(gpu="V100", cache_dir=tmp_path / "proc")
        with KorchService(config=config, workers=1, snapshot_path=published) as service:
            merge_snapshot(service.engine.store, inherited)
            assert not published.exists()
            assert service.drain(timeout=60)  # zero requests processed
            assert published.exists()
            rows = load_snapshot(published)
            assert len(rows) >= 16  # the merged entries made it out

    def test_drain_publishes_even_when_interval_never_elapsed(self, tmp_path):
        from repro.engine import KorchConfig, KorchService
        from repro.ir import GraphBuilder

        b = GraphBuilder("interval")
        x = b.input("x", (1, 2, 16, 8))
        w = b.param("w", (1, 2, 8, 16))
        b.output(b.matmul(x, w))

        published = tmp_path / "published.json"
        config = KorchConfig(gpu="V100", cache_dir=tmp_path / "proc")
        with KorchService(
            config=config,
            workers=1,
            snapshot_path=published,
            snapshot_interval_s=10_000.0,  # periodic publishing never fires
        ) as service:
            service.submit(b.build()).result(timeout=600)
            assert service.drain(timeout=60)
            assert published.exists()
            assert load_snapshot(published)
