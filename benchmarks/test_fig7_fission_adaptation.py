"""Figure 7: adaptation study — operator fission alone helps TensorRT.

The paper feeds the post-fission primitive graph (instead of the operator
graph) to TensorRT and lets TensorRT pick the kernels with its own library,
observing a 1.24x speedup on Segformer/V100.  Here "TensorRT deciding the
orchestration on the primitive graph" is modeled by running the kernel
identifier restricted to TensorRT's kernel library with the greedy (rule-like)
selector, and comparing against the operator-level TensorRT baseline.
"""

from repro.analysis import format_table
from repro.backends import tensorrt_backends
from repro.baselines import TensorRTFusionBaseline
from repro.fission import FissionEngine
from repro.gpu import V100
from repro.models import build_segformer
from repro.orchestration import KernelIdentifierConfig, KernelOrchestrationOptimizer
from repro.partition import partition_graph


def _tensorrt_with_fission_ms() -> float:
    """Latency of TensorRT choosing kernels over the fissioned graph."""
    graph = build_segformer()
    total = 0.0
    for partition in partition_graph(graph, max_operators=10):
        pg, _ = FissionEngine().run(partition.graph)
        optimizer = KernelOrchestrationOptimizer(
            V100,
            backends=tensorrt_backends(),
            identifier_config=KernelIdentifierConfig(max_kernel_size=8),
            solver_method="greedy",
        )
        total += optimizer.optimize(pg).strategy.total_latency_s
    return total * 1e3


def test_fig7_operator_fission_on_tensorrt(benchmark):
    graph = build_segformer()
    pg, _ = FissionEngine().run(graph)
    plain_trt = TensorRTFusionBaseline(V100).run(graph, pg).total_latency_ms

    with_fission = benchmark.pedantic(_tensorrt_with_fission_ms, rounds=1, iterations=1)
    speedup = plain_trt / with_fission

    print("\n[Figure 7] Segformer on V100 (paper: operator fission alone gives 1.24x)")
    print(format_table([
        {"system": "TensorRT", "latency (ms)": round(plain_trt, 3), "speedup": 1.0},
        {"system": "TensorRT + operator fission", "latency (ms)": round(with_fission, 3),
         "speedup": round(speedup, 2)},
    ]))

    # Shape check: fission alone already helps, without the BLP optimizer.
    assert speedup > 1.05
