"""Multi-model serving benchmark: ``KorchEngine.optimize_many`` (engine PR).

Contract, on the EfficientViT + SegFormer pair (the two models of the paper
with the largest structural kernel overlap — both are attention/conv hybrids):

* ``optimize_many`` returns strategies **bit-identical** to two serial
  ``optimize_model`` calls,
* structurally shared kernels are profiled once across the two models
  (``EngineStats.cross_model_profile_reuses`` > 0), and
* ``optimize_many(max_concurrency=4)`` beats the two serial calls in
  wall-clock: partitions of both models interleave on the shared pool (the
  MILP solves release the GIL) and warm profiles flow between the models.

Both sides run *cold* (``cache_dir=None``): the comparison is engine-owned
in-memory sharing + scheduling against the per-model pipeline, not the
persistent cache (covered by ``test_cache_warm_vs_cold``).
"""

from __future__ import annotations

import time

from repro.engine import KorchEngine
from repro.models import build_efficientvit, build_segformer
from repro.pipeline import KorchPipeline

from .conftest import benchmark_config


def cold_config():
    config = benchmark_config("V100")
    config.cache_dir = None  # keep the comparison cold on both sides
    return config


def kernels_of(result):
    return [
        [
            (sorted(k.node_names), list(k.external_inputs), list(k.outputs),
             k.latency_s, k.backend)
            for k in part.orchestration.strategy.kernels
        ]
        for part in result.partitions
    ]


def test_optimize_many_matches_serial_and_beats_it():
    graphs = [build_efficientvit(), build_segformer()]

    t0 = time.perf_counter()
    serial = [KorchPipeline(cold_config()).optimize(graph) for graph in graphs]
    serial_s = time.perf_counter() - t0

    engine = KorchEngine(cold_config())
    t1 = time.perf_counter()
    many = engine.optimize_many(graphs, max_concurrency=4)
    many_s = time.perf_counter() - t1

    print(
        f"\n[engine] serial {serial_s:.1f}s -> optimize_many(4) {many_s:.1f}s "
        f"({serial_s / many_s:.2f}x); cross-model profile reuses = "
        f"{engine.stats.cross_model_profile_reuses}"
    )

    # Bit-identical to the two serial optimize_model-style runs.
    for serial_result, many_result in zip(serial, many):
        assert many_result.latency_s == serial_result.latency_s
        assert many_result.num_kernels == serial_result.num_kernels
        assert kernels_of(many_result) == kernels_of(serial_result)

    # Warm profiles flowed between the two models.
    assert engine.stats.cross_model_profile_reuses > 0

    # Interleaved partitions + shared profiles beat the serial pipelines.
    # The strict beat is asserted on hosts with headroom (>= 8 CPUs); on
    # small/noisy CI runners the 4-way interleave oversubscribes the
    # GIL-bound stages, so there we only require parity within noise.
    import os

    if (os.cpu_count() or 1) >= 8:
        assert many_s < serial_s, (
            f"optimize_many took {many_s:.1f}s, serial {serial_s:.1f}s"
        )
    else:
        assert many_s < serial_s * 1.10, (
            f"optimize_many took {many_s:.1f}s vs serial {serial_s:.1f}s "
            "on a small host"
        )
    engine.close()


def test_optimize_many_per_model_summaries_are_self_consistent():
    """The per-model results of one optimize_many call stand on their own.

    Uses the two models' attention-block subgraphs so this sanity check stays
    cheap next to the full-model wall-clock benchmark above.
    """
    from repro.models import (
        build_efficientvit_attention_block,
        build_segformer_attention_block,
    )

    graphs = [build_efficientvit_attention_block(), build_segformer_attention_block()]
    with KorchEngine(cold_config()) as engine:
        eff, seg = engine.optimize_many(graphs, max_concurrency=4)
    for result in (eff, seg):
        summary = result.summary()
        assert summary["num_partitions"] == len(result.partitions)
        assert summary["latency_ms"] > 0
        # Per-stage timing covers the whole flow for every partition.
        assert summary["stage_solve_s"] > 0 and summary["stage_identify_s"] > 0
    # The engine served both models from one pool and one profile store.
    assert engine.stats.models_optimized == 2
    assert engine.stats.partitions_optimized == len(eff.partitions) + len(seg.partitions)
