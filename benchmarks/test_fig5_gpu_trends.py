"""Figure 5: memory bandwidth vs floating-point throughput across GPU generations.

The paper's motivation for allowing redundant primitive execution: compute
throughput grows much faster than memory bandwidth from P100 to H100.
"""

from repro.analysis import format_table
from repro.gpu import gpu_generation_trends


def test_fig5_gpu_generation_trends(benchmark):
    trends = benchmark.pedantic(gpu_generation_trends, rounds=3, iterations=1)

    rows = [
        {"gpu": gpu, **{metric: round(value, 2) for metric, value in values.items()}}
        for gpu, values in trends.items()
    ]
    print("\n[Figure 5] relative to P100 (paper: FLOPs grow faster than bandwidth)")
    print(format_table(rows))

    order = ["P100", "V100", "A100", "H100"]
    for metric in ("mem_bw", "fp32", "fp16"):
        values = [trends[g][metric] for g in order]
        assert values == sorted(values), f"{metric} should grow monotonically"
    # The compute-to-bandwidth ratio widens every generation (the paper's point).
    ratios = [trends[g]["fp16"] / trends[g]["mem_bw"] for g in order]
    assert ratios == sorted(ratios)
    assert ratios[-1] / ratios[0] > 5.0
