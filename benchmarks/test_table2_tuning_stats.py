"""Table 2: primitive-graph size, candidate kernels and tuning time per model.

Reuses the Figure 6 evaluation runs (V100).  Absolute tuning hours come from
the simulated MetaSchedule tuning-time model; the check is that the relative
ordering and orders of magnitude match the paper (hundreds of primitive
nodes, thousands of candidate kernels, hours of tuning dominated by
memory-intensive kernels).
"""

import pytest

from repro.analysis import format_table
from repro.models import build_model

from .conftest import MODELS

# Paper's Table 2 for reference (primitive nodes, candidate kernels, hours).
PAPER_TABLE2 = {
    "candy": (184, 1031, 5.5),
    "efficientvit": (380, 2174, 11.5),
    "yolox": (367, 3361, 2.8),
    "yolov4": (569, 4644, 12.2),
    "segformer": (672, 11400, 9.2),
}


@pytest.mark.parametrize("model", MODELS)
def test_table2_per_model(benchmark, evaluation, model):
    result = benchmark.pedantic(evaluation.get, args=(model, "V100"), rounds=1, iterations=1)
    paper_nodes, paper_candidates, paper_hours = PAPER_TABLE2[model]
    row = {
        "model": model,
        "# primitive nodes": result.num_primitives,
        "(paper)": paper_nodes,
        "# candidate kernels": result.num_candidates,
        "(paper) ": paper_candidates,
        "tuning h": round(result.tuning_hours, 2),
        "(paper)  ": paper_hours,
    }
    print("\n[Table 2] " + format_table([row]))

    assert 50 <= result.num_primitives <= 2500
    assert result.num_candidates > result.num_primitives
    assert result.num_candidates < 60000
    assert 0.05 <= result.tuning_hours <= 48


def test_table2_candidate_count_far_below_quadratic(evaluation):
    """§6.5: the pruning heuristics keep candidates far below O(|P|^2)."""
    for model in MODELS:
        result = evaluation.get(model, "V100")
        assert result.num_candidates < 0.5 * result.num_primitives ** 2


def test_table2_operator_counts():
    """The rebuilt models are at the paper's scale (hundreds of operators)."""
    rows = []
    for model in MODELS:
        graph = build_model(model)
        rows.append({"model": model, "# operators": graph.num_nodes})
        assert 50 <= graph.num_nodes <= 800
    print("\n[Table 2 aux] " + format_table(rows))
