"""Warm vs. cold persistent-cache benchmark (the §6.5 amortization, durable).

A cold ``optimize_model`` pays for candidate profiling and the per-partition
BLP solves; a warm run against a populated cache replays the stored plan and
answers every profile request from the cache.  Contract:

* the warm run performs **zero** backend ``estimate`` calls,
* it returns bit-identical strategies and latencies, and
* it is at least **3x** faster end to end (in practice far more),
* parallel partition orchestration changes none of the above.
"""

from __future__ import annotations

import time

import pytest

from repro.engine import registry
from repro.models import build_efficientvit_attention_block
from repro.pipeline import KorchConfig, KorchPipeline

from .conftest import case_study_config


@pytest.fixture(autouse=True)
def fresh_store_registry():
    """Simulate separate processes: no shared in-memory cache tiers."""
    before = set(registry.open_stores())
    yield
    for key in set(registry.open_stores()) - before:
        registry.close_store(key)


def cached_config(cache_dir, **overrides) -> KorchConfig:
    config = case_study_config("V100", max_kernel_size=10)
    config.cache_dir = cache_dir
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def kernels_of(result):
    return [
        [
            (sorted(k.node_names), list(k.external_inputs), list(k.outputs),
             k.latency_s, k.backend)
            for k in part.orchestration.strategy.kernels
        ]
        for part in result.partitions
    ]


def test_cache_warm_vs_cold(tmp_path, benchmark):
    graph = build_efficientvit_attention_block()

    t0 = time.perf_counter()
    cold = KorchPipeline(cached_config(tmp_path)).optimize(graph)
    cold_s = time.perf_counter() - t0
    assert cold.summary()["plan_cache"] == "miss"
    assert cold.cache.backend_estimate_calls > 0

    # Fresh pipeline + cleared registries = a new serving process: the warm
    # run must go through the on-disk plan + profile caches, not the memory
    # tier.
    registry.close_store(tmp_path)

    t1 = time.perf_counter()
    warm = KorchPipeline(cached_config(tmp_path)).optimize(graph)
    warm_s = time.perf_counter() - t1

    speedup = cold_s / warm_s
    print(
        f"\n[cache] cold {cold_s * 1e3:.0f} ms -> warm (disk replay) "
        f"{warm_s * 1e3:.0f} ms ({speedup:.1f}x); warm estimate calls = "
        f"{warm.cache.backend_estimate_calls}, profile hits = {warm.cache.profile_cache_hits}"
    )

    # Zero backend estimate calls for cached signatures.
    assert warm.cache.backend_estimate_calls == 0
    assert warm.summary()["plan_cache"] == "disk-hit"
    assert warm.cache.partitions_replayed == len(warm.partitions)

    # The in-process memory tier on top is faster still (for the report).
    rerun = benchmark.pedantic(
        lambda: KorchPipeline(cached_config(tmp_path)).optimize(graph),
        rounds=1, iterations=1,
    )
    assert rerun.cache.backend_estimate_calls == 0

    # Bit-identical results.
    assert warm.latency_s == cold.latency_s
    assert warm.num_kernels == cold.num_kernels
    assert kernels_of(warm) == kernels_of(cold)

    # >= 3x faster warm than cold.
    assert speedup >= 3.0, f"warm run only {speedup:.2f}x faster than cold"


def test_parallel_orchestration_matches_serial(tmp_path):
    graph = build_efficientvit_attention_block()
    serial = KorchPipeline(cached_config(tmp_path / "serial", num_workers=1)).optimize(graph)
    parallel = KorchPipeline(cached_config(tmp_path / "parallel", num_workers=4)).optimize(graph)

    assert parallel.cache.num_workers == min(4, len(parallel.partitions)) or parallel.cache.num_workers >= 1
    assert parallel.latency_s == serial.latency_s
    assert parallel.num_kernels == serial.num_kernels
    assert kernels_of(parallel) == kernels_of(serial)


def test_warm_memory_tier_in_process(tmp_path):
    """Within one process, a repeated optimize() is answered from memory."""
    graph = build_efficientvit_attention_block()
    pipe = KorchPipeline(cached_config(tmp_path))
    cold = pipe.optimize(graph)
    t0 = time.perf_counter()
    again = pipe.optimize(graph)
    memory_s = time.perf_counter() - t0
    assert again.summary()["plan_cache"] == "memory-hit"
    assert again.latency_s == cold.latency_s
    assert memory_s < 0.1
