"""Figures 8-10: the EfficientViT attention-block case study.

The paper reports that Korch maps the block to 7 kernels versus TensorRT's 12
and is 3.29x faster end-to-end for the subgraph, with the re-laid-out GEMM
(Transpose fused with MatMul) 3.52x faster than the extreme-aspect-ratio
original.  Shape checks: Korch uses fewer kernels than TensorRT, is
substantially faster, and the extreme-aspect GEMM penalty is visible in the
cuBLAS model.
"""

from repro.analysis import format_table
from repro.backends import gemm_efficiency
from repro.baselines import TensorRTFusionBaseline, UnfusedBaseline
from repro.fission import FissionEngine
from repro.gpu import V100
from repro.gpu.features import GemmShape
from repro.models import build_efficientvit_attention_block
from repro.pipeline import KorchPipeline

from .conftest import case_study_config


def test_fig10_efficientvit_attention_block(benchmark):
    graph = build_efficientvit_attention_block()
    pg, _ = FissionEngine().run(graph)

    korch = benchmark.pedantic(
        lambda: KorchPipeline(case_study_config("V100", max_kernel_size=10)).optimize(graph),
        rounds=1, iterations=1,
    )
    tensorrt = TensorRTFusionBaseline(V100).run(graph, pg)
    pytorch = UnfusedBaseline(V100).run(graph, pg)

    speedup = tensorrt.total_latency_s / korch.latency_s
    print("\n[Figure 10] EfficientViT attention block on V100 (paper: 3.29x, 7 vs 12 kernels)")
    print(format_table([
        {"system": "Korch", "latency (ms)": round(korch.latency_ms, 3), "kernels": korch.num_kernels},
        {"system": "TensorRT", "latency (ms)": round(tensorrt.total_latency_ms, 3),
         "kernels": tensorrt.num_kernels},
        {"system": "PyTorch", "latency (ms)": round(pytorch.total_latency_ms, 3),
         "kernels": pytorch.num_kernels},
    ]))

    assert korch.num_kernels < tensorrt.num_kernels
    assert speedup > 1.3
    assert pytorch.total_latency_s > tensorrt.total_latency_s


def test_fig8_extreme_aspect_ratio_gemm_penalty():
    """Figure 8's kernel-level effect: re-laying-out a 1024:1 GEMM recovers
    most of the lost efficiency (paper: 3.52x faster with the same backend)."""
    skewed = GemmShape(batch=1, m=16384, n=16, k=16)
    balanced = GemmShape(batch=16, m=1024, n=128, k=32)
    ratio = gemm_efficiency(balanced) / gemm_efficiency(skewed)
    print(f"\n[Figure 8] vendor GEMM efficiency ratio balanced/skewed = {ratio:.2f}x (paper: 3.52x)")
    assert ratio > 2.0
