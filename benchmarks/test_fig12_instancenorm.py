"""Figure 12: the Candy InstanceNorm → ReLU → Pad pattern.

TensorRT maps InstanceNorm, ReLU and Pad to three library kernels; Korch
decomposes InstanceNorm and fuses its elementwise tail with the following
ReLU and Pad, achieving 1.32x on this pattern in the paper.
"""

from repro.analysis import format_table
from repro.baselines import TensorRTFusionBaseline, UnfusedBaseline
from repro.fission import FissionEngine
from repro.gpu import V100
from repro.models import build_candy_block
from repro.pipeline import KorchPipeline

from .conftest import case_study_config


def test_fig12_instancenorm_relu_pad(benchmark):
    graph = build_candy_block()
    pg, _ = FissionEngine().run(graph)

    korch = benchmark.pedantic(
        lambda: KorchPipeline(case_study_config("V100", max_kernel_size=12)).optimize(graph),
        rounds=1, iterations=1,
    )
    tensorrt = TensorRTFusionBaseline(V100).run(graph, pg)
    pytorch = UnfusedBaseline(V100).run(graph, pg)

    speedup = tensorrt.total_latency_s / korch.latency_s
    print("\n[Figure 12] Candy InstanceNorm+ReLU+Pad on V100 (paper: Korch 1.32x over TensorRT)")
    print(format_table([
        {"system": "Korch", "latency (ms)": round(korch.latency_ms, 4), "kernels": korch.num_kernels},
        {"system": "TensorRT", "latency (ms)": round(tensorrt.total_latency_ms, 4),
         "kernels": tensorrt.num_kernels},
        {"system": "PyTorch", "latency (ms)": round(pytorch.total_latency_ms, 4),
         "kernels": pytorch.num_kernels},
    ]))

    # TensorRT keeps three operator kernels (Figure 12a).
    assert tensorrt.num_kernels == 3
    # Korch fuses across the InstanceNorm boundary and wins.
    assert speedup > 1.2
    assert korch.num_kernels <= tensorrt.num_kernels + 2


def test_fig12_fission_splits_instancenorm(benchmark):
    """The decomposed InstanceNorm lets its affine tail fuse with ReLU/Pad."""
    graph = build_candy_block()

    def _strategy():
        return KorchPipeline(case_study_config("V100", max_kernel_size=12)).optimize(graph)

    result = benchmark.pedantic(_strategy, rounds=1, iterations=1)
    strategy = result.partitions[0].orchestration.strategy
    instance_norm_op = next(n.name for n in graph.nodes if n.op_type == "InstanceNormalization")
    kernels = strategy.kernels_executing_operator(instance_norm_op)
    print(f"\n[Figure 12b] InstanceNorm primitives appear in {len(kernels)} kernels")
    assert len(kernels) >= 1
    # At least one kernel mixes InstanceNorm primitives with ReLU/Pad primitives.
    mixed = [k for k in kernels if len(k.source_ops) > 1]
    assert mixed, "expected InstanceNorm primitives fused with neighbouring operators"
