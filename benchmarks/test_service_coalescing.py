"""Service-tier coalescing: near-1/k work on duplicate-heavy traffic.

The serving claim of the coalescing layer, held to numbers: N distinct
models, each submitted k times (duplication factor k), must cost the
engine close to N optimizations — not N×k — while every one of the N×k
futures resolves to a result bit-identical to uncoalesced serial
submission of the same workload.

Both arms run with the plan cache disabled: with it on, the uncoalesced
arm would answer repeats from the memory tier and the comparison would
measure the cache, not the coalescer.  "Work" is the summed wall-clock of
``engine.optimize`` calls (counted by a proxy), which is what coalescing
actually removes; the ratio is asserted ``< 2/k`` on multi-core hosts and
recorded-but-skipped on single-CPU runners.  Numbers land in
``BENCH_service.json`` either way.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.engine import KorchConfig, KorchService
from repro.ir import GraphBuilder

CPUS = os.cpu_count() or 1

#: Where the coalescing benchmark records its numbers (repo root).
BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_service.json"

#: Distinct models per workload and the duplication factor.
UNIQUE_MODELS = 3
DUPLICATION = 4


def _model(name: str, heads: int):
    b = GraphBuilder(name)
    x = b.input("x", (1, heads, 32, 16))
    w = b.param("w", (1, heads, 16, 32))
    v = b.param("v", (1, heads, 32, 16))
    b.output(b.matmul(b.softmax(b.matmul(x, w), axis=-1), v))
    return b.build()


def workload():
    """N unique graphs × k duplicates, interleaved like real traffic."""
    uniques = [_model(f"svc_{i}", heads=2 + i) for i in range(UNIQUE_MODELS)]
    return [uniques[i % UNIQUE_MODELS] for i in range(UNIQUE_MODELS * DUPLICATION)]


class _CountingEngineProxy:
    """Counts and times ``optimize`` calls; everything else passes through
    (``request_key`` included, so coalescing uses the canonical keys)."""

    def __init__(self, engine):
        self._engine = engine
        self.calls = 0
        self.work_s = 0.0

    def optimize(self, graph):
        self.calls += 1
        started = time.perf_counter()
        try:
            return self._engine.optimize(graph)
        finally:
            self.work_s += time.perf_counter() - started

    def __getattr__(self, name):
        return getattr(self._engine, name)


def strategy_fingerprint(result):
    return [
        [
            (sorted(k.node_names), list(k.external_inputs), list(k.outputs),
             k.latency_s, k.backend)
            for k in part.orchestration.strategy.kernels
        ]
        for part in result.partitions
    ]


def _run_arm(coalesce: bool) -> tuple[_CountingEngineProxy, list]:
    """One arm of the comparison: a fresh engine behind a service."""
    from repro.engine import KorchEngine

    config = KorchConfig(gpu="V100", enable_plan_cache=False)
    engine = KorchEngine(config)
    proxy = _CountingEngineProxy(engine)
    service = KorchService(engine=proxy, workers=2, coalesce=coalesce)
    try:
        if coalesce:
            # One duplicate-heavy batch: intra-batch pre-grouping plus
            # in-flight coalescing do the sharing.
            requests = service.submit_many(workload())
        else:
            # Uncoalesced serial reference: every submission is real work.
            # (submit one by one and wait — submit_many always pre-groups.)
            requests = []
            for graph in workload():
                request = service.submit(graph)
                request.result(timeout=600)
                requests.append(request)
        fingerprints = [
            strategy_fingerprint(request.result(timeout=600)) for request in requests
        ]
        assert service.drain(timeout=60)
    finally:
        service.close()
        engine.close()
    return proxy, fingerprints


def test_duplicate_heavy_workload_does_near_one_over_k_work():
    total = UNIQUE_MODELS * DUPLICATION
    uncoalesced, serial_fingerprints = _run_arm(coalesce=False)
    coalesced, coalesced_fingerprints = _run_arm(coalesce=True)

    # Bit-identity is unconditional: every coalesced future must resolve to
    # exactly what uncoalesced serial submission would have produced.
    assert coalesced_fingerprints == serial_fingerprints
    assert uncoalesced.calls == total

    # The call count is deterministic: one optimization per unique model.
    assert coalesced.calls == UNIQUE_MODELS

    work_ratio = coalesced.work_s / uncoalesced.work_s if uncoalesced.work_s else 0.0
    bound = 2.0 / DUPLICATION
    record = {
        "workload": (
            f"{UNIQUE_MODELS} unique attention models x {DUPLICATION} duplicates "
            f"({total} requests), plan cache disabled, 2 service workers"
        ),
        "duplication_factor": DUPLICATION,
        "cpus": CPUS,
        "uncoalesced": {
            "optimize_calls": uncoalesced.calls,
            "work_s": round(uncoalesced.work_s, 4),
        },
        "coalesced": {
            "optimize_calls": coalesced.calls,
            "work_s": round(coalesced.work_s, 4),
        },
        "call_ratio": round(coalesced.calls / total, 4),
        "work_ratio": round(work_ratio, 4),
        "bound_2_over_k": round(bound, 4),
        "bit_identical": True,
    }
    BENCH_FILE.write_text(json.dumps(record, indent=2) + "\n")

    summary = (
        f"coalesced {coalesced.calls}/{total} optimizations, "
        f"work ratio {work_ratio:.3f} (bound {bound:.3f})"
    )
    print(f"\n{summary}")
    if CPUS < 2:
        pytest.skip(f"single-CPU host, timing recorded not gated — {summary}")
    assert work_ratio < bound
