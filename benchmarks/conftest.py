"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper.  The heavy
artifact — running the full Korch pipeline and the three baselines on one
model/GPU pair — is produced once per session by the ``evaluation`` fixture
and shared across benchmarks (Figure 6 and Table 2 read the same runs).

Benchmark-scale settings: the pipeline uses a slightly smaller kernel-size
cap and a 10% MILP gap so the full 5-model × 2-GPU sweep completes in
minutes; EXPERIMENTS.md records the effect of these settings.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import pytest

from repro.baselines import baseline_suite
from repro.engine import KorchEngine
from repro.fission import FissionEngine
from repro.gpu import get_gpu
from repro.models import build_model
from repro.orchestration import KernelIdentifierConfig
from repro.partition import PartitionConfig
from repro.pipeline import KorchConfig

MODELS = ("candy", "efficientvit", "yolox", "yolov4", "segformer")
GPUS = ("V100", "A100")

#: Opt-in persistent cache shared by the whole benchmark session: when this
#: environment variable names a directory, every benchmark configuration
#: stores profiles and plans there, so repeated sweeps (locally or in CI,
#: with the directory preserved between runs) replay instead of re-profiling.
BENCH_CACHE_ENV = "KORCH_BENCH_CACHE_DIR"


def bench_cache_dir() -> str | None:
    return os.environ.get(BENCH_CACHE_ENV) or None


def benchmark_config(gpu: str, max_kernel_size: int = 8) -> KorchConfig:
    """Pipeline configuration used by the end-to-end benchmark sweeps."""
    return KorchConfig(
        gpu=gpu,
        enable_graph_optimizer=False,
        partition=PartitionConfig(max_operators=10, hard_limit=14),
        identifier=KernelIdentifierConfig(max_kernel_size=max_kernel_size),
        solver_time_limit_s=2.0,
        solver_mip_rel_gap=0.10,
        cache_dir=bench_cache_dir(),
    )


def case_study_config(gpu: str, max_kernel_size: int = 20) -> KorchConfig:
    """Configuration for the small case-study subgraphs (no shortcuts)."""
    return KorchConfig(
        gpu=gpu,
        partition=PartitionConfig(max_operators=24, hard_limit=28),
        identifier=KernelIdentifierConfig(max_kernel_size=max_kernel_size),
        cache_dir=bench_cache_dir(),
    )


@dataclass
class ModelEvaluation:
    """Korch + baseline latencies for one (model, GPU) pair."""

    model: str
    gpu: str
    korch_ms: float
    korch_kernels: int
    num_primitives: int
    num_candidates: int
    tuning_hours: float
    baseline_ms: dict[str, float] = field(default_factory=dict)
    baseline_kernels: dict[str, int] = field(default_factory=dict)

    def speedup_over(self, name: str) -> float:
        return self.baseline_ms[name] / self.korch_ms


class EvaluationCache:
    """Lazily evaluates and caches (model, gpu) pairs for the whole session.

    One long-lived :class:`KorchEngine` per GPU serves every model of the
    sweep, so the whole session shares its stores and worker pool.  Durable
    sharing (profiles and plans persisted across sessions) is opt-in via
    ``KORCH_BENCH_CACHE_DIR``; without it each engine keeps the original
    per-model isolation so the reproduced figures are byte-for-byte those of
    a fresh pipeline.
    """

    def __init__(self) -> None:
        self._cache: dict[tuple[str, str], ModelEvaluation] = {}
        self._engines: dict[str, KorchEngine] = {}

    def engine(self, gpu: str) -> KorchEngine:
        if gpu not in self._engines:
            self._engines[gpu] = KorchEngine(
                benchmark_config(gpu), share_profiles=bench_cache_dir() is not None
            )
        return self._engines[gpu]

    def engine_stats(self) -> dict[str, dict]:
        return {gpu: engine.stats.as_dict() for gpu, engine in self._engines.items()}

    def get(self, model: str, gpu: str) -> ModelEvaluation:
        key = (model, gpu)
        if key not in self._cache:
            self._cache[key] = self._evaluate(model, gpu)
        return self._cache[key]

    def _evaluate(self, model: str, gpu: str) -> ModelEvaluation:
        graph = build_model(model)
        spec = get_gpu(gpu)
        result = self.engine(gpu).optimize(graph)
        pg, _ = FissionEngine().run(graph)
        evaluation = ModelEvaluation(
            model=model,
            gpu=gpu,
            korch_ms=result.latency_ms,
            korch_kernels=result.num_kernels,
            num_primitives=result.num_primitives,
            num_candidates=result.num_candidate_kernels,
            tuning_hours=result.tuning.total_hours,
        )
        for baseline in baseline_suite(spec):
            strategy = baseline.run(graph, pg)
            evaluation.baseline_ms[baseline.name] = strategy.total_latency_ms
            evaluation.baseline_kernels[baseline.name] = strategy.num_kernels
        return evaluation


#: The session's EvaluationCache, kept here so ``pytest_sessionfinish`` can
#: report its engines' statistics (fixtures are out of reach in the hook).
_SESSION_EVALUATION: EvaluationCache | None = None


@pytest.fixture(scope="session")
def evaluation() -> EvaluationCache:
    global _SESSION_EVALUATION
    _SESSION_EVALUATION = EvaluationCache()
    return _SESSION_EVALUATION


def pytest_sessionfinish(session, exitstatus):
    """Report aggregate cache/engine statistics when sharing is enabled."""
    cache_dir = bench_cache_dir()
    if cache_dir is None:
        return
    from repro.engine.registry import open_stores

    reporter = session.config.pluginmanager.get_plugin("terminalreporter")
    write = reporter.write_line if reporter is not None else print
    for directory, store in open_stores().items():
        stats = store.stats
        write(
            f"[{BENCH_CACHE_ENV}] {directory}: {store.count()} entries, "
            f"hits={stats.hits} misses={stats.misses} writes={stats.writes} "
            f"hit_rate={stats.hit_rate:.2%}"
        )
    if _SESSION_EVALUATION is not None:
        for gpu, stats in _SESSION_EVALUATION.engine_stats().items():
            interesting = {
                k: v
                for k, v in stats.items()
                if k
                in (
                    "models_optimized",
                    "partitions_replayed",
                    "plan_disk_hits",
                    "cross_model_profile_reuses",
                    "profiler_backend_estimate_calls",
                )
            }
            write(f"[{BENCH_CACHE_ENV}] engine[{gpu}]: {interesting}")
