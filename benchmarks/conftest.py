"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper.  The heavy
artifact — running the full Korch pipeline and the three baselines on one
model/GPU pair — is produced once per session by the ``evaluation`` fixture
and shared across benchmarks (Figure 6 and Table 2 read the same runs).

Benchmark-scale settings: the pipeline uses a slightly smaller kernel-size
cap and a 10% MILP gap so the full 5-model × 2-GPU sweep completes in
minutes; EXPERIMENTS.md records the effect of these settings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import pytest

from repro.baselines import baseline_suite
from repro.fission import FissionEngine
from repro.gpu import get_gpu
from repro.models import build_model
from repro.orchestration import KernelIdentifierConfig
from repro.partition import PartitionConfig
from repro.pipeline import KorchConfig, KorchPipeline

MODELS = ("candy", "efficientvit", "yolox", "yolov4", "segformer")
GPUS = ("V100", "A100")


def benchmark_config(gpu: str, max_kernel_size: int = 8) -> KorchConfig:
    """Pipeline configuration used by the end-to-end benchmark sweeps."""
    return KorchConfig(
        gpu=gpu,
        enable_graph_optimizer=False,
        partition=PartitionConfig(max_operators=10, hard_limit=14),
        identifier=KernelIdentifierConfig(max_kernel_size=max_kernel_size),
        solver_time_limit_s=2.0,
        solver_mip_rel_gap=0.10,
    )


def case_study_config(gpu: str, max_kernel_size: int = 20) -> KorchConfig:
    """Configuration for the small case-study subgraphs (no shortcuts)."""
    return KorchConfig(
        gpu=gpu,
        partition=PartitionConfig(max_operators=24, hard_limit=28),
        identifier=KernelIdentifierConfig(max_kernel_size=max_kernel_size),
    )


@dataclass
class ModelEvaluation:
    """Korch + baseline latencies for one (model, GPU) pair."""

    model: str
    gpu: str
    korch_ms: float
    korch_kernels: int
    num_primitives: int
    num_candidates: int
    tuning_hours: float
    baseline_ms: dict[str, float] = field(default_factory=dict)
    baseline_kernels: dict[str, int] = field(default_factory=dict)

    def speedup_over(self, name: str) -> float:
        return self.baseline_ms[name] / self.korch_ms


class EvaluationCache:
    """Lazily evaluates and caches (model, gpu) pairs for the whole session."""

    def __init__(self) -> None:
        self._cache: dict[tuple[str, str], ModelEvaluation] = {}

    def get(self, model: str, gpu: str) -> ModelEvaluation:
        key = (model, gpu)
        if key not in self._cache:
            self._cache[key] = self._evaluate(model, gpu)
        return self._cache[key]

    @staticmethod
    def _evaluate(model: str, gpu: str) -> ModelEvaluation:
        graph = build_model(model)
        spec = get_gpu(gpu)
        result = KorchPipeline(benchmark_config(gpu)).optimize(graph)
        pg, _ = FissionEngine().run(graph)
        evaluation = ModelEvaluation(
            model=model,
            gpu=gpu,
            korch_ms=result.latency_ms,
            korch_kernels=result.num_kernels,
            num_primitives=result.num_primitives,
            num_candidates=result.num_candidate_kernels,
            tuning_hours=result.tuning.total_hours,
        )
        for baseline in baseline_suite(spec):
            strategy = baseline.run(graph, pg)
            evaluation.baseline_ms[baseline.name] = strategy.total_latency_ms
            evaluation.baseline_kernels[baseline.name] = strategy.num_kernels
        return evaluation


@pytest.fixture(scope="session")
def evaluation() -> EvaluationCache:
    return EvaluationCache()
