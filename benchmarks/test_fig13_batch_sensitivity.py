"""Figures 11 & 13: the Segformer MLP-decoder subgraph at batch sizes 1 and 16.

TVM always fuses the whole subgraph into one kernel (strategy A).  The paper
shows that strategy A is the right choice at batch 1 but 2.88x slower than a
multi-kernel plan (strategy B) at batch 16 — and that Korch picks the right
strategy at each batch size.
"""

import pytest

from repro.analysis import format_table
from repro.baselines import GreedyFusionBaseline
from repro.fission import FissionEngine
from repro.gpu import V100
from repro.models import build_segformer_decoder_subgraph
from repro.pipeline import KorchPipeline

from .conftest import case_study_config


def _evaluate(batch: int):
    graph = build_segformer_decoder_subgraph(batch=batch)
    pg, _ = FissionEngine().run(graph)
    korch = KorchPipeline(case_study_config("V100", max_kernel_size=20)).optimize(graph)
    tvm = GreedyFusionBaseline(V100).run(graph, pg)
    return korch, tvm


@pytest.mark.parametrize("batch", [1, 16])
def test_fig13_decoder_subgraph(benchmark, batch):
    korch, tvm = benchmark.pedantic(_evaluate, args=(batch,), rounds=1, iterations=1)

    ratio = tvm.total_latency_s / korch.latency_s
    print(f"\n[Figure 13] Segformer decoder subgraph, batch={batch} "
          "(paper: fused kernel wins at batch 1, loses 2.88x at batch 16)")
    print(format_table([
        {"strategy": "Korch (BLP-chosen)", "latency (ms)": round(korch.latency_ms, 3),
         "kernels": korch.num_kernels},
        {"strategy": "TVM (always fuse, strategy A)", "latency (ms)": round(tvm.total_latency_ms, 3),
         "kernels": tvm.num_kernels},
    ]))

    # TVM fuses the whole subgraph into a single kernel at either batch size.
    assert tvm.num_kernels == 1
    if batch == 1:
        # Fusing everything is (close to) optimal: Korch is within a few
        # percent of it and picks a plan with very few kernels.
        assert korch.latency_s <= tvm.total_latency_s * 1.05
        assert korch.num_kernels <= 4
    else:
        # At batch 16 the fused kernel's achieved bandwidth collapses and the
        # multi-kernel plan wins by a large factor (paper: 2.88x).
        assert ratio > 1.8
        assert korch.num_kernels > 1


def test_fig13_crossover_direction():
    """The fused-vs-split preference flips between batch 1 and batch 16."""
    korch1, tvm1 = _evaluate(1)
    korch16, tvm16 = _evaluate(16)
    advantage_b1 = tvm1.total_latency_s / korch1.latency_s
    advantage_b16 = tvm16.total_latency_s / korch16.latency_s
    print(f"\n[Figure 13] fused-kernel slowdown vs Korch: batch1={advantage_b1:.2f}x, "
          f"batch16={advantage_b16:.2f}x")
    assert advantage_b16 > advantage_b1 + 0.5
