"""Figure 6: end-to-end latency of the five DNNs under PyTorch / TVM /
TensorRT / Korch on V100 and A100.

The paper reports Korch up to 1.7x (V100) / 1.6x (A100) faster, 1.39x / 1.30x
on average.  Absolute numbers here come from the analytical cost model, so the
check is the *shape*: Korch is the fastest system for every model on both
GPUs, and the unfused PyTorch baseline is the slowest.
"""

import pytest

from repro.analysis import format_table

from .conftest import GPUS, MODELS


@pytest.mark.parametrize("gpu", GPUS)
@pytest.mark.parametrize("model", MODELS)
def test_fig6_end_to_end(benchmark, evaluation, model, gpu):
    result = benchmark.pedantic(evaluation.get, args=(model, gpu), rounds=1, iterations=1)

    row = {
        "model": model,
        "gpu": gpu,
        "Korch (ms)": round(result.korch_ms, 3),
        **{f"{name} (ms)": round(ms, 3) for name, ms in result.baseline_ms.items()},
        **{f"{name} rel": round(ms / result.korch_ms, 2) for name, ms in result.baseline_ms.items()},
    }
    print(f"\n[Figure 6] {format_table([row])}")

    # Shape checks: Korch never loses; eager PyTorch is the slowest system.
    for name, ms in result.baseline_ms.items():
        assert result.korch_ms <= ms * 1.001, f"Korch slower than {name} on {model}/{gpu}"
    assert result.baseline_ms["PyTorch"] == max(result.baseline_ms.values())
    assert result.speedup_over("PyTorch") > 1.1


def test_fig6_average_speedups(evaluation):
    """Average Korch speedup per GPU (paper: 1.39x on V100, 1.30x on A100)."""
    rows = []
    for gpu in GPUS:
        speedups = {}
        for model in MODELS:
            result = evaluation.get(model, gpu)
            for name in result.baseline_ms:
                speedups.setdefault(name, []).append(result.speedup_over(name))
        rows.append(
            {"gpu": gpu, **{name: round(sum(v) / len(v), 2) for name, v in speedups.items()}}
        )
    print("\n[Figure 6] average Korch speedup over each baseline")
    print(format_table(rows))
    for row in rows:
        assert row["PyTorch"] > 1.1
