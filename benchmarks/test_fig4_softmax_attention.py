"""Figure 2/4 + §6.4: softmax self-attention kernel orchestration.

Operator fission decomposes Softmax into Exp/ReduceSum/Broadcast/Div and the
BLP maps those primitives across several kernels (the paper: Softmax ends up
in all four kernels of the strategy, 1.50x over TensorRT for the block).
"""

from repro.analysis import format_table
from repro.baselines import TensorRTFusionBaseline, UnfusedBaseline
from repro.fission import FissionEngine
from repro.gpu import V100
from repro.models import build_segformer_attention_block
from repro.pipeline import KorchPipeline

from .conftest import case_study_config


def test_fig4_softmax_attention_block(benchmark):
    graph = build_segformer_attention_block()
    pg, _ = FissionEngine().run(graph)

    korch = benchmark.pedantic(
        lambda: KorchPipeline(case_study_config("V100", max_kernel_size=12)).optimize(graph),
        rounds=1, iterations=1,
    )
    tensorrt = TensorRTFusionBaseline(V100).run(graph, pg)
    pytorch = UnfusedBaseline(V100).run(graph, pg)

    speedup = tensorrt.total_latency_s / korch.latency_s
    print("\n[Figure 4 / §6.4] Segformer self-attention block on V100 (paper: 1.50x over TensorRT)")
    print(format_table([
        {"system": "Korch", "latency (ms)": round(korch.latency_ms, 3), "kernels": korch.num_kernels},
        {"system": "TensorRT", "latency (ms)": round(tensorrt.total_latency_ms, 3),
         "kernels": tensorrt.num_kernels},
        {"system": "PyTorch", "latency (ms)": round(pytorch.total_latency_ms, 3),
         "kernels": pytorch.num_kernels},
    ]))

    assert speedup > 1.2
    assert korch.num_kernels < pytorch.num_kernels

    # §6.4: the Softmax operator's primitives are spread across multiple kernels.
    strategy = korch.partitions[0].orchestration.strategy
    softmax_op = next(n.name for n in graph.nodes if n.op_type == "Softmax")
    softmax_kernels = strategy.kernels_executing_operator(softmax_op)
    print(f"Softmax primitives are executed by {len(softmax_kernels)} of {strategy.num_kernels} kernels")
    assert len(softmax_kernels) >= 2
