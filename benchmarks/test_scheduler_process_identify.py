"""ProcessExecutor vs ThreadExecutor on an identify-heavy multi-model sweep.

Candidate enumeration (Algorithm 1's combinatorial half) is pure Python:
under a thread executor the GIL serializes it no matter how many workers the
engine holds, which is exactly the serial bottleneck the scheduler's process
executor exists to break.  This benchmark builds a sweep of branchy models
whose enumeration dominates end-to-end time (greedy solver, capped
candidates), runs the same sweep through both executors, verifies the
results are bit-identical, and records the wall-clock comparison.

On a multi-core host the process sweep must win outright; on a single-CPU
host no parallel speedup is physically possible, so the comparison is
recorded but the win is not asserted.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.engine import KorchConfig, KorchEngine, KorchEngineConfig
from repro.ir import GraphBuilder
from repro.partition import PartitionConfig

#: Models in the sweep (each distinct in structure, so nothing hits the
#: identify memo and both executors do the full enumeration work).
NUM_MODELS = 3
CPUS = os.cpu_count() or 1
WORKERS = min(CPUS, NUM_MODELS)


def branchy_model(name: str, branches: int, depth: int):
    """Wide parallel elementwise branches: execution-state enumeration is
    exponential in the antichain width, making identify the dominant stage."""
    b = GraphBuilder(name)
    x = b.input("x", (8, 64))
    outs = []
    for _ in range(branches):
        y = x
        for j in range(depth):
            y = b.relu(b.add(y, x)) if j % 2 == 0 else b.sigmoid(y)
        outs.append(y)
    acc = outs[0]
    for y in outs[1:]:
        acc = b.add(acc, y)
    b.output(acc)
    return b.build()


def sweep_models():
    # Distinct (branches, depth) per model => distinct pg structures.
    shapes = [(4, 3), (4, 4), (3, 5)][:NUM_MODELS]
    return [
        branchy_model(f"sweep_{i}_b{br}d{d}", br, d)
        for i, (br, d) in enumerate(shapes)
    ]


def tiny_model(name: str):
    b = GraphBuilder(name)
    x = b.input("x", (4, 4))
    b.output(b.relu(x))
    return b.build()


def sweep_config(executor: str) -> KorchConfig:
    config = KorchConfig(
        gpu="V100",
        # One big partition per model keeps the branchy antichain intact.
        partition=PartitionConfig(max_operators=64, lookback_window=2, hard_limit=80),
        solver_method="greedy",
        num_workers=WORKERS,
        engine=KorchEngineConfig(executor=executor, process_workers=WORKERS),
    )
    config.identifier.max_states = 100_000
    config.identifier.max_candidates = 400
    return config


def strategy_fingerprint(result):
    return [
        [
            (sorted(k.node_names), list(k.external_inputs), list(k.outputs),
             k.latency_s, k.backend)
            for k in part.orchestration.strategy.kernels
        ]
        for part in result.partitions
    ]


def run_sweep(executor: str) -> tuple[float, list, float]:
    """Cold sweep wall-clock, fingerprints, and summed identify seconds."""
    with KorchEngine(sweep_config(executor)) as engine:
        # Pay worker spawn + first-import cost off the clock: a serving
        # engine is long-lived, and the benchmark measures steady state.
        engine.warm_up()
        engine.optimize(tiny_model(f"warm_{executor}"))
        started = time.perf_counter()
        results = engine.optimize_many(sweep_models())
        elapsed = time.perf_counter() - started
    fingerprints = [strategy_fingerprint(result) for result in results]
    identify_s = sum(result.stage_seconds.get("identify", 0.0) for result in results)
    return elapsed, fingerprints, identify_s


def test_process_executor_beats_thread_on_identify_heavy_sweep():
    thread_s, thread_fp, thread_identify_s = run_sweep("thread")
    process_s, process_fp, process_identify_s = run_sweep("process")

    # Results must be bit-identical: the executor changes wall-clock, never
    # the solved strategies.
    assert process_fp == thread_fp

    speedup = thread_s / process_s if process_s > 0 else float("inf")
    record = (
        f"identify-heavy sweep ({NUM_MODELS} models, {WORKERS} workers, {CPUS} CPUs): "
        f"thread={thread_s:.2f}s (identify {thread_identify_s:.2f}s) "
        f"process={process_s:.2f}s (identify {process_identify_s:.2f}s) "
        f"speedup={speedup:.2f}x"
    )
    print(f"\n{record}")

    # The sweep must actually be identify-bound, or the comparison says
    # nothing about the process executor.
    assert thread_identify_s > 0.5 * thread_s, record

    if CPUS < 2:
        pytest.skip(f"single-CPU host, parallel win impossible — {record}")
    assert process_s < thread_s, f"ProcessExecutor failed to win: {record}"


# --------------------------------------------------------------- snapshots
def snapshot_config(executor: str, cache_dir, snapshot_entries: int) -> KorchConfig:
    """Sweep config wired to a persistent profile store, plan cache off.

    The plan cache would let a warm engine replay whole partitions and skip
    the very stages under test; disabling it makes every run below a *cold*
    run whose only warmth is the profile store (and, in process mode, the
    snapshot of it shipped into the workers at ``warm_up``).
    """
    config = sweep_config(executor)
    config.cache_dir = str(cache_dir)
    config.enable_plan_cache = False
    config.engine.worker_snapshot_entries = snapshot_entries
    return config


def test_warm_snapshot_process_run_is_identical_and_faster(tmp_path):
    """Worker profile snapshots: bit-identical to serial, and on multi-core
    hosts a snapshot-warmed cold run beats the snapshot-less baseline.

    A serial run populates the persistent profile store; two process-mode
    engines then run the same sweep cold, one broadcasting the store
    snapshot into its workers at ``warm_up`` and one with snapshots
    disabled (the pre-snapshot baseline).  Snapshot hits answer worker-side
    profile reads locally instead of re-estimating, and produce no writes —
    which is why the parent's results cannot change.
    """
    with KorchEngine(snapshot_config("serial", tmp_path, 0)) as engine:
        serial_fp = [
            strategy_fingerprint(r) for r in engine.optimize_many(sweep_models())
        ]

    timings: dict[str, float] = {}
    fingerprints: dict[str, list] = {}
    for label, entries in (("snapshot", 4096), ("baseline", 0)):
        with KorchEngine(snapshot_config("process", tmp_path, entries)) as engine:
            engine.warm_up()  # broadcasts the snapshot (when enabled)
            engine.optimize(tiny_model(f"warm_snap_{label}"))
            started = time.perf_counter()
            results = engine.optimize_many(sweep_models())
            timings[label] = time.perf_counter() - started
        fingerprints[label] = [strategy_fingerprint(r) for r in results]

    assert fingerprints["snapshot"] == serial_fp
    assert fingerprints["baseline"] == serial_fp

    record = (
        f"warm-snapshot cold sweep ({NUM_MODELS} models, {WORKERS} workers, "
        f"{CPUS} CPUs): snapshot={timings['snapshot']:.2f}s "
        f"baseline={timings['baseline']:.2f}s"
    )
    print(f"\n{record}")
    if CPUS < 2:
        pytest.skip(f"single-CPU host, timing recorded not gated — {record}")
    assert timings["snapshot"] < timings["baseline"], record
