"""Bitset solver core vs the dict-of-sets reference: identity and raw speed.

The bitset core (``repro.solver.bitset``) and the bitset-native enumeration
(``repro.orchestration.bitgraph``) are pure speed work: same algorithms, same
scan orders, same tie-breaks, packed into machine integers.  This benchmark
holds them to that claim on the real workload:

* **Bit-identity** — on every zoo model of the Figure 6 sweep and on the four
  case-study blocks, the bitset enumeration must emit the same candidate
  specs in the same order as the reference, and greedy/branch-and-bound must
  return the same status, selection vector, and objective (exact ``==``, not
  approximate).
* **Speed** — across the fig6 sweep the bitset identify+solve phase must be
  at least 2x faster than the reference.  Profiling is excluded from the
  timed phase: it is shared by both cores (same cache, same backends) and
  unchanged by this optimisation.  The win is asserted on multi-core hosts
  and recorded-but-skipped on single-CPU runners, where shared-host noise
  drowns single-thread timing; numbers land in ``BENCH_solver.json`` either
  way.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.fission import FissionEngine
from repro.gpu import get_gpu
from repro.models import (
    build_candy_block,
    build_efficientvit_attention_block,
    build_model,
    build_segformer_attention_block,
    build_segformer_decoder_subgraph,
)
from repro.orchestration import (
    KernelIdentifier,
    KernelIdentifierReport,
    build_orchestration_blp,
)
from repro.orchestration.identifier import (
    enumerate_candidate_specs,
    enumerate_candidate_specs_reference,
    spec_key,
)
from repro.partition import GraphPartitioner
from repro.solver import SolverConfig, solve_blp

from .conftest import MODELS, benchmark_config, case_study_config

BITSET = SolverConfig(core="bitset")
REFERENCE = SolverConfig(core="reference")
CPUS = os.cpu_count() or 1

#: Where the speedup sweep records its numbers (repo root).
BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_solver.json"

CASE_STUDIES = {
    "candy_block": build_candy_block,
    "efficientvit_attention": build_efficientvit_attention_block,
    "segformer_attention": build_segformer_attention_block,
    "segformer_decoder": build_segformer_decoder_subgraph,
}

#: Branch and bound explores an exponential tree; compare it only on
#: partitions whose BLP stays small enough to finish in benchmark time.
#: All four case-study blocks fit (largest: segformer_decoder, 536 vars,
#: ~7s per core on a shared 1-CPU runner); the cap is a safety valve.
BNB_MAX_VARIABLES = 600


def partition_pgs(graph, config):
    """The per-partition primitive graphs the engine would optimize."""
    fission = FissionEngine()
    return [
        fission.run(part.graph)[0]
        for part in GraphPartitioner(config.partition).partition(graph)
    ]


def solve_result_key(result):
    return (result.status, tuple(result.values), result.objective)


def check_partition(pg, config, identifier, timings=None):
    """Enumerate both ways, profile once, solve greedy with both cores.

    Asserts bit-identity at every step; when ``timings`` is given, the
    reference and bitset identify+solve wall-clocks are accumulated into it.
    Returns the profiled candidates for optional further comparison.
    """
    started = time.perf_counter()
    fast_report = KernelIdentifierReport()
    fast_specs = enumerate_candidate_specs(pg, config.identifier, fast_report)
    fast_enum_s = time.perf_counter() - started

    started = time.perf_counter()
    slow_report = KernelIdentifierReport()
    slow_specs = enumerate_candidate_specs_reference(pg, config.identifier, slow_report)
    slow_enum_s = time.perf_counter() - started

    assert [spec_key(s) for s in fast_specs] == [spec_key(s) for s in slow_specs]
    assert [s.outputs for s in fast_specs] == [s.outputs for s in slow_specs]
    assert fast_report.num_execution_states == slow_report.num_execution_states
    assert fast_report.num_convex_sets == slow_report.num_convex_sets

    # Price once — profiling is shared by both cores and out of scope here.
    candidates = identifier.profile_specs(pg, fast_specs, fast_report)
    if not candidates:
        return []
    blp = build_orchestration_blp(pg, candidates)

    started = time.perf_counter()
    fast = solve_blp(blp.problem, method="greedy", config=BITSET)
    fast_solve_s = time.perf_counter() - started

    started = time.perf_counter()
    slow = solve_blp(blp.problem, method="greedy", config=REFERENCE)
    slow_solve_s = time.perf_counter() - started

    assert solve_result_key(fast) == solve_result_key(slow)

    if timings is not None:
        timings["bitset_s"] += fast_enum_s + fast_solve_s
        timings["reference_s"] += slow_enum_s + slow_solve_s
    return candidates


@pytest.mark.parametrize("model", MODELS)
def test_zoo_model_bit_identity(model, sweep_timings):
    """Figure 6 sweep models: enumeration + greedy solve, both cores."""
    config = benchmark_config("V100")
    identifier = KernelIdentifier(get_gpu("V100"), config=config.identifier)
    timings = sweep_timings.setdefault(
        model, {"bitset_s": 0.0, "reference_s": 0.0}
    )
    for pg in partition_pgs(build_model(model), config):
        check_partition(pg, config, identifier, timings)
    assert timings["bitset_s"] > 0 and timings["reference_s"] > 0


@pytest.mark.parametrize("block", sorted(CASE_STUDIES))
def test_case_study_block_bit_identity(block):
    """Case-study blocks (§7): enumeration, greedy, and B&B where tractable."""
    config = case_study_config("V100")
    identifier = KernelIdentifier(get_gpu("V100"), config=config.identifier)
    compared_bnb = 0
    for pg in partition_pgs(CASE_STUDIES[block](), config):
        candidates = check_partition(pg, config, identifier)
        if not candidates or len(candidates) > BNB_MAX_VARIABLES:
            continue
        blp = build_orchestration_blp(pg, candidates)
        fast = solve_blp(blp.problem, method="branch-and-bound", config=BITSET)
        slow = solve_blp(blp.problem, method="branch-and-bound", config=REFERENCE)
        assert solve_result_key(fast) == solve_result_key(slow)
        compared_bnb += 1
    assert compared_bnb > 0, f"no tractable B&B partition in {block}"


@pytest.fixture(scope="module")
def sweep_timings():
    """Per-model identify+solve wall-clocks, filled by the zoo tests."""
    return {}


def test_bitset_speedup_on_fig6_identify_solve(sweep_timings):
    """Sweep-wide ≥2x: asserted multi-core, recorded+skipped single-CPU."""
    missing = [m for m in MODELS if m not in sweep_timings]
    assert not missing, f"zoo bit-identity tests did not run for {missing}"

    reference_s = sum(t["reference_s"] for t in sweep_timings.values())
    bitset_s = sum(t["bitset_s"] for t in sweep_timings.values())
    speedup = reference_s / bitset_s if bitset_s > 0 else float("inf")

    record = {
        "phase": "identify+solve (enumeration + greedy; profiling excluded)",
        "sweep": "fig6 zoo models, benchmark_config(V100)",
        "cpus": CPUS,
        "reference_s": round(reference_s, 4),
        "bitset_s": round(bitset_s, 4),
        "speedup": round(speedup, 2),
        "per_model": {
            model: {
                "reference_s": round(t["reference_s"], 4),
                "bitset_s": round(t["bitset_s"], 4),
                "speedup": round(t["reference_s"] / t["bitset_s"], 2)
                if t["bitset_s"] > 0
                else None,
            }
            for model, t in sweep_timings.items()
        },
    }
    BENCH_FILE.write_text(json.dumps(record, indent=2) + "\n")
    summary = (
        f"fig6 identify+solve: reference={reference_s:.3f}s "
        f"bitset={bitset_s:.3f}s speedup={speedup:.2f}x ({CPUS} CPUs)"
    )
    print(f"\n{summary}")

    if CPUS < 2:
        pytest.skip(f"single-CPU host, timing recorded not gated — {summary}")
    assert speedup >= 2.0, summary
