"""Static shape inference for the operator-level IR.

Every operator registered in :mod:`repro.ir.ops` has an inference function
here.  The :class:`~repro.ir.builder.GraphBuilder` runs inference eagerly, so
by the time a graph reaches operator fission all tensor types are known.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from .dtype import DataType
from .graph import Graph, GraphError, Node
from .tensor_type import TensorType

__all__ = ["infer_node_types", "infer_graph_types", "broadcast_shapes"]

_InferFn = Callable[[Node, list[TensorType]], list[TensorType]]
_INFERENCE: dict[str, _InferFn] = {}


def _register(*names: str) -> Callable[[_InferFn], _InferFn]:
    def decorator(fn: _InferFn) -> _InferFn:
        for name in names:
            # korch-lint: ignore[conc/global-mutation] import-time registration only
            _INFERENCE[name] = fn
        return fn

    return decorator


def broadcast_shapes(a: Sequence[int], b: Sequence[int]) -> tuple[int, ...]:
    """Numpy-style broadcasting of two static shapes."""
    result: list[int] = []
    ra, rb = list(a)[::-1], list(b)[::-1]
    for i in range(max(len(ra), len(rb))):
        da = ra[i] if i < len(ra) else 1
        db = rb[i] if i < len(rb) else 1
        if da == db or da == 1 or db == 1:
            result.append(max(da, db))
        else:
            raise GraphError(f"cannot broadcast shapes {tuple(a)} and {tuple(b)}")
    return tuple(result[::-1])


def infer_node_types(node: Node, input_types: list[TensorType]) -> list[TensorType]:
    """Output types of ``node`` given its input types."""
    try:
        fn = _INFERENCE[node.op_type]
    except KeyError:
        raise GraphError(f"no shape inference registered for operator {node.op_type!r}") from None
    return fn(node, input_types)


def infer_graph_types(graph: Graph) -> None:
    """Re-run shape inference over a whole graph in topological order.

    Used after graph transformations that rewire nodes; inputs, params and
    constants keep their declared types.
    """
    for node in graph.topological_order():
        input_types = [graph.tensor_type(t) for t in node.inputs]
        output_types = infer_node_types(node, input_types)
        if len(output_types) != len(node.outputs):
            raise GraphError(
                f"node {node.name}: inference produced {len(output_types)} outputs, "
                f"node declares {len(node.outputs)}"
            )
        for tensor, ttype in zip(node.outputs, output_types):
            graph.tensors[tensor] = ttype


# --------------------------------------------------------------------------- helpers
def _normalize_axis(axis: int, rank: int) -> int:
    if axis < 0:
        axis += rank
    if not 0 <= axis < rank:
        raise GraphError(f"axis {axis} out of range for rank {rank}")
    return axis


def _pair(value, name: str) -> tuple[int, int]:
    value = tuple(value)
    if len(value) != 2:
        raise GraphError(f"{name} must have two entries, got {value}")
    return int(value[0]), int(value[1])


# --------------------------------------------------------------------------- elementwise
@_register(
    "Relu", "LeakyRelu", "Sigmoid", "Tanh", "Exp", "Log", "Sqrt", "Erf", "Neg",
    "Reciprocal", "Identity", "Softplus", "Clip", "Gelu", "Silu", "Mish",
    "HardSwish", "Softmax",
)
def _infer_unary(node: Node, inputs: list[TensorType]) -> list[TensorType]:
    return [inputs[0]]


@_register("Add", "Sub", "Mul", "Div", "Pow", "Maximum", "Minimum")
def _infer_binary(node: Node, inputs: list[TensorType]) -> list[TensorType]:
    shape = broadcast_shapes(inputs[0].shape, inputs[1].shape)
    return [TensorType(shape, inputs[0].dtype)]


@_register("LayerNormalization", "InstanceNormalization", "BatchNormalization", "GroupNormalization")
def _infer_normalization(node: Node, inputs: list[TensorType]) -> list[TensorType]:
    return [inputs[0]]


# --------------------------------------------------------------------------- reductions
@_register("ReduceSum", "ReduceMean", "ReduceMax")
def _infer_reduce(node: Node, inputs: list[TensorType]) -> list[TensorType]:
    x = inputs[0]
    axes = node.attr("axes") or (-1,)
    keepdims = bool(node.attr("keepdims", True))
    axes = sorted(_normalize_axis(a, x.rank) for a in axes)
    shape = list(x.shape)
    for axis in reversed(axes):
        if keepdims:
            shape[axis] = 1
        else:
            del shape[axis]
    return [x.with_shape(shape)]


@_register("GlobalAveragePool")
def _infer_global_pool(node: Node, inputs: list[TensorType]) -> list[TensorType]:
    x = inputs[0]
    if x.rank != 4:
        raise GraphError(f"GlobalAveragePool expects NCHW input, got rank {x.rank}")
    n, c = x.shape[:2]
    return [x.with_shape((n, c, 1, 1))]


@_register("MaxPool", "AveragePool")
def _infer_pool(node: Node, inputs: list[TensorType]) -> list[TensorType]:
    x = inputs[0]
    if x.rank != 4:
        raise GraphError(f"{node.op_type} expects NCHW input, got rank {x.rank}")
    kh, kw = _pair(node.attr("kernel_shape"), "kernel_shape")
    sh, sw = _pair(node.attr("strides"), "strides")
    pads = tuple(node.attr("pads") or (0, 0, 0, 0))
    n, c, h, w = x.shape
    oh = (h + pads[0] + pads[2] - kh) // sh + 1
    ow = (w + pads[1] + pads[3] - kw) // sw + 1
    return [x.with_shape((n, c, oh, ow))]


# --------------------------------------------------------------------------- layout
@_register("Transpose")
def _infer_transpose(node: Node, inputs: list[TensorType]) -> list[TensorType]:
    x = inputs[0]
    perm = tuple(node.attr("perm") or tuple(reversed(range(x.rank))))
    return [x.transpose(perm)]


@_register("Reshape", "Expand")
def _infer_reshape(node: Node, inputs: list[TensorType]) -> list[TensorType]:
    x = inputs[0]
    shape = list(node.attr("shape"))
    if not shape:
        raise GraphError(f"{node.op_type} node {node.name} is missing a static 'shape' attribute")
    if node.op_type == "Reshape":
        if shape.count(-1) > 1:
            raise GraphError("Reshape allows at most one -1 dimension")
        known = math.prod(d for d in shape if d != -1)
        if -1 in shape:
            shape[shape.index(-1)] = x.num_elements // known
        if math.prod(shape) != x.num_elements:
            raise GraphError(
                f"Reshape {node.name}: cannot reshape {x.shape} ({x.num_elements} elems) to {shape}"
            )
    else:  # Expand: broadcast to target shape
        shape = list(broadcast_shapes(x.shape, shape))
    return [x.with_shape(shape)]


@_register("Flatten")
def _infer_flatten(node: Node, inputs: list[TensorType]) -> list[TensorType]:
    x = inputs[0]
    axis = _normalize_axis(int(node.attr("axis", 1)), x.rank + 1)
    lead = math.prod(x.shape[:axis]) if axis else 1
    tail = math.prod(x.shape[axis:]) if axis < x.rank else 1
    return [x.with_shape((lead, tail))]


@_register("Squeeze")
def _infer_squeeze(node: Node, inputs: list[TensorType]) -> list[TensorType]:
    x = inputs[0]
    axes = node.attr("axes") or tuple(i for i, d in enumerate(x.shape) if d == 1)
    axes = sorted(_normalize_axis(a, x.rank) for a in axes)
    shape = [d for i, d in enumerate(x.shape) if i not in axes]
    return [x.with_shape(shape)]


@_register("Unsqueeze")
def _infer_unsqueeze(node: Node, inputs: list[TensorType]) -> list[TensorType]:
    x = inputs[0]
    axes = sorted(node.attr("axes"))
    shape = list(x.shape)
    for axis in axes:
        axis = _normalize_axis(axis, len(shape) + 1)
        shape.insert(axis, 1)
    return [x.with_shape(shape)]


@_register("Split")
def _infer_split(node: Node, inputs: list[TensorType]) -> list[TensorType]:
    x = inputs[0]
    axis = _normalize_axis(int(node.attr("axis", 0)), x.rank)
    split = tuple(node.attr("split") or ())
    num_outputs = len(node.outputs)
    if not split:
        if x.shape[axis] % num_outputs:
            raise GraphError(
                f"Split {node.name}: axis size {x.shape[axis]} not divisible by {num_outputs}"
            )
        split = (x.shape[axis] // num_outputs,) * num_outputs
    if sum(split) != x.shape[axis]:
        raise GraphError(f"Split {node.name}: sizes {split} do not sum to {x.shape[axis]}")
    outputs = []
    for size in split:
        shape = list(x.shape)
        shape[axis] = size
        outputs.append(x.with_shape(shape))
    return outputs


@_register("Concat")
def _infer_concat(node: Node, inputs: list[TensorType]) -> list[TensorType]:
    axis = _normalize_axis(int(node.attr("axis", 0)), inputs[0].rank)
    base = list(inputs[0].shape)
    total = 0
    for ttype in inputs:
        if list(ttype.shape[:axis]) + list(ttype.shape[axis + 1 :]) != base[:axis] + base[axis + 1 :]:
            raise GraphError(f"Concat {node.name}: incompatible shapes {[t.shape for t in inputs]}")
        total += ttype.shape[axis]
    base[axis] = total
    return [inputs[0].with_shape(base)]


@_register("Slice")
def _infer_slice(node: Node, inputs: list[TensorType]) -> list[TensorType]:
    x = inputs[0]
    starts = tuple(node.attr("starts"))
    ends = tuple(node.attr("ends"))
    axes = tuple(node.attr("axes") or range(len(starts)))
    steps = tuple(node.attr("steps") or (1,) * len(starts))
    shape = list(x.shape)
    for start, end, axis, step in zip(starts, ends, axes, steps):
        axis = _normalize_axis(axis, x.rank)
        dim = x.shape[axis]
        start = min(max(start + dim if start < 0 else start, 0), dim)
        end = min(max(end + dim if end < 0 else end, 0), dim)
        shape[axis] = max(0, -(-(end - start) // step))
    return [x.with_shape(shape)]


@_register("Pad")
def _infer_pad(node: Node, inputs: list[TensorType]) -> list[TensorType]:
    x = inputs[0]
    pads = tuple(node.attr("pads"))
    if len(pads) != 2 * x.rank:
        raise GraphError(f"Pad {node.name}: pads {pads} must have 2*rank={2 * x.rank} entries")
    shape = [d + pads[i] + pads[i + x.rank] for i, d in enumerate(x.shape)]
    return [x.with_shape(shape)]


@_register("Resize")
def _infer_resize(node: Node, inputs: list[TensorType]) -> list[TensorType]:
    x = inputs[0]
    sizes = tuple(node.attr("sizes") or ())
    scales = tuple(node.attr("scales") or ())
    if sizes:
        if len(sizes) != x.rank:
            raise GraphError(f"Resize {node.name}: sizes {sizes} must match rank {x.rank}")
        return [x.with_shape(sizes)]
    if scales:
        if len(scales) != x.rank:
            raise GraphError(f"Resize {node.name}: scales {scales} must match rank {x.rank}")
        return [x.with_shape(tuple(int(round(d * s)) for d, s in zip(x.shape, scales)))]
    raise GraphError(f"Resize {node.name}: needs 'sizes' or 'scales'")


# --------------------------------------------------------------------------- compute
@_register("Conv")
def _infer_conv(node: Node, inputs: list[TensorType]) -> list[TensorType]:
    x, w = inputs[0], inputs[1]
    if x.rank != 4 or w.rank != 4:
        raise GraphError(f"Conv {node.name}: expects 4D input and weight")
    sh, sw = _pair(node.attr("strides"), "strides")
    dh, dw = _pair(node.attr("dilations", (1, 1)), "dilations")
    pads = tuple(node.attr("pads") or (0, 0, 0, 0))
    group = int(node.attr("group", 1))
    n, c, h, w_in = x.shape
    oc, ic_per_group, kh, kw = w.shape
    if ic_per_group * group != c:
        raise GraphError(
            f"Conv {node.name}: input channels {c} != weight channels {ic_per_group} * group {group}"
        )
    oh = (h + pads[0] + pads[2] - dh * (kh - 1) - 1) // sh + 1
    ow = (w_in + pads[1] + pads[3] - dw * (kw - 1) - 1) // sw + 1
    return [x.with_shape((n, oc, oh, ow))]


@_register("ConvTranspose")
def _infer_conv_transpose(node: Node, inputs: list[TensorType]) -> list[TensorType]:
    x, w = inputs[0], inputs[1]
    sh, sw = _pair(node.attr("strides"), "strides")
    pads = tuple(node.attr("pads") or (0, 0, 0, 0))
    oph, opw = _pair(node.attr("output_padding", (0, 0)), "output_padding")
    n, c, h, w_in = x.shape
    ic, oc_per_group, kh, kw = w.shape
    group = int(node.attr("group", 1))
    oc = oc_per_group * group
    oh = (h - 1) * sh - pads[0] - pads[2] + kh + oph
    ow = (w_in - 1) * sw - pads[1] - pads[3] + kw + opw
    return [x.with_shape((n, oc, oh, ow))]


@_register("MatMul")
def _infer_matmul(node: Node, inputs: list[TensorType]) -> list[TensorType]:
    a, b = inputs
    if a.rank < 2 or b.rank < 2:
        raise GraphError(f"MatMul {node.name}: inputs must be at least rank 2")
    if a.shape[-1] != b.shape[-2]:
        raise GraphError(
            f"MatMul {node.name}: inner dims mismatch {a.shape} @ {b.shape}"
        )
    batch = broadcast_shapes(a.shape[:-2], b.shape[:-2])
    return [a.with_shape(batch + (a.shape[-2], b.shape[-1]))]


@_register("Gemm")
def _infer_gemm(node: Node, inputs: list[TensorType]) -> list[TensorType]:
    a, b = inputs[0], inputs[1]
    trans_a = bool(node.attr("trans_a", False))
    trans_b = bool(node.attr("trans_b", False))
    m, k = (a.shape[1], a.shape[0]) if trans_a else (a.shape[0], a.shape[1])
    kb, n = (b.shape[1], b.shape[0]) if trans_b else (b.shape[0], b.shape[1])
    if k != kb:
        raise GraphError(f"Gemm {node.name}: inner dims mismatch {a.shape} @ {b.shape}")
    return [a.with_shape((m, n))]


@_register("TopK")
def _infer_topk(node: Node, inputs: list[TensorType]) -> list[TensorType]:
    x = inputs[0]
    k = int(node.attr("k", 1))
    axis = _normalize_axis(int(node.attr("axis", -1)), x.rank)
    shape = list(x.shape)
    shape[axis] = k
    values = x.with_shape(shape)
    indices = TensorType(tuple(shape), DataType.INT64)
    return [values, indices]
