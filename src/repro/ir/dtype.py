"""Scalar data types used by the tensor IR.

The paper evaluates FP32 on V100 and TF32 (tensor-core 19-bit format stored
in 32-bit words) on A100.  The cost model only needs the storage width and,
for linear-transformation primitives, which peak-throughput column of the GPU
spec applies, so the type set here is intentionally small.
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = ["DataType"]


class DataType(str, enum.Enum):
    """Element type of a tensor.

    ``TF32`` is stored like ``FLOAT32`` (4 bytes per element) but is executed
    on tensor cores, so it shares the storage width of FP32 while using the
    TF32 throughput column of a GPU spec.
    """

    FLOAT32 = "float32"
    FLOAT16 = "float16"
    TF32 = "tf32"
    BFLOAT16 = "bfloat16"
    INT64 = "int64"
    INT32 = "int32"
    INT8 = "int8"
    BOOL = "bool"

    @property
    def itemsize(self) -> int:
        """Storage size of one element in bytes."""
        return _ITEMSIZE[self]

    @property
    def is_floating(self) -> bool:
        """Whether the type participates in floating-point arithmetic."""
        return self in (
            DataType.FLOAT32,
            DataType.FLOAT16,
            DataType.TF32,
            DataType.BFLOAT16,
        )

    def to_numpy(self) -> np.dtype:
        """numpy dtype used by the functional executor for this type.

        TF32 has no numpy equivalent; it is simulated with float32, which is
        how frameworks expose it to users as well.
        """
        return np.dtype(_NUMPY_NAME[self])

    @classmethod
    def from_numpy(cls, dtype: np.dtype) -> "DataType":
        """Map a numpy dtype back to a :class:`DataType`."""
        name = np.dtype(dtype).name
        for member, np_name in _NUMPY_NAME.items():
            if np_name == name and member is not DataType.TF32:
                return member
        raise ValueError(f"unsupported numpy dtype: {dtype!r}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_ITEMSIZE = {
    DataType.FLOAT32: 4,
    DataType.FLOAT16: 2,
    DataType.TF32: 4,
    DataType.BFLOAT16: 2,
    DataType.INT64: 8,
    DataType.INT32: 4,
    DataType.INT8: 1,
    DataType.BOOL: 1,
}

_NUMPY_NAME = {
    DataType.FLOAT32: "float32",
    DataType.FLOAT16: "float16",
    DataType.TF32: "float32",
    DataType.BFLOAT16: "float32",
    DataType.INT64: "int64",
    DataType.INT32: "int32",
    DataType.INT8: "int8",
    DataType.BOOL: "bool",
}
