"""Structural validation of computation graphs.

Checks are deliberately strict: a graph that passes :func:`validate_graph`
can be consumed by the fission engine, the baselines and the functional
executor without further defensive checks.
"""

from __future__ import annotations

from .graph import Graph, GraphError
from .ops import REGISTRY
from .shape_inference import infer_node_types

__all__ = ["validate_graph"]


def validate_graph(graph: Graph) -> None:
    """Raise :class:`~repro.ir.graph.GraphError` if ``graph`` is malformed.

    Validates operator names, arity, tensor declarations, single-producer
    discipline, acyclicity, output reachability and consistency of declared
    tensor types with shape inference.
    """
    _check_structure(graph)
    _check_types(graph)


def _check_structure(graph: Graph) -> None:
    produced: set[str] = set()
    for node in graph.nodes:
        if node.op_type not in REGISTRY:
            raise GraphError(f"node {node.name}: unknown operator {node.op_type!r}")
        node.spec.validate_arity(len(node.inputs), len(node.outputs))
        for tensor in node.inputs + node.outputs:
            if tensor not in graph.tensors:
                raise GraphError(f"node {node.name}: undeclared tensor {tensor!r}")
        for tensor in node.outputs:
            if tensor in produced:
                raise GraphError(f"tensor {tensor!r} has multiple producers")
            if graph.is_source_tensor(tensor):
                raise GraphError(f"node {node.name} writes to source tensor {tensor!r}")
            produced.add(tensor)

    for tensor in graph.outputs:
        if tensor not in graph.tensors:
            raise GraphError(f"graph output {tensor!r} is not a declared tensor")
        if tensor not in produced and not graph.is_source_tensor(tensor):
            raise GraphError(f"graph output {tensor!r} has no producer")

    for node in graph.nodes:
        for tensor in node.inputs:
            if tensor not in produced and not graph.is_source_tensor(tensor):
                raise GraphError(
                    f"node {node.name}: input {tensor!r} is neither produced nor a graph source"
                )

    # topological_order raises on cycles
    graph.topological_order()


def _check_types(graph: Graph) -> None:
    for node in graph.topological_order():
        input_types = [graph.tensor_type(t) for t in node.inputs]
        inferred = infer_node_types(node, input_types)
        for tensor, expected in zip(node.outputs, inferred):
            declared = graph.tensor_type(tensor)
            if declared.shape != expected.shape:
                raise GraphError(
                    f"node {node.name}: declared shape {declared.shape} of {tensor!r} "
                    f"does not match inferred {expected.shape}"
                )
