"""Structural validation of computation graphs.

Checks are deliberately strict: a graph that passes :func:`validate_graph`
can be consumed by the fission engine, the baselines and the functional
executor without further defensive checks.

Two entry points share one implementation: :func:`graph_diagnostics` collects
*every* structural and type error as structured
:class:`~repro.diagnostics.Diagnostic` records (the verification layers in
:mod:`repro.analysis.verify` build on this), and :func:`validate_graph`
raises a :class:`~repro.ir.graph.GraphError` naming the graph and listing all
findings at once — a malformed graph reports everything wrong with it, not
just the first problem hit.
"""

from __future__ import annotations

from ..diagnostics import Diagnostic, Severity, format_diagnostics
from .graph import Graph, GraphError
from .ops import REGISTRY
from .shape_inference import infer_node_types

__all__ = ["graph_diagnostics", "validate_graph"]


def validate_graph(graph: Graph) -> None:
    """Raise :class:`~repro.ir.graph.GraphError` if ``graph`` is malformed.

    Validates operator names, arity, tensor declarations, single-producer
    discipline, acyclicity, output reachability and consistency of declared
    tensor types with shape inference.  The raised error names the graph and
    lists every violation found, not only the first.
    """
    diagnostics = graph_diagnostics(graph)
    if diagnostics:
        raise GraphError(
            f"graph {graph.name!r} failed validation with "
            f"{len(diagnostics)} error(s):\n{format_diagnostics(diagnostics)}"
        )


def graph_diagnostics(graph: Graph) -> list[Diagnostic]:
    """All structural and type errors of ``graph`` as diagnostics.

    Collect-and-report: one malformed node does not mask the next.  Checks
    that depend on earlier invariants (type inference needs an acyclic,
    fully-produced graph) are skipped once their prerequisites failed, so no
    spurious cascade errors are reported.
    """
    diagnostics = _structure_diagnostics(graph)
    if not diagnostics:
        diagnostics.extend(_type_diagnostics(graph))
    return diagnostics


def _diag(rule: str, graph: Graph, message: str, hint: str = "") -> Diagnostic:
    return Diagnostic(
        rule=rule,
        severity=Severity.ERROR,
        message=message,
        location=f"graph {graph.name!r}",
        hint=hint,
    )


def _structure_diagnostics(graph: Graph) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    produced: set[str] = set()
    for node in graph.nodes:
        if node.op_type not in REGISTRY:
            out.append(
                _diag(
                    "graph/unknown-op",
                    graph,
                    f"node {node.name}: unknown operator {node.op_type!r}",
                    hint="register the operator in repro.ir.ops",
                )
            )
            continue  # arity/type checks need the spec
        try:
            node.spec.validate_arity(len(node.inputs), len(node.outputs))
        except ValueError as exc:  # validate_arity raises plain ValueError
            out.append(_diag("graph/arity", graph, f"node {node.name}: {exc}"))
        for tensor in node.inputs + node.outputs:
            if tensor not in graph.tensors:
                out.append(
                    _diag(
                        "graph/undeclared-tensor",
                        graph,
                        f"node {node.name}: undeclared tensor {tensor!r}",
                        hint="declare it with add_tensor/add_input/add_param first",
                    )
                )
        for tensor in node.outputs:
            if tensor in produced:
                out.append(
                    _diag(
                        "graph/multi-producer",
                        graph,
                        f"tensor {tensor!r} has multiple producers",
                    )
                )
            if graph.is_source_tensor(tensor):
                out.append(
                    _diag(
                        "graph/source-write",
                        graph,
                        f"node {node.name} writes to source tensor {tensor!r}",
                    )
                )
            produced.add(tensor)

    for tensor in graph.outputs:
        if tensor not in graph.tensors:
            out.append(
                _diag(
                    "graph/undeclared-tensor",
                    graph,
                    f"graph output {tensor!r} is not a declared tensor",
                )
            )
        elif tensor not in produced and not graph.is_source_tensor(tensor):
            out.append(
                _diag(
                    "graph/missing-producer",
                    graph,
                    f"graph output {tensor!r} has no producer",
                )
            )

    for node in graph.nodes:
        for tensor in node.inputs:
            if tensor not in produced and not graph.is_source_tensor(tensor):
                out.append(
                    _diag(
                        "graph/missing-producer",
                        graph,
                        f"node {node.name}: input {tensor!r} is neither produced "
                        "nor a graph source",
                    )
                )

    try:
        graph.topological_order()
    except GraphError:
        out.append(_diag("graph/cycle", graph, "graph contains a dependency cycle"))
    return out


def _type_diagnostics(graph: Graph) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for node in graph.topological_order():
        input_types = [graph.tensor_type(t) for t in node.inputs]
        try:
            inferred = infer_node_types(node, input_types)
        except GraphError as exc:
            out.append(_diag("graph/inference-failed", graph, f"node {node.name}: {exc}"))
            continue
        for tensor, expected in zip(node.outputs, inferred):
            declared = graph.tensor_type(tensor)
            if declared.shape != expected.shape:
                out.append(
                    _diag(
                        "graph/shape-mismatch",
                        graph,
                        f"node {node.name}: declared shape {declared.shape} of "
                        f"{tensor!r} does not match inferred {expected.shape}",
                    )
                )
    return out
