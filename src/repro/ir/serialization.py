"""JSON (de)serialization of computation graphs.

The paper ships its benchmark models as ONNX protobufs.  This repo stores the
same information in a plain JSON document (an "ONNX-like" exchange format) so
graphs can be saved, diffed and reloaded without the onnx dependency.
Constant tensor data is stored inline as nested lists, which is acceptable
because only small constants (ones vectors, scalars) carry data; weights are
type-only parameters.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from .dtype import DataType
from .graph import Graph, Node
from .tensor_type import TensorType

__all__ = ["graph_to_dict", "graph_from_dict", "save_graph", "load_graph"]

_FORMAT_VERSION = 1


def _type_to_dict(ttype: TensorType) -> dict[str, Any]:
    return {"shape": list(ttype.shape), "dtype": ttype.dtype.value}


def _type_from_dict(data: dict[str, Any]) -> TensorType:
    return TensorType(tuple(data["shape"]), DataType(data["dtype"]))


def _jsonable_attrs(attrs: dict[str, Any]) -> dict[str, Any]:
    result: dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, tuple):
            value = list(value)
        result[key] = value
    return result


def _restore_attrs(attrs: dict[str, Any]) -> dict[str, Any]:
    result: dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, list):
            value = tuple(value)
        result[key] = value
    return result


def graph_to_dict(graph: Graph) -> dict[str, Any]:
    """Serialize ``graph`` into a JSON-compatible dictionary."""
    return {
        "format_version": _FORMAT_VERSION,
        "name": graph.name,
        "inputs": list(graph.inputs),
        "outputs": list(graph.outputs),
        "tensors": {name: _type_to_dict(t) for name, t in graph.tensors.items()},
        "params": {name: _type_to_dict(t) for name, t in graph.params.items()},
        "constants": {
            name: {"dtype": str(value.dtype), "data": value.tolist()}
            for name, value in graph.constants.items()
        },
        "nodes": [
            {
                "name": node.name,
                "op_type": node.op_type,
                "inputs": list(node.inputs),
                "outputs": list(node.outputs),
                "attrs": _jsonable_attrs(node.attrs),
            }
            for node in graph.nodes
        ],
    }


def graph_from_dict(data: dict[str, Any]) -> Graph:
    """Rebuild a :class:`~repro.ir.graph.Graph` from :func:`graph_to_dict` output."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported graph format version {version!r}")
    graph = Graph(data["name"])
    for name, tdict in data["tensors"].items():
        graph.add_tensor(name, _type_from_dict(tdict))
    graph.inputs = list(data["inputs"])
    graph.outputs = list(data["outputs"])
    graph.params = {name: _type_from_dict(t) for name, t in data["params"].items()}
    graph.constants = {
        name: np.array(entry["data"], dtype=entry["dtype"])
        for name, entry in data["constants"].items()
    }
    for node_data in data["nodes"]:
        graph.add_node(
            Node(
                node_data["name"],
                node_data["op_type"],
                list(node_data["inputs"]),
                list(node_data["outputs"]),
                _restore_attrs(node_data.get("attrs", {})),
            )
        )
    return graph


def save_graph(graph: Graph, path: str | Path) -> Path:
    """Write ``graph`` to ``path`` as JSON and return the path."""
    path = Path(path)
    path.write_text(json.dumps(graph_to_dict(graph), indent=2, sort_keys=True))
    return path


def load_graph(path: str | Path) -> Graph:
    """Load a graph previously written with :func:`save_graph`."""
    return graph_from_dict(json.loads(Path(path).read_text()))
