"""Static tensor descriptors (shape + dtype) shared by every IR layer.

Both the operator-level computation graph (:mod:`repro.ir.graph`) and the
primitive graph (:mod:`repro.primitives.graph`) annotate every edge with a
:class:`TensorType`.  The kernel cost model derives memory traffic directly
from these descriptors, so they are immutable and hashable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .dtype import DataType

__all__ = ["TensorType"]


@dataclass(frozen=True, order=True)
class TensorType:
    """Shape and element type of a tensor.

    Parameters
    ----------
    shape:
        Static dimensions.  Scalars use an empty tuple.
    dtype:
        Element type, defaults to FP32 which is what the V100 experiments use.
    """

    shape: tuple[int, ...]
    dtype: DataType = field(default=DataType.FLOAT32, compare=True)

    def __init__(self, shape: Sequence[int] | int, dtype: DataType = DataType.FLOAT32):
        if isinstance(shape, int):
            shape = (shape,)
        shape = tuple(int(d) for d in shape)
        for dim in shape:
            if dim < 0:
                raise ValueError(f"negative dimension in shape {shape}")
        if not isinstance(dtype, DataType):
            dtype = DataType(dtype)
        object.__setattr__(self, "shape", shape)
        object.__setattr__(self, "dtype", dtype)

    # ------------------------------------------------------------------ info
    @property
    def rank(self) -> int:
        """Number of dimensions."""
        return len(self.shape)

    @property
    def num_elements(self) -> int:
        """Total element count (1 for scalars)."""
        return int(math.prod(self.shape)) if self.shape else 1

    @property
    def size_bytes(self) -> int:
        """Storage footprint of the tensor in bytes."""
        return self.num_elements * self.dtype.itemsize

    # --------------------------------------------------------------- editing
    def with_shape(self, shape: Iterable[int]) -> "TensorType":
        """Return a copy with a different shape but the same dtype."""
        return TensorType(tuple(shape), self.dtype)

    def with_dtype(self, dtype: DataType) -> "TensorType":
        """Return a copy with a different dtype but the same shape."""
        return TensorType(self.shape, dtype)

    def squeeze(self, axis: int) -> "TensorType":
        """Drop a unit dimension at ``axis``."""
        axis = _normalize_axis(axis, self.rank)
        if self.shape[axis] != 1:
            raise ValueError(f"cannot squeeze non-unit axis {axis} of {self.shape}")
        return self.with_shape(self.shape[:axis] + self.shape[axis + 1 :])

    def unsqueeze(self, axis: int) -> "TensorType":
        """Insert a unit dimension before ``axis``."""
        axis = _normalize_axis(axis, self.rank + 1)
        return self.with_shape(self.shape[:axis] + (1,) + self.shape[axis:])

    def reduce(self, axis: int, keepdims: bool = False) -> "TensorType":
        """Shape after a reduce primitive along ``axis``."""
        axis = _normalize_axis(axis, self.rank)
        if keepdims:
            new_shape = self.shape[:axis] + (1,) + self.shape[axis + 1 :]
        else:
            new_shape = self.shape[:axis] + self.shape[axis + 1 :]
        return self.with_shape(new_shape)

    def broadcast(self, axis: int, size: int) -> "TensorType":
        """Shape after a broadcast primitive inserting ``size`` copies at ``axis``."""
        axis = _normalize_axis(axis, self.rank + 1)
        return self.with_shape(self.shape[:axis] + (size,) + self.shape[axis:])

    def transpose(self, perm: Sequence[int]) -> "TensorType":
        """Shape after permuting dimensions with ``perm``."""
        perm = tuple(perm)
        if sorted(perm) != list(range(self.rank)):
            raise ValueError(f"invalid permutation {perm} for rank {self.rank}")
        return self.with_shape(tuple(self.shape[p] for p in perm))

    def __str__(self) -> str:
        dims = "x".join(str(d) for d in self.shape) or "scalar"
        return f"{self.dtype.value}[{dims}]"


def _normalize_axis(axis: int, rank: int) -> int:
    """Convert a possibly-negative axis into the range ``[0, rank)``."""
    if axis < 0:
        axis += rank
    if not 0 <= axis < rank:
        raise ValueError(f"axis {axis} out of range for rank {rank}")
    return axis
