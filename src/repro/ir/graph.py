"""Operator-level computation graph.

A :class:`Graph` is the input to Korch (Figure 1): a DAG whose nodes are
tensor operators and whose edges are tensors.  Tensors are referred to by
name; every named tensor carries a static :class:`~repro.ir.tensor_type.TensorType`.

The graph distinguishes three producer categories for a tensor:

* **inputs** — fed at runtime (e.g. the image batch),
* **params** — model weights; never materialized here (large models would not
  fit), only their types are recorded, and the functional executor fabricates
  deterministic data for them on demand,
* **constants** — small literal tensors required by graph transformations
  (e.g. the all-ones vector introduced when a ReduceSum is rewritten as a
  MatMul).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

import numpy as np

from .dtype import DataType
from .ops import REGISTRY, OpSpec
from .tensor_type import TensorType

__all__ = ["Node", "Graph", "GraphError"]


class GraphError(ValueError):
    """Raised when a graph or node is structurally invalid."""


@dataclass
class Node:
    """One operator application.

    Attributes
    ----------
    name:
        Unique node name within its graph.
    op_type:
        Registered operator name (see :mod:`repro.ir.ops`).
    inputs / outputs:
        Ordered tensor names.
    attrs:
        Operator attributes (static hyper-parameters such as strides).
    """

    name: str
    op_type: str
    inputs: list[str]
    outputs: list[str]
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def spec(self) -> OpSpec:
        """Registered specification of this node's operator."""
        return REGISTRY.get(self.op_type)

    @property
    def output(self) -> str:
        """Name of the single output (errors for multi-output nodes)."""
        if len(self.outputs) != 1:
            raise GraphError(f"node {self.name} has {len(self.outputs)} outputs")
        return self.outputs[0]

    def attr(self, key: str, default: Any = None) -> Any:
        """Attribute lookup falling back to the operator's declared default."""
        if key in self.attrs:
            return self.attrs[key]
        spec_default = self.spec.attributes.get(key, default)
        return spec_default

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Node({self.name}: {self.op_type} {self.inputs} -> {self.outputs})"


class Graph:
    """Directed acyclic graph of tensor operators."""

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self.nodes: list[Node] = []
        self.tensors: dict[str, TensorType] = {}
        self.inputs: list[str] = []
        self.outputs: list[str] = []
        self.params: dict[str, TensorType] = {}
        self.constants: dict[str, np.ndarray] = {}
        self._nodes_by_name: dict[str, Node] = {}
        self._counter = itertools.count()

    # ------------------------------------------------------------------ build
    def unique_name(self, prefix: str) -> str:
        """Generate a tensor/node name that does not collide with existing ones."""
        while True:
            candidate = f"{prefix}_{next(self._counter)}"
            if candidate not in self.tensors and candidate not in self._nodes_by_name:
                return candidate

    def add_tensor(self, name: str, ttype: TensorType) -> str:
        """Declare a named tensor; re-declaring with a different type is an error."""
        existing = self.tensors.get(name)
        if existing is not None and existing != ttype:
            raise GraphError(f"tensor {name!r} re-declared with type {ttype} != {existing}")
        self.tensors[name] = ttype
        return name

    def add_input(self, name: str, ttype: TensorType) -> str:
        """Declare a runtime graph input."""
        self.add_tensor(name, ttype)
        if name not in self.inputs:
            self.inputs.append(name)
        return name

    def add_param(self, name: str, ttype: TensorType) -> str:
        """Declare a weight tensor (type only; data synthesized when executing)."""
        self.add_tensor(name, ttype)
        self.params[name] = ttype
        return name

    def add_constant(self, name: str, value: np.ndarray) -> str:
        """Declare a small literal constant with actual data."""
        value = np.asarray(value)
        self.add_tensor(name, TensorType(value.shape, DataType.from_numpy(value.dtype)))
        self.constants[name] = value
        return name

    def add_output(self, name: str) -> str:
        """Mark an existing tensor as a graph output."""
        if name not in self.tensors:
            raise GraphError(f"cannot mark unknown tensor {name!r} as output")
        if name not in self.outputs:
            self.outputs.append(name)
        return name

    def add_node(self, node: Node) -> Node:
        """Insert a node; inputs must already be declared tensors."""
        if node.name in self._nodes_by_name:
            raise GraphError(f"duplicate node name {node.name!r}")
        node.spec.validate_arity(len(node.inputs), len(node.outputs))
        for tensor in node.inputs:
            if tensor not in self.tensors:
                raise GraphError(f"node {node.name}: unknown input tensor {tensor!r}")
        self.nodes.append(node)
        self._nodes_by_name[node.name] = node
        return node

    def remove_node(self, node: Node) -> None:
        """Remove a node (used by graph transformations)."""
        self.nodes.remove(node)
        del self._nodes_by_name[node.name]

    # ------------------------------------------------------------------ query
    def node(self, name: str) -> Node:
        """Node lookup by name."""
        return self._nodes_by_name[name]

    def tensor_type(self, name: str) -> TensorType:
        """Type of a declared tensor."""
        try:
            return self.tensors[name]
        except KeyError:
            raise GraphError(f"unknown tensor {name!r}") from None

    def producer(self, tensor: str) -> Node | None:
        """Node producing ``tensor``, or ``None`` for inputs/params/constants."""
        for node in self.nodes:
            if tensor in node.outputs:
                return node
        return None

    def consumers(self, tensor: str) -> list[Node]:
        """All nodes consuming ``tensor``."""
        return [node for node in self.nodes if tensor in node.inputs]

    def is_source_tensor(self, tensor: str) -> bool:
        """True if ``tensor`` is an input, parameter, or constant."""
        return tensor in self.inputs or tensor in self.params or tensor in self.constants

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes)

    # ------------------------------------------------------------- structure
    def producer_map(self) -> dict[str, Node]:
        """Map from tensor name to producing node (sources excluded)."""
        result: dict[str, Node] = {}
        for node in self.nodes:
            for out in node.outputs:
                if out in result:
                    raise GraphError(f"tensor {out!r} produced by multiple nodes")
                result[out] = node
        return result

    def consumer_map(self) -> dict[str, list[Node]]:
        """Map from tensor name to list of consuming nodes."""
        result: dict[str, list[Node]] = {}
        for node in self.nodes:
            for inp in node.inputs:
                result.setdefault(inp, []).append(node)
        return result

    def predecessors(self, node: Node) -> list[Node]:
        """Nodes whose outputs feed ``node``."""
        producers = self.producer_map()
        preds = []
        for tensor in node.inputs:
            pred = producers.get(tensor)
            if pred is not None and pred not in preds:
                preds.append(pred)
        return preds

    def successors(self, node: Node) -> list[Node]:
        """Nodes consuming any output of ``node``."""
        consumers = self.consumer_map()
        succs = []
        for tensor in node.outputs:
            for succ in consumers.get(tensor, []):
                if succ not in succs:
                    succs.append(succ)
        return succs

    def topological_order(self) -> list[Node]:
        """Nodes in a valid execution order; raises on cycles."""
        producers = self.producer_map()
        indegree: dict[str, int] = {}
        dependents: dict[str, list[Node]] = {}
        for node in self.nodes:
            deps = {producers[t].name for t in node.inputs if t in producers}
            indegree[node.name] = len(deps)
            for dep in deps:
                dependents.setdefault(dep, []).append(node)
        ready = [node for node in self.nodes if indegree[node.name] == 0]
        order: list[Node] = []
        while ready:
            node = ready.pop()
            order.append(node)
            for succ in dependents.get(node.name, []):
                indegree[succ.name] -= 1
                if indegree[succ.name] == 0:
                    ready.append(succ)
        if len(order) != len(self.nodes):
            raise GraphError(f"graph {self.name!r} contains a cycle")
        return order

    # ------------------------------------------------------------------ misc
    def stats(self) -> dict[str, int]:
        """Simple size statistics used by reports and Table 2."""
        kinds: dict[str, int] = {}
        for node in self.nodes:
            kinds[node.op_type] = kinds.get(node.op_type, 0) + 1
        return {
            "num_nodes": len(self.nodes),
            "num_tensors": len(self.tensors),
            "num_inputs": len(self.inputs),
            "num_outputs": len(self.outputs),
            "num_params": len(self.params),
            "num_op_types": len(kinds),
        }

    def op_type_histogram(self) -> dict[str, int]:
        """Count of nodes per operator type."""
        histogram: dict[str, int] = {}
        for node in self.nodes:
            histogram[node.op_type] = histogram.get(node.op_type, 0) + 1
        return dict(sorted(histogram.items()))

    def subgraph_tensors(self, nodes: Iterable[Node]) -> tuple[set[str], set[str]]:
        """External inputs and outputs of a node subset.

        Returns ``(external_inputs, external_outputs)`` where external inputs
        are tensors consumed inside the subset but produced outside it, and
        external outputs are tensors produced inside the subset that are
        consumed outside it or are graph outputs.
        """
        node_set = set(id(n) for n in nodes)
        produced = {t for n in self.nodes if id(n) in node_set for t in n.outputs}
        consumed = {t for n in self.nodes if id(n) in node_set for t in n.inputs}
        external_inputs = consumed - produced
        external_outputs = set()
        for tensor in produced:
            if tensor in self.outputs:
                external_outputs.add(tensor)
                continue
            for consumer in self.consumers(tensor):
                if id(consumer) not in node_set:
                    external_outputs.add(tensor)
                    break
        return external_inputs, external_outputs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph({self.name!r}, nodes={len(self.nodes)}, outputs={self.outputs})"
