"""Operator-level tensor IR: dtypes, tensor types, operators, graphs, builder."""

from .builder import GraphBuilder
from .dtype import DataType
from .graph import Graph, GraphError, Node
from .ops import REGISTRY, OpKind, OpSpec, get_op, register_op
from .serialization import graph_from_dict, graph_to_dict, load_graph, save_graph
from .shape_inference import broadcast_shapes, infer_graph_types, infer_node_types
from .tensor_type import TensorType
from .validation import graph_diagnostics, validate_graph

__all__ = [
    "DataType",
    "TensorType",
    "OpKind",
    "OpSpec",
    "REGISTRY",
    "register_op",
    "get_op",
    "Node",
    "Graph",
    "GraphError",
    "GraphBuilder",
    "graph_diagnostics",
    "validate_graph",
    "infer_node_types",
    "infer_graph_types",
    "broadcast_shapes",
    "graph_to_dict",
    "graph_from_dict",
    "save_graph",
    "load_graph",
]
