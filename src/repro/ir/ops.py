"""Operator registry for the computation-graph IR.

The registry mirrors the subset of ONNX operators exercised by the paper's
five workloads (Candy, YOLOv4, YOLOX-Nano, Segformer, EfficientViT) plus the
operators that appear in the fission rules of §3.  Each operator is described
by an :class:`OpSpec` that records

* its arity,
* the attributes it accepts (with defaults),
* a coarse *kind* used by the baselines' fusion policies (the paper's
  baselines reason about operators, not primitives), and
* whether Korch treats it as compute-intensive (contains a linear
  transformation after fission).

Shape inference lives in :mod:`repro.ir.shape_inference`; fission rules in
:mod:`repro.fission.rules`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["OpKind", "OpSpec", "OperatorRegistry", "REGISTRY", "register_op", "get_op"]


class OpKind(str, enum.Enum):
    """Coarse operator classification used by rule-based fusion baselines.

    This follows the classification used informally by TVM/TensorRT fusion
    rules and explicitly by DNNFusion: elementwise ops are *injective*,
    reductions are *reduction*, data-movement ops are *layout*, and ops built
    around a GEMM/conv core are *compute*.  Composite ops (Softmax,
    InstanceNorm, ...) mix several behaviours and are what operator fission
    takes apart.
    """

    ELEMENTWISE = "elementwise"
    REDUCTION = "reduction"
    LAYOUT = "layout"
    COMPUTE = "compute"
    COMPOSITE = "composite"
    OPAQUE = "opaque"


@dataclass(frozen=True)
class OpSpec:
    """Static description of one operator type."""

    name: str
    kind: OpKind
    min_inputs: int = 1
    max_inputs: int = 1
    num_outputs: int = 1
    attributes: Mapping[str, Any] = field(default_factory=dict)
    variadic_inputs: bool = False
    variadic_outputs: bool = False
    doc: str = ""

    def validate_arity(self, num_inputs: int, num_outputs: int) -> None:
        """Raise ``ValueError`` if the node arity is outside the spec."""
        if not self.variadic_inputs and not (self.min_inputs <= num_inputs <= self.max_inputs):
            raise ValueError(
                f"{self.name}: expected between {self.min_inputs} and "
                f"{self.max_inputs} inputs, got {num_inputs}"
            )
        if self.variadic_inputs and num_inputs < self.min_inputs:
            raise ValueError(
                f"{self.name}: expected at least {self.min_inputs} inputs, got {num_inputs}"
            )
        if not self.variadic_outputs and num_outputs != self.num_outputs:
            raise ValueError(
                f"{self.name}: expected {self.num_outputs} outputs, got {num_outputs}"
            )

    def default_attrs(self) -> dict[str, Any]:
        """Copy of the attribute defaults for this operator."""
        return dict(self.attributes)


class OperatorRegistry:
    """Name-indexed collection of :class:`OpSpec` objects."""

    def __init__(self) -> None:
        self._specs: dict[str, OpSpec] = {}

    def register(self, spec: OpSpec) -> OpSpec:
        """Add ``spec``; re-registering an existing name is an error."""
        if spec.name in self._specs:
            raise ValueError(f"operator {spec.name!r} already registered")
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> OpSpec:
        """Look up an operator; raises ``KeyError`` with a helpful message."""
        try:
            return self._specs[name]
        except KeyError:
            raise KeyError(
                f"unknown operator {name!r}; known operators: {sorted(self._specs)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self):
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def names(self) -> list[str]:
        """Sorted list of registered operator names."""
        return sorted(self._specs)

    def by_kind(self, kind: OpKind) -> list[OpSpec]:
        """All operators of a given kind, sorted by name."""
        return sorted((s for s in self._specs.values() if s.kind == kind), key=lambda s: s.name)


REGISTRY = OperatorRegistry()


def register_op(spec: OpSpec) -> OpSpec:
    """Register ``spec`` in the module-level :data:`REGISTRY`."""
    return REGISTRY.register(spec)


def get_op(name: str) -> OpSpec:
    """Fetch an operator spec from the module-level :data:`REGISTRY`."""
    return REGISTRY.get(name)


def _register_builtin_operators() -> None:
    """Populate the registry with every operator used in the reproduction."""
    specs = [
        # ------------------------------------------------------------ elementwise binary
        OpSpec("Add", OpKind.ELEMENTWISE, 2, 2, doc="Elementwise addition with broadcasting."),
        OpSpec("Sub", OpKind.ELEMENTWISE, 2, 2, doc="Elementwise subtraction with broadcasting."),
        OpSpec("Mul", OpKind.ELEMENTWISE, 2, 2, doc="Elementwise multiplication with broadcasting."),
        OpSpec("Div", OpKind.ELEMENTWISE, 2, 2, doc="Elementwise division with broadcasting."),
        OpSpec("Pow", OpKind.ELEMENTWISE, 2, 2, doc="Elementwise power with broadcasting."),
        OpSpec("Maximum", OpKind.ELEMENTWISE, 2, 2, doc="Elementwise maximum."),
        OpSpec("Minimum", OpKind.ELEMENTWISE, 2, 2, doc="Elementwise minimum."),
        # ------------------------------------------------------------ elementwise unary
        OpSpec("Relu", OpKind.ELEMENTWISE, doc="max(x, 0)"),
        OpSpec("LeakyRelu", OpKind.ELEMENTWISE, attributes={"alpha": 0.1}, doc="Leaky ReLU."),
        OpSpec("Sigmoid", OpKind.ELEMENTWISE, doc="1 / (1 + exp(-x))"),
        OpSpec("Tanh", OpKind.ELEMENTWISE, doc="Hyperbolic tangent."),
        OpSpec("Exp", OpKind.ELEMENTWISE, doc="Elementwise exponential."),
        OpSpec("Log", OpKind.ELEMENTWISE, doc="Elementwise natural logarithm."),
        OpSpec("Sqrt", OpKind.ELEMENTWISE, doc="Elementwise square root."),
        OpSpec("Erf", OpKind.ELEMENTWISE, doc="Gauss error function (used by exact GELU)."),
        OpSpec("Neg", OpKind.ELEMENTWISE, doc="Elementwise negation."),
        OpSpec("Reciprocal", OpKind.ELEMENTWISE, doc="Elementwise 1/x."),
        OpSpec("Identity", OpKind.ELEMENTWISE, doc="Pass-through."),
        OpSpec("Softplus", OpKind.ELEMENTWISE, doc="log(1 + exp(x)) (part of Mish)."),
        OpSpec("Clip", OpKind.ELEMENTWISE, attributes={"min": 0.0, "max": 6.0}, doc="Clamp."),
        # ------------------------------------------------------------ composite activations / normalizations
        OpSpec("Gelu", OpKind.COMPOSITE, doc="Gaussian error linear unit (exact, erf-based)."),
        OpSpec("Silu", OpKind.COMPOSITE, doc="x * sigmoid(x) (a.k.a. Swish); used by YOLO heads."),
        OpSpec("Mish", OpKind.COMPOSITE, doc="x * tanh(softplus(x)); used by YOLOv4."),
        OpSpec("HardSwish", OpKind.COMPOSITE, doc="x * relu6(x + 3) / 6; used by EfficientViT."),
        OpSpec("Softmax", OpKind.COMPOSITE, attributes={"axis": -1}, doc="Softmax along one axis."),
        OpSpec(
            "LayerNormalization",
            OpKind.COMPOSITE,
            1,
            3,
            attributes={"axis": -1, "epsilon": 1e-5},
            doc="Layer normalization with optional scale/bias inputs.",
        ),
        OpSpec(
            "InstanceNormalization",
            OpKind.COMPOSITE,
            1,
            3,
            attributes={"epsilon": 1e-5},
            doc="Instance normalization over spatial dims with optional scale/bias.",
        ),
        OpSpec(
            "BatchNormalization",
            OpKind.COMPOSITE,
            1,
            5,
            attributes={"epsilon": 1e-5},
            doc="Inference-mode batch normalization (folded running statistics).",
        ),
        OpSpec(
            "GroupNormalization",
            OpKind.COMPOSITE,
            1,
            3,
            attributes={"num_groups": 32, "epsilon": 1e-5},
            doc="Group normalization.",
        ),
        # ------------------------------------------------------------ reductions and pooling
        OpSpec(
            "ReduceSum",
            OpKind.REDUCTION,
            attributes={"axes": (-1,), "keepdims": True},
            doc="Sum reduction along the given axes.",
        ),
        OpSpec(
            "ReduceMean",
            OpKind.REDUCTION,
            attributes={"axes": (-1,), "keepdims": True},
            doc="Mean reduction along the given axes.",
        ),
        OpSpec(
            "ReduceMax",
            OpKind.REDUCTION,
            attributes={"axes": (-1,), "keepdims": True},
            doc="Max reduction along the given axes.",
        ),
        OpSpec(
            "MaxPool",
            OpKind.REDUCTION,
            attributes={"kernel_shape": (2, 2), "strides": (2, 2), "pads": (0, 0, 0, 0)},
            doc="2D max pooling over NCHW tensors.",
        ),
        OpSpec(
            "AveragePool",
            OpKind.REDUCTION,
            attributes={"kernel_shape": (2, 2), "strides": (2, 2), "pads": (0, 0, 0, 0)},
            doc="2D average pooling over NCHW tensors.",
        ),
        OpSpec("GlobalAveragePool", OpKind.REDUCTION, doc="Global spatial average pooling."),
        # ------------------------------------------------------------ layout transformations
        OpSpec("Transpose", OpKind.LAYOUT, attributes={"perm": ()}, doc="Dimension permutation."),
        OpSpec("Reshape", OpKind.LAYOUT, attributes={"shape": ()}, doc="Reshape to a static shape."),
        OpSpec("Flatten", OpKind.LAYOUT, attributes={"axis": 1}, doc="Flatten trailing dims."),
        OpSpec(
            "Split",
            OpKind.LAYOUT,
            1,
            1,
            num_outputs=2,
            variadic_outputs=True,
            attributes={"axis": 0, "split": ()},
            doc="Split one tensor into several along an axis.",
        ),
        OpSpec(
            "Concat",
            OpKind.LAYOUT,
            2,
            64,
            variadic_inputs=True,
            attributes={"axis": 0},
            doc="Concatenate tensors along an axis.",
        ),
        OpSpec(
            "Slice",
            OpKind.LAYOUT,
            attributes={"starts": (), "ends": (), "axes": (), "steps": ()},
            doc="Strided slice with static bounds.",
        ),
        OpSpec(
            "Pad",
            OpKind.LAYOUT,
            attributes={"pads": (), "value": 0.0},
            doc="Constant padding; `pads` is per-dim (begin..., end...).",
        ),
        OpSpec("Squeeze", OpKind.LAYOUT, attributes={"axes": ()}, doc="Remove unit dims."),
        OpSpec("Unsqueeze", OpKind.LAYOUT, attributes={"axes": ()}, doc="Insert unit dims."),
        OpSpec(
            "Resize",
            OpKind.LAYOUT,
            attributes={"scales": (), "sizes": (), "mode": "nearest"},
            doc="Spatial up/down-sampling (nearest or bilinear).",
        ),
        OpSpec(
            "Expand",
            OpKind.LAYOUT,
            attributes={"shape": ()},
            doc="Broadcast a tensor to a larger shape.",
        ),
        # ------------------------------------------------------------ compute-intensive operators
        OpSpec(
            "Conv",
            OpKind.COMPUTE,
            2,
            3,
            attributes={
                "kernel_shape": (3, 3),
                "strides": (1, 1),
                "pads": (1, 1, 1, 1),
                "dilations": (1, 1),
                "group": 1,
            },
            doc="2D convolution over NCHW tensors (weights OIHW).",
        ),
        OpSpec(
            "ConvTranspose",
            OpKind.COMPUTE,
            2,
            3,
            attributes={
                "kernel_shape": (3, 3),
                "strides": (2, 2),
                "pads": (1, 1, 1, 1),
                "output_padding": (1, 1),
                "group": 1,
            },
            doc="2D transposed convolution (used by Candy's decoder).",
        ),
        OpSpec(
            "MatMul",
            OpKind.COMPUTE,
            2,
            2,
            doc="Matrix multiplication with numpy broadcasting over batch dims.",
        ),
        OpSpec(
            "Gemm",
            OpKind.COMPUTE,
            2,
            3,
            attributes={"trans_a": False, "trans_b": False, "alpha": 1.0, "beta": 1.0},
            doc="General matrix multiply with optional bias.",
        ),
        # ------------------------------------------------------------ opaque
        OpSpec(
            "TopK",
            OpKind.OPAQUE,
            1,
            1,
            num_outputs=2,
            attributes={"k": 1, "axis": -1},
            doc="Top-k selection; treated as an opaque primitive by Korch (§3).",
        ),
    ]
    for spec in specs:
        register_op(spec)


_register_builtin_operators()
