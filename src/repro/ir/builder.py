"""Fluent builder for operator-level computation graphs.

The model zoo (:mod:`repro.models`) builds every workload through this class.
Each builder method creates one node, runs shape inference eagerly, declares
the resulting tensors, and returns the output tensor name, so models read
like framework code::

    b = GraphBuilder("block")
    x = b.input("x", (1, 64, 56, 56))
    y = b.conv2d(x, 128, kernel=3, stride=2)
    y = b.relu(b.instance_norm(y))
    b.output(y)
    graph = b.build()
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from .dtype import DataType
from .graph import Graph, Node
from .shape_inference import infer_node_types
from .tensor_type import TensorType
from .validation import validate_graph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Incrementally constructs a :class:`~repro.ir.graph.Graph`."""

    def __init__(self, name: str = "graph", dtype: DataType = DataType.FLOAT32) -> None:
        self.graph = Graph(name)
        self.dtype = dtype

    # ------------------------------------------------------------ primitives
    def input(self, name: str, shape: Sequence[int], dtype: DataType | None = None) -> str:
        """Declare a runtime input tensor and return its name."""
        return self.graph.add_input(name, TensorType(shape, dtype or self.dtype))

    def param(self, name: str, shape: Sequence[int], dtype: DataType | None = None) -> str:
        """Declare a weight tensor (no data) and return its name."""
        name = self._fresh(name)
        return self.graph.add_param(name, TensorType(shape, dtype or self.dtype))

    def constant(self, name: str, value: np.ndarray) -> str:
        """Declare a literal constant tensor and return its name."""
        name = self._fresh(name)
        return self.graph.add_constant(name, np.asarray(value, dtype=self.dtype.to_numpy()))

    def output(self, *tensors: str) -> None:
        """Mark tensors as graph outputs."""
        for tensor in tensors:
            self.graph.add_output(tensor)

    def node(
        self,
        op_type: str,
        inputs: Sequence[str],
        attrs: dict[str, Any] | None = None,
        name: str | None = None,
        num_outputs: int = 1,
    ) -> list[str]:
        """Add an arbitrary node; returns its output tensor names."""
        node_name = name or self.graph.unique_name(op_type.lower())
        outputs = [self.graph.unique_name(f"{node_name}_out") for _ in range(num_outputs)]
        node = Node(node_name, op_type, list(inputs), outputs, dict(attrs or {}))
        input_types = [self.graph.tensor_type(t) for t in inputs]
        output_types = infer_node_types(node, input_types)
        node.outputs = outputs[: len(output_types)]
        for tensor, ttype in zip(node.outputs, output_types):
            self.graph.add_tensor(tensor, ttype)
        self.graph.add_node(node)
        return node.outputs

    def op(self, op_type: str, *inputs: str, **attrs: Any) -> str:
        """Single-output helper around :meth:`node`."""
        return self.node(op_type, list(inputs), attrs)[0]

    def build(self, validate: bool = True) -> Graph:
        """Finish and optionally validate the graph."""
        if not self.graph.outputs:
            raise ValueError(f"graph {self.graph.name!r} has no outputs")
        if validate:
            validate_graph(self.graph)
        return self.graph

    def _fresh(self, name: str) -> str:
        if name in self.graph.tensors:
            return self.graph.unique_name(name)
        return name

    def shape(self, tensor: str) -> tuple[int, ...]:
        """Static shape of a tensor already in the graph."""
        return self.graph.tensor_type(tensor).shape

    # ---------------------------------------------------------- elementwise
    def add(self, a: str, b: str) -> str:
        return self.op("Add", a, b)

    def sub(self, a: str, b: str) -> str:
        return self.op("Sub", a, b)

    def mul(self, a: str, b: str) -> str:
        return self.op("Mul", a, b)

    def div(self, a: str, b: str) -> str:
        return self.op("Div", a, b)

    def pow(self, a: str, b: str) -> str:
        return self.op("Pow", a, b)

    def relu(self, x: str) -> str:
        return self.op("Relu", x)

    def leaky_relu(self, x: str, alpha: float = 0.1) -> str:
        return self.op("LeakyRelu", x, alpha=alpha)

    def sigmoid(self, x: str) -> str:
        return self.op("Sigmoid", x)

    def tanh(self, x: str) -> str:
        return self.op("Tanh", x)

    def exp(self, x: str) -> str:
        return self.op("Exp", x)

    def sqrt(self, x: str) -> str:
        return self.op("Sqrt", x)

    def erf(self, x: str) -> str:
        return self.op("Erf", x)

    def gelu(self, x: str) -> str:
        return self.op("Gelu", x)

    def silu(self, x: str) -> str:
        return self.op("Silu", x)

    def mish(self, x: str) -> str:
        return self.op("Mish", x)

    def hard_swish(self, x: str) -> str:
        return self.op("HardSwish", x)

    def clip(self, x: str, minimum: float = 0.0, maximum: float = 6.0) -> str:
        return self.op("Clip", x, min=minimum, max=maximum)

    def softmax(self, x: str, axis: int = -1) -> str:
        return self.op("Softmax", x, axis=axis)

    # ------------------------------------------------------- normalizations
    def layer_norm(self, x: str, axis: int = -1, epsilon: float = 1e-5) -> str:
        channels = self.shape(x)[axis]
        scale = self.param("ln_scale", (channels,))
        bias = self.param("ln_bias", (channels,))
        return self.op("LayerNormalization", x, scale, bias, axis=axis, epsilon=epsilon)

    def instance_norm(self, x: str, epsilon: float = 1e-5) -> str:
        channels = self.shape(x)[1]
        scale = self.param("in_scale", (channels,))
        bias = self.param("in_bias", (channels,))
        return self.op("InstanceNormalization", x, scale, bias, epsilon=epsilon)

    def batch_norm(self, x: str, epsilon: float = 1e-5) -> str:
        channels = self.shape(x)[1]
        scale = self.param("bn_scale", (channels,))
        bias = self.param("bn_bias", (channels,))
        mean = self.param("bn_mean", (channels,))
        var = self.param("bn_var", (channels,))
        return self.op("BatchNormalization", x, scale, bias, mean, var, epsilon=epsilon)

    # ----------------------------------------------------------- reductions
    def reduce_sum(self, x: str, axes: Sequence[int] = (-1,), keepdims: bool = True) -> str:
        return self.op("ReduceSum", x, axes=tuple(axes), keepdims=keepdims)

    def reduce_mean(self, x: str, axes: Sequence[int] = (-1,), keepdims: bool = True) -> str:
        return self.op("ReduceMean", x, axes=tuple(axes), keepdims=keepdims)

    def reduce_max(self, x: str, axes: Sequence[int] = (-1,), keepdims: bool = True) -> str:
        return self.op("ReduceMax", x, axes=tuple(axes), keepdims=keepdims)

    def max_pool(self, x: str, kernel: int = 2, stride: int = 2, padding: int = 0) -> str:
        return self.op(
            "MaxPool",
            x,
            kernel_shape=(kernel, kernel),
            strides=(stride, stride),
            pads=(padding, padding, padding, padding),
        )

    def avg_pool(self, x: str, kernel: int = 2, stride: int = 2, padding: int = 0) -> str:
        return self.op(
            "AveragePool",
            x,
            kernel_shape=(kernel, kernel),
            strides=(stride, stride),
            pads=(padding, padding, padding, padding),
        )

    def global_avg_pool(self, x: str) -> str:
        return self.op("GlobalAveragePool", x)

    # --------------------------------------------------------------- layout
    def transpose(self, x: str, perm: Sequence[int]) -> str:
        return self.op("Transpose", x, perm=tuple(perm))

    def reshape(self, x: str, shape: Sequence[int]) -> str:
        return self.op("Reshape", x, shape=tuple(shape))

    def flatten(self, x: str, axis: int = 1) -> str:
        return self.op("Flatten", x, axis=axis)

    def squeeze(self, x: str, axes: Sequence[int]) -> str:
        return self.op("Squeeze", x, axes=tuple(axes))

    def unsqueeze(self, x: str, axes: Sequence[int]) -> str:
        return self.op("Unsqueeze", x, axes=tuple(axes))

    def concat(self, tensors: Sequence[str], axis: int = 0) -> str:
        return self.node("Concat", list(tensors), {"axis": axis})[0]

    def split(self, x: str, num: int, axis: int = 0, sizes: Sequence[int] | None = None) -> list[str]:
        attrs: dict[str, Any] = {"axis": axis}
        if sizes is not None:
            attrs["split"] = tuple(sizes)
            num = len(sizes)
        return self.node("Split", [x], attrs, num_outputs=num)

    def slice(
        self,
        x: str,
        starts: Sequence[int],
        ends: Sequence[int],
        axes: Sequence[int] | None = None,
        steps: Sequence[int] | None = None,
    ) -> str:
        attrs: dict[str, Any] = {"starts": tuple(starts), "ends": tuple(ends)}
        if axes is not None:
            attrs["axes"] = tuple(axes)
        if steps is not None:
            attrs["steps"] = tuple(steps)
        return self.node("Slice", [x], attrs)[0]

    def pad(self, x: str, pads: Sequence[int], value: float = 0.0) -> str:
        return self.op("Pad", x, pads=tuple(pads), value=value)

    def resize(self, x: str, scale: float = 2.0, mode: str = "nearest") -> str:
        rank = len(self.shape(x))
        scales = (1.0, 1.0) + (float(scale),) * (rank - 2)
        return self.op("Resize", x, scales=scales, mode=mode)

    def resize_to(self, x: str, sizes: Sequence[int], mode: str = "nearest") -> str:
        return self.op("Resize", x, sizes=tuple(sizes), mode=mode)

    # -------------------------------------------------------------- compute
    def conv2d(
        self,
        x: str,
        out_channels: int,
        kernel: int = 3,
        stride: int = 1,
        padding: int | None = None,
        groups: int = 1,
        bias: bool = True,
        name: str = "conv",
    ) -> str:
        """2D convolution with freshly declared weight (and optional bias) params."""
        in_channels = self.shape(x)[1]
        if padding is None:
            padding = kernel // 2
        weight = self.param(f"{name}_w", (out_channels, in_channels // groups, kernel, kernel))
        inputs = [x, weight]
        if bias:
            inputs.append(self.param(f"{name}_b", (out_channels,)))
        return self.node(
            "Conv",
            inputs,
            {
                "kernel_shape": (kernel, kernel),
                "strides": (stride, stride),
                "pads": (padding, padding, padding, padding),
                "dilations": (1, 1),
                "group": groups,
            },
        )[0]

    def conv_transpose2d(
        self,
        x: str,
        out_channels: int,
        kernel: int = 3,
        stride: int = 2,
        padding: int = 1,
        output_padding: int = 1,
        name: str = "deconv",
    ) -> str:
        """2D transposed convolution (Candy decoder)."""
        in_channels = self.shape(x)[1]
        weight = self.param(f"{name}_w", (in_channels, out_channels, kernel, kernel))
        bias = self.param(f"{name}_b", (out_channels,))
        return self.node(
            "ConvTranspose",
            [x, weight, bias],
            {
                "kernel_shape": (kernel, kernel),
                "strides": (stride, stride),
                "pads": (padding, padding, padding, padding),
                "output_padding": (output_padding, output_padding),
                "group": 1,
            },
        )[0]

    def matmul(self, a: str, b: str) -> str:
        return self.op("MatMul", a, b)

    def linear(self, x: str, out_features: int, bias: bool = True, name: str = "linear") -> str:
        """Dense layer ``x @ W`` (+ bias) over the last dimension."""
        in_features = self.shape(x)[-1]
        weight = self.param(f"{name}_w", (in_features, out_features))
        y = self.matmul(x, weight)
        if bias:
            b = self.param(f"{name}_b", (out_features,))
            y = self.add(y, b)
        return y

    def gemm(self, a: str, b: str, trans_a: bool = False, trans_b: bool = False) -> str:
        return self.op("Gemm", a, b, trans_a=trans_a, trans_b=trans_b)
