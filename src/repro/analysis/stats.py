"""Model statistics and comparison tables (Table 2 and Figure 6 style reports)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..orchestration.strategy import OrchestrationStrategy
from ..pipeline import KorchResult

__all__ = ["ModelStats", "ComparisonRow", "comparison_table", "format_table", "speedup_over"]


@dataclass
class ModelStats:
    """Table 2 row: primitive-graph size, candidate kernels, tuning time."""

    model: str
    num_operator_nodes: int
    num_primitive_nodes: int
    num_candidate_kernels: int
    num_selected_kernels: int
    tuning_hours: float

    @classmethod
    def from_result(cls, result: KorchResult) -> "ModelStats":
        return cls(
            model=result.graph.name,
            num_operator_nodes=result.graph.num_nodes,
            num_primitive_nodes=result.num_primitives,
            num_candidate_kernels=result.num_candidate_kernels,
            num_selected_kernels=result.num_kernels,
            tuning_hours=result.tuning.total_hours,
        )

    def as_row(self) -> dict[str, float | int | str]:
        return {
            "model": self.model,
            "# operator nodes": self.num_operator_nodes,
            "# primitive nodes": self.num_primitive_nodes,
            "# candidate kernels": self.num_candidate_kernels,
            "# selected kernels": self.num_selected_kernels,
            "tuning time (h)": round(self.tuning_hours, 2),
        }


@dataclass
class ComparisonRow:
    """One model's latency under each framework, normalized like Figure 6."""

    model: str
    gpu: str
    latency_ms: dict[str, float] = field(default_factory=dict)

    def relative_to(self, reference: str) -> dict[str, float]:
        """Latency of every framework relative to ``reference`` (lower = faster)."""
        base = self.latency_ms[reference]
        return {name: value / base for name, value in self.latency_ms.items()}

    def speedup_of(self, framework: str, over: str) -> float:
        """How much faster ``framework`` is than ``over`` (>1 means faster)."""
        return self.latency_ms[over] / self.latency_ms[framework]


def speedup_over(strategies: Mapping[str, OrchestrationStrategy], framework: str, over: str) -> float:
    """Speedup of one strategy over another from a name->strategy mapping."""
    return strategies[over].total_latency_s / strategies[framework].total_latency_s


def comparison_table(rows: Sequence[ComparisonRow], reference: str = "Korch") -> list[dict]:
    """Figure 6 style table: per model, relative execution time vs ``reference``."""
    table = []
    for row in rows:
        entry: dict[str, float | str] = {"model": row.model, "gpu": row.gpu}
        for name, ratio in row.relative_to(reference).items():
            entry[name] = round(ratio, 2)
        table.append(entry)
    return table


def format_table(rows: Sequence[Mapping[str, object]]) -> str:
    """Render a list of dict rows as a fixed-width text table."""
    if not rows:
        return "(empty table)"
    columns = list(rows[0].keys())
    widths = {col: max(len(str(col)), max(len(str(row.get(col, ""))) for row in rows)) for col in columns}
    header = "  ".join(str(col).ljust(widths[col]) for col in columns)
    separator = "  ".join("-" * widths[col] for col in columns)
    lines = [header, separator]
    for row in rows:
        lines.append("  ".join(str(row.get(col, "")).ljust(widths[col]) for col in columns))
    return "\n".join(lines)
