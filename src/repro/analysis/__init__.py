"""Analysis utilities: reporting tables and the static verification layers.

Two halves, loaded independently:

* :mod:`repro.analysis.stats` — Table 2 statistics and Figure 6 comparison
  tables.  Re-exported lazily below: it imports the full pipeline, and the
  verification half must stay importable without it (the concurrency linter
  runs over this very package).
* :mod:`repro.analysis.verify` — the three-layer static analysis pass
  (rewrite verifier, plan verifier, concurrency linter), also usable as
  ``python -m repro.analysis``.
"""

__all__ = ["ModelStats", "ComparisonRow", "comparison_table", "format_table", "speedup_over"]

_STATS_EXPORTS = frozenset(__all__)


def __getattr__(name: str):
    # Lazy: repro.analysis.stats imports repro.pipeline (and with it the whole
    # engine), which the verify subpackage and its CLI must not depend on.
    if name in _STATS_EXPORTS:
        from . import stats

        return getattr(stats, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
