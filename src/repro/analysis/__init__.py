"""Reporting utilities: Table 2 statistics and Figure 6 comparison tables."""

from .stats import ComparisonRow, ModelStats, comparison_table, format_table, speedup_over

__all__ = ["ModelStats", "ComparisonRow", "comparison_table", "format_table", "speedup_over"]
