"""Layer 1 — rewrite verifier.

Statically checks that the semantics-preserving rewrites of the pipeline
actually preserve the graph *interface* and remain well formed:

* **operator fission** (:class:`repro.fission.FissionEngine`): the primitive
  graph must expose exactly the operator graph's inputs, params and outputs,
  with identical tensor types, and every shared tensor name must keep its
  operator-level type;
* **primitive-graph substitutions** (:mod:`repro.transforms`): each applied
  rewrite must yield a structurally valid graph whose interface tensors —
  graph inputs, params and outputs — are exactly those of the graph it was
  derived from (new *constants* are allowed: transforms such as
  ``ReduceSumToMatMul`` legitimately introduce literal tensors).

On top of the interface checks, every primitive node's output type is
re-inferred from its input types through ``Primitive.infer_type`` and must
agree with the declared tensor type — a rewrite that silently changed a shape
or dtype is caught here even when the graph is otherwise well formed.

All findings are :class:`~repro.diagnostics.Diagnostic` records; nothing in
this module raises on a bad graph.
"""

from __future__ import annotations

from ...diagnostics import Diagnostic, DiagnosticError, Severity, errors
from ...ir.graph import Graph
from ...primitives.graph import PrimitiveGraph, PrimitiveGraphError

__all__ = [
    "pg_diagnostics",
    "verify_rewrite",
    "verify_fission",
    "checked_rewrite",
    "checked_fission",
]


def _diag(rule: str, location: str, message: str, hint: str = "") -> Diagnostic:
    return Diagnostic(
        rule=rule, severity=Severity.ERROR, message=message, location=location, hint=hint
    )


def pg_diagnostics(pg: PrimitiveGraph, location: str | None = None) -> list[Diagnostic]:
    """Structural and type diagnostics of one primitive graph.

    Structure reuses :meth:`PrimitiveGraph.validate` (declared tensors,
    single producers, acyclicity); types are re-inferred per node and
    compared with the declared tensor types.
    """
    where = location or f"pg {pg.name!r}"
    out: list[Diagnostic] = []
    try:
        pg.validate()
    except PrimitiveGraphError as exc:
        out.append(_diag("rewrite/invalid-graph", where, str(exc)))
        return out  # type checks assume structural validity

    for node in pg.nodes:
        input_types = [pg.tensor_type(t) for t in node.inputs]
        try:
            inferred = node.prim.infer_type(input_types)
        except Exception as exc:  # noqa: BLE001 - any inference failure is a finding
            out.append(
                _diag(
                    "rewrite/inference-failed",
                    where,
                    f"node {node.name} ({node.prim.op}): type inference failed: {exc}",
                )
            )
            continue
        declared = pg.tensor_type(node.output)
        if inferred.shape != declared.shape or inferred.dtype != declared.dtype:
            out.append(
                _diag(
                    "rewrite/type-mismatch",
                    where,
                    f"node {node.name} ({node.prim.op}): declared type "
                    f"{declared} of {node.output!r} does not match re-inferred {inferred}",
                    hint="the rewrite changed a tensor's shape/dtype without redeclaring it",
                )
            )
    return out


def _interface_diagnostics(
    rule_prefix: str,
    location: str,
    before_inputs: dict,
    before_params: dict,
    before_outputs: list[str],
    before_types,
    after: PrimitiveGraph,
) -> list[Diagnostic]:
    """Shared interface-preservation check.

    ``before_types(name)`` returns the original type of an interface tensor.
    The rewritten graph must consume exactly the original inputs/params and
    produce exactly the original outputs, each with its original type.
    """
    out: list[Diagnostic] = []

    if set(after.inputs) != set(before_inputs):
        out.append(
            _diag(
                f"{rule_prefix}/interface-input",
                location,
                f"graph inputs changed: {sorted(before_inputs)} -> {sorted(after.inputs)}",
            )
        )
    if set(after.params) != set(before_params):
        out.append(
            _diag(
                f"{rule_prefix}/interface-input",
                location,
                f"graph params changed: {sorted(before_params)} -> {sorted(after.params)}",
            )
        )
    if list(after.outputs) != list(before_outputs):
        out.append(
            _diag(
                f"{rule_prefix}/interface-output",
                location,
                f"graph outputs changed: {before_outputs} -> {after.outputs}",
                hint="rewrites must keep output tensor names and order stable",
            )
        )

    shared = [
        name
        for name in list(before_inputs) + list(before_params) + list(before_outputs)
        if name in after.tensors
    ]
    for name in shared:
        original = before_types(name)
        current = after.tensors[name]
        if original != current:
            out.append(
                _diag(
                    f"{rule_prefix}/interface-type",
                    location,
                    f"interface tensor {name!r} changed type: {original} -> {current}",
                )
            )
    return out


def verify_rewrite(
    before: PrimitiveGraph, after: PrimitiveGraph, label: str = ""
) -> list[Diagnostic]:
    """Check one primitive-graph rewrite ``before -> after``.

    ``label`` names the transform and site (e.g. ``"merge_matmuls@mm_3"``)
    for diagnostic locations.
    """
    location = f"rewrite {label or after.name!r}"
    out = pg_diagnostics(after, location)
    out.extend(
        _interface_diagnostics(
            "rewrite",
            location,
            {n: None for n in before.inputs},
            dict(before.params),
            list(before.outputs),
            lambda name: before.tensors[name],
            after,
        )
    )
    return out


def verify_fission(graph: Graph, pg: PrimitiveGraph) -> list[Diagnostic]:
    """Check one operator-fission result ``graph -> pg``.

    Operator-level tensor names are preserved by the fission engine, so on
    top of the interface check every operator tensor that survives into the
    primitive graph must keep its exact type.
    """
    location = f"fission {graph.name!r}"
    out = pg_diagnostics(pg, location)
    out.extend(
        _interface_diagnostics(
            "fission",
            location,
            {n: None for n in graph.inputs},
            dict(graph.params),
            list(graph.outputs),
            lambda name: graph.tensors[name],
            pg,
        )
    )
    # Operator-level intermediates reused verbatim must keep their types.
    for name, ttype in graph.tensors.items():
        if name in pg.tensors and pg.tensors[name] != ttype:
            already = any(d.rule == "fission/interface-type" and name in d.message for d in out)
            if not already:
                out.append(
                    _diag(
                        "fission/tensor-type",
                        location,
                        f"operator tensor {name!r} changed type across fission: "
                        f"{ttype} -> {pg.tensors[name]}",
                    )
                )
    return out


def checked_rewrite(before: PrimitiveGraph, after: PrimitiveGraph, label: str = "") -> None:
    """:func:`verify_rewrite` escalated to :class:`DiagnosticError`.

    Matches the ``verifier`` hook signature of
    :class:`~repro.transforms.PrimitiveGraphOptimizer`; installed by the
    engine's ``verify_level="full"`` debug mode.
    """
    bad = errors(verify_rewrite(before, after, label))
    if bad:
        raise DiagnosticError(
            f"rewrite {label or after.name!r} failed verification", bad
        )


def checked_fission(graph: Graph, pg: PrimitiveGraph) -> None:
    """:func:`verify_fission` escalated to :class:`DiagnosticError`."""
    bad = errors(verify_fission(graph, pg))
    if bad:
        raise DiagnosticError(
            f"fission of {graph.name!r} failed verification", bad
        )
