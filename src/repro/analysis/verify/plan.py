"""Layer 2 — plan verifier.

Statically checks an assembled kernel execution plan (an
:class:`~repro.orchestration.strategy.OrchestrationStrategy`, or every
partition strategy of a :class:`~repro.engine.KorchResult`) against the
invariants the BLP and the kernel identifier are supposed to establish:

* **kernel well-formedness** — every kernel executes a non-empty, known,
  convex primitive set, its declared external inputs match the node set, and
  every materialized output is produced inside the kernel;
* **tensor cover** — every required graph output is materialized by at least
  one selected kernel (Equation 3) and every non-source external input a
  kernel reads is materialized by some selected kernel (Equation 4);
* **ordering** — the kernel list respects materialization dependencies and
  the dependency relation is acyclic;
* **profile-key agreement** — each selected kernel's structural signature
  resolves to a profile-cache hit (only checked when caches are supplied).

The cover rules are deliberately *tensor-materialization* level, not
primitive level: Korch's BLP only constrains what is written to device
memory, so a primitive executed by several kernels (redundant computation,
§4.2) or a dead primitive skipped entirely are both legal plans.  A tensor
materialized by more than one kernel is legal too (the constraints are
``>= 1``) but never pays off, so it is reported as a WARNING.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ...diagnostics import Diagnostic, Severity
from ...orchestration.execution_state import is_convex
from ...orchestration.kernel import CandidateKernel
from ...orchestration.strategy import OrchestrationStrategy
from ...primitives.graph import PrimitiveGraph

__all__ = ["verify_strategy", "verify_result"]


def _diag(
    rule: str,
    location: str,
    message: str,
    hint: str = "",
    severity: Severity = Severity.ERROR,
) -> Diagnostic:
    return Diagnostic(
        rule=rule, severity=severity, message=message, location=location, hint=hint
    )


def _kernel_diagnostics(
    pg: PrimitiveGraph, kernel: CandidateKernel, location: str
) -> list[Diagnostic]:
    """Well-formedness of a single selected kernel."""
    out: list[Diagnostic] = []

    if not kernel.nodes:
        out.append(
            _diag("plan/empty-kernel", location, "kernel executes no primitives")
        )
        return out

    known = {node.name for node in pg.nodes}
    unknown = sorted(set(kernel.node_names) - known)
    if unknown:
        out.append(
            _diag(
                "plan/unknown-node",
                location,
                f"kernel references primitives not in the graph: {unknown}",
            )
        )
        return out  # convexity / IO recomputation need real nodes

    if set(n.name for n in kernel.nodes) != set(kernel.node_names):
        out.append(
            _diag(
                "plan/io-mismatch",
                location,
                "kernel.nodes and kernel.node_names disagree",
            )
        )
        return out

    if not is_convex(pg, kernel.node_names):
        out.append(
            _diag(
                "plan/non-convex-kernel",
                location,
                f"primitive set {sorted(kernel.node_names)} is not convex "
                "(a dependency path leaves and re-enters the kernel)",
                hint="non-convex kernels deadlock on their own intermediate results",
            )
        )

    expected_inputs, _ = pg.subset_io(kernel.nodes)
    if set(kernel.external_inputs) != set(expected_inputs):
        out.append(
            _diag(
                "plan/io-mismatch",
                location,
                f"declared external inputs {sorted(kernel.external_inputs)} do not "
                f"match the node set's actual reads {sorted(expected_inputs)}",
            )
        )

    produced = {node.output for node in kernel.nodes}
    for tensor in kernel.outputs:
        if tensor not in produced:
            out.append(
                _diag(
                    "plan/io-mismatch",
                    location,
                    f"kernel materializes {tensor!r} but no primitive in the "
                    "kernel produces it",
                )
            )
    return out


def verify_strategy(
    pg: PrimitiveGraph,
    kernels: Sequence[CandidateKernel],
    location: str = "",
    profile_caches: Iterable = (),
) -> list[Diagnostic]:
    """Check an ordered kernel plan for ``pg``.

    ``profile_caches`` is an optional sequence of profile-cache-like objects
    (``.get(signature) -> (hit, profile, tuned)``); when given, every kernel's
    recomputed structural signature must hit in at least one of them.
    """
    where = location or f"plan {pg.name!r}"
    out: list[Diagnostic] = []

    for position, kernel in enumerate(kernels):
        out.extend(_kernel_diagnostics(pg, kernel, f"{where}/kernel[{position}]"))

    # -------------------------------------------------------------- cover
    materialized_by: dict[str, list[int]] = {}
    for position, kernel in enumerate(kernels):
        for tensor in kernel.outputs:
            materialized_by.setdefault(tensor, []).append(position)

    for tensor in pg.outputs:
        producer = pg.producer(tensor)
        if producer is None:
            continue  # pass-through source tensors need no kernel
        if tensor not in materialized_by:
            out.append(
                _diag(
                    "plan/uncovered-node",
                    where,
                    f"required output {tensor!r} (produced by primitive "
                    f"{producer.name}) is not materialized by any kernel",
                    hint="Equation 3: every required graph output needs a producer kernel",
                )
            )

    for tensor, positions in materialized_by.items():
        if len(positions) > 1:
            out.append(
                _diag(
                    "plan/double-covered-node",
                    where,
                    f"tensor {tensor!r} is materialized by kernels "
                    f"{positions}; one write would suffice",
                    hint="redundant materialization is legal but never reduces latency",
                    severity=Severity.WARNING,
                )
            )

    # ----------------------------------------------------------- ordering
    dangling = False
    for position, kernel in enumerate(kernels):
        for tensor in kernel.external_inputs:
            if pg.is_source_tensor(tensor):
                continue
            if tensor not in materialized_by:
                dangling = True
                out.append(
                    _diag(
                        "plan/dangling-input",
                        f"{where}/kernel[{position}]",
                        f"kernel reads {tensor!r} but no selected kernel "
                        "materializes it",
                        hint="Equation 4: external inputs must be materialized by the plan",
                    )
                )

    if not dangling:
        out.extend(_ordering_diagnostics(pg, kernels, materialized_by, where))

    # -------------------------------------------------------- profile keys
    caches = list(profile_caches)
    if caches:
        # Imported lazily: the profiler pulls in backend modules that the
        # purely structural checks above must not depend on.
        from ...gpu.profiler import KernelProfiler

        for position, kernel in enumerate(kernels):
            signature = KernelProfiler.kernel_signature(
                pg, kernel.nodes, kernel.external_inputs, kernel.outputs
            )
            hit = any(cache.get(signature)[0] for cache in caches)
            if not hit:
                out.append(
                    _diag(
                        "plan/profile-key-missing",
                        f"{where}/kernel[{position}]",
                        f"no profile-cache entry for the kernel's structural "
                        f"signature (backend {kernel.backend!r}, "
                        f"{kernel.num_primitives} primitives)",
                        hint="the plan was not produced against these caches, or the "
                        "cache key derivation drifted",
                    )
                )
    return out


def _ordering_diagnostics(
    pg: PrimitiveGraph,
    kernels: Sequence[CandidateKernel],
    materialized_by: dict[str, list[int]],
    where: str,
) -> list[Diagnostic]:
    """Check that the kernel list is a valid execution order.

    A kernel is runnable once every non-source tensor it reads has been
    materialized by an earlier kernel.  If the given order violates that but
    *some* valid order exists (greedy saturation succeeds), the plan is
    misordered; if no order exists, the dependency relation is cyclic.
    """
    out: list[Diagnostic] = []

    def needs(kernel: CandidateKernel) -> list[str]:
        return [t for t in kernel.external_inputs if not pg.is_source_tensor(t)]

    misordered: list[tuple[int, str]] = []
    available: set[str] = set()
    for position, kernel in enumerate(kernels):
        for tensor in needs(kernel):
            if tensor not in available:
                misordered.append((position, tensor))
        available.update(kernel.outputs)

    if not misordered:
        return out

    # The given order is invalid; decide between misorder and cycle by
    # checking whether any valid order exists (Kahn's algorithm with
    # OR-dependencies: multiple kernels may materialize the same tensor).
    remaining = set(range(len(kernels)))
    materialized: set[str] = set()
    progress = True
    while progress:
        progress = False
        for index in sorted(remaining):
            if all(t in materialized for t in needs(kernels[index])):
                remaining.discard(index)
                materialized.update(kernels[index].outputs)
                progress = True

    if remaining:
        out.append(
            _diag(
                "plan/cyclic-dependency",
                where,
                f"kernels {sorted(remaining)} form a materialization dependency "
                "cycle (each waits on a tensor only the others produce)",
                hint="convex candidate kernels cannot cycle (Theorem 1); "
                "a cycle means the plan was corrupted after ordering",
            )
        )
    else:
        for position, tensor in misordered:
            out.append(
                _diag(
                    "plan/order-violation",
                    f"{where}/kernel[{position}]",
                    f"kernel reads {tensor!r} before any kernel materializes it "
                    f"(producers at positions {materialized_by.get(tensor, [])})",
                    hint="re-run order_kernels on the selected set",
                )
            )
    return out


def verify_result(result, profile_caches: Iterable = ()) -> list[Diagnostic]:
    """Check every partition plan of a :class:`~repro.engine.KorchResult`.

    ``result`` is duck-typed (needs ``graph.name`` and ``partitions`` with
    ``orchestration.strategy``) so the compatibility wrapper's re-exported
    result works too.
    """
    out: list[Diagnostic] = []
    model = result.graph.name
    for index, part in enumerate(result.partitions):
        strategy: OrchestrationStrategy = part.orchestration.strategy
        location = f"{model}/partition[{index}]"
        if not strategy.pg.nodes:
            if strategy.kernels:
                out.append(
                    _diag(
                        "plan/empty-kernel",
                        location,
                        f"empty primitive graph but {len(strategy.kernels)} kernels selected",
                    )
                )
            continue
        out.extend(
            verify_strategy(
                strategy.pg,
                strategy.kernels,
                location=location,
                profile_caches=profile_caches,
            )
        )
    return out
