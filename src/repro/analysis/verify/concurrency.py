"""Layer 3 — concurrency linter.

Static AST checks over the repository's own sources for the process-mode
hazards the staged engine is exposed to, plus one dynamic check wired into
the scheduler:

``conc/lambda-task``
    A lambda or nested function handed to process-bound execution: as the
    ``fn`` of a ``Task(kind="cpu", ...)`` (the scheduler routes those to the
    :class:`~repro.engine.scheduler.executors.ProcessExecutor`), or directly
    to ``<process executor>.submit(...)``.  Such callables do not pickle, so
    the task fails at dispatch on every process-pool configuration.

``conc/unpicklable-context-field``
    A :class:`~repro.engine.context.StageContext`-style class (any class
    declaring ``_UNPICKLABLE``) with a field whose annotation names a known
    process-bound type but is missing from ``_UNPICKLABLE`` — pickling the
    context would drag caches, locks or SQLite handles across the process
    boundary.  Also flags ``_UNPICKLABLE`` entries that name no field.

``conc/global-mutation``
    Mutation of a module-level mutable binding from inside a function —
    rebinding through ``global``, calling a container mutator
    (``append``/``update``/...), or subscript assignment — without an
    enclosing ``with <...lock...>:`` block.  Task bodies run on pool threads;
    unlocked module state is a data race.  (WARNING severity: import-time
    registration functions legitimately do this and carry suppressions.)

``conc/unordered-resource``
    Dynamic: two scheduler tasks declaring the same ``meta["resources"]``
    entry (e.g. a store namespace) must be connected by a dependency path,
    otherwise their store writes race.  Checked by
    :func:`check_task_resources`, invoked from ``Scheduler.submit`` whenever
    a submitted batch declares resources.

Findings are suppressed with an inline pragma on the flagged line or the
line above::

    _REGISTRY[name] = rule  # korch-lint: ignore[conc/global-mutation] import-time only
"""

from __future__ import annotations

import ast
import os
import re
from typing import Iterable, Sequence

from ...diagnostics import Diagnostic, Severity

__all__ = ["lint_source", "lint_paths", "check_task_resources"]

_PRAGMA = re.compile(r"korch-lint:\s*ignore\[([a-z0-9/_,\s-]+)\]")

#: Annotation names that must never cross a process boundary inside a
#: pickled context (locks, pools, SQLite-backed caches, engine collaborators).
_UNPICKLABLE_TYPES = {
    "FissionEngine",
    "KernelOrchestrationOptimizer",
    "PrimitiveGraphOptimizer",
    "IdentifyMemo",
    "CacheStore",
    "PlanCache",
    "PersistentProfileCache",
    "Lock",
    "RLock",
    "Condition",
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
    "Executor",
    "Scheduler",
}

#: Container methods that mutate their receiver in place.
_MUTATORS = {
    "append",
    "extend",
    "insert",
    "add",
    "discard",
    "remove",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "clear",
}


def _suppressed(lines: Sequence[str], lineno: int, rule: str) -> bool:
    """Pragma on the flagged line or the line directly above."""
    for candidate in (lineno, lineno - 1):
        if 1 <= candidate <= len(lines):
            match = _PRAGMA.search(lines[candidate - 1])
            if match and rule in [part.strip() for part in match.group(1).split(",")]:
                return True
    return False


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted-name rendering of an expression."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else node.attr
    if isinstance(node, ast.Call):
        return _dotted(node.func)
    return ""


def _is_lockish(expr: ast.expr) -> bool:
    return "lock" in _dotted(expr).lower()


def _module_mutables(tree: ast.Module) -> set[str]:
    """Module-level names bound to mutable containers (or rebound later)."""
    names: set[str] = set()
    for stmt in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        mutable = isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)) or (
            isinstance(value, ast.Call) and _dotted(value.func) in {"dict", "list", "set", "deque", "defaultdict"}
        ) or isinstance(value, ast.Constant) and value.value is None
        if not mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, lines: Sequence[str], tree: ast.Module) -> None:
        self.path = path
        self.lines = lines
        self.findings: list[Diagnostic] = []
        self.module_mutables = _module_mutables(tree)
        #: Stack of per-function scopes: names of functions defined locally
        #: (a Name referring to one is a closure when shipped cross-process).
        self._local_fns: list[set[str]] = []
        #: Stack of per-function ``global``-declared names.
        self._globals_declared: list[set[str]] = []
        #: Depth of enclosing ``with <lock>`` blocks.
        self._lock_depth = 0
        #: Depth of enclosing function bodies.
        self._fn_depth = 0

    # ------------------------------------------------------------------ emit
    def _emit(
        self, rule: str, node: ast.AST, message: str, hint: str = "",
        severity: Severity = Severity.ERROR,
    ) -> None:
        lineno = getattr(node, "lineno", 1)
        if _suppressed(self.lines, lineno, rule):
            return
        self.findings.append(
            Diagnostic(
                rule=rule,
                severity=severity,
                message=message,
                location=f"{self.path}:{lineno}",
                hint=hint,
            )
        )

    # ------------------------------------------------------------- structure
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _visit_function(self, node) -> None:
        if self._local_fns:
            self._local_fns[-1].add(node.name)
        self._local_fns.append(set())
        self._globals_declared.append(set())
        self._fn_depth += 1
        # Convention: a ``*_locked`` function is only ever called with the
        # relevant lock held; treat its whole body as guarded.
        locked_by_convention = node.name.endswith("_locked")
        if locked_by_convention:
            self._lock_depth += 1
        self.generic_visit(node)
        if locked_by_convention:
            self._lock_depth -= 1
        self._fn_depth -= 1
        self._globals_declared.pop()
        self._local_fns.pop()

    def visit_With(self, node: ast.With) -> None:
        locked = any(_is_lockish(item.context_expr) for item in node.items)
        if locked:
            self._lock_depth += 1
        self.generic_visit(node)
        if locked:
            self._lock_depth -= 1

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._check_unpicklable_contract(node)
        self.generic_visit(node)

    # --------------------------------------------------------- rule: lambdas
    def visit_Call(self, node: ast.Call) -> None:
        callee = _dotted(node.func)

        if callee == "Task" or callee.endswith(".Task"):
            self._check_task_call(node)

        # executor.submit(lambda: ...) where the receiver looks process-bound.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "submit"
            and "process" in _dotted(node.func.value).lower()
        ):
            for arg in node.args[:1]:
                if self._is_closure(arg):
                    self._emit(
                        "conc/lambda-task",
                        arg,
                        "closure submitted to a process executor; it cannot pickle",
                        hint="hoist the function to module level and pass data as args",
                    )
        self.generic_visit(node)

    def _is_closure(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Lambda):
            return True
        if isinstance(expr, ast.Name) and any(expr.id in scope for scope in self._local_fns):
            return True
        return False

    def _check_task_call(self, node: ast.Call) -> None:
        fn_arg: ast.expr | None = None
        kind: str | None = None
        if len(node.args) >= 2:
            fn_arg = node.args[1]
        for keyword in node.keywords:
            if keyword.arg == "fn":
                fn_arg = keyword.value
            elif keyword.arg == "kind" and isinstance(keyword.value, ast.Constant):
                kind = keyword.value.value
        if fn_arg is None or kind != "cpu":
            return
        if self._is_closure(fn_arg):
            self._emit(
                "conc/lambda-task",
                fn_arg,
                'Task(kind="cpu") with a lambda/nested function: cpu tasks may '
                "run in a process pool, and closures cannot pickle",
                hint="use a module-level function (cf. run_partition_prologue)",
            )

    # ----------------------------------------- rule: unpicklable context field
    def _check_unpicklable_contract(self, node: ast.ClassDef) -> None:
        declared: tuple[str, ...] | None = None
        decl_node: ast.AST | None = None
        fields: dict[str, str] = {}
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id == "_UNPICKLABLE":
                        decl_node = stmt
                        if isinstance(stmt.value, (ast.Tuple, ast.List)):
                            declared = tuple(
                                el.value
                                for el in stmt.value.elts
                                if isinstance(el, ast.Constant) and isinstance(el.value, str)
                            )
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                fields[stmt.target.id] = ast.dump(stmt.annotation)
        if declared is None:
            return

        for name in declared:
            if name not in fields:
                self._emit(
                    "conc/unpicklable-context-field",
                    decl_node,
                    f"_UNPICKLABLE names {name!r} but class {node.name} has no "
                    "such field",
                    hint="stale entry: the drop list and the dataclass drifted apart",
                )
        for name, annotation in fields.items():
            if name in declared:
                continue
            # The dump covers both real annotation expressions
            # (``Name(id='CacheStore')``) and quoted string annotations
            # (``Constant(value='CacheStore | None')``).
            bad = sorted(t for t in _UNPICKLABLE_TYPES if re.search(rf"\b{t}\b", annotation))
            if bad:
                self._emit(
                    "conc/unpicklable-context-field",
                    decl_node,
                    f"field {name!r} of {node.name} holds {bad[0]} but is not in "
                    "_UNPICKLABLE; pickling the context would ship it cross-process",
                    hint="add the field to _UNPICKLABLE and rebuild it in the worker",
                )

    # ------------------------------------------------- rule: global mutation
    def visit_Global(self, node: ast.Global) -> None:
        # The declaration is free; the unlocked *assignment* is the hazard.
        if self._globals_declared:
            self._globals_declared[-1].update(node.names)
        self.generic_visit(node)

    def _check_global_rebind(self, targets: Iterable[ast.expr], node: ast.AST) -> None:
        if not self._fn_depth or self._lock_depth or not self._globals_declared:
            return
        declared = self._globals_declared[-1]
        for target in targets:
            if isinstance(target, ast.Name) and target.id in declared:
                self._emit(
                    "conc/global-mutation",
                    node,
                    f"unlocked rebind of module-level {target.id!r} "
                    "(declared `global` in this function)",
                    hint="guard with a module-level threading.Lock, or document "
                    "why the caller is single-threaded",
                    severity=Severity.WARNING,
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_subscript_mutation(node.targets)
        self._check_global_rebind(node.targets, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_subscript_mutation([node.target])
        self._check_global_rebind([node.target], node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        self._check_subscript_mutation(node.targets)
        self.generic_visit(node)

    def _check_subscript_mutation(self, targets: Iterable[ast.expr]) -> None:
        if not self._fn_depth or self._lock_depth:
            return
        for target in targets:
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in self.module_mutables
            ):
                self._emit(
                    "conc/global-mutation",
                    target,
                    f"unlocked subscript write to module-level {target.value.id!r}",
                    hint="guard with a module-level threading.Lock, or document "
                    "why the caller is single-threaded",
                    severity=Severity.WARNING,
                )

    def visit_Expr(self, node: ast.Expr) -> None:
        call = node.value
        if (
            self._fn_depth
            and not self._lock_depth
            and isinstance(call, ast.Call)
            and isinstance(call.func, ast.Attribute)
            and call.func.attr in _MUTATORS
            and isinstance(call.func.value, ast.Name)
            and call.func.value.id in self.module_mutables
        ):
            self._emit(
                "conc/global-mutation",
                node,
                f"unlocked call to {call.func.value.id}.{call.func.attr}() mutates "
                "module-level state",
                hint="guard with a module-level threading.Lock, or document "
                "why the caller is single-threaded",
                severity=Severity.WARNING,
            )
        self.generic_visit(node)


def lint_source(source: str, path: str = "<string>") -> list[Diagnostic]:
    """Lint one Python source string; returns all findings."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Diagnostic(
                rule="conc/syntax-error",
                severity=Severity.ERROR,
                message=f"cannot parse: {exc.msg}",
                location=f"{path}:{exc.lineno or 1}",
            )
        ]
    linter = _Linter(path, source.splitlines(), tree)
    linter.visit(tree)
    return sorted(linter.findings, key=lambda d: d.location)


def lint_paths(paths: Iterable[str]) -> list[Diagnostic]:
    """Lint ``.py`` files and directories (recursively)."""
    findings: list[Diagnostic] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs if not d.startswith((".", "__pycache__")))
                for name in sorted(files):
                    if name.endswith(".py"):
                        findings.extend(_lint_file(os.path.join(root, name)))
        elif path.endswith(".py"):
            findings.extend(_lint_file(path))
    return findings


def _lint_file(path: str) -> list[Diagnostic]:
    with open(path, "r", encoding="utf-8") as handle:
        return lint_source(handle.read(), path)


# --------------------------------------------------------------------- dynamic
def check_task_resources(tasks: Sequence) -> list[Diagnostic]:
    """Dynamic check: tasks sharing a ``meta["resources"]`` entry must be
    dependency-ordered.

    Two tasks that both touch the same store namespace (or any other named
    resource) race unless one transitively depends on the other.  Returns
    ``conc/unordered-resource`` diagnostics for every unordered pair.
    """
    by_resource: dict[str, list] = {}
    for task in tasks:
        for resource in task.meta.get("resources", ()):
            by_resource.setdefault(str(resource), []).append(task)
    if not by_resource:
        return []

    deps = {task.key: set(task.deps) for task in tasks}

    def ordered(a: str, b: str) -> bool:
        """True when a dependency path connects ``a`` and ``b`` either way."""
        for start, goal in ((a, b), (b, a)):
            stack, seen = [start], set()
            while stack:
                current = stack.pop()
                if current == goal:
                    return True
                if current in seen:
                    continue
                seen.add(current)
                stack.extend(deps.get(current, ()))
        return False

    findings: list[Diagnostic] = []
    for resource, holders in sorted(by_resource.items()):
        for i, first in enumerate(holders):
            for second in holders[i + 1 :]:
                if not ordered(first.key, second.key):
                    findings.append(
                        Diagnostic(
                            rule="conc/unordered-resource",
                            severity=Severity.ERROR,
                            message=(
                                f"tasks {first.key!r} and {second.key!r} both touch "
                                f"resource {resource!r} without a dependency path "
                                "between them"
                            ),
                            location=f"task {first.key!r}",
                            hint="add a dep edge so the accesses are serialized",
                        )
                    )
    return findings
