"""Three-layer static analysis over the Korch pipeline.

* **Layer 1 — rewrite verifier** (:mod:`.rewrite`): every fission result and
  every primitive-graph substitution preserves the graph interface and
  re-infers to the declared tensor types.
* **Layer 2 — plan verifier** (:mod:`.plan`): assembled kernel execution
  plans satisfy the BLP's materialization invariants (Equations 3 and 4),
  kernel well-formedness, acyclic ordering, and profile-cache key agreement.
* **Layer 3 — concurrency linter** (:mod:`.concurrency`): AST checks over
  the repository's own sources for process-mode hazards, plus the dynamic
  scheduler resource-ordering check.

Available as a library (these exports), as a CLI
(``python -m repro.analysis verify ...`` / ``... lint ...``), and as the
engine's opt-in debug mode (``KorchEngineConfig.verify_level``).
"""

from ...diagnostics import (
    Diagnostic,
    DiagnosticError,
    Severity,
    errors,
    format_diagnostics,
    has_errors,
)
from .concurrency import check_task_resources, lint_paths, lint_source
from .plan import verify_result, verify_strategy
from .rewrite import (
    checked_fission,
    checked_rewrite,
    pg_diagnostics,
    verify_fission,
    verify_rewrite,
)

__all__ = [
    "checked_fission",
    "checked_rewrite",
    "Diagnostic",
    "DiagnosticError",
    "Severity",
    "errors",
    "has_errors",
    "format_diagnostics",
    "pg_diagnostics",
    "verify_rewrite",
    "verify_fission",
    "verify_strategy",
    "verify_result",
    "lint_source",
    "lint_paths",
    "check_task_resources",
]
