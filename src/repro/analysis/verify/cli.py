"""Command-line front-end of the verification layers.

Two subcommands::

    python -m repro.analysis lint [PATH ...]
        Run the concurrency linter (Layer 3) over Python sources.
        Defaults to the installed ``repro`` package itself.

    python -m repro.analysis verify --model NAME [--model NAME ...] | --zoo
        Optimize each model through the engine with the requested
        ``verify_level`` (Layers 1/2 run inside the engine), then re-verify
        the finished plans with the standalone plan verifier — including
        profile-cache key agreement when ``--cache-dir`` is given.

Exit status is 1 when any ERROR-severity diagnostic was reported, 0
otherwise (warnings are printed but do not fail), which is what the CI
``analysis`` job keys on.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Iterable

from ...diagnostics import Diagnostic, Severity
from .concurrency import lint_paths

__all__ = ["main"]


def _model_builders() -> dict:
    """Zoo models plus the small case-study blocks (fast enough for CI)."""
    from ...models import (
        MODEL_BUILDERS,
        build_candy_block,
        build_efficientvit_attention_block,
        build_segformer_attention_block,
        build_segformer_decoder_subgraph,
    )

    return {
        **MODEL_BUILDERS,
        "candy_block": build_candy_block,
        "efficientvit_block": build_efficientvit_attention_block,
        "segformer_attention": build_segformer_attention_block,
        "segformer_decoder": build_segformer_decoder_subgraph,
    }


def _report(diagnostics: Iterable[Diagnostic], as_json: bool) -> int:
    """Print findings; return the number of ERROR-severity ones."""
    diagnostics = list(diagnostics)
    if as_json:
        print(json.dumps([d.as_dict() for d in diagnostics], indent=2))
    else:
        for diagnostic in diagnostics:
            print(diagnostic.format())
    return sum(1 for d in diagnostics if d.severity is Severity.ERROR)


def cmd_lint(args: argparse.Namespace) -> int:
    paths = args.paths or [str(Path(__file__).resolve().parents[2])]
    findings = lint_paths(paths)
    num_errors = _report(findings, args.json)
    if not args.json:
        print(
            f"lint: {len(findings)} finding(s), {num_errors} error(s) "
            f"over {', '.join(paths)}"
        )
    return 1 if num_errors else 0


def cmd_verify(args: argparse.Namespace) -> int:
    # Heavy imports live here: `lint` must work without loading the pipeline.
    from ...backends import FrameworkEagerBackend
    from ...engine.config import KorchConfig, KorchEngineConfig
    from ...pipeline import KorchPipeline
    from .plan import verify_result

    builders = _model_builders()
    names = list(builders) if args.zoo else (args.model or [])
    if not names:
        print("verify: pass --model NAME (repeatable) or --zoo", file=sys.stderr)
        return 2
    unknown = [name for name in names if name not in builders]
    if unknown:
        print(f"verify: unknown model(s) {unknown}; known: {sorted(builders)}", file=sys.stderr)
        return 2

    config = KorchConfig(
        gpu=args.gpu,
        cache_dir=args.cache_dir,
        engine=KorchEngineConfig(verify_level=args.level),
    )
    all_diagnostics: list[Diagnostic] = []
    with KorchPipeline(config) as pipeline:
        caches = []
        if pipeline.profile_cache is not None:
            # Selected kernels are priced either by the configured backends or
            # by the identifier's framework fallback; each context keys the
            # persistent store differently, so both are consulted.
            caches = [
                pipeline.profile_cache,
                pipeline.profile_cache.for_backends([FrameworkEagerBackend()]),
            ]
        for name in names:
            result = pipeline.optimize(builders[name]())
            found = verify_result(result, profile_caches=caches)
            for part in result.partitions:
                found.extend(part.diagnostics)
            all_diagnostics.extend(found)
            if not args.json:
                print(
                    f"{name}: {result.num_kernels} kernels across "
                    f"{len(result.partitions)} partition(s) verified, "
                    f"{len(found)} diagnostic(s)"
                )

    num_errors = _report(all_diagnostics, args.json)
    if not args.json:
        print(
            f"verify: {len(names)} model(s), {len(all_diagnostics)} diagnostic(s), "
            f"{num_errors} error(s)"
        )
    return 1 if num_errors else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analysis over the Korch reproduction: plan/rewrite "
        "verification and the concurrency linter.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser("lint", help="concurrency-lint Python sources")
    lint.add_argument("paths", nargs="*", help="files/directories (default: the repro package)")
    lint.add_argument("--json", action="store_true", help="emit findings as JSON")
    lint.set_defaults(fn=cmd_lint)

    verify = sub.add_parser("verify", help="optimize models and verify their plans")
    verify.add_argument("--model", action="append", help="model name (repeatable)")
    verify.add_argument("--zoo", action="store_true", help="verify every known model")
    verify.add_argument("--gpu", default="V100", help="GPU spec name (default V100)")
    verify.add_argument("--cache-dir", default=None, help="persistent cache directory; "
                        "enables the profile-cache key agreement check")
    verify.add_argument(
        "--level",
        choices=("off", "plan", "full"),
        default="full",
        help="engine verify_level during optimization (default full)",
    )
    verify.add_argument("--json", action="store_true", help="emit findings as JSON")
    verify.set_defaults(fn=cmd_verify)

    args = parser.parse_args(argv)
    return args.fn(args)
