"""``python -m repro.analysis`` — static analysis CLI (lint / verify)."""

from .verify.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
