"""Runtime: reference execution, executables, plan execution, verification."""

from .executable import Executable, KernelLaunch, ModelExecutable
from .executor import (
    ExecutionReport,
    KernelExecution,
    MeasuredKernel,
    MeasurementReport,
    PlanExecutor,
    trimmed_mean,
)
from .library import (
    KernelLibrary,
    NumpyKernelLibrary,
    TorchKernelLibrary,
    available_libraries,
    get_library,
    resolve_library,
    torch_available,
)
from .reference import ReferenceExecutor, execute_graph
from .verification import (
    VerificationResult,
    compare_outputs,
    verify_executable,
    verify_model_executable,
    verify_primitive_graph,
)

__all__ = [
    "ReferenceExecutor",
    "execute_graph",
    "Executable",
    "KernelLaunch",
    "ModelExecutable",
    "PlanExecutor",
    "ExecutionReport",
    "KernelExecution",
    "MeasuredKernel",
    "MeasurementReport",
    "trimmed_mean",
    "KernelLibrary",
    "NumpyKernelLibrary",
    "TorchKernelLibrary",
    "available_libraries",
    "get_library",
    "resolve_library",
    "torch_available",
    "VerificationResult",
    "compare_outputs",
    "verify_primitive_graph",
    "verify_executable",
    "verify_model_executable",
]
