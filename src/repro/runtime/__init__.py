"""Runtime: reference execution, executables, and equivalence verification."""

from .executable import Executable, KernelLaunch, ModelExecutable
from .reference import ReferenceExecutor, execute_graph
from .verification import (
    VerificationResult,
    verify_executable,
    verify_model_executable,
    verify_primitive_graph,
)

__all__ = [
    "ReferenceExecutor",
    "execute_graph",
    "Executable",
    "KernelLaunch",
    "ModelExecutable",
    "VerificationResult",
    "verify_primitive_graph",
    "verify_executable",
    "verify_model_executable",
]
