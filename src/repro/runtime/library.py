"""Pluggable kernel libraries for the plan executor.

A :class:`KernelLibrary` turns one kernel launch — a set of primitive nodes
with external input values — into output tensors.  The executor stays
library-agnostic: it walks the kernel graph in dependency order and hands
each kernel to the library, which resolves the *intra*-kernel dataflow by
recursive op dispatch (the shape of HGL-proto's ``sageir/executor.py``: each
requested output pulls its producer, which pulls its own inputs, memoized).

Two libraries ship:

* :class:`NumpyKernelLibrary` — always available; dispatches every primitive
  to its numpy reference semantics (:meth:`repro.primitives.base.Primitive.compute`).
* :class:`TorchKernelLibrary` — available only when ``torch`` imports;
  dispatches the common primitive ops onto torch functional kernels and
  round-trips anything unmapped (convolutions, opaque ops) through the numpy
  reference, so it is numerically exact wherever it runs.

``get_library("numpy")`` / ``available_libraries()`` are the registry the
CLI and the engine resolve names through.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from ..primitives.graph import PrimitiveNode

__all__ = [
    "KernelLibrary",
    "NumpyKernelLibrary",
    "TorchKernelLibrary",
    "torch_available",
    "available_libraries",
    "get_library",
    "resolve_library",
]

try:  # torch is an optional dependency; every use is gated on this flag.
    import torch  # type: ignore

    _HAS_TORCH = True
except Exception:  # pragma: no cover - environment-dependent
    torch = None  # type: ignore[assignment]
    _HAS_TORCH = False


def torch_available() -> bool:
    """Whether the optional torch kernel library can be constructed."""
    return _HAS_TORCH


class KernelLibrary:
    """Executes one kernel's primitive sequence from its external inputs."""

    name: str = "library"

    def run_kernel(
        self,
        nodes: Sequence[PrimitiveNode],
        input_values: Mapping[str, np.ndarray],
        outputs: Sequence[str],
    ) -> dict[str, np.ndarray]:
        """Run the kernel; returns exactly the requested output tensors.

        The intra-kernel dataflow is resolved by recursive dispatch: each
        output pulls the node that produces it, which recursively pulls its
        own input tensors (external values or other in-kernel nodes), each
        computed once.  Raises ``KeyError`` when a needed tensor is neither
        an external input nor produced inside the kernel.
        """
        producers = {node.output: node for node in nodes}
        values: dict[str, Any] = {
            name: self.to_device(value) for name, value in input_values.items()
        }

        def evaluate(name: str) -> Any:
            if name in values:
                return values[name]
            node = producers.get(name)
            if node is None:
                raise KeyError(
                    f"kernel needs tensor {name!r} but it is neither an external "
                    f"input nor produced by the kernel's nodes"
                )
            args = [evaluate(t) for t in node.inputs]
            values[name] = self.compute_node(node, args)
            return values[name]

        return {name: self.from_device(evaluate(name)) for name in outputs}

    # ------------------------------------------------------------- dispatch
    def compute_node(self, node: PrimitiveNode, inputs: Sequence[Any]) -> Any:
        """Execute one primitive on library-native tensors."""
        raise NotImplementedError

    def to_device(self, value: np.ndarray) -> Any:
        """Convert an external numpy input into the library's tensor type."""
        return value

    def from_device(self, value: Any) -> np.ndarray:
        """Convert a library-native tensor back to numpy at kernel exit."""
        return value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


class NumpyKernelLibrary(KernelLibrary):
    """The always-available reference library: primitives run their numpy
    semantics directly, so executor outputs are bit-identical to the
    primitive-graph executor on the same inputs."""

    name = "numpy"

    def compute_node(self, node: PrimitiveNode, inputs: Sequence[Any]) -> Any:
        return node.prim.compute(inputs)


class TorchKernelLibrary(KernelLibrary):
    """Torch-backed kernels behind an optional import.

    Tensors cross the kernel boundary as numpy arrays (what the executor's
    memory holds) and live as torch tensors inside the kernel.  Primitives
    without a torch mapping fall back to their numpy reference semantics
    with a conversion round-trip — slower, never wrong.
    """

    name = "torch"

    def __init__(self, device: str = "cpu") -> None:
        if not _HAS_TORCH:
            raise RuntimeError(
                "TorchKernelLibrary requires torch, which is not importable; "
                "use NumpyKernelLibrary instead"
            )
        self.device = torch.device(device)

    def to_device(self, value: np.ndarray) -> Any:
        return torch.from_numpy(np.ascontiguousarray(value)).to(self.device)

    def from_device(self, value: Any) -> np.ndarray:
        if isinstance(value, torch.Tensor):
            return value.detach().cpu().numpy()
        return np.asarray(value)

    def compute_node(self, node: PrimitiveNode, inputs: Sequence[Any]) -> Any:
        prim = node.prim
        handler = self._handler(prim.category.value, prim.op)
        if handler is not None:
            return handler(self, prim, inputs)
        # Unmapped primitive (convolutions, window reductions, opaque ops):
        # round-trip through the numpy reference semantics.
        arrays = [self.from_device(t) for t in inputs]
        return self.to_device(prim.compute(arrays))

    # ----------------------------------------------------------- handlers
    def _handler(self, category: str, op: str):
        return _TORCH_HANDLERS.get((category, op))


def _torch_unary(fn):
    return lambda lib, prim, inputs: fn(inputs[0])


def _torch_binary(fn):
    return lambda lib, prim, inputs: fn(inputs[0], inputs[1])


def _torch_reduce(prim, x, fn):
    axes = prim.attr("axes")
    dims = tuple(axes) if axes is not None else tuple(range(x.dim()))
    return fn(x, dims, bool(prim.attr("keepdims")))


_TORCH_HANDLERS: dict = {}
if _HAS_TORCH:  # pragma: no cover - exercised only where torch is installed
    _TORCH_HANDLERS.update(
        {
            ("elementwise", "Exp"): _torch_unary(torch.exp),
            ("elementwise", "Log"): _torch_unary(torch.log),
            ("elementwise", "Sqrt"): _torch_unary(torch.sqrt),
            ("elementwise", "Erf"): _torch_unary(torch.erf),
            ("elementwise", "Neg"): _torch_unary(torch.neg),
            ("elementwise", "Reciprocal"): _torch_unary(torch.reciprocal),
            ("elementwise", "Relu"): _torch_unary(torch.relu),
            ("elementwise", "Sigmoid"): _torch_unary(torch.sigmoid),
            ("elementwise", "Tanh"): _torch_unary(torch.tanh),
            ("elementwise", "Identity"): _torch_unary(lambda x: x),
            ("elementwise", "Softplus"): _torch_unary(
                torch.nn.functional.softplus
            ),
            ("elementwise", "LeakyRelu"): lambda lib, prim, inputs: (
                torch.nn.functional.leaky_relu(
                    inputs[0], float(prim.attr("alpha", 0.01))
                )
            ),
            ("elementwise", "Clip"): lambda lib, prim, inputs: torch.clamp(
                inputs[0],
                float(prim.attr("minimum")),
                float(prim.attr("maximum")),
            ),
            ("elementwise", "Add"): _torch_binary(torch.add),
            ("elementwise", "Sub"): _torch_binary(torch.sub),
            ("elementwise", "Mul"): _torch_binary(torch.mul),
            ("elementwise", "Div"): _torch_binary(torch.div),
            ("elementwise", "Pow"): _torch_binary(torch.pow),
            ("elementwise", "Maximum"): _torch_binary(torch.maximum),
            ("elementwise", "Minimum"): _torch_binary(torch.minimum),
            ("linear", "MatMul"): _torch_binary(torch.matmul),
            ("reduce", "Sum"): lambda lib, prim, inputs: _torch_reduce(
                prim, inputs[0], lambda x, d, k: torch.sum(x, dim=d, keepdim=k)
            ),
            ("reduce", "Mean"): lambda lib, prim, inputs: _torch_reduce(
                prim, inputs[0], lambda x, d, k: torch.mean(x, dim=d, keepdim=k)
            ),
            ("reduce", "Max"): lambda lib, prim, inputs: _torch_reduce(
                prim, inputs[0], lambda x, d, k: torch.amax(x, dim=d, keepdim=k)
            ),
            ("layout", "Transpose"): lambda lib, prim, inputs: inputs[0].permute(
                tuple(prim.attr("perm"))
            ),
            ("layout", "Reshape"): lambda lib, prim, inputs: inputs[0].reshape(
                tuple(prim.attr("shape"))
            ),
        }
    )


def available_libraries() -> dict[str, bool]:
    """``{library name: constructible}`` for every known kernel library."""
    return {"numpy": True, "torch": _HAS_TORCH}


def get_library(name: str) -> KernelLibrary:
    """Construct a kernel library by name (``"numpy"`` or ``"torch"``)."""
    normalized = name.lower()
    if normalized == "numpy":
        return NumpyKernelLibrary()
    if normalized == "torch":
        return TorchKernelLibrary()
    raise KeyError(f"unknown kernel library {name!r}; known: {sorted(available_libraries())}")


def resolve_library(library: "KernelLibrary | str | None") -> KernelLibrary:
    """``None`` → numpy; a name → :func:`get_library`; an instance passes
    through.  The single resolution point the executor, the engine and the
    CLI all share."""
    if library is None:
        return NumpyKernelLibrary()
    if isinstance(library, str):
        return get_library(library)
    return library
