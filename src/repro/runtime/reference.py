"""Operator-level reference executor.

Executes a computation graph directly, operator by operator, with numpy.
This is intentionally *independent* of the fission rules and the primitive
executor so it can serve as the ground truth when verifying that operator
fission, primitive-graph transformations and kernel orchestration preserve
the model's semantics.
"""

from __future__ import annotations

import math
from typing import Callable, Mapping

import numpy as np
from scipy import special

from ..gpu.executor import synthesize_tensor
from ..ir.graph import Graph, Node

__all__ = ["ReferenceExecutor", "execute_graph"]

_OpFn = Callable[[Node, list[np.ndarray]], list[np.ndarray]]
_OPS: dict[str, _OpFn] = {}


def _register(*names: str) -> Callable[[_OpFn], _OpFn]:
    def decorator(fn: _OpFn) -> _OpFn:
        for name in names:
            # korch-lint: ignore[conc/global-mutation] import-time registration only
            _OPS[name] = fn
        return fn

    return decorator


class ReferenceExecutor:
    """Executes operator graphs with numpy semantics matching ONNX."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph

    def run(
        self,
        feeds: Mapping[str, np.ndarray] | None = None,
        keep_intermediates: bool = False,
    ) -> dict[str, np.ndarray]:
        """Execute the graph; inputs not present in ``feeds`` are synthesized."""
        feeds = dict(feeds or {})
        values: dict[str, np.ndarray] = {}
        for name in self.graph.inputs:
            values[name] = np.asarray(
                feeds.get(name, synthesize_tensor(name, self.graph.tensor_type(name)))
            )
        for name, ttype in self.graph.params.items():
            values[name] = feeds.get(name, synthesize_tensor(name, ttype))
        for name, constant in self.graph.constants.items():
            values[name] = constant

        for node in self.graph.topological_order():
            fn = _OPS.get(node.op_type)
            if fn is None:
                raise NotImplementedError(f"no reference implementation for {node.op_type!r}")
            outputs = fn(node, [values[t] for t in node.inputs])
            for tensor, value in zip(node.outputs, outputs):
                values[tensor] = value

        if keep_intermediates:
            return values
        return {name: values[name] for name in self.graph.outputs}


def execute_graph(graph: Graph, feeds: Mapping[str, np.ndarray] | None = None) -> dict[str, np.ndarray]:
    """Convenience wrapper: run ``graph`` and return its outputs."""
    return ReferenceExecutor(graph).run(feeds)


# --------------------------------------------------------------------------- elementwise
_BINARY = {
    "Add": np.add,
    "Sub": np.subtract,
    "Mul": np.multiply,
    "Div": np.divide,
    "Pow": np.power,
    "Maximum": np.maximum,
    "Minimum": np.minimum,
}


@_register("Add", "Sub", "Mul", "Div", "Pow", "Maximum", "Minimum")
def _binary(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    return [_BINARY[node.op_type](inputs[0], inputs[1])]


@_register("Relu")
def _relu(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    return [np.maximum(inputs[0], 0)]


@_register("LeakyRelu")
def _leaky_relu(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    alpha = float(node.attr("alpha", 0.1))
    x = inputs[0]
    return [np.where(x >= 0, x, alpha * x)]


@_register("Sigmoid")
def _sigmoid(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    return [special.expit(inputs[0])]


@_register("Tanh")
def _tanh(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    return [np.tanh(inputs[0])]


@_register("Exp")
def _exp(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    return [np.exp(inputs[0])]


@_register("Log")
def _log(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    return [np.log(inputs[0])]


@_register("Sqrt")
def _sqrt(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    return [np.sqrt(inputs[0])]


@_register("Erf")
def _erf(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    return [special.erf(inputs[0])]


@_register("Neg")
def _neg(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    return [-inputs[0]]


@_register("Reciprocal")
def _reciprocal(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    return [np.reciprocal(inputs[0])]


@_register("Identity")
def _identity(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    return [inputs[0]]


@_register("Softplus")
def _softplus(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    return [np.logaddexp(inputs[0], 0.0)]


@_register("Clip")
def _clip(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    return [np.clip(inputs[0], float(node.attr("min", 0.0)), float(node.attr("max", 6.0)))]


@_register("Gelu")
def _gelu(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    x = inputs[0]
    return [0.5 * x * (1.0 + special.erf(x / math.sqrt(2.0)))]


@_register("Silu")
def _silu(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    x = inputs[0]
    return [x * special.expit(x)]


@_register("Mish")
def _mish(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    x = inputs[0]
    return [x * np.tanh(np.logaddexp(x, 0.0))]


@_register("HardSwish")
def _hard_swish(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    x = inputs[0]
    return [x * np.clip(x + 3.0, 0.0, 6.0) / 6.0]


@_register("Softmax")
def _softmax(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    x = inputs[0]
    axis = int(node.attr("axis", -1))
    # Match the paper's fission rule (Figure 3): plain exp / sum(exp), no
    # max-subtraction.  Inputs are synthesized small so this is stable.
    e = np.exp(x)
    return [e / np.sum(e, axis=axis, keepdims=True)]


# ----------------------------------------------------------------- normalizations
@_register("LayerNormalization")
def _layer_norm(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    x = inputs[0]
    axis = int(node.attr("axis", -1))
    eps = float(node.attr("epsilon", 1e-5))
    mean = x.mean(axis=axis, keepdims=True)
    var = ((x - mean) ** 2).mean(axis=axis, keepdims=True)
    normalized = (x - mean) / np.sqrt(var + eps)
    if len(inputs) >= 3:
        normalized = normalized * inputs[1] + inputs[2]
    return [normalized]


@_register("InstanceNormalization")
def _instance_norm(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    x = inputs[0]
    eps = float(node.attr("epsilon", 1e-5))
    axes = tuple(range(2, x.ndim))
    mean = x.mean(axis=axes, keepdims=True)
    var = ((x - mean) ** 2).mean(axis=axes, keepdims=True)
    normalized = (x - mean) / np.sqrt(var + eps)
    if len(inputs) >= 3:
        shape = [1, -1] + [1] * (x.ndim - 2)
        normalized = normalized * inputs[1].reshape(shape) + inputs[2].reshape(shape)
    return [normalized]


@_register("GroupNormalization")
def _group_norm(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    x = inputs[0]
    eps = float(node.attr("epsilon", 1e-5))
    groups = int(node.attr("num_groups", 32))
    n, c = x.shape[:2]
    grouped = x.reshape((n, groups, c // groups) + x.shape[2:])
    axes = tuple(range(2, grouped.ndim))
    mean = grouped.mean(axis=axes, keepdims=True)
    var = ((grouped - mean) ** 2).mean(axis=axes, keepdims=True)
    normalized = ((grouped - mean) / np.sqrt(var + eps)).reshape(x.shape)
    if len(inputs) >= 3:
        shape = [1, -1] + [1] * (x.ndim - 2)
        normalized = normalized * inputs[1].reshape(shape) + inputs[2].reshape(shape)
    return [normalized]


@_register("BatchNormalization")
def _batch_norm(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    x, scale, bias, mean, var = inputs[:5]
    eps = float(node.attr("epsilon", 1e-5))
    shape = [1, -1] + [1] * (x.ndim - 2)
    normalized = (x - mean.reshape(shape)) / np.sqrt(var.reshape(shape) + eps)
    return [normalized * scale.reshape(shape) + bias.reshape(shape)]


# ----------------------------------------------------------------- reductions / pooling
@_register("ReduceSum", "ReduceMean", "ReduceMax")
def _reduce(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    x = inputs[0]
    axes = tuple(node.attr("axes") or (-1,))
    keepdims = bool(node.attr("keepdims", True))
    if node.op_type == "ReduceSum":
        return [np.sum(x, axis=axes, keepdims=keepdims)]
    if node.op_type == "ReduceMean":
        return [np.mean(x, axis=axes, keepdims=keepdims)]
    return [np.max(x, axis=axes, keepdims=keepdims)]


@_register("GlobalAveragePool")
def _global_average_pool(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    x = inputs[0]
    return [x.mean(axis=tuple(range(2, x.ndim)), keepdims=True)]


@_register("MaxPool", "AveragePool")
def _pool(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    x = inputs[0]
    kh, kw = node.attr("kernel_shape")
    sh, sw = node.attr("strides")
    pads = tuple(node.attr("pads") or (0, 0, 0, 0))
    pad_value = -np.inf if node.op_type == "MaxPool" else 0.0
    x = np.pad(
        x, ((0, 0), (0, 0), (pads[0], pads[2]), (pads[1], pads[3])), constant_values=pad_value
    )
    n, c, h, w = x.shape
    oh = (h - kh) // sh + 1
    ow = (w - kw) // sw + 1
    out = np.empty((n, c, oh, ow), dtype=x.dtype)
    for i in range(oh):
        for j in range(ow):
            window = x[:, :, i * sh : i * sh + kh, j * sw : j * sw + kw]
            out[:, :, i, j] = window.max(axis=(2, 3)) if node.op_type == "MaxPool" else window.mean(axis=(2, 3))
    return [out]


# --------------------------------------------------------------------- layout
@_register("Transpose")
def _transpose(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    perm = tuple(node.attr("perm") or tuple(reversed(range(inputs[0].ndim))))
    return [np.transpose(inputs[0], perm)]


@_register("Reshape", "Expand")
def _reshape(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    shape = list(node.attr("shape"))
    if node.op_type == "Reshape":
        return [np.reshape(inputs[0], shape)]
    return [np.broadcast_to(inputs[0], np.broadcast_shapes(inputs[0].shape, tuple(shape))).copy()]


@_register("Flatten")
def _flatten(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    axis = int(node.attr("axis", 1))
    x = inputs[0]
    lead = int(np.prod(x.shape[:axis])) if axis else 1
    return [x.reshape(lead, -1)]


@_register("Squeeze")
def _squeeze(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    axes = tuple(node.attr("axes") or ())
    return [np.squeeze(inputs[0], axis=axes or None)]


@_register("Unsqueeze")
def _unsqueeze(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    x = inputs[0]
    for axis in sorted(node.attr("axes")):
        x = np.expand_dims(x, axis)
    return [x]


@_register("Split")
def _split(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    x = inputs[0]
    axis = int(node.attr("axis", 0))
    sizes = tuple(node.attr("split") or ())
    if not sizes:
        return list(np.split(x, len(node.outputs), axis=axis))
    indices = np.cumsum(sizes)[:-1]
    return list(np.split(x, indices, axis=axis))


@_register("Concat")
def _concat(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    return [np.concatenate(inputs, axis=int(node.attr("axis", 0)))]


@_register("Slice")
def _slice(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    x = inputs[0]
    starts = tuple(node.attr("starts"))
    ends = tuple(node.attr("ends"))
    axes = tuple(node.attr("axes") or range(len(starts)))
    steps = tuple(node.attr("steps") or (1,) * len(starts))
    index: list[slice] = [slice(None)] * x.ndim
    for start, end, axis, step in zip(starts, ends, axes, steps):
        index[axis] = slice(start, end, step)
    return [x[tuple(index)]]


@_register("Pad")
def _pad(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    x = inputs[0]
    pads = tuple(node.attr("pads"))
    pad_width = [(pads[i], pads[i + x.ndim]) for i in range(x.ndim)]
    return [np.pad(x, pad_width, constant_values=float(node.attr("value", 0.0)))]


@_register("Resize")
def _resize(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    # Reuse the layout primitive's implementation for exact agreement.
    from ..primitives.layout import LayoutPrimitive

    x = inputs[0]
    sizes = tuple(node.attr("sizes") or ())
    if not sizes:
        scales = tuple(node.attr("scales"))
        sizes = tuple(int(round(d * s)) for d, s in zip(x.shape, scales))
    prim = LayoutPrimitive("Resize", sizes=sizes, mode=str(node.attr("mode", "nearest")))
    return [prim.compute([x])]


# -------------------------------------------------------------------- compute
@_register("Conv")
def _conv(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    from ..primitives.linear import ConvPrimitive

    prim = ConvPrimitive(
        strides=tuple(node.attr("strides")),
        pads=tuple(node.attr("pads") or (0, 0, 0, 0)),
        dilations=tuple(node.attr("dilations", (1, 1))),
        group=int(node.attr("group", 1)),
    )
    return [prim.compute(inputs)]


@_register("ConvTranspose")
def _conv_transpose(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    from ..primitives.linear import ConvTransposePrimitive

    prim = ConvTransposePrimitive(
        strides=tuple(node.attr("strides")),
        pads=tuple(node.attr("pads") or (0, 0, 0, 0)),
        output_padding=tuple(node.attr("output_padding", (0, 0))),
        group=int(node.attr("group", 1)),
    )
    return [prim.compute(inputs)]


@_register("MatMul")
def _matmul(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    return [np.matmul(inputs[0], inputs[1])]


@_register("Gemm")
def _gemm(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    a, b = inputs[0], inputs[1]
    if bool(node.attr("trans_a", False)):
        a = a.T
    if bool(node.attr("trans_b", False)):
        b = b.T
    out = a @ b
    if len(inputs) >= 3:
        out = out + inputs[2]
    return [out]


@_register("TopK")
def _topk(node: Node, inputs: list[np.ndarray]) -> list[np.ndarray]:
    x = inputs[0]
    k = int(node.attr("k", 1))
    axis = int(node.attr("axis", -1))
    order = np.argsort(x, axis=axis)
    top = np.take(order, range(-1, -k - 1, -1), axis=axis)
    values = np.take_along_axis(x, top, axis=axis)
    return [values, top.astype(np.int64)]
