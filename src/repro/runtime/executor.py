"""Plan execution runtime: run an assembled :class:`KorchResult` for real.

The optimizer's output so far was *predicted*: an executable whose latency is
the sum of backend model estimates.  :class:`PlanExecutor` closes the loop —
it walks the assembled kernel graph in dependency order, dispatches each
kernel's primitive sequence to a pluggable :class:`~repro.runtime.library.KernelLibrary`
(numpy always; torch when importable), manages intermediate tensor lifetimes
(tensors are freed after their last reader, with live/peak accounting), and
verifies the produced outputs against the independent operator-level
reference executor (:mod:`repro.runtime.reference`).

``PlanExecutor.measure`` additionally times every kernel (warmup + trimmed
mean over repeats) and returns a :class:`MeasurementReport`, the input of the
measured-latency profiling backend (:mod:`repro.backends.measured`) that
feeds observed timings back into the profile cache.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from ..gpu.executor import PrimitiveGraphExecutor
from ..gpu.features import KernelFeatures, extract_features
from ..gpu.profiler import KernelProfiler
from .executable import Executable, KernelLaunch, ModelExecutable
from .library import KernelLibrary, resolve_library
from .reference import ReferenceExecutor
from .verification import VerificationResult, compare_outputs

__all__ = [
    "KernelExecution",
    "ExecutionReport",
    "MeasuredKernel",
    "MeasurementReport",
    "PlanExecutor",
    "trimmed_mean",
]

#: Default numeric tolerance for executor-vs-reference equivalence: the same
#: bound the existing verification layer uses (max absolute error over every
#: graph output, float32 end to end).
DEFAULT_TOLERANCE = 1e-4


def trimmed_mean(samples: Sequence[float], trim: float = 0.2) -> float:
    """Mean of ``samples`` after dropping a ``trim`` fraction at each end.

    The standard robust reduction for wall-clock kernel timings: the slowest
    repeats carry scheduler noise, the fastest can ride a cache anomaly.
    Always keeps at least one sample.
    """
    if not samples:
        raise ValueError("trimmed_mean needs at least one sample")
    ordered = sorted(samples)
    drop = int(len(ordered) * trim)
    kept = ordered[drop : len(ordered) - drop] or [ordered[len(ordered) // 2]]
    return sum(kept) / len(kept)


@dataclass(frozen=True)
class KernelExecution:
    """One kernel launch as it actually ran."""

    partition: int
    index: int
    node_names: tuple[str, ...]
    #: Backend the plan selected for this kernel (the latency model's pick).
    backend: str
    #: The profiler's latency estimate for this kernel.
    predicted_s: float
    #: Wall-clock seconds of the library dispatch for this launch.
    wall_s: float
    output_bytes: int


@dataclass
class ExecutionReport:
    """Everything one :meth:`PlanExecutor.run` produced."""

    model: str
    library: str
    outputs: dict[str, np.ndarray]
    kernels: list[KernelExecution]
    #: Peak bytes of live intermediate tensors (sources excluded) and bytes
    #: released by last-use freeing during the walk.
    peak_live_bytes: int
    freed_bytes: int
    verification: VerificationResult | None = None
    measurement: "MeasurementReport | None" = None
    #: The :class:`~repro.backends.measured.MeasuredBackend` the engine
    #: ingested this run's measurement into, when it measured.
    measured_backend: object | None = None

    @property
    def num_kernels(self) -> int:
        return len(self.kernels)

    @property
    def predicted_s(self) -> float:
        return sum(k.predicted_s for k in self.kernels)

    @property
    def wall_s(self) -> float:
        return sum(k.wall_s for k in self.kernels)

    def summary(self) -> dict:
        out = {
            "model": self.model,
            "library": self.library,
            "num_kernels": self.num_kernels,
            "predicted_ms": self.predicted_s * 1e3,
            "wall_ms": self.wall_s * 1e3,
            "peak_live_bytes": self.peak_live_bytes,
            "freed_bytes": self.freed_bytes,
        }
        if self.verification is not None:
            out["verified"] = self.verification.equivalent
            out["max_abs_error"] = self.verification.max_abs_error
        if self.measurement is not None:
            out["measured_ms"] = self.measurement.measured_s * 1e3
        return out


@dataclass(frozen=True)
class MeasuredKernel:
    """Measured latency of one planned kernel, with its cache identity."""

    partition: int
    index: int
    node_names: tuple[str, ...]
    #: Backend the analytic plan had selected (for comparison/reporting).
    planned_backend: str
    predicted_s: float
    measured_s: float
    repeats: int
    #: The profiler's structural kernel signature — the persistent profile
    #: cache key, so measured timings land exactly where estimates would.
    signature: tuple
    features: KernelFeatures


@dataclass
class MeasurementReport:
    """Per-kernel measured latencies of one plan execution."""

    model: str
    library: str
    warmup: int
    repeats: int
    kernels: list[MeasuredKernel] = field(default_factory=list)

    @property
    def measured_s(self) -> float:
        return sum(k.measured_s for k in self.kernels)

    @property
    def predicted_s(self) -> float:
        return sum(k.predicted_s for k in self.kernels)

    def summary(self) -> dict:
        return {
            "model": self.model,
            "library": self.library,
            "num_kernels": len(self.kernels),
            "warmup": self.warmup,
            "repeats": self.repeats,
            "predicted_ms": self.predicted_s * 1e3,
            "measured_ms": self.measured_s * 1e3,
        }


@dataclass(frozen=True)
class _ExecutableResult:
    """The minimal result surface :class:`PlanExecutor` reads: a graph to
    verify against and the executable's partition chain."""

    graph: object
    executable: ModelExecutable


class PlanExecutor:
    """Executes an assembled :class:`~repro.engine.result.KorchResult`.

    ``on_kernel(execution)`` is called after every launch — the hook the
    engine uses to feed its per-kernel latency histogram without the runtime
    depending on the metrics package.
    """

    def __init__(
        self,
        result,
        library: KernelLibrary | str | None = None,
        on_kernel: Callable[[KernelExecution], None] | None = None,
    ) -> None:
        self.result = result
        self.library = resolve_library(library)
        self.on_kernel = on_kernel

    @classmethod
    def for_executable(
        cls,
        graph,
        executable: "Executable | ModelExecutable",
        library: KernelLibrary | str | None = None,
        on_kernel: Callable[[KernelExecution], None] | None = None,
    ) -> "PlanExecutor":
        """An executor over a bare executable (one partition or a chained
        model) instead of a full :class:`KorchResult` — what
        :class:`~repro.engine.stages.ExecuteStage` uses per partition."""
        model = (
            executable
            if isinstance(executable, ModelExecutable)
            else ModelExecutable(graph.name, [executable])
        )
        return cls(_ExecutableResult(graph, model), library=library, on_kernel=on_kernel)

    # ------------------------------------------------------------------ run
    def run(
        self,
        feeds: Mapping[str, np.ndarray] | None = None,
        keep_intermediates: bool = False,
    ) -> ExecutionReport:
        """Execute every partition in dependency order; returns the report.

        Partition boundary tensors flow through a shared memory dict, like
        :meth:`ModelExecutable.run` — but each kernel dispatches through the
        configured library, intermediates are freed after their last reader,
        and per-kernel wall times are recorded.
        """
        memory: dict[str, np.ndarray] = dict(feeds or {})
        outputs: dict[str, np.ndarray] = {}
        kernels: list[KernelExecution] = []
        peak = 0
        freed = 0
        for position, part in enumerate(self.result.executable.parts):
            part_outputs, executed, part_peak, part_freed = self._run_partition(
                part, position, memory, keep_intermediates
            )
            memory.update(part_outputs)
            outputs.update(part_outputs)
            kernels.extend(executed)
            peak = max(peak, part_peak)
            freed += part_freed
        return ExecutionReport(
            model=self.result.graph.name,
            library=self.library.name,
            outputs=outputs,
            kernels=kernels,
            peak_live_bytes=peak,
            freed_bytes=freed,
        )

    def _run_partition(
        self,
        part: Executable,
        position: int,
        feeds: Mapping[str, np.ndarray],
        keep_intermediates: bool,
    ) -> tuple[dict[str, np.ndarray], list[KernelExecution], int, int]:
        pg = part.pg
        values = PrimitiveGraphExecutor(pg).source_values(feeds)
        keep = set(pg.outputs)
        # Last-use refcounts: a tensor dies when no later launch reads it.
        reads: dict[str, int] = {}
        for launch in part.launches:
            for tensor in launch.inputs:
                reads[tensor] = reads.get(tensor, 0) + 1

        executed: list[KernelExecution] = []
        live_bytes = 0
        peak = 0
        freed = 0
        pending = self._dependency_order(part, values)
        for launch, kernel_nodes in pending:
            input_values = {t: values[t] for t in launch.inputs}
            started = time.perf_counter()
            produced = self.library.run_kernel(kernel_nodes, input_values, launch.outputs)
            elapsed = time.perf_counter() - started
            out_bytes = 0
            for name, value in produced.items():
                fresh = name not in values
                values[name] = value
                if fresh and not pg.is_source_tensor(name):
                    live_bytes += value.nbytes
                out_bytes += value.nbytes
            peak = max(peak, live_bytes)
            execution = KernelExecution(
                partition=position,
                index=launch.index,
                node_names=launch.node_names,
                backend=launch.backend,
                predicted_s=launch.latency_s,
                wall_s=elapsed,
                output_bytes=out_bytes,
            )
            executed.append(execution)
            if self.on_kernel is not None:
                self.on_kernel(execution)
            if keep_intermediates:
                continue
            for tensor in launch.inputs:
                reads[tensor] -= 1
                if (
                    reads[tensor] == 0
                    and tensor not in keep
                    and tensor in values
                    and not pg.is_source_tensor(tensor)
                ):
                    freed += values[tensor].nbytes
                    live_bytes -= values[tensor].nbytes
                    del values[tensor]

        missing = [t for t in pg.outputs if t not in values]
        if missing:
            raise RuntimeError(f"plan execution did not produce outputs {missing}")
        return {name: values[name] for name in pg.outputs}, executed, peak, freed

    @staticmethod
    def _dependency_order(
        part: Executable, sources: Mapping[str, np.ndarray]
    ) -> list[tuple[KernelLaunch, list]]:
        """The kernel launches in an input-available order.

        Independent of the stored launch sequence: a ready-set walk over the
        kernel-level dataflow (deterministic — first-ready in stored order),
        raising on a plan whose kernels can never all become ready.
        """
        nodes_by_name = {node.name: node for node in part.pg.nodes}
        pending = [
            (launch, kernel.nodes or [nodes_by_name[n] for n in launch.node_names])
            for launch, kernel in zip(part.launches, part.strategy.kernels)
        ]
        available = set(sources)
        ordered: list[tuple[KernelLaunch, list]] = []
        while pending:
            ready_at = next(
                (
                    i
                    for i, (launch, _) in enumerate(pending)
                    if all(t in available for t in launch.inputs)
                ),
                None,
            )
            if ready_at is None:
                stuck = [launch.index for launch, _ in pending]
                raise RuntimeError(
                    f"kernel graph has no executable order; launches {stuck} "
                    "wait on tensors nothing produces"
                )
            launch, nodes = pending.pop(ready_at)
            available.update(launch.outputs)
            ordered.append((launch, nodes))
        return ordered

    # --------------------------------------------------------------- verify
    def verify(
        self,
        feeds: Mapping[str, np.ndarray] | None = None,
        tolerance: float = DEFAULT_TOLERANCE,
    ) -> VerificationResult:
        """Compare this executor's outputs against the operator-level
        reference on the original graph's outputs (synthesized inputs when
        no feeds are given — both sides synthesize identically by name)."""
        reference = ReferenceExecutor(self.result.graph).run(feeds)
        produced = self.run(feeds).outputs
        candidate = {
            name: produced[name] for name in self.result.graph.outputs if name in produced
        }
        return compare_outputs(reference, candidate, tolerance)

    # -------------------------------------------------------------- measure
    def measure(
        self,
        feeds: Mapping[str, np.ndarray] | None = None,
        warmup: int = 1,
        repeats: int = 5,
        trim: float = 0.2,
    ) -> MeasurementReport:
        """Time every kernel of the plan: ``warmup`` unrecorded runs, then a
        trimmed mean over ``repeats`` timed runs, each from the same
        materialized input tensors.  Returns per-kernel measured latencies
        keyed by the profiler's structural signature, ready to be fed into
        the profile cache through a measured backend."""
        if repeats < 1:
            raise ValueError("measure needs repeats >= 1")
        report = MeasurementReport(
            model=self.result.graph.name,
            library=self.library.name,
            warmup=warmup,
            repeats=repeats,
        )
        memory: dict[str, np.ndarray] = dict(feeds or {})
        for position, part in enumerate(self.result.executable.parts):
            pg = part.pg
            values = PrimitiveGraphExecutor(pg).source_values(memory)
            for launch, kernel_nodes in self._dependency_order(part, values):
                input_values = {t: values[t] for t in launch.inputs}
                for _ in range(max(0, warmup)):
                    self.library.run_kernel(kernel_nodes, input_values, launch.outputs)
                samples: list[float] = []
                produced: dict[str, np.ndarray] = {}
                for _ in range(repeats):
                    started = time.perf_counter()
                    produced = self.library.run_kernel(
                        kernel_nodes, input_values, launch.outputs
                    )
                    samples.append(time.perf_counter() - started)
                values.update(produced)
                signature = KernelProfiler.kernel_signature(
                    pg, kernel_nodes, launch.inputs, launch.outputs
                )
                features = extract_features(pg, kernel_nodes, launch.inputs, launch.outputs)
                report.kernels.append(
                    MeasuredKernel(
                        partition=position,
                        index=launch.index,
                        node_names=launch.node_names,
                        planned_backend=launch.backend,
                        predicted_s=launch.latency_s,
                        measured_s=trimmed_mean(samples, trim),
                        repeats=repeats,
                        signature=signature,
                        features=features,
                    )
                )
            memory.update({name: values[name] for name in pg.outputs})
        return report
