"""Executable generator (§5.3).

Korch's executable generator stitches the selected kernels together in a
dependency-respecting order.  In this reproduction an
:class:`Executable` is a sequence of kernel launches executed by the numpy
kernel executor: each launch reads its external input tensors from simulated
device memory, runs its primitives, and writes its declared outputs back.
The predicted latency of the executable is the sum of the kernels' profiled
latencies, exactly the BLP objective (Equation 2).

A :class:`ModelExecutable` chains the per-partition executables of a whole
model; partition boundary tensors flow through the shared memory dictionary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..gpu.executor import PrimitiveGraphExecutor
from ..orchestration.strategy import OrchestrationStrategy
from ..primitives.graph import PrimitiveGraph

__all__ = ["KernelLaunch", "Executable", "ModelExecutable"]


@dataclass(frozen=True)
class KernelLaunch:
    """One entry of an executable's launch sequence."""

    index: int
    node_names: tuple[str, ...]
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    backend: str
    latency_s: float


@dataclass
class Executable:
    """A compiled kernel execution plan for one primitive graph."""

    pg: PrimitiveGraph
    strategy: OrchestrationStrategy
    launches: list[KernelLaunch] = field(default_factory=list)

    @classmethod
    def from_strategy(cls, strategy: OrchestrationStrategy) -> "Executable":
        """Build an executable from an (ordered) orchestration strategy."""
        launches = [
            KernelLaunch(
                index=i,
                node_names=tuple(sorted(kernel.node_names)),
                inputs=tuple(kernel.external_inputs),
                outputs=tuple(kernel.outputs),
                backend=kernel.backend,
                latency_s=kernel.latency_s,
            )
            for i, kernel in enumerate(strategy.kernels)
        ]
        return cls(pg=strategy.pg, strategy=strategy, launches=launches)

    # ------------------------------------------------------------------ info
    @property
    def num_kernels(self) -> int:
        return len(self.launches)

    @property
    def predicted_latency_s(self) -> float:
        return sum(launch.latency_s for launch in self.launches)

    @property
    def predicted_latency_ms(self) -> float:
        return self.predicted_latency_s * 1e3

    def peak_memory_bytes(self) -> int:
        """Peak bytes of materialized intermediate tensors during execution.

        Graph sources are excluded (weights are resident anyway); a tensor is
        live from the launch that materializes it until its last reader.
        """
        last_use: dict[str, int] = {}
        for position, launch in enumerate(self.launches):
            for tensor in launch.inputs:
                last_use[tensor] = position
        for tensor in self.pg.outputs:
            last_use[tensor] = len(self.launches)

        live: dict[str, int] = {}
        peak = 0
        current = 0
        for position, launch in enumerate(self.launches):
            for tensor in launch.outputs:
                if tensor not in live and not self.pg.is_source_tensor(tensor):
                    live[tensor] = last_use.get(tensor, position)
                    current += self.pg.tensor_type(tensor).size_bytes
            peak = max(peak, current)
            expired = [t for t, last in live.items() if last <= position]
            for tensor in expired:
                current -= self.pg.tensor_type(tensor).size_bytes
                del live[tensor]
        return peak

    # ------------------------------------------------------------------ run
    def run(self, feeds: Mapping[str, np.ndarray] | None = None) -> dict[str, np.ndarray]:
        """Execute the plan with numpy and return the graph outputs."""
        executor = PrimitiveGraphExecutor(self.pg)
        memory = executor.source_values(feeds)
        nodes_by_name = {node.name: node for node in self.pg.nodes}

        for launch, kernel in zip(self.launches, self.strategy.kernels):
            missing = [t for t in launch.inputs if t not in memory]
            if missing:
                raise RuntimeError(
                    f"kernel {launch.index} launched before its inputs {missing} are materialized"
                )
            input_values = {t: memory[t] for t in launch.inputs}
            nodes = [nodes_by_name[name] for name in launch.node_names]
            # Preserve a valid intra-kernel order (run_kernel resolves it).
            outputs = executor.run_kernel(kernel.nodes or nodes, input_values, launch.outputs)
            memory.update(outputs)

        missing_outputs = [t for t in self.pg.outputs if t not in memory]
        if missing_outputs:
            raise RuntimeError(f"executable did not produce outputs {missing_outputs}")
        return {name: memory[name] for name in self.pg.outputs}


@dataclass
class ModelExecutable:
    """Chained executables of a partitioned model."""

    name: str
    parts: list[Executable]

    @property
    def num_kernels(self) -> int:
        return sum(part.num_kernels for part in self.parts)

    @property
    def predicted_latency_s(self) -> float:
        return sum(part.predicted_latency_s for part in self.parts)

    @property
    def predicted_latency_ms(self) -> float:
        return self.predicted_latency_s * 1e3

    def run(self, feeds: Mapping[str, np.ndarray] | None = None) -> dict[str, np.ndarray]:
        """Execute every partition in order, flowing boundary tensors through."""
        memory: dict[str, np.ndarray] = dict(feeds or {})
        outputs: dict[str, np.ndarray] = {}
        for part in self.parts:
            part_outputs = part.run(memory)
            memory.update(part_outputs)
            outputs.update(part_outputs)
        return outputs

    def output_names(self) -> list[str]:
        names: list[str] = []
        for part in self.parts:
            names.extend(part.pg.outputs)
        return names
