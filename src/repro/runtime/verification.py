"""Functional equivalence checking.

Korch's correctness argument is structural (fission rules and graph
transformations are semantics-preserving, kernels partition the primitive
graph); this reproduction additionally *checks* equivalence numerically: the
orchestrated executable, the primitive graph, and the original operator graph
must all agree on every graph output for the same (synthesized) inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..gpu.executor import PrimitiveGraphExecutor
from ..ir.graph import Graph
from ..primitives.graph import PrimitiveGraph
from .executable import Executable, ModelExecutable
from .reference import ReferenceExecutor

__all__ = [
    "VerificationResult",
    "compare_outputs",
    "verify_primitive_graph",
    "verify_executable",
    "verify_model_executable",
]

_DEFAULT_TOLERANCE = 1e-4


@dataclass
class VerificationResult:
    """Outcome of one equivalence check."""

    equivalent: bool
    max_abs_error: float
    per_output_error: dict[str, float]
    tolerance: float

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.equivalent


def compare_outputs(
    reference: Mapping[str, np.ndarray],
    candidate: Mapping[str, np.ndarray],
    tolerance: float = _DEFAULT_TOLERANCE,
) -> VerificationResult:
    """Elementwise max-abs-error comparison of two output dictionaries.

    Missing or shape-mismatched candidate tensors count as infinite error.
    The shared core of every verification entry point (and of the plan
    executor's :meth:`~repro.runtime.executor.PlanExecutor.verify`).
    """
    errors: dict[str, float] = {}
    for name, expected in reference.items():
        if name not in candidate:
            errors[name] = float("inf")
            continue
        got = candidate[name]
        if got.shape != expected.shape:
            errors[name] = float("inf")
            continue
        errors[name] = float(np.max(np.abs(np.asarray(got) - np.asarray(expected)))) if expected.size else 0.0
    worst = max(errors.values(), default=0.0)
    return VerificationResult(worst <= tolerance, worst, errors, tolerance)


def verify_primitive_graph(
    graph: Graph,
    pg: PrimitiveGraph,
    feeds: Mapping[str, np.ndarray] | None = None,
    tolerance: float = _DEFAULT_TOLERANCE,
) -> VerificationResult:
    """Check that operator fission (and any transformations) preserved semantics."""
    reference = ReferenceExecutor(graph).run(feeds)
    candidate = PrimitiveGraphExecutor(pg).run(feeds)
    return compare_outputs(reference, candidate, tolerance)


def verify_executable(
    graph: Graph,
    executable: Executable,
    feeds: Mapping[str, np.ndarray] | None = None,
    tolerance: float = _DEFAULT_TOLERANCE,
) -> VerificationResult:
    """Check that an orchestrated executable computes the original model."""
    reference = ReferenceExecutor(graph).run(feeds)
    candidate = executable.run(feeds)
    return compare_outputs(reference, candidate, tolerance)


def verify_model_executable(
    graph: Graph,
    executable: ModelExecutable,
    feeds: Mapping[str, np.ndarray] | None = None,
    tolerance: float = _DEFAULT_TOLERANCE,
) -> VerificationResult:
    """Check a partitioned model executable against the original graph.

    Only the original graph's outputs are compared (partition boundary
    tensors are implementation details).
    """
    reference = ReferenceExecutor(graph).run(feeds)
    outputs = executable.run(feeds)
    candidate = {name: outputs[name] for name in graph.outputs if name in outputs}
    return compare_outputs(reference, candidate, tolerance)
