"""Command-line front-end of the plan execution runtime.

Two subcommands::

    python -m repro.runtime run --model NAME [--model NAME ...] | --zoo
        Optimize each model through the engine, execute the assembled plan
        kernel by kernel through a kernel library, and verify the outputs
        against the operator-level reference executor.  ``--measure`` also
        times every kernel (warmup + trimmed-mean repeats) and ingests the
        timings into a measured-latency backend; with ``--cache-dir`` they
        are written into the persistent profile cache, and ``--rerank``
        re-optimizes each model with the measured backend ranking plans
        from observed latency instead of the analytic models.

    python -m repro.runtime libraries
        List the known kernel libraries and whether each is constructible
        in this environment (torch is optional).

Exit status is 1 when any executed plan failed verification, 0 otherwise —
what the CI ``analysis`` job keys on.
"""

from __future__ import annotations

import argparse
import json
import sys

__all__ = ["main"]


def _model_builders() -> dict:
    """Zoo models plus the small case-study blocks (fast enough for CI)."""
    from ..models import (
        MODEL_BUILDERS,
        build_candy_block,
        build_efficientvit_attention_block,
        build_segformer_attention_block,
        build_segformer_decoder_subgraph,
    )

    return {
        **MODEL_BUILDERS,
        "candy_block": build_candy_block,
        "efficientvit_block": build_efficientvit_attention_block,
        "segformer_attention": build_segformer_attention_block,
        "segformer_decoder": build_segformer_decoder_subgraph,
    }


def cmd_libraries(args: argparse.Namespace) -> int:
    from .library import available_libraries

    table = available_libraries()
    if args.json:
        print(json.dumps(table, indent=2, sort_keys=True))
    else:
        for name, usable in sorted(table.items()):
            print(f"{name}: {'available' if usable else 'unavailable'}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    # Heavy imports live here so `libraries` stays instant.
    from ..backends import MeasuredBackend, default_korch_backends
    from ..engine import KorchEngine
    from ..engine.config import KorchConfig
    from .library import available_libraries

    builders = _model_builders()
    names = list(builders) if args.zoo else (args.model or [])
    if not names:
        print("run: pass --model NAME (repeatable) or --zoo", file=sys.stderr)
        return 2
    unknown = [name for name in names if name not in builders]
    if unknown:
        print(f"run: unknown model(s) {unknown}; known: {sorted(builders)}", file=sys.stderr)
        return 2
    if args.library not in available_libraries():
        print(
            f"run: unknown library {args.library!r}; known: "
            f"{sorted(available_libraries())}",
            file=sys.stderr,
        )
        return 2
    if not available_libraries()[args.library]:
        print(f"run: library {args.library!r} is not importable here", file=sys.stderr)
        return 2

    config = KorchConfig(gpu=args.gpu, cache_dir=args.cache_dir)
    failures = 0
    reports = []
    measured = MeasuredBackend() if args.measure else None
    with KorchEngine(config) as engine:
        for name in names:
            graph = builders[name]()
            result = engine.optimize(graph)
            report = engine.execute(
                result,
                library=args.library,
                verify=True,
                tolerance=args.tolerance,
                measure=args.measure,
                warmup=args.warmup,
                repeats=args.repeats,
                measured_backend=measured,
            )
            summary = report.summary()
            reports.append(summary)
            if not report.verification.equivalent:
                failures += 1
            if not args.json:
                status = "ok" if report.verification.equivalent else "FAILED"
                line = (
                    f"{name}: {status} max_abs_error={report.verification.max_abs_error:.2e} "
                    f"kernels={report.num_kernels} predicted={summary['predicted_ms']:.3f}ms"
                )
                if report.measurement is not None:
                    line += f" measured={summary['measured_ms']:.3f}ms"
                print(line)

    if args.rerank:
        if measured is None or not measured.num_measurements:
            print("run: --rerank needs --measure (no timings to rank from)", file=sys.stderr)
            return 2
        # A fresh engine whose profiler ranks candidates by the measured
        # table, falling back to the analytic models for kernels that were
        # never part of an executed plan.  With --cache-dir the measured
        # profiles also persist under the measured backend's own
        # fingerprint, so later engines can re-rank without re-running.
        measured.fallback = default_korch_backends()
        rerank_config = KorchConfig(gpu=args.gpu, cache_dir=args.cache_dir)
        with KorchEngine(rerank_config, backends=[measured]) as engine:
            for name in names:
                result = engine.optimize(builders[name]())
                line = {
                    "model": name,
                    "reranked_kernels": result.num_kernels,
                    "objective_ms": sum(
                        p.orchestration.strategy.objective_s for p in result.partitions
                    )
                    * 1e3,
                }
                reports.append({"rerank": line})
                if not args.json:
                    print(
                        f"{name}: reranked -> {line['reranked_kernels']} kernels, "
                        f"objective {line['objective_ms']:.3f}ms (measured-latency ranking)"
                    )

    if args.json:
        print(json.dumps(reports, indent=2, default=str))
    if failures and not args.json:
        print(f"run: {failures} of {len(names)} model(s) FAILED verification", file=sys.stderr)
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime",
        description="Execute optimized plans for real: kernel-library dispatch, "
        "reference verification, and measured-latency profiling.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="optimize, execute and verify models")
    run.add_argument("--model", action="append", help="model name (repeatable)")
    run.add_argument("--zoo", action="store_true", help="run every known model")
    run.add_argument("--gpu", default="V100", help="GPU spec name (default V100)")
    run.add_argument("--cache-dir", default=None, help="persistent cache directory; "
                     "measured profiles are written there with --measure")
    run.add_argument("--library", default="numpy", help="kernel library (numpy or torch)")
    run.add_argument("--tolerance", type=float, default=1e-4,
                     help="max absolute error accepted by verification (default 1e-4)")
    run.add_argument("--measure", action="store_true",
                     help="time every kernel and ingest into a measured backend")
    run.add_argument("--warmup", type=int, default=1, help="unrecorded runs per kernel")
    run.add_argument("--repeats", type=int, default=3, help="timed runs per kernel")
    run.add_argument("--rerank", action="store_true",
                     help="after measuring, re-optimize with measured-latency ranking")
    run.add_argument("--json", action="store_true", help="emit reports as JSON")
    run.set_defaults(fn=cmd_run)

    libraries = sub.add_parser("libraries", help="list kernel libraries")
    libraries.add_argument("--json", action="store_true", help="emit as JSON")
    libraries.set_defaults(fn=cmd_libraries)

    args = parser.parse_args(argv)
    return args.fn(args)
