"""TensorRT-style pattern-based fusion baseline.

TensorRT applies a fixed library of fusion patterns when building an engine:

* ``Conv/Gemm/MatMul  (+ BatchNorm folded)  (+ bias)  (+ activation)`` become
  one kernel backed by a hand-tuned implementation;
* short chains of elementwise operators are fused into a single pointwise
  kernel;
* everything else — layout operators, composite normalizations (softmax,
  InstanceNorm, LayerNorm), reductions, resizes — runs as its own kernel from
  the library (this is the behaviour visible in Figure 8a and Figure 12a).

Because the patterns operate on whole operators, TensorRT cannot split a
softmax or an InstanceNorm across kernels — the optimization operator fission
enables and that §6.3/§6.4 measure.
"""

from __future__ import annotations

from ..backends import KernelBackend, tensorrt_backends
from ..ir.graph import Graph, Node
from ..ir.ops import OpKind
from .base import FusionBaseline

__all__ = ["TensorRTFusionBaseline"]

#: Activations TensorRT fuses into the preceding compute kernel.
_FUSABLE_ACTIVATIONS = {
    "Relu", "LeakyRelu", "Sigmoid", "Tanh", "Clip", "Silu", "Mish", "HardSwish", "Gelu",
}
#: Operators whose output TensorRT folds into a preceding Conv/Gemm kernel.
_FUSABLE_EPILOGUE = {"Add", "BatchNormalization"} | _FUSABLE_ACTIVATIONS
#: Maximum elementwise operators fused into one pointwise kernel.
_MAX_POINTWISE_CHAIN = 6


class TensorRTFusionBaseline(FusionBaseline):
    """Pattern-based fusion with TensorRT's kernel library."""

    name = "TensorRT"

    def default_backends(self) -> list[KernelBackend]:
        return tensorrt_backends()

    def group_operators(self, graph: Graph) -> list[list[str]]:
        order = graph.topological_order()
        consumer_map = graph.consumer_map()
        assigned: set[str] = set()
        groups: list[list[str]] = []

        def sole_consumer(node: Node) -> Node | None:
            """The single consumer of the node's single output, if any."""
            if len(node.outputs) != 1:
                return None
            consumers = consumer_map.get(node.outputs[0], [])
            if len(consumers) != 1 or node.outputs[0] in graph.outputs:
                return None
            return consumers[0]

        for node in order:
            if node.name in assigned:
                continue
            group = [node.name]
            assigned.add(node.name)
            kind = node.spec.kind

            if kind is OpKind.COMPUTE:
                # Conv/Gemm + (BatchNorm) + (bias Add) + (activation).
                current = node
                while True:
                    succ = sole_consumer(current)
                    if succ is None or succ.name in assigned or succ.op_type not in _FUSABLE_EPILOGUE:
                        break
                    group.append(succ.name)
                    assigned.add(succ.name)
                    current = succ
                    if succ.op_type in _FUSABLE_ACTIVATIONS:
                        break  # one activation ends the pattern
            elif kind is OpKind.ELEMENTWISE:
                # Pointwise chain fusion.
                current = node
                while len(group) < _MAX_POINTWISE_CHAIN:
                    succ = sole_consumer(current)
                    if (
                        succ is None
                        or succ.name in assigned
                        or succ.spec.kind is not OpKind.ELEMENTWISE
                    ):
                        break
                    group.append(succ.name)
                    assigned.add(succ.name)
                    current = succ
            # layout / reduction / composite / opaque operators: single kernel.

            groups.append(group)

        return groups
