"""PyTorch-eager baseline: one kernel per operator.

Eager execution dispatches every operator to its own pre-compiled kernel and
pays a framework dispatch overhead on each launch.  Composite operators
(softmax, normalizations) still run as a single kernel — their internal
multi-pass structure is captured by the multipass-traffic feature.
"""

from __future__ import annotations

from ..backends import KernelBackend, eager_backends
from ..ir.graph import Graph
from .base import FusionBaseline

__all__ = ["UnfusedBaseline"]


class UnfusedBaseline(FusionBaseline):
    """One kernel per operator, framework kernel library."""

    name = "PyTorch"

    def default_backends(self) -> list[KernelBackend]:
        return eager_backends()

    def group_operators(self, graph: Graph) -> list[list[str]]:
        return [[node.name] for node in graph.topological_order()]
