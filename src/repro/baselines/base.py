"""Common machinery for rule-based operator-fusion baselines.

Every baseline in Figure 6 (PyTorch eager, TVM, TensorRT) maps *operators* to
kernels with its own greedy fusion policy.  To compare them head-to-head with
Korch on the same footing, a baseline here

1. groups the operator-level nodes according to its fusion policy,
2. maps each operator group to the primitive nodes produced for those
   operators by the (shared) fission engine, and
3. profiles each group as one kernel with the baseline's own kernel library
   (its backend latency models).

The result is expressed as an :class:`~repro.orchestration.strategy.OrchestrationStrategy`,
so baselines and Korch share the same reporting, verification and benchmark
machinery.
"""

from __future__ import annotations

import abc
from typing import Sequence

from ..backends import FrameworkEagerBackend, KernelBackend
from ..fission import FissionEngine
from ..gpu.profiler import KernelProfiler
from ..gpu.specs import GpuSpec
from ..ir.graph import Graph
from ..orchestration.kernel import CandidateKernel
from ..orchestration.strategy import OrchestrationStrategy, order_kernels
from ..primitives.graph import PrimitiveGraph

__all__ = ["FusionBaseline"]


class FusionBaseline(abc.ABC):
    """A rule-based operator-fusion baseline."""

    #: Name used in figures ("PyTorch", "TVM", "TensorRT", "DNNFusion").
    name: str = "baseline"

    def __init__(self, spec: GpuSpec, backends: Sequence[KernelBackend] | None = None) -> None:
        self.spec = spec
        self.backends = list(backends) if backends is not None else self.default_backends()
        self.profiler = KernelProfiler(spec, self.backends)
        # A real deployment can always fall back to the framework's own kernel
        # for a group the optimizer's library cannot handle — but the fallback
        # must not *compete* with the baseline's library on latency, so it
        # lives in a separate profiler consulted only on rejection.
        self._fallback_profiler = KernelProfiler(
            spec, [FrameworkEagerBackend()], self.profiler.tuning_model
        )

    # ------------------------------------------------------------ interface
    @abc.abstractmethod
    def group_operators(self, graph: Graph) -> list[list[str]]:
        """Partition the operator nodes (by name) into kernel groups.

        Groups must be returned in a valid execution order and jointly cover
        every node exactly once.
        """

    def default_backends(self) -> list[KernelBackend]:
        """Kernel library available to this baseline."""
        return [FrameworkEagerBackend()]

    # ------------------------------------------------------------------ api
    def run(self, graph: Graph, pg: PrimitiveGraph | None = None) -> OrchestrationStrategy:
        """Apply the baseline's kernel orchestration to ``graph``."""
        if pg is None:
            pg, _ = FissionEngine().run(graph)
        groups = self.group_operators(graph)
        self._check_cover(graph, groups)

        prims_by_op: dict[str, list] = {}
        for node in pg.nodes:
            prims_by_op.setdefault(node.source_op, []).append(node)

        order = {node.name: i for i, node in enumerate(pg.topological_order())}
        kernels: list[CandidateKernel] = []
        for group in groups:
            prim_nodes = [prim for op_name in group for prim in prims_by_op.get(op_name, [])]
            if not prim_nodes:
                continue
            prim_nodes.sort(key=lambda n: order[n.name])
            external_inputs, outputs = pg.subset_io(prim_nodes)
            profile = self.profiler.profile(pg, prim_nodes, external_inputs, outputs)
            if profile is None:
                profile = self._fallback_profiler.profile(pg, prim_nodes, external_inputs, outputs)
            if profile is None:
                raise RuntimeError(
                    f"{self.name}: no backend latency model accepts the fused group "
                    f"{group} ({len(prim_nodes)} primitives)"
                )
            kernels.append(
                CandidateKernel(
                    index=len(kernels),
                    node_names=frozenset(node.name for node in prim_nodes),
                    nodes=prim_nodes,
                    external_inputs=list(external_inputs),
                    outputs=list(outputs),
                    profile=profile,
                    source_ops=frozenset(group),
                )
            )

        ordered = order_kernels(pg, kernels)
        total = sum(kernel.latency_s for kernel in ordered)
        return OrchestrationStrategy(
            pg=pg,
            kernels=ordered,
            objective_s=total,
            solver_status="heuristic",
            solver_method=self.name,
            metadata={"baseline": self.name, "num_groups": len(groups)},
        )

    # ------------------------------------------------------------- internals
    @staticmethod
    def _check_cover(graph: Graph, groups: list[list[str]]) -> None:
        seen: set[str] = set()
        for group in groups:
            for name in group:
                if name in seen:
                    raise ValueError(f"operator {name!r} appears in more than one fusion group")
                seen.add(name)
        missing = {node.name for node in graph.nodes} - seen
        if missing:
            raise ValueError(f"fusion groups do not cover operators: {sorted(missing)}")
