"""TVM-style greedy operator fusion baseline.

TVM's relay FuseOps pass greedily builds maximal fused groups:

* a compute operator (conv/GEMM) anchors a new group, and the injective
  operators that follow it are absorbed as its epilogue;
* chains and *trees* of memory-bound operators (elementwise, layout,
  reductions, composite activations/normalizations) are fused together — when
  an injective operator such as Concat joins several memory-only groups, the
  groups are merged into one kernel.  This is the behaviour Figure 11/13
  studies: the whole Segformer MLP-decoder subgraph (4 branches + Concat)
  becomes a single kernel, which is optimal at batch 1 but poor at batch 16;
* reductions (and reduce-bearing composites such as Softmax/InstanceNorm) are
  never fused into a compute kernel's epilogue;
* two compute anchors are never merged into one kernel.

Fusion decisions respect group-level dependencies: a node only joins (and
groups only merge) when doing so cannot create a cyclic dependency between
kernels — mirroring the dominator-based legality analysis of the real pass.
"""

from __future__ import annotations

from ..backends import KernelBackend, tvm_backends
from ..ir.graph import Graph
from ..ir.ops import OpKind
from .base import FusionBaseline

__all__ = ["GreedyFusionBaseline"]

#: Operators whose computation contains a data-dependent reduction.  TVM's
#: fusion rules treat these like kCommReduce patterns: they fuse with
#: surrounding injective operators inside a memory-bound kernel, but they are
#: never fused into the epilogue of a convolution/GEMM kernel.
_REDUCE_BEARING_OPS = {
    "Softmax",
    "InstanceNormalization",
    "LayerNormalization",
    "GroupNormalization",
    "ReduceSum",
    "ReduceMean",
    "ReduceMax",
    "MaxPool",
    "AveragePool",
    "GlobalAveragePool",
}


class _GroupForest:
    """Union-find over fusion groups with dependency tracking.

    Each group records which other groups it (directly) reads from, so the
    fusion pass can check that joining a group or merging two groups does not
    create a cyclic dependency between the resulting kernels.
    """

    def __init__(self) -> None:
        self.parent: list[int] = []
        self.size: list[int] = []
        self.has_compute: list[bool] = []
        self.deps: list[set[int]] = []

    def make(self, has_compute: bool) -> int:
        self.parent.append(len(self.parent))
        self.size.append(0)
        self.has_compute.append(has_compute)
        self.deps.append(set())
        return len(self.parent) - 1

    def find(self, index: int) -> int:
        while self.parent[index] != index:
            self.parent[index] = self.parent[self.parent[index]]
            index = self.parent[index]
        return index

    def add_dependency(self, group: int, producer: int) -> None:
        group, producer = self.find(group), self.find(producer)
        if group != producer:
            self.deps[group].add(producer)

    def depends_on(self, group: int, target: int) -> bool:
        """Whether ``group`` transitively reads from ``target``."""
        group, target = self.find(group), self.find(target)
        seen: set[int] = set()
        stack = [group]
        while stack:
            current = self.find(stack.pop())
            if current == target:
                return True
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.find(dep) for dep in self.deps[current])
        return False

    def path_through_outside(self, a: int, b: int) -> bool:
        """Whether a dependency path between ``a`` and ``b`` passes through a
        third group (which would become a cycle if ``a`` and ``b`` merged)."""
        a, b = self.find(a), self.find(b)
        for first, second in ((a, b), (b, a)):
            for dep in self.deps[self.find(first)]:
                dep = self.find(dep)
                if dep != second and self.depends_on(dep, second):
                    return True
        return False

    def union(self, a: int, b: int) -> int:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        self.has_compute[ra] = self.has_compute[ra] or self.has_compute[rb]
        merged = {self.find(d) for d in (self.deps[ra] | self.deps[rb])}
        merged.discard(ra)
        self.deps[ra] = merged
        self.deps[rb] = set()
        return ra


class GreedyFusionBaseline(FusionBaseline):
    """Greedy anchor-plus-epilogue fusion with memory-group merging (TVM)."""

    name = "TVM"

    def __init__(self, spec, backends=None, max_group_size: int = 64) -> None:
        self.max_group_size = max_group_size
        super().__init__(spec, backends)

    def default_backends(self) -> list[KernelBackend]:
        return tvm_backends()

    def group_operators(self, graph: Graph) -> list[list[str]]:
        order = graph.topological_order()
        forest = _GroupForest()
        group_of_node: dict[str, int] = {}
        producer_group: dict[str, int] = {}

        for node in order:
            kind = node.spec.kind
            input_groups = sorted(
                {forest.find(producer_group[t]) for t in node.inputs if t in producer_group}
            )

            if kind is OpKind.OPAQUE or kind is OpKind.COMPUTE:
                # Opaque operators are never fused; compute operators anchor a
                # fresh group (memory producers are their prologue kernels, not
                # part of the same kernel).
                target = forest.make(kind is OpKind.COMPUTE)
            else:
                target = self._choose_target(forest, node.op_type, input_groups)

            target = forest.find(target)
            group_of_node[node.name] = target
            forest.size[target] += 1
            for producer in input_groups:
                forest.add_dependency(target, producer)
            for tensor in node.outputs:
                producer_group[tensor] = target

        # Emit groups in topological order of their first member.
        groups: dict[int, list[str]] = {}
        for node in order:
            root = forest.find(group_of_node[node.name])
            groups.setdefault(root, []).append(node.name)
        return list(groups.values())

    # ------------------------------------------------------------- internals
    def _choose_target(self, forest: _GroupForest, op_type: str, input_groups: list[int]) -> int:
        """Pick (and possibly merge) the group a memory-bound operator joins."""
        if not input_groups:
            return forest.make(False)

        compute_groups = [g for g in input_groups if forest.has_compute[g]]
        if op_type in _REDUCE_BEARING_OPS:
            compute_groups = []  # reductions never join a compute epilogue
        memory_groups = [g for g in input_groups if not forest.has_compute[g]]

        # Candidate join targets, preferred order: the single compute anchor
        # (epilogue fusion), then the most recent memory group.
        candidates: list[int] = []
        if len(compute_groups) == 1:
            candidates.append(compute_groups[0])
        candidates.extend(sorted(memory_groups, reverse=True))

        target: int | None = None
        for candidate in candidates:
            if forest.size[candidate] >= self.max_group_size:
                continue
            # Joining `candidate` makes it depend on every other input group;
            # that is only legal if none of them already depends on it.
            others = [g for g in input_groups if g != candidate]
            if any(forest.depends_on(other, candidate) for other in others):
                continue
            target = candidate
            break
        if target is None:
            return forest.make(False)

        # Merge the remaining memory-only producer groups into the target when
        # the merge cannot create a cycle through an outside group.  Compute
        # groups never absorb their producers (epilogue fusion only).
        for group in memory_groups:
            group = forest.find(group)
            if group == forest.find(target):
                continue
            if forest.has_compute[forest.find(target)] or forest.has_compute[group]:
                continue
            if forest.size[forest.find(target)] + forest.size[group] > self.max_group_size:
                continue
            if forest.path_through_outside(target, group):
                continue
            target = forest.union(forest.find(target), group)
        return forest.find(target)
