"""DNNFusion-style classification-based fusion baseline.

DNNFusion (Niu et al., PLDI'21) classifies operators by the mapping between
their input and output elements — One-to-One, One-to-Many, Many-to-One,
Reorganize, and Shuffle — and derives fusion legality from the *pair* of
classes instead of from per-operator rules.  Fusion seeds start at One-to-One
operators with the smallest intermediate result and grow greedily toward
predecessors and successors while the combined mapping stays fusable.

This reproduction implements the classification over the operator registry
and the legality table below; kernels are costed with the generic
auto-generated-kernel model (the TVM backend), since DNNFusion generates its
own fused code rather than calling vendor libraries for the fused groups.
"""

from __future__ import annotations

from ..backends import KernelBackend, tvm_backends
from ..ir.graph import Graph, Node
from ..ir.ops import OpKind
from .base import FusionBaseline

__all__ = ["DnnFusionBaseline", "mapping_class"]

#: DNNFusion's operator mapping classes.
ONE_TO_ONE = "one-to-one"
ONE_TO_MANY = "one-to-many"
MANY_TO_ONE = "many-to-one"
REORGANIZE = "reorganize"
MANY_TO_MANY = "many-to-many"  # compute operators (GEMM/conv)
OPAQUE = "opaque"

_CLASS_BY_OP = {
    "Resize": ONE_TO_MANY,
    "Expand": ONE_TO_MANY,
    "Pad": ONE_TO_MANY,
    "ReduceSum": MANY_TO_ONE,
    "ReduceMean": MANY_TO_ONE,
    "ReduceMax": MANY_TO_ONE,
    "MaxPool": MANY_TO_ONE,
    "AveragePool": MANY_TO_ONE,
    "GlobalAveragePool": MANY_TO_ONE,
    "Softmax": MANY_TO_ONE,
    "LayerNormalization": MANY_TO_ONE,
    "InstanceNormalization": MANY_TO_ONE,
    "GroupNormalization": MANY_TO_ONE,
    "BatchNormalization": ONE_TO_ONE,  # inference BN is a per-element affine
}

#: Legality of fusing a producer class with a consumer class (symmetric
#: entries are listed explicitly for clarity).
_FUSABLE_PAIRS = {
    (ONE_TO_ONE, ONE_TO_ONE),
    (ONE_TO_ONE, MANY_TO_ONE),
    (ONE_TO_ONE, ONE_TO_MANY),
    (ONE_TO_ONE, REORGANIZE),
    (REORGANIZE, ONE_TO_ONE),
    (REORGANIZE, REORGANIZE),
    (ONE_TO_MANY, ONE_TO_ONE),
    (MANY_TO_ONE, ONE_TO_ONE),
    (MANY_TO_MANY, ONE_TO_ONE),  # epilogue fusion into a compute kernel
}


def mapping_class(node: Node) -> str:
    """DNNFusion mapping class of one operator."""
    if node.op_type in _CLASS_BY_OP:
        return _CLASS_BY_OP[node.op_type]
    kind = node.spec.kind
    if kind in (OpKind.ELEMENTWISE, OpKind.COMPOSITE):
        return ONE_TO_ONE
    if kind is OpKind.LAYOUT:
        return REORGANIZE
    if kind is OpKind.REDUCTION:
        return MANY_TO_ONE
    if kind is OpKind.COMPUTE:
        return MANY_TO_MANY
    return OPAQUE


class DnnFusionBaseline(FusionBaseline):
    """Greedy seed-and-grow fusion driven by mapping-class legality."""

    name = "DNNFusion"

    def __init__(self, spec, backends=None, max_group_size: int = 24) -> None:
        self.max_group_size = max_group_size
        super().__init__(spec, backends)

    def default_backends(self) -> list[KernelBackend]:
        return tvm_backends()

    def group_operators(self, graph: Graph) -> list[list[str]]:
        order = graph.topological_order()
        position = {node.name: i for i, node in enumerate(order)}
        assigned: dict[str, int] = {}
        groups: list[list[str]] = []

        def intermediate_size(node: Node) -> int:
            return sum(graph.tensor_type(t).num_elements for t in node.outputs)

        # Seeds: One-to-One operators, smallest intermediate result first.
        seeds = sorted(
            (node for node in order if mapping_class(node) == ONE_TO_ONE),
            key=intermediate_size,
        )

        def try_fuse(seed_group: int, frontier: Node, candidate: Node, producer_first: bool) -> bool:
            if candidate.name in assigned:
                return False
            if len(groups[seed_group]) >= self.max_group_size:
                return False
            pair = (
                (mapping_class(candidate), mapping_class(frontier))
                if producer_first
                else (mapping_class(frontier), mapping_class(candidate))
            )
            if pair not in _FUSABLE_PAIRS:
                return False
            groups[seed_group].append(candidate.name)
            assigned[candidate.name] = seed_group
            return True

        for seed in seeds:
            if seed.name in assigned:
                continue
            group_index = len(groups)
            groups.append([seed.name])
            assigned[seed.name] = group_index
            # Grow toward successors, then predecessors, breadth-first.
            frontier = [seed]
            while frontier:
                current = frontier.pop(0)
                for succ in graph.successors(current):
                    if try_fuse(group_index, current, succ, producer_first=False):
                        frontier.append(succ)
                for pred in graph.predecessors(current):
                    if try_fuse(group_index, current, pred, producer_first=True):
                        frontier.append(pred)

        # Remaining operators (compute anchors, opaque ops, isolated layout
        # ops) each get their own kernel.
        for node in order:
            if node.name not in assigned:
                assigned[node.name] = len(groups)
                groups.append([node.name])

        # Order groups and their members topologically for a valid plan.
        for group in groups:
            group.sort(key=lambda name: position[name])
        groups.sort(key=lambda group: position[group[0]])
        return [group for group in groups if group]
