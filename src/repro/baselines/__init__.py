"""Rule-based operator-fusion baselines used in the paper's evaluation."""

from .base import FusionBaseline
from .dnnfusion import DnnFusionBaseline, mapping_class
from .greedy_fusion import GreedyFusionBaseline
from .tensorrt_fusion import TensorRTFusionBaseline
from .unfused import UnfusedBaseline

__all__ = [
    "FusionBaseline",
    "UnfusedBaseline",
    "GreedyFusionBaseline",
    "TensorRTFusionBaseline",
    "DnnFusionBaseline",
    "mapping_class",
    "baseline_suite",
]


def baseline_suite(spec, include_dnnfusion: bool = False) -> list[FusionBaseline]:
    """The baselines of Figure 6 (optionally plus DNNFusion)."""
    baselines: list[FusionBaseline] = [
        UnfusedBaseline(spec),
        GreedyFusionBaseline(spec),
        TensorRTFusionBaseline(spec),
    ]
    if include_dnnfusion:
        baselines.append(DnnFusionBaseline(spec))
    return baselines
