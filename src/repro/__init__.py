"""Korch reproduction: optimal kernel orchestration for tensor programs.

Public API quick reference
--------------------------
Build a model with :class:`repro.GraphBuilder` (or load one from
:mod:`repro.models`), then optimize it::

    from repro import optimize_model
    from repro.models import build_candy

    result = optimize_model(build_candy(), gpu="V100")
    print(result.latency_ms, result.num_kernels)

Lower-level entry points: :class:`repro.fission.FissionEngine` (operator
fission), :class:`repro.orchestration.KernelOrchestrationOptimizer` (kernel
identification + BLP), :mod:`repro.baselines` (PyTorch/TVM/TensorRT fusion
policies) and :mod:`repro.gpu` (the simulated GPU and its cost model).
"""

from .ir import DataType, Graph, GraphBuilder, Node, TensorType
from .fission import FissionEngine, apply_operator_fission
from .gpu import A100, H100, P100, V100, GpuSpec, get_gpu
from .orchestration import KernelOrchestrationOptimizer, OrchestrationStrategy
from .engine import (
    AdmissionConfig,
    AdmissionController,
    EngineStats,
    KorchEngine,
    KorchEngineConfig,
    KorchService,
    Priority,
    ServiceRequest,
)
from .metrics import MetricRegistry
from .pipeline import KorchConfig, KorchPipeline, KorchResult, optimize_model
from .primitives import Primitive, PrimitiveCategory, PrimitiveGraph

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "DataType",
    "TensorType",
    "Node",
    "Graph",
    "GraphBuilder",
    "Primitive",
    "PrimitiveCategory",
    "PrimitiveGraph",
    "FissionEngine",
    "apply_operator_fission",
    "GpuSpec",
    "get_gpu",
    "P100",
    "V100",
    "A100",
    "H100",
    "KernelOrchestrationOptimizer",
    "OrchestrationStrategy",
    "KorchConfig",
    "KorchPipeline",
    "KorchEngine",
    "KorchEngineConfig",
    "KorchService",
    "Priority",
    "ServiceRequest",
    "AdmissionConfig",
    "AdmissionController",
    "MetricRegistry",
    "EngineStats",
    "KorchResult",
    "optimize_model",
]
