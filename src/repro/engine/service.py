"""``KorchService``: an async, queued serving front-end over the engine.

``KorchEngine`` answers blocking calls; a serving deployment needs admission
and backpressure instead: requests arrive concurrently, carry priorities,
and callers want futures, not stalls.  ``KorchService`` provides that:

* ``submit(graph) -> ServiceRequest`` — a ``Future[KorchResult]``; requests
  queue by priority class (FIFO within a class) and are served by a small
  pool of request workers, each driving the shared engine (which in turn
  schedules partition tasks onto its executors).
* ``submit_many`` for batches, ``cancel`` for queued requests,
  ``drain()`` to quiesce gracefully, ``close()`` to shut down.
* per-request :class:`ServiceStats` — queue wait, run time, per-stage
  seconds, cache accounting — and an aggregate :class:`ServiceReport`
  embedding the service-level histogram summaries.
* an aggregate metrics surface (:mod:`repro.metrics`): queue-wait / run /
  per-stage latency histograms, queue depth sampled on submit and pop,
  rejection counters by cause — exported via :meth:`KorchService.metrics`
  (JSON) and :meth:`KorchService.metrics_text` (Prometheus text).

Overload control is layered:

* ``max_pending`` — a static bound on the effective pending count, beyond
  which ``submit`` raises :class:`ServiceOverloaded` (explicit, not an OOM).
* an optional :class:`~repro.engine.admission.AdmissionController` — feeds
  on observed queue waits and shrinks/grows the *effective* cap between
  configured bounds when the p99 queue wait violates the SLO.
* ``submit(..., deadline_s=...)`` — deadline-aware rejection: when the
  predicted queue wait (measured mean run time × requests ahead ÷ workers)
  already exceeds the caller's deadline, the request is rejected up front
  with :class:`ServiceDeadlineExceeded` instead of being served late.

Results are **bit-identical** to ``KorchEngine.optimize`` on the same
graph: the service adds queueing and bookkeeping, never a different code
path.

**In-flight request coalescing** (``coalesce=True``, the default): every
submission is keyed by the engine's canonical request key — a content hash
of graph structure, GPU spec, backend set and the result-determining config
subset, i.e. the plan-cache key, under which results are guaranteed
bit-identical.  While a request for a key is queued or running (the
*leader*), later submissions of the same key attach to it as *followers*:
they consume no queue slot, run zero engine work, and the leader's result
fans out to every waiting follower future on completion.  A follower
cancelling drops only itself — never the leader; a leader failing fails all
its followers with the same exception; a leader cancelled while queued
promotes its first live follower to leader so the rest still get served.
Per-follower :class:`ServiceStats` stay correct (``coalesced`` marker,
queue wait measured against the leader's progress), and coalesced hits are
counted in ``korch_service_coalesced_total`` / fan-out sizes in
``korch_service_coalesce_fanout``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import heapq
import itertools
import json
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from enum import IntEnum
from pathlib import Path
from typing import Callable, Sequence

from ..cache import CacheStore, SnapshotError, dump_snapshot, merge_snapshot
from ..ir.graph import Graph
from ..ir.serialization import graph_to_dict
from ..metrics import MetricRegistry
from .admission import AdmissionConfig, AdmissionController
from .config import KorchConfig
from .engine import KorchEngine
from .result import KorchResult

__all__ = [
    "Priority",
    "ServiceStats",
    "ServiceReport",
    "ServiceRequest",
    "ServiceClosed",
    "ServiceOverloaded",
    "ServiceDeadlineExceeded",
    "KorchService",
]


class Priority(IntEnum):
    """Request priority classes; lower values are served first."""

    HIGH = 0
    NORMAL = 1
    LOW = 2


class ServiceClosed(RuntimeError):
    """Submission rejected: the service is draining or closed."""


class ServiceOverloaded(RuntimeError):
    """Submission rejected: the pending queue is at the effective cap."""


class ServiceDeadlineExceeded(ServiceOverloaded):
    """Submission rejected: the predicted queue wait exceeds the deadline."""


@dataclass
class ServiceStats:
    """Per-request accounting, filled in as the request moves through.

    The ``*_at`` timestamps are Unix epoch seconds (``time.time``), so
    exports join cleanly with external traces; durations are computed from
    monotonic anchors and are immune to clock steps.
    """

    model: str
    priority: Priority
    #: "queued" → "running" → "done" | "failed" | "cancelled".
    status: str = "queued"
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    #: Seconds spent waiting in the service queue.
    queue_wait_s: float | None = None
    #: Seconds spent inside the engine.
    run_s: float | None = None
    #: The caller's queue-wait budget, when one was given to ``submit``.
    deadline_s: float | None = None
    #: Wall-clock seconds per engine stage (from the result).
    stage_seconds: dict[str, float] = field(default_factory=dict)
    plan_cache: str | None = None
    partitions_replayed: int | None = None
    profile_cache_hits: int | None = None
    backend_estimate_calls: int | None = None
    #: The request rode along on an identical in-flight request: zero engine
    #: work of its own; ``run_s`` measures the wait on the leader instead.
    coalesced: bool = False
    error: str | None = None
    #: Monotonic anchors for duration math (not part of the export).
    _submitted_pc: float = field(default=0.0, repr=False, compare=False)
    _started_pc: float = field(default=0.0, repr=False, compare=False)

    def as_dict(self) -> dict:
        return {
            "model": self.model,
            "priority": self.priority.name,
            "status": self.status,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "queue_wait_s": self.queue_wait_s,
            "run_s": self.run_s,
            "deadline_s": self.deadline_s,
            "stage_seconds": dict(self.stage_seconds),
            "plan_cache": self.plan_cache,
            "partitions_replayed": self.partitions_replayed,
            "profile_cache_hits": self.profile_cache_hits,
            "backend_estimate_calls": self.backend_estimate_calls,
            "coalesced": self.coalesced,
            "error": self.error,
        }


@dataclass
class ServiceReport:
    """Aggregate lifetime counters of one service.

    ``histograms`` carries the queue-wait / run / queue-depth summaries
    (count, mean, p50/p95/p99) at snapshot time; it is filled in by
    :attr:`KorchService.report` and empty on a bare instance.
    """

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    rejected: int = 0
    #: Requests answered by fanning out another request's result (followers
    #: delivered, successes and failures alike) — work the service shared.
    coalesced: int = 0
    max_queue_depth: int = 0
    histograms: dict[str, dict] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "rejected": self.rejected,
            "coalesced": self.coalesced,
            "max_queue_depth": self.max_queue_depth,
            "histograms": {name: dict(summary) for name, summary in self.histograms.items()},
        }


class ServiceRequest:
    """A submitted request: ``Future[KorchResult]`` plus its statistics.

    Implements the ``concurrent.futures.Future`` consumer protocol
    (``result``, ``exception``, ``done``, ``cancel``,
    ``add_done_callback``), so it drops into ``as_completed``-style code.
    """

    def __init__(
        self,
        graph: Graph,
        priority: Priority,
        service: "KorchService | None" = None,
        deadline_s: float | None = None,
    ) -> None:
        self.graph = graph
        self.stats = ServiceStats(
            model=graph.name,
            priority=priority,
            submitted_at=time.time(),
            deadline_s=deadline_s,
            _submitted_pc=time.perf_counter(),
        )
        self._future: Future = Future()
        self._service = service
        #: Whether the owning service has accounted this request's
        #: cancellation (guards double counting; mutated under its lock).
        self._cancel_accounted = False
        #: Coalescing state, all mutated under the owning service's lock:
        #: the canonical request key (leaders only), the follower list
        #: (``None`` = not a leader; emptied-and-closed at retire time),
        #: the leader this request rides on (followers only), and whether
        #: the group has been closed to new followers.
        self._coalesce_key: str | None = None
        self._followers: "list[ServiceRequest] | None" = None
        self._leader: "ServiceRequest | None" = None
        self._retired = False

    # ------------------------------------------------------- future protocol
    def result(self, timeout: float | None = None) -> KorchResult:
        return self._future.result(timeout)

    def exception(self, timeout: float | None = None) -> BaseException | None:
        return self._future.exception(timeout)

    def done(self) -> bool:
        return self._future.done()

    def running(self) -> bool:
        return self._future.running()

    def cancelled(self) -> bool:
        return self._future.cancelled()

    def cancel(self) -> bool:
        """Cancel the request if it has not started running.

        Takes effect immediately: the owning service discounts the entry
        from its pending accounting and aggregate report right away, rather
        than when a worker happens to pop the stale heap entry.
        """
        if self._future.cancel():
            self.stats.status = "cancelled"
            self.stats.finished_at = time.time()
            if self._service is not None:
                self._service._note_cancelled(self)
            return True
        return False

    def add_done_callback(self, fn: Callable[["ServiceRequest"], None]) -> None:
        self._future.add_done_callback(lambda _unused: fn(self))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ServiceRequest({self.graph.name!r}, {self.stats.status})"


class KorchService:
    """Queued, prioritized, future-returning serving layer over one engine.

    Either wraps an existing engine or owns a private one built from
    ``config``; a privately-built engine is closed with the service.

    ``workers`` bounds *requests* optimized concurrently — within each
    request the engine's own scheduler still parallelizes partitions, so
    total parallelism is the product of the two layers.

    ``admission`` (an :class:`~repro.engine.admission.AdmissionConfig` or a
    prebuilt controller) enables SLO-driven overload control: the effective
    pending cap then comes from the controller instead of ``max_pending``.

    ``metrics`` shares a :class:`~repro.metrics.MetricRegistry`; by default
    the service adopts the engine's registry (so engine/scheduler/cache
    metrics land in the same export) or creates a private one.

    ``coalesce`` (default on) enables in-flight request coalescing (see the
    module docstring); ``submit_many`` pre-groups duplicates within a batch
    regardless.  ``snapshot_path`` joins the shared cache tier: the file is
    merged into the engine's store at startup and re-exported on drain and
    close (plus every ``snapshot_interval_s`` seconds of serving, measured
    at request completions).
    """

    def __init__(
        self,
        engine: KorchEngine | None = None,
        config: KorchConfig | None = None,
        workers: int = 2,
        max_pending: int | None = None,
        admission: AdmissionConfig | AdmissionController | None = None,
        metrics: MetricRegistry | None = None,
        coalesce: bool = True,
        snapshot_path: "str | Path | None" = None,
        snapshot_interval_s: float | None = None,
    ) -> None:
        if engine is not None and config is not None:
            raise ValueError("pass either an engine or a config, not both")
        self._owns_engine = engine is None
        if metrics is not None:
            self.registry = metrics
        elif engine is not None and isinstance(getattr(engine, "metrics", None), MetricRegistry):
            self.registry = engine.metrics
        else:
            self.registry = MetricRegistry()
        self.engine = (
            engine
            if engine is not None
            else KorchEngine(config or KorchConfig(), metrics=self.registry)
        )
        self.max_pending = max_pending
        self.admission = (
            AdmissionController(admission) if isinstance(admission, AdmissionConfig) else admission
        )

        # The lock is re-entrant: ``close(cancel_pending=True)`` cancels
        # queued requests while holding it, and each cancellation re-enters
        # through ``_note_cancelled``.
        self._lock = threading.RLock()
        self._wakeup = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._queue: list[tuple[int, int, ServiceRequest]] = []  # heap
        #: Entries still in the heap whose request was already cancelled;
        #: they are skipped (and discounted here) when a worker pops them.
        self._cancelled_pending = 0
        self._seq = itertools.count()
        self._running = 0
        self._drainers = 0
        self._closing = False
        self._closed = False
        self._engine_closed = False
        self._report = ServiceReport()
        self._coalesce = bool(coalesce)
        #: key -> leader accepting followers (queued or running); entries
        #: are removed at retire time, before the leader's future settles,
        #: so no follower can attach after the fan-out snapshot.
        self._inflight: dict[str, ServiceRequest] = {}

        # Shared cache tier: merge the fleet's published snapshot on start,
        # republish on drain/close and (when an interval is set) periodically
        # as requests complete — timer-free, so an idle service writes
        # nothing and tests stay deterministic.
        self.snapshot_path = Path(snapshot_path) if snapshot_path is not None else None
        self.snapshot_interval_s = snapshot_interval_s
        self._snapshot_lock = threading.Lock()
        self._last_publish_pc = time.perf_counter()
        if self.snapshot_path is not None and self.snapshot_path.exists():
            store = getattr(self.engine, "store", None)
            if isinstance(store, CacheStore):
                try:
                    merge_snapshot(store, self.snapshot_path)
                except SnapshotError:
                    # An incompatible published snapshot must not stop the
                    # service from starting; the local store is healthy.
                    pass

        registry = self.registry
        self._queue_wait_hist = registry.histogram(
            "korch_service_queue_wait_seconds", "Seconds requests waited in the service queue"
        )
        self._run_hist = registry.histogram(
            "korch_service_run_seconds", "Seconds requests spent inside the engine"
        )
        self._stage_hist = registry.histogram(
            "korch_service_stage_seconds",
            "Per-engine-stage seconds of served requests",
            labelnames=("stage",),
        )
        self._depth_hist = registry.histogram(
            "korch_service_queue_depth",
            "Effective queue depth, sampled on submit and pop",
            buckets=(0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
        )
        self._depth_gauge = registry.gauge(
            "korch_service_queue_depth_current", "Effective queue depth right now"
        )
        self._requests_total = registry.counter(
            "korch_service_requests_total",
            "Requests by terminal outcome (submitted counts acceptance)",
            labelnames=("outcome",),
        )
        self._rejections_total = registry.counter(
            "korch_service_rejections_total", "Rejected submissions by cause",
            labelnames=("cause",),
        )
        self._cap_gauge = registry.gauge(
            "korch_service_effective_pending_cap",
            "Effective pending cap (admission-controlled when enabled)",
        )
        self._cap_adjustments = registry.counter(
            "korch_service_admission_adjustments_total",
            "Admission-controller cap changes by direction",
            labelnames=("direction",),
        )
        self._coalesced_total = registry.counter(
            "korch_service_coalesced_total",
            "Requests answered by fanning out an identical in-flight request",
        )
        self._fanout_hist = registry.histogram(
            "korch_service_coalesce_fanout",
            "Requests served per optimization when coalescing fanned out (leader included)",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
        )
        initial_cap = self.admission.cap if self.admission is not None else max_pending
        if initial_cap is not None:
            self._cap_gauge.set(initial_cap)

        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"korch-service-{index}", daemon=True
            )
            for index in range(max(1, int(workers)))
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------- api
    def submit(
        self,
        graph: Graph,
        priority: Priority = Priority.NORMAL,
        deadline_s: float | None = None,
    ) -> ServiceRequest:
        """Enqueue one model; returns a future resolving to its result.

        ``deadline_s`` is the caller's queue-wait budget: when the predicted
        wait (measured mean run time × requests ahead ÷ workers) already
        exceeds it, the request is rejected with
        :class:`ServiceDeadlineExceeded` instead of being served late.

        With coalescing enabled, a submission whose request key matches a
        queued or running request attaches to it as a follower instead of
        entering the queue: followers bypass the pending cap (they consume
        no capacity) but still face the deadline check — a follower can be
        rejected on deadline without disturbing its leader.
        """
        key = self._request_key(graph) if self._coalesce else None
        request = ServiceRequest(graph, Priority(priority), service=self, deadline_s=deadline_s)
        with self._lock:
            if self._closed or self._closing or self._drainers:
                self._reject_locked("closed")
                raise ServiceClosed("service is not accepting submissions")
            if key is not None:
                leader = self._inflight.get(key)
                if leader is not None and self._attach_locked(leader, request, deadline_s):
                    return request
            cap = self.admission.cap if self.admission is not None else self.max_pending
            if cap is not None and self._effective_pending_locked() >= cap:
                self._reject_locked("overloaded")
                raise ServiceOverloaded(f"pending queue is full ({cap} requests)")
            self._check_deadline_locked(deadline_s)
            heapq.heappush(self._queue, (int(request.stats.priority), next(self._seq), request))
            if key is not None:
                request._coalesce_key = key
                request._followers = []
                self._inflight[key] = request
            self._report.submitted += 1
            self._requests_total.labels(outcome="submitted").inc()
            depth = self._effective_pending_locked()
            self._report.max_queue_depth = max(self._report.max_queue_depth, depth)
            self._observe_depth_locked(depth)
            self._wakeup.notify()
        return request

    def submit_many(
        self,
        graphs: Sequence[Graph],
        priority: Priority = Priority.NORMAL,
        deadline_s: float | None = None,
    ) -> list[ServiceRequest]:
        """Enqueue a batch, pre-grouping duplicate graphs before the queue.

        Graphs within one batch that share a request key are submitted once;
        the duplicates attach to the batch's first occurrence as followers.
        This intra-batch coalescing is **always on** — even with
        ``coalesce=False`` only cross-submission coalescing is disabled, a
        caller handing the service the same graph twice in one batch never
        pays for it twice.
        """
        requests: list[ServiceRequest] = []
        batch_leaders: dict[str, ServiceRequest] = {}
        # Hold the (reentrant) service lock across the whole batch: a worker
        # can only retire a leader under this lock, so a fast completion —
        # e.g. a plan-cache hit — cannot strand later duplicates mid-batch.
        # Pre-grouping is thereby deterministic: one leader per unique key.
        with self._lock:
            for graph in graphs:
                key = self._request_key(graph)
                leader = batch_leaders.get(key) if key is not None else None
                if leader is not None:
                    follower = ServiceRequest(
                        graph, Priority(priority), service=self, deadline_s=deadline_s
                    )
                    if self._closed or self._closing or self._drainers:
                        self._reject_locked("closed")
                        raise ServiceClosed("service is not accepting submissions")
                    if self._attach_locked(leader, follower, deadline_s):
                        requests.append(follower)
                        continue
                    # The batch leader dropped out (e.g. cancelled): fall
                    # through to a full submission (the plan cache answers it).
                request = self.submit(graph, priority, deadline_s=deadline_s)
                if key is not None:
                    if request._followers is None and not request._retired:
                        # coalesce=False: make it a batch-scoped leader so
                        # later duplicates in this batch can still attach.
                        request._coalesce_key = key
                        request._followers = []
                    if request._followers is not None:
                        batch_leaders[key] = request
                requests.append(request)
        return requests

    def drain(self, timeout: float | None = None) -> bool:
        """Serve everything already accepted, rejecting new submissions
        meanwhile; returns whether the service quiesced within ``timeout``.
        The service accepts submissions again once every concurrent drainer
        has returned (and no close started meanwhile) — one drainer timing
        out never reopens intake under another still waiting.

        The cache snapshot is published on *every* drain — quiesced or not,
        and even when the drain served zero requests.  The export is an
        atomic whole-store dump, valid at any moment; an idle service that
        merged profiles at startup (or whose interval never elapsed, since
        periodic publishing is driven by request completions) would
        otherwise never share them with the fleet."""
        with self._lock:
            self._drainers += 1
            try:
                quiesced = self._idle.wait_for(self._quiescent_locked, timeout=timeout)
            finally:
                self._drainers -= 1
        self.publish_snapshot()
        return quiesced

    def close(self, cancel_pending: bool = False, timeout: float | None = None) -> bool:
        """Stop the service: optionally cancel queued requests, wait for
        in-flight ones, then shut the workers (and a privately-owned engine)
        down.  Idempotent.

        ``timeout`` bounds the *whole* close: one deadline covers the
        quiescence wait and every worker join.  When it expires with work
        still in flight, close returns ``False`` without marking the service
        closed and — crucially — without closing a privately-owned engine
        under running requests; intake stays shut and a later ``close`` can
        finish the job.  Returns ``True`` once fully closed.
        """
        deadline = None if timeout is None else time.monotonic() + timeout

        def remaining() -> float | None:
            if deadline is None:
                return None
            return max(0.0, deadline - time.monotonic())

        with self._lock:
            if not self._closed:
                self._closing = True
                if cancel_pending:
                    # Loop to a fixed point: cancelling a leader promotes its
                    # first live follower into the heap, which this close
                    # wants cancelled too.  Converges — every request is
                    # promoted at most once.
                    while True:
                        live = [e[2] for e in self._queue if not e[2].done()]
                        if not live:
                            break
                        for request in live:
                            request.cancel()  # lazily discounted; workers discard
                if not self._idle.wait_for(self._quiescent_locked, timeout=remaining()):
                    return False
                self._closed = True
                self._wakeup.notify_all()
        for worker in self._workers:
            worker.join(timeout=remaining())
        if any(worker.is_alive() for worker in self._workers):
            return False
        self.publish_snapshot()
        if self._owns_engine and not self._engine_closed:
            self._engine_closed = True
            self.engine.close()
        return True

    def publish_snapshot(self) -> int | None:
        """Export the engine's cache store to ``snapshot_path`` (atomic
        replace); returns the entry count, or ``None`` when the service has
        no snapshot path or no store to export.  Safe to call any time —
        drain and close call it automatically."""
        if self.snapshot_path is None:
            return None
        store = getattr(self.engine, "store", None)
        if not isinstance(store, CacheStore):
            return None
        with self._snapshot_lock:
            count = dump_snapshot(store, self.snapshot_path)
            self._last_publish_pc = time.perf_counter()
            return count

    def metrics(self) -> dict[str, dict]:
        """The JSON metrics export (service + engine + scheduler + caches)."""
        return self.registry.as_dict()

    def metrics_text(self) -> str:
        """The Prometheus text exposition of the shared registry."""
        return self.registry.render_prometheus()

    @property
    def report(self) -> ServiceReport:
        """A snapshot of the aggregate counters, with histogram summaries."""
        with self._lock:
            snapshot = dataclasses.replace(self._report)
        snapshot.histograms = {
            "queue_wait_s": self._queue_wait_hist.summary(),
            "run_s": self._run_hist.summary(),
            "queue_depth": self._depth_hist.summary(),
            "coalesce_fanout": self._fanout_hist.summary(),
        }
        return snapshot

    @property
    def pending(self) -> int:
        with self._lock:
            return self._effective_pending_locked()

    @property
    def active(self) -> int:
        with self._lock:
            return self._running

    def __enter__(self) -> "KorchService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- internals
    def _request_key(self, graph: Graph) -> str | None:
        """The canonical coalescing identity of ``graph`` on this engine.

        Prefers the engine's :meth:`KorchEngine.request_key` (the plan-cache
        key: structure + spec + backends + result-determining config);
        engines without one — duck-typed test doubles — fall back to a
        content hash of the serialized graph.  ``None`` (no coalescing) when
        the graph cannot be keyed at all.
        """
        engine_key = getattr(self.engine, "request_key", None)
        try:
            if engine_key is not None:
                return engine_key(graph)
            payload = json.dumps(graph_to_dict(graph), sort_keys=True)
        except Exception:
            return None
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def _check_deadline_locked(self, deadline_s: float | None) -> None:
        if deadline_s is None:
            return
        predicted = self._predicted_queue_wait_locked()
        if predicted > deadline_s:
            self._reject_locked("deadline")
            raise ServiceDeadlineExceeded(
                f"predicted queue wait {predicted:.3f}s exceeds "
                f"deadline {deadline_s:.3f}s"
            )

    def _attach_locked(
        self, leader: ServiceRequest, request: ServiceRequest, deadline_s: float | None
    ) -> bool:
        """Attach ``request`` as a follower of ``leader`` if its group is
        still open.  Applies the deadline check (raising, so a follower can
        be rejected without touching the leader) but not the pending cap —
        followers consume no queue capacity."""
        if leader._followers is None or leader._retired or leader.done():
            return False
        self._check_deadline_locked(deadline_s)
        request._leader = leader
        leader._followers.append(request)
        self._report.submitted += 1
        self._requests_total.labels(outcome="submitted").inc()
        return True

    def _retire_leader_locked(self, leader: ServiceRequest) -> list[ServiceRequest]:
        """Close ``leader``'s coalescing group: no follower can attach past
        this point.  Returns the followers awaiting its outcome."""
        leader._retired = True
        key = leader._coalesce_key
        if key is not None and self._inflight.get(key) is leader:
            del self._inflight[key]
        followers = leader._followers or []
        leader._followers = None
        return followers

    def _promote_followers_locked(self, leader: ServiceRequest) -> None:
        """A leader dropped out while queued: its first live follower takes
        over as leader (entering the queue), inheriting the rest."""
        followers = self._retire_leader_locked(leader)
        live = [f for f in followers if not f._future.cancelled()]
        if not live:
            return
        new_leader, rest = live[0], live[1:]
        new_leader._leader = None
        new_leader._coalesce_key = leader._coalesce_key
        new_leader._followers = rest
        for follower in rest:
            follower._leader = new_leader
        if self._coalesce and new_leader._coalesce_key is not None:
            self._inflight[new_leader._coalesce_key] = new_leader
        heapq.heappush(
            self._queue, (int(new_leader.stats.priority), next(self._seq), new_leader)
        )
        depth = self._effective_pending_locked()
        self._report.max_queue_depth = max(self._report.max_queue_depth, depth)
        self._observe_depth_locked(depth)
        self._wakeup.notify()

    def _deliver_follower(
        self,
        follower: ServiceRequest,
        leader_stats: ServiceStats,
        result: KorchResult | None = None,
        error: BaseException | None = None,
    ) -> bool:
        """Fan the leader's outcome out to one follower; returns whether it
        was delivered (``False``: the follower had already cancelled)."""
        if not follower._future.set_running_or_notify_cancel():
            return False
        now_pc = time.perf_counter()
        stats = follower.stats
        # The follower's work effectively started when the leader's did —
        # or at its own submission, if it attached to an already-running
        # leader (queue wait can't be negative).  Anchors are monotonic; a
        # follower without one counts as submitted at the leader's start,
        # and the clamps keep both durations non-negative regardless.
        submitted_pc = stats._submitted_pc or leader_stats._started_pc
        start_pc = max(submitted_pc, leader_stats._started_pc)
        stats._started_pc = start_pc
        stats.started_at = max(stats.submitted_at, leader_stats.started_at or 0.0)
        stats.queue_wait_s = max(0.0, start_pc - submitted_pc)
        stats.run_s = max(0.0, now_pc - start_pc)
        stats.finished_at = time.time()
        stats.coalesced = True
        self._queue_wait_hist.observe(stats.queue_wait_s)
        # No run/stage observations: followers did no engine work, and the
        # run histogram feeds the deadline predictor.
        if error is not None:
            stats.status = "failed"
            stats.error = repr(error)
            follower._future.set_exception(error)
        else:
            stats.status = "done"
            stats.stage_seconds = result.stage_seconds
            stats.plan_cache = "coalesced"
            stats.partitions_replayed = result.cache.partitions_replayed
            stats.profile_cache_hits = result.cache.profile_cache_hits
            stats.backend_estimate_calls = result.cache.backend_estimate_calls
            follower._future.set_result(result)
        return True

    def _fan_out(
        self,
        request: ServiceRequest,
        followers: list[ServiceRequest],
        result: KorchResult | None = None,
        error: BaseException | None = None,
    ) -> None:
        """Deliver the leader's outcome to its followers and account them."""
        delivered = failed = 0
        for follower in followers:
            if self._deliver_follower(follower, request.stats, result=result, error=error):
                delivered += 1
                if error is not None:
                    failed += 1
        if not delivered:
            return
        self._coalesced_total.inc(delivered)
        self._fanout_hist.observe(delivered + 1)
        outcome = "failed" if error is not None else "completed"
        self._requests_total.labels(outcome=outcome).inc(delivered)
        with self._lock:
            self._report.coalesced += delivered
            self._report.failed += failed
            self._report.completed += delivered - failed

    def _effective_pending_locked(self) -> int:
        return len(self._queue) - self._cancelled_pending

    def _quiescent_locked(self) -> bool:
        return self._effective_pending_locked() == 0 and self._running == 0

    def _observe_depth_locked(self, depth: int | None = None) -> None:
        depth = self._effective_pending_locked() if depth is None else depth
        self._depth_hist.observe(depth)
        self._depth_gauge.set(depth)

    def _reject_locked(self, cause: str) -> None:
        self._report.rejected += 1
        self._rejections_total.labels(cause=cause).inc()

    def _predicted_queue_wait_locked(self) -> float:
        """Expected queue wait of a request submitted right now: measured
        mean run time × requests ahead of it ÷ worker count.  Zero until
        the first request completes (no data, no rejection)."""
        completed = self._run_hist.count
        if completed == 0:
            return 0.0
        mean_run_s = self._run_hist.sum / completed
        ahead = self._effective_pending_locked() + self._running
        return mean_run_s * ahead / max(1, len(self._workers))

    def _note_cancelled(self, request: ServiceRequest) -> None:
        """A queued request was cancelled: account for it immediately (its
        heap entry is discarded lazily when a worker pops it).

        A *follower* cancelling only drops itself from its leader's group —
        the leader (and everyone else waiting on it) is untouched.  A
        *leader* cancelling promotes its first live follower into the queue
        so the group still gets served."""
        with self._lock:
            if request._cancel_accounted:
                return
            request._cancel_accounted = True
            self._report.cancelled += 1
            self._requests_total.labels(outcome="cancelled").inc()
            leader = request._leader
            if leader is not None:
                if leader._followers is not None and request in leader._followers:
                    leader._followers.remove(request)
                return
            if request._followers is not None:
                self._promote_followers_locked(request)
            self._cancelled_pending += 1
            self._observe_depth_locked()
            self._idle.notify_all()

    def _worker_loop(self) -> None:
        # Warm the engine's executors before serving: every worker thread
        # races here, and the engine's once-flag makes exactly one of them
        # pay the spawn cost.  Best-effort — a warm-up failure surfaces on
        # the first real request instead.
        warm = getattr(self.engine, "warm_up", None)
        if warm is not None:
            try:
                warm()
            except Exception:
                pass
        while True:
            with self._lock:
                while not self._queue and not self._closed:
                    self._wakeup.wait()
                if self._closed and not self._queue:
                    return
                _, _, request = heapq.heappop(self._queue)
                if not request._future.set_running_or_notify_cancel():
                    # Cancelled while queued; drop the stale entry.  The
                    # normal path already accounted it at cancel() time.
                    if request._cancel_accounted:
                        self._cancelled_pending -= 1
                    else:  # future cancelled behind the service's back
                        request._cancel_accounted = True
                        self._report.cancelled += 1
                        self._requests_total.labels(outcome="cancelled").inc()
                        if request._followers is not None:
                            self._promote_followers_locked(request)
                    self._observe_depth_locked()
                    self._idle.notify_all()
                    continue
                self._running += 1
                self._observe_depth_locked()
            self._serve(request)
            with self._lock:
                self._running -= 1
                self._idle.notify_all()
            self._maybe_publish_snapshot()

    def _maybe_publish_snapshot(self) -> None:
        """Periodic publish hook, driven by request completions."""
        if self.snapshot_path is None or self.snapshot_interval_s is None:
            return
        if time.perf_counter() - self._last_publish_pc >= self.snapshot_interval_s:
            self.publish_snapshot()

    def _observe_admission(self, queue_wait_s: float) -> None:
        controller = self.admission
        if controller is None:
            return
        decision = controller.observe(queue_wait_s)
        if decision is not None:
            self._cap_adjustments.labels(direction=decision).inc()
        self._cap_gauge.set(controller.cap)

    def _serve(self, request: ServiceRequest) -> None:
        stats = request.stats
        stats._started_pc = time.perf_counter()
        stats.started_at = time.time()
        # Durations come from the monotonic submit anchor, never the epoch
        # timestamps — a clock step between submit and start must not warp
        # the wait.  A request built without an anchor (duck-typed doubles,
        # deserialized stats) counts as submitted when it started; the clamp
        # keeps the histogram-fed value non-negative no matter the anchors.
        submitted_pc = stats._submitted_pc or stats._started_pc
        stats.queue_wait_s = max(0.0, stats._started_pc - submitted_pc)
        stats.status = "running"
        self._queue_wait_hist.observe(stats.queue_wait_s)
        self._observe_admission(stats.queue_wait_s)
        try:
            result = self.engine.optimize(request.graph)
        except BaseException as exc:  # noqa: BLE001 - routed into the future
            stats.status = "failed"
            stats.error = repr(exc)
            stats.finished_at = time.time()
            stats.run_s = time.perf_counter() - stats._started_pc
            self._run_hist.observe(stats.run_s)
            with self._lock:
                self._report.failed += 1
                followers = self._retire_leader_locked(request)
            self._requests_total.labels(outcome="failed").inc()
            request._future.set_exception(exc)
            # The leader's failure propagates: every follower fails with
            # the same exception (they asked for the same computation).
            self._fan_out(request, followers, error=exc)
            return
        stats.finished_at = time.time()
        stats.run_s = time.perf_counter() - stats._started_pc
        stats.status = "done"
        stats.stage_seconds = result.stage_seconds
        stats.plan_cache = result.cache.plan_cache
        stats.partitions_replayed = result.cache.partitions_replayed
        stats.profile_cache_hits = result.cache.profile_cache_hits
        stats.backend_estimate_calls = result.cache.backend_estimate_calls
        self._run_hist.observe(stats.run_s)
        for stage, seconds in stats.stage_seconds.items():
            self._stage_hist.labels(stage=stage).observe(seconds)
        with self._lock:
            self._report.completed += 1
            # Close the group before settling the future: once the result
            # is visible no new follower can have attached.
            followers = self._retire_leader_locked(request)
        self._requests_total.labels(outcome="completed").inc()
        request._future.set_result(result)
        self._fan_out(request, followers, result=result)
