"""``KorchService``: an async, queued serving front-end over the engine.

``KorchEngine`` answers blocking calls; a serving deployment needs admission
and backpressure instead: requests arrive concurrently, carry priorities,
and callers want futures, not stalls.  ``KorchService`` provides that:

* ``submit(graph) -> ServiceRequest`` — a ``Future[KorchResult]``; requests
  queue by priority class (FIFO within a class) and are served by a small
  pool of request workers, each driving the shared engine (which in turn
  schedules partition tasks onto its executors).
* ``submit_many`` for batches, ``cancel`` for queued requests,
  ``drain()`` to quiesce gracefully, ``close()`` to shut down.
* per-request :class:`ServiceStats` — queue wait, run time, per-stage
  seconds, cache accounting — and an aggregate :class:`ServiceReport`.

Results are **bit-identical** to ``KorchEngine.optimize`` on the same
graph: the service adds queueing and bookkeeping, never a different code
path.  ``max_pending`` bounds the queue; beyond it ``submit`` raises
:class:`ServiceOverloaded` so overload is explicit, not an OOM.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Callable, Sequence

from ..ir.graph import Graph
from .config import KorchConfig
from .engine import KorchEngine
from .result import KorchResult

__all__ = [
    "Priority",
    "ServiceStats",
    "ServiceReport",
    "ServiceRequest",
    "ServiceClosed",
    "ServiceOverloaded",
    "KorchService",
]


class Priority(IntEnum):
    """Request priority classes; lower values are served first."""

    HIGH = 0
    NORMAL = 1
    LOW = 2


class ServiceClosed(RuntimeError):
    """Submission rejected: the service is draining or closed."""


class ServiceOverloaded(RuntimeError):
    """Submission rejected: the pending queue is at ``max_pending``."""


@dataclass
class ServiceStats:
    """Per-request accounting, filled in as the request moves through."""

    model: str
    priority: Priority
    #: "queued" → "running" → "done" | "failed" | "cancelled".
    status: str = "queued"
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    #: Seconds spent waiting in the service queue.
    queue_wait_s: float | None = None
    #: Seconds spent inside the engine.
    run_s: float | None = None
    #: Wall-clock seconds per engine stage (from the result).
    stage_seconds: dict[str, float] = field(default_factory=dict)
    plan_cache: str | None = None
    partitions_replayed: int | None = None
    profile_cache_hits: int | None = None
    backend_estimate_calls: int | None = None
    error: str | None = None

    def as_dict(self) -> dict:
        return {
            "model": self.model,
            "priority": self.priority.name,
            "status": self.status,
            "queue_wait_s": self.queue_wait_s,
            "run_s": self.run_s,
            "stage_seconds": dict(self.stage_seconds),
            "plan_cache": self.plan_cache,
            "partitions_replayed": self.partitions_replayed,
            "profile_cache_hits": self.profile_cache_hits,
            "backend_estimate_calls": self.backend_estimate_calls,
            "error": self.error,
        }


@dataclass
class ServiceReport:
    """Aggregate lifetime counters of one service."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    rejected: int = 0
    max_queue_depth: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "rejected": self.rejected,
            "max_queue_depth": self.max_queue_depth,
        }


class ServiceRequest:
    """A submitted request: ``Future[KorchResult]`` plus its statistics.

    Implements the ``concurrent.futures.Future`` consumer protocol
    (``result``, ``exception``, ``done``, ``cancel``,
    ``add_done_callback``), so it drops into ``as_completed``-style code.
    """

    def __init__(self, graph: Graph, priority: Priority) -> None:
        self.graph = graph
        self.stats = ServiceStats(
            model=graph.name, priority=priority, submitted_at=time.perf_counter()
        )
        self._future: Future = Future()

    # ------------------------------------------------------- future protocol
    def result(self, timeout: float | None = None) -> KorchResult:
        return self._future.result(timeout)

    def exception(self, timeout: float | None = None) -> BaseException | None:
        return self._future.exception(timeout)

    def done(self) -> bool:
        return self._future.done()

    def running(self) -> bool:
        return self._future.running()

    def cancelled(self) -> bool:
        return self._future.cancelled()

    def cancel(self) -> bool:
        """Cancel the request if it has not started running."""
        if self._future.cancel():
            self.stats.status = "cancelled"
            self.stats.finished_at = time.perf_counter()
            return True
        return False

    def add_done_callback(self, fn: Callable[["ServiceRequest"], None]) -> None:
        self._future.add_done_callback(lambda _unused: fn(self))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ServiceRequest({self.graph.name!r}, {self.stats.status})"


class KorchService:
    """Queued, prioritized, future-returning serving layer over one engine.

    Either wraps an existing engine or owns a private one built from
    ``config``; a privately-built engine is closed with the service.

    ``workers`` bounds *requests* optimized concurrently — within each
    request the engine's own scheduler still parallelizes partitions, so
    total parallelism is the product of the two layers.
    """

    def __init__(
        self,
        engine: KorchEngine | None = None,
        config: KorchConfig | None = None,
        workers: int = 2,
        max_pending: int | None = None,
    ) -> None:
        if engine is not None and config is not None:
            raise ValueError("pass either an engine or a config, not both")
        self._owns_engine = engine is None
        self.engine = engine if engine is not None else KorchEngine(config or KorchConfig())
        self.max_pending = max_pending
        self.report = ServiceReport()

        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._queue: list[tuple[int, int, ServiceRequest]] = []  # heap
        self._seq = itertools.count()
        self._running = 0
        self._draining = False
        self._closing = False
        self._closed = False
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"korch-service-{index}", daemon=True
            )
            for index in range(max(1, int(workers)))
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------- api
    def submit(self, graph: Graph, priority: Priority = Priority.NORMAL) -> ServiceRequest:
        """Enqueue one model; returns a future resolving to its result."""
        request = ServiceRequest(graph, Priority(priority))
        with self._lock:
            if self._closed or self._draining:
                self.report.rejected += 1
                raise ServiceClosed("service is not accepting submissions")
            if self.max_pending is not None and len(self._queue) >= self.max_pending:
                self.report.rejected += 1
                raise ServiceOverloaded(
                    f"pending queue is full ({self.max_pending} requests)"
                )
            heapq.heappush(self._queue, (int(request.stats.priority), next(self._seq), request))
            self.report.submitted += 1
            self.report.max_queue_depth = max(self.report.max_queue_depth, len(self._queue))
            self._wakeup.notify()
        return request

    def submit_many(
        self, graphs: Sequence[Graph], priority: Priority = Priority.NORMAL
    ) -> list[ServiceRequest]:
        return [self.submit(graph, priority) for graph in graphs]

    def drain(self, timeout: float | None = None) -> bool:
        """Serve everything already accepted, rejecting new submissions
        meanwhile; returns whether the service quiesced within ``timeout``.
        The service accepts submissions again after a completed drain."""
        with self._lock:
            self._draining = True
            try:
                return self._idle.wait_for(
                    lambda: not self._queue and self._running == 0, timeout=timeout
                )
            finally:
                # Reopen intake only if no close() started meanwhile — a
                # returning drain must never re-admit work under a closer
                # that is still waiting for quiescence.
                if not self._closing:
                    self._draining = False

    def close(self, cancel_pending: bool = False, timeout: float | None = None) -> None:
        """Stop the service: optionally cancel queued requests, then wait
        for in-flight ones and shut the workers down.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closing = True
            self._draining = True
            if cancel_pending:
                remaining = []
                for entry in self._queue:
                    request = entry[2]
                    if request.cancel():
                        self.report.cancelled += 1
                    else:  # pragma: no cover - race with a starting worker
                        remaining.append(entry)
                self._queue = remaining
                heapq.heapify(self._queue)
            self._idle.wait_for(
                lambda: not self._queue and self._running == 0, timeout=timeout
            )
            self._closed = True
            self._wakeup.notify_all()
        for worker in self._workers:
            worker.join(timeout=timeout)
        if self._owns_engine:
            self.engine.close()

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._queue)

    @property
    def active(self) -> int:
        with self._lock:
            return self._running

    def __enter__(self) -> "KorchService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- internals
    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._closed:
                    self._wakeup.wait()
                if self._closed and not self._queue:
                    return
                _, _, request = heapq.heappop(self._queue)
                if not request._future.set_running_or_notify_cancel():
                    # Cancelled while queued; account for it and move on.
                    self.report.cancelled += 1
                    self._idle.notify_all()
                    continue
                self._running += 1
            self._serve(request)
            with self._lock:
                self._running -= 1
                self._idle.notify_all()

    def _serve(self, request: ServiceRequest) -> None:
        stats = request.stats
        stats.started_at = time.perf_counter()
        stats.queue_wait_s = stats.started_at - stats.submitted_at
        stats.status = "running"
        try:
            result = self.engine.optimize(request.graph)
        except BaseException as exc:  # noqa: BLE001 - routed into the future
            stats.status = "failed"
            stats.error = repr(exc)
            stats.finished_at = time.perf_counter()
            stats.run_s = stats.finished_at - stats.started_at
            with self._lock:
                self.report.failed += 1
            request._future.set_exception(exc)
            return
        stats.finished_at = time.perf_counter()
        stats.run_s = stats.finished_at - stats.started_at
        stats.status = "done"
        stats.stage_seconds = result.stage_seconds
        stats.plan_cache = result.cache.plan_cache
        stats.partitions_replayed = result.cache.partitions_replayed
        stats.profile_cache_hits = result.cache.profile_cache_hits
        stats.backend_estimate_calls = result.cache.backend_estimate_calls
        with self._lock:
            self.report.completed += 1
        request._future.set_result(result)
