"""The long-lived Korch engine: many models, one set of shared state.

``KorchPipeline`` builds backends, profiler caches and a worker pool from
scratch for every model — fine for reproducing figures, wrong for a serving
system that amortizes tuning across requests.  :class:`KorchEngine` owns that
state for its whole lifetime:

* the **backend set** and GPU spec,
* the **persistent cache store** (or a private in-memory store when no
  ``cache_dir`` is configured, so profiles still flow between models),
* the **profile caches** feeding every partition's :class:`KernelProfiler`,
* **one worker pool**, onto which ``optimize_many`` interleaves partitions
  from different models.

``optimize(graph)`` runs one model through the staged flow
(:mod:`repro.engine.stages`); ``optimize_many([graphs], max_concurrency=...)``
schedules the union of all models' partitions onto the shared executors.
Results are bit-identical to serial per-model runs — profiles are
deterministic and the solver sees identical inputs — while structurally
identical kernels appearing in *different* models are profiled once,
surfaced as ``EngineStats.cross_model_profile_reuses``.

Concurrency is delegated to the pluggable scheduler/executor core
(:mod:`repro.engine.scheduler`).  Each partition becomes a three-task chain
— ``prep`` (fission + graph optimization), ``identify`` (plan replay, memo
lookup or candidate enumeration), ``finish`` (profile + solve + assemble) —
and the scheduler dispatches those chains with an admission cap and
per-model fairness.  Later stages carry lower priority values, so in-flight
partitions drain before new ones are admitted.  With
``KorchEngineConfig(executor="process")`` the GIL-bound prologue runs on a
process pool (:mod:`repro.engine.scheduler.worker`), which is what finally
parallelizes pure-Python candidate enumeration across cores.
"""

from __future__ import annotations

import dataclasses
import itertools
import os
import threading
from dataclasses import dataclass, field
from typing import Sequence

from ..backends import (
    KernelBackend,
    TuningTimeModel,
    TuningTimeReport,
    default_korch_backends,
)
from ..cache import (
    CacheStore,
    KernelPlan,
    ModelPlan,
    PartitionPlan,
    PersistentProfileCache,
    PlanCache,
    backend_fingerprint,
    export_snapshot,
    plan_key,
)
from ..fission import FissionEngine
from ..gpu.profiler import KernelProfiler, ProfilerStats
from ..ir.graph import Graph
from ..ir.serialization import graph_to_dict
from ..metrics import MetricRegistry
from ..orchestration import KernelOrchestrationOptimizer
from ..partition import GraphPartitioner, Partition
from ..runtime.executable import ModelExecutable
from ..transforms import PrimitiveGraphOptimizer
from .config import KorchConfig
from .context import StageContext
from .memo import DominanceMemo, IdentifyMemo, SolveMemo
from .registry import shared_store
from .result import CacheReport, KorchResult, PartitionResult
from .scheduler import (
    Dep,
    Executor,
    ProcessExecutor,
    Scheduler,
    SerialExecutor,
    Task,
    ThreadExecutor,
    run_partition_prologue,
)
from .scheduler.worker import PrologueResult, install_profile_snapshot
from .stages import (
    DEFAULT_STAGES,
    FissionStage,
    GraphOptStage,
    IdentifyStage,
    Stage,
    run_stages,
)

__all__ = ["EngineStats", "KorchEngine"]

#: Upper bound on reuse-tracking bookkeeping; correctness is unaffected when
#: it trips, only the reuse counter stops attributing very old entries.
_MAX_TRACKED_OWNERS = 1_000_000


@dataclass
class EngineStats:
    """Lifetime statistics of one :class:`KorchEngine`."""

    #: Models served (including plan-cache memory hits).
    models_optimized: int = 0
    #: Partition optimization tasks executed (not answered from memory).
    partitions_optimized: int = 0
    #: Partitions replayed from a stored plan instead of re-solved.
    partitions_replayed: int = 0
    #: ``optimize`` calls answered entirely from the in-process result tier.
    plan_memory_hits: int = 0
    #: Models whose every partition replayed from the durable plan store.
    plan_disk_hits: int = 0
    #: Profile-cache hits on entries first written while optimizing a
    #: *different* model on this engine — the cross-model amortization.
    cross_model_profile_reuses: int = 0
    #: Identify-stage enumerations answered from a memo (engine-side or a
    #: process worker's) instead of being re-run.
    identify_memo_hits: int = 0
    #: Merged profiler statistics across every model the engine optimized.
    profiler: ProfilerStats = field(default_factory=ProfilerStats)

    def as_dict(self) -> dict[str, int]:
        return {
            "models_optimized": self.models_optimized,
            "partitions_optimized": self.partitions_optimized,
            "partitions_replayed": self.partitions_replayed,
            "plan_memory_hits": self.plan_memory_hits,
            "plan_disk_hits": self.plan_disk_hits,
            "cross_model_profile_reuses": self.cross_model_profile_reuses,
            "identify_memo_hits": self.identify_memo_hits,
            **{f"profiler_{k}": v for k, v in self.profiler.as_dict().items()},
        }


def _rewrite_verifier(config: KorchConfig):
    """The per-rewrite check hook for ``verify_level="full"``, else ``None``.

    Module-level (and resolved from the config alone) so the process-pool
    prologue worker installs the identical hook from its shipped config.
    """
    if config.engine.verify_level != "full":
        return None
    from ..analysis.verify import checked_rewrite

    return checked_rewrite


class _ReuseTrackingCache:
    """Profile-cache wrapper attributing each entry to the engine run that
    first wrote it, so hits from a *different* run count as cross-model
    reuses.  Duck-types :class:`PersistentProfileCache` for the profiler."""

    def __init__(self, inner: PersistentProfileCache, engine: "KorchEngine", run_id: int) -> None:
        self._inner = inner
        self._engine = engine
        self._run_id = run_id

    def key(self, signature: tuple) -> str:
        return self._inner.key(signature)

    def get(self, signature: tuple):
        key = self._inner.key(signature)
        hit, profile, tuned = self._inner.get(signature, key=key)
        if hit:
            self._engine._note_profile_hit(key, self._run_id)
        return hit, profile, tuned

    def put(self, signature: tuple, profile, tuned: bool = True) -> None:
        key = self._inner.key(signature)
        self._engine._note_profile_write(key, self._run_id)
        self._inner.put(signature, profile, tuned=tuned, key=key)

    def for_backends(self, backends: Sequence) -> "_ReuseTrackingCache":
        return _ReuseTrackingCache(
            self._inner.for_backends(backends), self._engine, self._run_id
        )


@dataclass
class _ModelRun:
    """Book-keeping for one model inside ``optimize_many``."""

    graph: Graph
    run_id: int
    plan_cache_key: str | None = None
    stored_plan: ModelPlan | None = None
    partitions: list[Partition] = field(default_factory=list)
    #: Per-partition stored plans to replay (``None`` entries = cold).
    plans: list[PartitionPlan | None] = field(default_factory=list)
    tuning_model: TuningTimeModel = field(default_factory=TuningTimeModel)
    outcomes: list[tuple[PartitionResult, ProfilerStats]] = field(default_factory=list)
    result: KorchResult | None = None
    #: An earlier run in the same ``optimize_many`` call with the same plan
    #: key; this run copies its result instead of re-optimizing.
    duplicate_of: "_ModelRun | None" = None


class KorchEngine:
    """Long-lived, multi-model optimization engine over the staged flow.

    Use as a context manager (or call :meth:`close`) to release the worker
    pool and any privately-owned store::

        with KorchEngine(KorchConfig(gpu="A100")) as engine:
            results = engine.optimize_many([model_a, model_b], max_concurrency=4)

    ``share_profiles=False`` restores the per-model isolation of the old
    pipeline when no ``cache_dir`` is configured (used by the compatibility
    wrapper so existing behavior is preserved exactly).
    """

    #: Lifetime worker-pool size; per-call concurrency is bounded separately.
    _POOL_SIZE_CAP = 32

    def __init__(
        self,
        config: KorchConfig | None = None,
        backends: Sequence[KernelBackend] | None = None,
        share_profiles: bool = True,
        metrics: MetricRegistry | None = None,
    ) -> None:
        self.config = config or KorchConfig()
        if self.config.engine.executor not in ("serial", "thread", "process"):
            raise ValueError(
                f"unknown executor kind {self.config.engine.executor!r}; "
                "expected 'serial', 'thread' or 'process'"
            )
        self.spec = self.config.resolve_gpu()
        self.backends = list(
            backends
            if backends is not None
            else default_korch_backends(self.config.enable_tensorrt_backend)
        )
        self.partitioner = GraphPartitioner(self.config.partition)
        self.fission = FissionEngine()
        self.stats = EngineStats()
        #: Shared metric registry (service/scheduler/cache metrics land in
        #: the same export).  One engine per registry: the export-time
        #: collector writes engine-wide gauges by fixed names.
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self._stage_hist = self.metrics.histogram(
            "korch_engine_stage_seconds",
            "Per-partition wall-clock seconds by engine stage",
            labelnames=("stage",),
        )
        self._kernel_hist = self.metrics.histogram(
            "korch_runtime_kernel_seconds",
            "Per-kernel wall-clock execution seconds by kernel library and planned backend",
            labelnames=("library", "backend"),
        )
        self._executions_total = self.metrics.counter(
            "korch_runtime_executions_total",
            "Assembled plans executed through the runtime, by model",
            labelnames=("model",),
        )
        self._verifications_total = self.metrics.counter(
            "korch_runtime_verifications_total",
            "Runtime verifications against the reference executor, by outcome",
            labelnames=("outcome",),
        )
        self.metrics.add_collector(self._collect_metrics)

        self._lock = threading.Lock()
        # Executor management has its own lock: creating/growing executors
        # must never contend with the stats lock that in-flight tasks take.
        self._executor_lock = threading.Lock()
        self._profile_owners: dict[str, int] = {}
        self._run_ids = itertools.count()
        self._serial_executor = SerialExecutor()
        self._thread_executor: ThreadExecutor | None = None
        self._process_executor: ProcessExecutor | None = None
        #: The engine-wide scheduler (thread/process modes): one long-lived
        #: instance spans every concurrent ``optimize_many`` call, so
        #: admission, priorities and per-model round-robin see the true
        #: global queue instead of per-call islands.
        self._scheduler: Scheduler | None = None
        self._warm_lock = threading.Lock()
        self._warmed = False
        self.identify_memo = IdentifyMemo(self.config.engine.identify_memo_entries)
        self.dominance_memo = DominanceMemo(self.config.engine.dominance_memo_entries)
        self.solve_memo = SolveMemo(self.config.engine.solve_memo_entries)
        self._owns_store = False
        self._closed = False

        self.store: CacheStore | None = None
        self.plan_cache: PlanCache | None = None
        self.profile_cache: PersistentProfileCache | None = None
        self._graph_opt_cache: PersistentProfileCache | None = None
        if self.config.cache_dir is not None:
            self.store, plan_cache = shared_store(
                self.config.cache_dir,
                self.config.cache_max_entries,
                self.config.engine.max_open_stores,
            )
            if self.config.enable_plan_cache:
                self.plan_cache = plan_cache
        elif share_profiles:
            # No durable directory: still share profiles (and plans) across
            # this engine's lifetime through a private in-memory store.
            self.store = CacheStore(None, max_entries=self.config.cache_max_entries)
            self._owns_store = True
            if self.config.enable_plan_cache:
                self.plan_cache = PlanCache(self.store)
        if self.store is not None:
            self.profile_cache = PersistentProfileCache(self.store, self.spec, self.backends)
            # The graph optimizer profiles singleton kernels with the default
            # backend set; give it a cache context keyed on that set.
            self._graph_opt_cache = PersistentProfileCache(
                self.store, self.spec, default_korch_backends()
            )

    # ------------------------------------------------------------------ api
    def optimize(self, graph: Graph) -> KorchResult:
        """Optimize one model end to end (serial unless ``num_workers`` > 1)."""
        return self.optimize_many([graph])[0]

    def optimize_many(
        self, graphs: Sequence[Graph], max_concurrency: int | None = None
    ) -> list[KorchResult]:
        """Optimize several models, interleaving their partitions on the pool.

        ``max_concurrency`` bounds concurrently-running partition tasks
        across *all* models (``None`` defers to ``config.num_workers``,
        0 = one per CPU).  Results are returned in input order and are
        bit-identical to optimizing each graph by itself.
        """
        if self._closed:
            raise RuntimeError("KorchEngine is closed")
        runs: list[_ModelRun] = []
        primary_by_key: dict[str, _ModelRun] = {}
        for graph in graphs:
            run = self._prepare(graph)
            if run.result is None and run.plan_cache_key is not None:
                primary = primary_by_key.get(run.plan_cache_key)
                if primary is not None:
                    # Identical graph earlier in this batch: optimize once,
                    # fan the result out (the serial equivalent would have
                    # answered the repeat from the memory tier).
                    run.duplicate_of = primary
                else:
                    primary_by_key[run.plan_cache_key] = run
            runs.append(run)

        pending = [run for run in runs if run.result is None and run.duplicate_of is None]
        num_partitions = sum(len(run.partitions) for run in pending)
        workers = self._resolve_workers(max_concurrency, num_partitions)
        if num_partitions:
            tasks, finish_keys = self._build_tasks(pending)
            scheduler = self._scheduler_for(workers)
            results = self._run_batch(scheduler, tasks)
            for run in pending:
                run.outcomes = [results[key] for key in finish_keys[run.run_id]]
        for run in pending:
            run.result = self._assemble(run, workers)
        for run in runs:
            if run.result is None and run.duplicate_of is not None:
                with self._lock:
                    self.stats.plan_memory_hits += 1
                run.result = dataclasses.replace(
                    run.duplicate_of.result,
                    cache=dataclasses.replace(
                        run.duplicate_of.result.cache, plan_cache="memory-hit"
                    ),
                )
        return [run.result for run in runs]

    def execute(
        self,
        result: KorchResult,
        feeds: dict | None = None,
        library=None,
        verify: bool = False,
        tolerance: float = 1e-4,
        measure: bool = False,
        warmup: int = 1,
        repeats: int = 3,
        measured_backend=None,
    ):
        """Run an optimized plan through the execution runtime.

        Walks ``result.executable`` kernel by kernel with
        :class:`~repro.runtime.executor.PlanExecutor`, feeding per-kernel
        wall-clock times into the engine's metrics.  ``verify=True`` checks
        the executed outputs against the reference executor;
        ``measure=True`` additionally times every kernel (``warmup`` +
        ``repeats`` trimmed-mean runs), ingests the timings into a
        :class:`~repro.backends.MeasuredBackend` (``measured_backend`` or a
        fresh one) and — when the engine has a cache store — writes them
        into the persistent profile cache under the measured backend's
        fingerprint, where a measured-backend engine re-ranks plans from
        them.  Returns the :class:`~repro.runtime.executor.ExecutionReport`
        (with ``.measurement``/``.measured_backend`` attached when
        measuring).
        """
        from ..backends.measured import MeasuredBackend
        from ..cache import PersistentProfileCache as _ProfileCache
        from ..runtime.executor import PlanExecutor
        from ..runtime.library import resolve_library

        lib = resolve_library(library)
        lib_name = getattr(lib, "name", type(lib).__name__)

        def on_kernel(execution) -> None:
            self._kernel_hist.labels(
                library=lib_name, backend=execution.backend
            ).observe(execution.wall_s)

        executor = PlanExecutor(result, library=lib, on_kernel=on_kernel)
        report = executor.run(feeds=feeds)
        self._executions_total.labels(model=result.graph.name).inc()
        if verify:
            report.verification = executor.verify(feeds=feeds, tolerance=tolerance)
            outcome = "pass" if report.verification.equivalent else "fail"
            self._verifications_total.labels(outcome=outcome).inc()
        if measure:
            measurement = executor.measure(feeds=feeds, warmup=warmup, repeats=repeats)
            backend = measured_backend if measured_backend is not None else MeasuredBackend()
            backend.ingest(measurement)
            if self.store is not None:
                cache = _ProfileCache(self.store, self.spec, [backend])
                backend.write_profiles(cache)
            report.measurement = measurement
            report.measured_backend = backend
        return report

    def close(self) -> None:
        """Release the scheduler, executors and any privately-owned store."""
        self._closed = True
        with self._executor_lock:
            scheduler, self._scheduler = self._scheduler, None
            thread_exec, self._thread_executor = self._thread_executor, None
            process_exec, self._process_executor = self._process_executor, None
        if scheduler is not None:
            # Queued tasks never start; in-flight ones settle before the
            # executors below are torn out from under them.
            scheduler.close(wait=True, cancel_pending=True)
        if thread_exec is not None:
            thread_exec.shutdown(wait=True)
        if process_exec is not None:
            process_exec.shutdown(wait=True)
        if self._owns_store and self.store is not None:
            self.store.close()

    def __enter__(self) -> "KorchEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------ model prep
    def _prepare(self, graph: Graph) -> _ModelRun:
        run = _ModelRun(graph=graph, run_id=next(self._run_ids))
        with self._lock:
            self.stats.models_optimized += 1

        if self.plan_cache is not None:
            run.plan_cache_key = plan_key(
                graph_to_dict(graph),
                self.spec,
                backend_fingerprint(self.backends),
                self.config.fingerprint(),
            )
            memoized = self.plan_cache.get_result(run.plan_cache_key)
            if memoized is not None:
                with self._lock:
                    self.stats.plan_memory_hits += 1
                run.result = dataclasses.replace(
                    memoized,
                    cache=dataclasses.replace(memoized.cache, plan_cache="memory-hit"),
                )
                return run
            run.stored_plan = self.plan_cache.load(run.plan_cache_key)

        run.partitions = self.partitioner.partition(graph)
        if run.stored_plan is not None and len(run.stored_plan.partitions) != len(run.partitions):
            run.stored_plan = None  # stale partitioning; re-optimize from scratch

        # One tuning-time model per model run: structurally identical kernels
        # appearing in *different* partitions are tuned once, which is how
        # the paper's TVM database amortizes Table 2's tuning hours.
        run.plans = (
            list(run.stored_plan.partitions)
            if run.stored_plan is not None
            else [None] * len(run.partitions)
        )
        return run

    # ------------------------------------------------------------ partitions
    def _make_context(
        self,
        partition: Partition,
        plan: PartitionPlan | None,
        run: _ModelRun,
        with_graph_optimizer: bool = True,
    ) -> StageContext:
        """A stage context with fresh collaborators for one partition.

        Self-contained (fresh orchestration optimizer per context) so
        partitions from any model can run on concurrent workers; shared
        state is limited to the thread-safe caches.
        """
        profile_cache = (
            _ReuseTrackingCache(self.profile_cache, self, run.run_id)
            if self.profile_cache is not None
            else None
        )
        optimizer = KernelOrchestrationOptimizer(
            self.spec,
            backends=self.backends,
            identifier_config=self.config.identifier,
            solver_method=self.config.solver_method,
            solver_time_limit_s=self.config.solver_time_limit_s,
            solver_mip_rel_gap=self.config.solver_mip_rel_gap,
            solver_config=self.config.solver_config(),
            persistent_cache=profile_cache,
            tuning_model=run.tuning_model,
        )
        graph_optimizer = None
        if with_graph_optimizer and self.config.enable_graph_optimizer:
            # Fresh graph optimizer per partition task: its cost-proxy
            # profiler is not tuning-authoritative, and a fresh instance
            # keeps concurrent workers from sharing mutable profiler state.
            graph_opt_cache = (
                _ReuseTrackingCache(self._graph_opt_cache, self, run.run_id)
                if self._graph_opt_cache is not None
                else None
            )
            profiler = KernelProfiler(
                self.spec,
                persistent_cache=graph_opt_cache,
                tuning_authoritative=False,
            )
            graph_optimizer = PrimitiveGraphOptimizer(
                self.spec,
                config=self.config.graph_optimizer,
                profiler=profiler,
                verifier=_rewrite_verifier(self.config),
            )

        return StageContext(
            partition=partition,
            config=self.config,
            spec=self.spec,
            fission=self.fission,
            optimizer=optimizer,
            graph_optimizer=graph_optimizer,
            plan=plan,
            identify_memo=self.identify_memo if self.identify_memo.enabled else None,
            dominance_memo=self.dominance_memo if self.dominance_memo.enabled else None,
            solve_memo=self.solve_memo if self.solve_memo.enabled else None,
        )

    def stages(self) -> Sequence[Stage]:
        """The stage sequence; override to instrument or replace stages."""
        return DEFAULT_STAGES

    def _stage_split(self) -> tuple[tuple[Stage, ...], tuple[Stage, ...], tuple[Stage, ...]]:
        """Split :meth:`stages` into (prologue, identify, epilogue) groups."""
        stages = tuple(self.stages())
        for position, stage in enumerate(stages):
            if stage.name == "identify":
                return stages[:position], stages[position : position + 1], stages[position + 1 :]
        return stages, (), ()

    # ------------------------------------------------------------ task graph
    def _uses_default_prologue(self) -> bool:
        """Whether :meth:`stages` still matches the flow the process worker
        hard-codes.  A subclass that replaced or extended the pre-profile
        stages falls back to parent-side execution, so the executor setting
        never changes *what* is computed — only where."""
        prologue, identify, _ = self._stage_split()
        return (
            len(prologue) == 2
            and type(prologue[0]) is FissionStage
            and type(prologue[1]) is GraphOptStage
            and len(identify) == 1
            and type(identify[0]) is IdentifyStage
        )

    def _build_tasks(self, pending: Sequence[_ModelRun]) -> tuple[list[Task], dict[int, list[str]]]:
        """The scheduler task graph: a prep → identify → finish chain per
        partition.  Later stages get lower priority values so partitions
        drain depth-first; ``model_id`` keeps dispatch fair across models."""
        use_process = (
            self.config.engine.executor == "process" and self._uses_default_prologue()
        )
        tasks: list[Task] = []
        finish_keys: dict[int, list[str]] = {}
        for run in pending:
            keys: list[str] = []
            for index, (partition, plan) in enumerate(zip(run.partitions, run.plans)):
                base = f"r{run.run_id}p{index}"
                prep_key, identify_key, finish_key = (
                    f"{base}:prep", f"{base}:identify", f"{base}:finish",
                )
                if use_process:
                    # The GIL-bound prologue ships to a process worker as a
                    # pure function of picklable inputs; enumeration is
                    # skipped when a stored plan makes replay likely.
                    tasks.append(Task(
                        key=prep_key,
                        fn=run_partition_prologue,
                        args=(partition, self.config, self.spec, plan is None),
                        kind="cpu",
                        model_id=run.run_id,
                        priority=2,
                    ))
                    tasks.append(Task(
                        key=identify_key,
                        fn=self._task_absorb_prologue,
                        args=(Dep(prep_key), partition, plan, run),
                        deps=(prep_key,),
                        model_id=run.run_id,
                        priority=1,
                    ))
                else:
                    tasks.append(Task(
                        key=prep_key,
                        fn=self._task_prologue,
                        args=(partition, plan, run),
                        model_id=run.run_id,
                        priority=2,
                    ))
                    tasks.append(Task(
                        key=identify_key,
                        fn=self._task_identify,
                        args=(Dep(prep_key),),
                        deps=(prep_key,),
                        model_id=run.run_id,
                        priority=1,
                    ))
                tasks.append(Task(
                    key=finish_key,
                    fn=self._task_finish,
                    args=(Dep(identify_key),),
                    deps=(identify_key,),
                    model_id=run.run_id,
                    priority=0,
                ))
                keys.append(finish_key)
            finish_keys[run.run_id] = keys
        return tasks, finish_keys

    def _task_prologue(
        self, partition: Partition, plan: PartitionPlan | None, run: _ModelRun
    ) -> StageContext:
        ctx = self._make_context(partition, plan, run)
        prologue, _, _ = self._stage_split()
        return run_stages(ctx, prologue, observe=self._observe_stage)

    def _task_identify(self, ctx: StageContext) -> StageContext:
        _, identify, _ = self._stage_split()
        ctx = run_stages(ctx, identify, observe=self._observe_stage)
        if ctx.identify_memo_hit:
            with self._lock:
                self.stats.identify_memo_hits += 1
        return ctx

    def _task_absorb_prologue(
        self,
        payload: PrologueResult,
        partition: Partition,
        plan: PartitionPlan | None,
        run: _ModelRun,
    ) -> StageContext:
        """Fold a process worker's prologue back into a parent-side context.

        The worker has no view of the engine's caches, so its profile-cache
        writes are replayed here (through the reuse-tracking wrapper, exactly
        as if a parent-side cost-proxy profiler had written them) and its
        memo hits are folded into the engine statistics.
        """
        ctx = self._make_context(partition, plan, run, with_graph_optimizer=False)
        ctx.pg = payload.pg
        ctx.fission_report = payload.fission_report
        ctx.optimizer_report = payload.optimizer_report
        ctx.candidate_specs = payload.specs
        ctx.identifier_report = payload.report
        ctx.worker_profiler_stats = payload.profiler_stats
        for name, seconds in payload.timings.items():
            ctx.timings[name] = ctx.timings.get(name, 0.0) + seconds
            self._observe_stage(name, seconds)  # worker-side stage time
        if payload.cache_writes and self._graph_opt_cache is not None:
            tracked = _ReuseTrackingCache(self._graph_opt_cache, self, run.run_id)
            for signature, profile, tuned in payload.cache_writes:
                # Replay exactly what a parent-side cost-proxy profiler would
                # have done: consult the cache first, write only on a miss.
                # An unconditional put would demote entries the profile stage
                # already promoted to tuned=True, re-charging their tuning
                # time on the next model and skewing Table 2 accounting.
                hit, _, _ = tracked.get(signature)
                if not hit:
                    tracked.put(signature, profile, tuned=tuned)
        if payload.memo_hit:
            with self._lock:
                self.stats.identify_memo_hits += 1
        # Replay / fallback enumeration (stale plan) still happen here; a
        # worker-enumerated context passes straight through.
        return self._task_identify(ctx)

    def _task_finish(self, ctx: StageContext) -> tuple[PartitionResult, ProfilerStats]:
        _, _, epilogue = self._stage_split()
        ctx = run_stages(ctx, epilogue, observe=self._observe_stage)
        stats = ctx.optimizer.profiler_stats
        if ctx.graph_optimizer is not None:
            stats.merge(ctx.graph_optimizer.profiler.stats)
        if ctx.worker_profiler_stats is not None:
            stats.merge(ctx.worker_profiler_stats)
        return ctx.result, stats

    # -------------------------------------------------------------- assembly
    def _assemble(self, run: _ModelRun, num_workers: int) -> KorchResult:
        results = [outcome[0] for outcome in run.outcomes]
        cache = self._cache_report(run, results, num_workers)
        model_executable = ModelExecutable(run.graph.name, [r.executable for r in results])

        # A fully-replayed run never profiled the non-selected candidates, so
        # its own tuning model is nearly empty; report the cold run's stored
        # statistics instead, keeping Table 2 numbers stable warm or cold.
        tuning = run.tuning_model.report
        if cache.partitions_replayed == len(results) and run.stored_plan is not None:
            stored_tuning = (
                TuningTimeReport.from_payload(run.stored_plan.tuning)
                if run.stored_plan.tuning is not None
                else None
            )
            if stored_tuning is not None:
                tuning = stored_tuning

        result = KorchResult(
            graph=run.graph,
            spec=self.spec,
            partitions=results,
            executable=model_executable,
            tuning=tuning,
            cache=cache,
        )
        if run.plan_cache_key is not None:
            if cache.partitions_replayed < len(results):
                # Cold or partially-replayed run: (re)store the full plan.
                plan = self._plan_of(results)
                plan.backends = backend_fingerprint(self.backends)
                if cache.partitions_replayed == 0:
                    plan.tuning = run.tuning_model.report.as_payload()
                elif run.stored_plan is not None:
                    # Partial replay: this run's report is incomplete; keep
                    # whatever full-run report the stored plan carried.
                    plan.tuning = run.stored_plan.tuning
                self.plan_cache.save(run.plan_cache_key, plan)
            self.plan_cache.put_result(run.plan_cache_key, result)
        with self._lock:
            self.stats.partitions_optimized += len(results)
            self.stats.partitions_replayed += cache.partitions_replayed
            if cache.plan_cache == "disk-hit":
                self.stats.plan_disk_hits += 1
            self.stats.profiler.merge(cache.profiler)
        return result

    def _cache_report(
        self, run: _ModelRun, results: list[PartitionResult], num_workers: int
    ) -> CacheReport:
        profiler = ProfilerStats()
        for _, stats in run.outcomes:
            profiler.merge(stats)
        replayed = sum(1 for r in results if r.replayed)
        if self.plan_cache is None:
            status = "off"
        elif replayed == len(results) and (run.stored_plan is not None or not results):
            status = "disk-hit"
        else:
            status = "miss"
        return CacheReport(
            plan_cache=status,
            partitions_replayed=replayed,
            profiler=profiler,
            store=self.store.stats if self.store is not None else None,
            num_workers=num_workers,
        )

    @staticmethod
    def _plan_of(results: list[PartitionResult]) -> ModelPlan:
        """Serialize the solved strategies into a replayable plan."""
        partitions = []
        for result in results:
            strategy = result.orchestration.strategy
            kernels = [
                KernelPlan(
                    node_names=sorted(kernel.node_names),
                    external_inputs=list(kernel.external_inputs),
                    outputs=list(kernel.outputs),
                )
                for kernel in strategy.kernels
            ]
            partitions.append(
                PartitionPlan(
                    kernels=kernels,
                    objective_s=strategy.objective_s,
                    solver_status=strategy.solver_status,
                    solver_method=strategy.solver_method,
                    num_candidates=result.orchestration.num_candidates,
                )
            )
        return ModelPlan(partitions=partitions)

    # ------------------------------------------------------------- scheduling
    def _resolve_workers(self, max_concurrency: int | None, num_tasks: int) -> int:
        if max_concurrency is None:
            return self.config.resolve_num_workers(num_tasks)
        workers = max_concurrency if max_concurrency > 0 else (os.cpu_count() or 1)
        return max(1, min(workers, num_tasks))

    @property
    def scheduler(self) -> Scheduler | None:
        """The engine-wide scheduler (``None`` until first use, and always
        ``None`` in serial mode, which schedules inline per call)."""
        with self._executor_lock:
            return self._scheduler

    def _scheduler_for(self, workers: int) -> Scheduler:
        """The scheduler one ``optimize_many`` call submits its batch to.

        ``executor="serial"`` keeps the historical inline semantics: a fresh
        per-call scheduler over the serial executor, zero pool overhead, and
        execution on the calling thread.  Thread and process modes share
        **one engine-wide scheduler** across every concurrent call — service
        requests land in a single ready queue, so priorities and per-model
        round-robin arbitrate globally and the admission cap bounds true
        total in-flight work.  The cap and the thread pool only ever grow
        (never starving an already-admitted wide batch); process mode adds
        the ``"cpu"`` executor for prologue tasks and widens the cap so
        enumeration can use every process worker.
        """
        engine_cfg = self.config.engine
        if engine_cfg.executor == "serial":
            return Scheduler(
                {"default": self._serial_executor},
                admission_cap=engine_cfg.admission_cap,
                metrics=self.metrics,
            )
        use_process = engine_cfg.executor == "process"
        cap = engine_cfg.admission_cap if engine_cfg.admission_cap is not None else workers
        with self._executor_lock:
            if self._closed:
                raise RuntimeError("KorchEngine is closed")
            if self._thread_executor is None:
                self._thread_executor = ThreadExecutor(
                    workers, cap=self._POOL_SIZE_CAP, thread_name_prefix="korch-engine"
                )
            else:
                self._thread_executor.ensure(workers)
            executors: dict[str, Executor] = {"default": self._thread_executor}
            if use_process:
                if self._process_executor is None:
                    self._process_executor = ProcessExecutor(
                        engine_cfg.process_workers, engine_cfg.process_start_method
                    )
                executors["cpu"] = self._process_executor
                if engine_cfg.admission_cap is None:
                    cap = max(cap, self._process_executor.workers)
            if self._scheduler is None:
                self._scheduler = Scheduler(
                    executors, admission_cap=cap, metrics=self.metrics
                )
            else:
                for kind, executor in executors.items():
                    self._scheduler.executors.setdefault(kind, executor)
            scheduler = self._scheduler
        scheduler.set_admission_cap(cap)
        return scheduler

    def _run_batch(self, scheduler: Scheduler, tasks: list[Task]) -> dict[str, object]:
        """Run one call's task batch on a (possibly shared) scheduler.

        Mirrors :meth:`Scheduler.run` — wait for every task, raise the first
        failure in submission order — but with batch-scoped cleanup instead
        of closing the scheduler: on the way out, this batch's queued tasks
        are cancelled, its in-flight ones are waited for (nothing races the
        raise), and its settled keys are retired so a long-lived scheduler
        stays bounded.  Other callers' batches are untouched — one failing
        request never poisons concurrent ones.
        """
        from concurrent.futures import CancelledError, wait as wait_futures

        keys = [task.key for task in tasks]
        futures = scheduler.submit(tasks)
        try:
            for future in futures.values():
                try:
                    future.result()
                except (CancelledError, Exception):
                    # Task failures re-raise in submission order below; the
                    # waiter's own KeyboardInterrupt/SystemExit propagate.
                    pass
            for task in tasks:
                future = futures[task.key]
                if future.cancelled():
                    raise CancelledError(f"task {task.key!r} was cancelled")
                error = future.exception()
                if error is not None:
                    raise error
            return {key: future.result() for key, future in futures.items()}
        finally:
            for key in keys:
                scheduler.cancel(key)  # queued-only; settled/running are no-ops
            wait_futures(list(futures.values()))
            scheduler.forget(keys)

    def request_key(self, graph: Graph) -> str:
        """Canonical identity of an optimization request on this engine.

        The plan-cache key: a content hash of the graph structure, GPU spec,
        backend set and the result-determining config subset
        (:meth:`KorchConfig.fingerprint`).  Two graphs with equal keys are
        guaranteed bit-identical results, which is what makes the key safe
        as the service tier's coalescing identity.  Available whether or not
        a plan cache is configured.
        """
        return plan_key(
            graph_to_dict(graph),
            self.spec,
            backend_fingerprint(self.backends),
            self.config.fingerprint(),
        )

    def warm_up(self, refresh: bool = False) -> bool:
        """Start the process pool's workers eagerly (no-op in thread mode),
        keeping worker spawn cost off the first request's critical path.

        When the engine has a cache store with profile entries, a snapshot
        of the newest ``worker_snapshot_entries`` of them rides along on the
        warm-up broadcast, so every worker starts with the parent's profile
        knowledge (see :class:`~repro.engine.scheduler.worker._SnapshotProfileCache`).

        Warms **exactly once** per engine no matter how many service threads
        call it concurrently: the first caller broadcasts, later callers wait
        for it and return ``False`` (the first returns ``True``).  Pass
        ``refresh=True`` after warming the cache to re-broadcast a fresh
        snapshot — cheap, and it replaces the previous one.
        """
        engine_cfg = self.config.engine
        if engine_cfg.executor != "process":
            return False
        with self._warm_lock:
            if self._warmed and not refresh:
                return False
            with self._executor_lock:
                if self._closed:
                    raise RuntimeError("KorchEngine is closed")
                if self._process_executor is None:
                    self._process_executor = ProcessExecutor(
                        engine_cfg.process_workers, engine_cfg.process_start_method
                    )
                executor = self._process_executor
            snapshot: dict[str, dict] = {}
            if self.store is not None and engine_cfg.worker_snapshot_entries > 0:
                snapshot = export_snapshot(self.store, engine_cfg.worker_snapshot_entries)
            if snapshot:
                executor.warm_up(install_profile_snapshot, (snapshot,))
            else:
                executor.warm_up()
            self._warmed = True
            return True

    # --------------------------------------------------------------- metrics
    def _observe_stage(self, name: str, seconds: float) -> None:
        self._stage_hist.labels(stage=name).observe(seconds)

    def _collect_metrics(self) -> None:
        """Export-time collector: snapshot engine statistics (memo and
        plan/profile hit counters) and the cache store's hit/miss/eviction
        accounting into gauges, so the hot paths stay uninstrumented."""
        with self._lock:
            stats = self.stats.as_dict()
        for name, value in stats.items():
            self.metrics.gauge(f"korch_engine_{name}").set(value)
        if self.store is not None:
            for name, value in self.store.stats.as_dict().items():
                self.metrics.gauge(f"korch_cache_store_{name}").set(value)
        if self.plan_cache is not None:
            self.metrics.gauge("korch_cache_plan_entries").set(len(self.plan_cache))
        if self.profile_cache is not None:
            self.metrics.gauge("korch_cache_profile_entries").set(len(self.profile_cache))

    # ------------------------------------------------------- reuse tracking
    def _note_profile_write(self, key: str, run_id: int) -> None:
        with self._lock:
            if len(self._profile_owners) < _MAX_TRACKED_OWNERS:
                self._profile_owners.setdefault(key, run_id)

    def _note_profile_hit(self, key: str, run_id: int) -> None:
        with self._lock:
            owner = self._profile_owners.get(key)
            if owner is not None and owner != run_id:
                self.stats.cross_model_profile_reuses += 1
