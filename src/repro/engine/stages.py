"""The engine's composable stages.

Each stage implements the uniform contract ``run(ctx) -> ctx``: it reads the
artifacts earlier stages left on the :class:`~repro.engine.context.StageContext`
and writes its own.  ``run_stages`` executes a sequence of stages and records
per-stage wall-clock time into ``ctx.timings``, which surfaces as the
``stage_*_s`` keys of :meth:`repro.engine.result.KorchResult.summary`.

The default sequence reproduces the paper's Figure 1 flow for one partition:

``FissionStage``     operator fission → primitive graph
``GraphOptStage``    TASO-style primitive-graph substitutions (optional)
``IdentifyStage``    candidate enumeration + pruning (Algorithm 1, first half);
                     also the plan-replay shortcut — a valid stored plan fills
                     ``ctx.orchestration`` directly and the next two stages skip
``ProfileStage``     candidate pricing through the kernel profiler/caches
``SolveStage``       BLP solve + segmentation-cover guard → strategy
``AssembleStage``    executable generation → :class:`PartitionResult`

Stages are stateless; everything partition-specific lives on the context, so
one stage instance can serve concurrent partitions.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

from ..orchestration import KernelIdentifierReport
from ..runtime.executable import Executable
from .context import StageContext
from .result import PartitionResult

__all__ = [
    "Stage",
    "FissionStage",
    "GraphOptStage",
    "IdentifyStage",
    "ProfileStage",
    "SolveStage",
    "AssembleStage",
    "DEFAULT_STAGES",
    "run_stages",
]


class Stage:
    """One step of the per-partition flow: ``run(ctx) -> ctx``."""

    name: str = "stage"

    def run(self, ctx: StageContext) -> StageContext:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class FissionStage(Stage):
    """Operator fission: partition graph → primitive graph."""

    name = "fission"

    def run(self, ctx: StageContext) -> StageContext:
        ctx.pg, ctx.fission_report = ctx.fission.run(ctx.partition.graph)
        if ctx.config.engine.verify_level == "full":
            # Imported lazily: verification is opt-in debug tooling and the
            # default path must not load the analysis package.
            from ..analysis.verify import checked_fission

            checked_fission(ctx.partition.graph, ctx.pg)
        return ctx


class GraphOptStage(Stage):
    """Primitive-graph optimizer (TASO-style substitutions), when enabled."""

    name = "graph_opt"

    def run(self, ctx: StageContext) -> StageContext:
        if ctx.graph_optimizer is not None:
            ctx.pg, ctx.optimizer_report = ctx.graph_optimizer.optimize(ctx.pg)
        return ctx


class IdentifyStage(Stage):
    """Candidate-kernel enumeration — or plan replay when a stored plan fits.

    Replay belongs here because a valid plan *is* an identification result:
    it names exactly the kernels to build, making enumeration, profiling of
    non-selected candidates, and the BLP solve unnecessary.  An invalid plan
    (stale shape, corrupted payload) falls through to cold enumeration.

    Enumeration itself is answered in preference order: specs already on the
    context (a process-pool prologue ran them), then the engine's identify
    memo (an equal-structure partition enumerated before), then fresh
    enumeration — which is recorded in the memo for the next repeat.
    """

    name = "identify"

    def run(self, ctx: StageContext) -> StageContext:
        if ctx.plan is not None:
            orchestration = ctx.optimizer.replay(ctx.pg, ctx.plan)
            if orchestration is not None:
                ctx.orchestration = orchestration
                return ctx
        if ctx.candidate_specs is not None and ctx.identifier_report is not None:
            return ctx  # enumerated elsewhere (process prologue)
        memo = ctx.identify_memo
        if memo is not None:
            cached = memo.get(ctx.pg, ctx.config.identifier)
            if cached is not None:
                ctx.candidate_specs, ctx.identifier_report = cached
                ctx.identify_memo_hit = True
                return ctx
        report = KernelIdentifierReport()
        ctx.candidate_specs = ctx.optimizer.identifier.enumerate_specs(ctx.pg, report)
        ctx.identifier_report = report
        if memo is not None:
            memo.put(ctx.pg, ctx.config.identifier, ctx.candidate_specs, report)
        return ctx


class ProfileStage(Stage):
    """Price every candidate spec through the profiler and its caches."""

    name = "profile"

    def run(self, ctx: StageContext) -> StageContext:
        if ctx.orchestration is not None:  # replayed: nothing left to profile
            return ctx
        ctx.candidates = ctx.optimizer.identifier.profile_specs(
            ctx.pg, ctx.candidate_specs or [], ctx.identifier_report
        )
        return ctx


class SolveStage(Stage):
    """Solve the orchestration BLP (with the segmentation-cover guard)."""

    name = "solve"

    def run(self, ctx: StageContext) -> StageContext:
        if ctx.orchestration is not None:  # replayed: already solved
            return ctx
        ctx.orchestration = ctx.optimizer.solve(
            ctx.pg, ctx.candidates or [], ctx.identifier_report
        )
        return ctx


class AssembleStage(Stage):
    """Stitch the selected kernels into an executable and final result."""

    name = "assemble"

    def run(self, ctx: StageContext) -> StageContext:
        if ctx.config.engine.verify_level in ("plan", "full"):
            self._verify_plan(ctx)
        ctx.executable = Executable.from_strategy(ctx.orchestration.strategy)
        ctx.result = PartitionResult(
            partition=ctx.partition,
            fission_report=ctx.fission_report,
            optimizer_report=ctx.optimizer_report,
            orchestration=ctx.orchestration,
            executable=ctx.executable,
            timings=ctx.timings,
            diagnostics=list(ctx.diagnostics),
        )
        return ctx

    @staticmethod
    def _verify_plan(ctx: StageContext) -> None:
        """Statically check the assembled strategy (``verify_level`` debug
        mode); ERROR findings raise, WARNING/INFO ride along on the result."""
        from ..diagnostics import DiagnosticError, errors
        from ..analysis.verify import verify_strategy

        strategy = ctx.orchestration.strategy
        if not strategy.pg.nodes:
            return
        found = verify_strategy(
            strategy.pg,
            strategy.kernels,
            location=f"{ctx.partition.graph.name}",
        )
        ctx.diagnostics.extend(found)
        bad = errors(found)
        if bad:
            raise DiagnosticError(
                f"plan verification failed for partition {ctx.partition.graph.name!r}",
                bad,
            )


#: The Figure 1 flow; replace or extend to customize the engine.
DEFAULT_STAGES: tuple[Stage, ...] = (
    FissionStage(),
    GraphOptStage(),
    IdentifyStage(),
    ProfileStage(),
    SolveStage(),
    AssembleStage(),
)


def run_stages(
    ctx: StageContext,
    stages: Sequence[Stage] = DEFAULT_STAGES,
    observe: Callable[[str, float], None] | None = None,
) -> StageContext:
    """Run ``stages`` in order, recording per-stage wall-clock time.

    ``observe(stage_name, seconds)`` is called once per stage when given —
    the hook the engine uses to feed its per-stage latency histograms
    without the stages knowing about metrics.  It must stay ``None`` on
    process-pool workers (the prologue ships timings back instead).
    """
    for stage in stages:
        started = time.perf_counter()
        ctx = stage.run(ctx)
        elapsed = time.perf_counter() - started
        ctx.timings[stage.name] = ctx.timings.get(stage.name, 0.0) + elapsed
        if observe is not None:
            observe(stage.name, elapsed)
    return ctx
