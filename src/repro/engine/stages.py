"""The engine's composable stages.

Each stage implements the uniform contract ``run(ctx) -> ctx``: it reads the
artifacts earlier stages left on the :class:`~repro.engine.context.StageContext`
and writes its own.  ``run_stages`` executes a sequence of stages and records
per-stage wall-clock time into ``ctx.timings``, which surfaces as the
``stage_*_s`` keys of :meth:`repro.engine.result.KorchResult.summary`.

The default sequence reproduces the paper's Figure 1 flow for one partition:

``FissionStage``     operator fission → primitive graph
``GraphOptStage``    TASO-style primitive-graph substitutions (optional)
``IdentifyStage``    candidate enumeration + pruning (Algorithm 1, first half);
                     also the plan-replay shortcut — a valid stored plan fills
                     ``ctx.orchestration`` directly and the next two stages skip
``ProfileStage``     candidate pricing through the kernel profiler/caches
``SolveStage``       BLP solve + segmentation-cover guard → strategy
``AssembleStage``    executable generation → :class:`PartitionResult`

Stages are stateless; everything partition-specific lives on the context, so
one stage instance can serve concurrent partitions.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

from ..orchestration import KernelIdentifierReport
from ..orchestration.identifier import spec_key
from ..runtime.executable import Executable
from .context import StageContext
from .result import PartitionResult

__all__ = [
    "Stage",
    "FissionStage",
    "GraphOptStage",
    "IdentifyStage",
    "ProfileStage",
    "SolveStage",
    "AssembleStage",
    "ExecuteStage",
    "DEFAULT_STAGES",
    "run_stages",
]


class Stage:
    """One step of the per-partition flow: ``run(ctx) -> ctx``."""

    name: str = "stage"

    def run(self, ctx: StageContext) -> StageContext:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def _profile_key(ctx: StageContext) -> str:
    """``pg_profile_key`` of the context's graph, computed once and shared."""
    if ctx.profile_key is None:
        from .memo import pg_profile_key

        ctx.profile_key = pg_profile_key(ctx.pg, ctx.config.identifier)
    return ctx.profile_key


def _dominance_skip(ctx: StageContext):
    """Spec keys the dominance memo says this partition need not price."""
    if ctx.dominance_memo is None:
        return None
    return ctx.dominance_memo.get(_profile_key(ctx))


def _filter_dominated(ctx: StageContext) -> None:
    """Drop memo-known discarded specs from an already-enumerated list.

    The counterpart of passing ``skip_specs`` into fresh enumeration, for
    spec lists that arrived whole (identify memo, process prologue).  The
    profiler would discard these specs again — same structure, same tensor
    types, same backends — so removing them up front changes only how much
    pricing work the profile stage does.
    """
    skip = _dominance_skip(ctx)
    if not skip or not ctx.candidate_specs:
        return
    kept = [spec for spec in ctx.candidate_specs if spec_key(spec) not in skip]
    removed = len(ctx.candidate_specs) - len(kept)
    if removed:
        ctx.candidate_specs = kept
        extra = ctx.identifier_report.extra
        extra["memo_dominance_skips"] = extra.get("memo_dominance_skips", 0) + removed


class FissionStage(Stage):
    """Operator fission: partition graph → primitive graph."""

    name = "fission"

    def run(self, ctx: StageContext) -> StageContext:
        ctx.pg, ctx.fission_report = ctx.fission.run(ctx.partition.graph)
        if ctx.config.engine.verify_level == "full":
            # Imported lazily: verification is opt-in debug tooling and the
            # default path must not load the analysis package.
            from ..analysis.verify import checked_fission

            checked_fission(ctx.partition.graph, ctx.pg)
        return ctx


class GraphOptStage(Stage):
    """Primitive-graph optimizer (TASO-style substitutions), when enabled."""

    name = "graph_opt"

    def run(self, ctx: StageContext) -> StageContext:
        if ctx.graph_optimizer is not None:
            ctx.pg, ctx.optimizer_report = ctx.graph_optimizer.optimize(ctx.pg)
        return ctx


class IdentifyStage(Stage):
    """Candidate-kernel enumeration — or plan replay when a stored plan fits.

    Replay belongs here because a valid plan *is* an identification result:
    it names exactly the kernels to build, making enumeration, profiling of
    non-selected candidates, and the BLP solve unnecessary.  An invalid plan
    (stale shape, corrupted payload) falls through to cold enumeration.

    Enumeration itself is answered in preference order: specs already on the
    context (a process-pool prologue ran them), then the engine's identify
    memo (an equal-structure partition enumerated before), then fresh
    enumeration — which is recorded in the memo for the next repeat.
    """

    name = "identify"

    def run(self, ctx: StageContext) -> StageContext:
        if ctx.plan is not None:
            orchestration = ctx.optimizer.replay(ctx.pg, ctx.plan)
            if orchestration is not None:
                ctx.orchestration = orchestration
                return ctx
        if ctx.candidate_specs is not None and ctx.identifier_report is not None:
            # Enumerated elsewhere (process prologue); the dominance memo
            # still trims the specs the profiler is known to discard.
            _filter_dominated(ctx)
            return ctx
        memo = ctx.identify_memo
        if memo is not None:
            cached = memo.get(ctx.pg, ctx.config.identifier)
            if cached is not None:
                ctx.candidate_specs, ctx.identifier_report = cached
                ctx.identify_memo_hit = True
                _filter_dominated(ctx)
                return ctx
        report = KernelIdentifierReport()
        skip = _dominance_skip(ctx)
        ctx.candidate_specs = ctx.optimizer.identifier.enumerate_specs(
            ctx.pg, report, skip_specs=skip or None
        )
        ctx.identifier_report = report
        if memo is not None and not skip:
            # A skip-filtered list must not be memoized under the structure
            # key: structurally equal partitions with different tensor types
            # would inherit prunes that are not valid for their profiles.
            memo.put(ctx.pg, ctx.config.identifier, ctx.candidate_specs, report)
        return ctx


class ProfileStage(Stage):
    """Price every candidate spec through the profiler and its caches."""

    name = "profile"

    def run(self, ctx: StageContext) -> StageContext:
        if ctx.orchestration is not None:  # replayed: nothing left to profile
            return ctx
        ctx.candidates = ctx.optimizer.identifier.profile_specs(
            ctx.pg, ctx.candidate_specs or [], ctx.identifier_report
        )
        self._record_dominance(ctx)
        return ctx

    @staticmethod
    def _record_dominance(ctx: StageContext) -> None:
        """Teach the dominance memo which specs yielded no candidate.

        Recorded only when neither enumeration nor profiling was truncated
        by ``max_candidates`` — a memo entry from a truncated run could make
        a later partition consider specs its own cold run would never have
        reached (or vice versa).  Merging with prior entries lets warm runs
        contribute the prunes they discovered on top of the inherited ones.
        """
        memo = ctx.dominance_memo
        if memo is None or ctx.candidate_specs is None or ctx.candidates is None:
            return
        specs = ctx.candidate_specs
        report = ctx.identifier_report
        if report.num_candidates_considered != len(specs):
            return  # profiling stopped at the candidate cap
        emitted = len(specs) + report.extra.get("memo_dominance_skips", 0)
        if emitted >= ctx.config.identifier.max_candidates:
            return  # enumeration was (or may have been) truncated
        surviving = {
            (frozenset(k.node_names), tuple(sorted(k.outputs))) for k in ctx.candidates
        }
        pruned = frozenset(
            key for key in (spec_key(spec) for spec in specs) if key not in surviving
        )
        if pruned:
            memo.put(_profile_key(ctx), pruned)


class SolveStage(Stage):
    """Solve the orchestration BLP (with the segmentation-cover guard).

    When the engine's solve memo holds a near-miss neighbor (and the opt-in
    ``solver_near_miss_incumbents`` flag is set), the neighbor's selection is
    translated to this partition's candidate indices and passed to branch
    and bound as a warm incumbent.  Every solve's selection is recorded back
    into the memo for later partitions.
    """

    name = "solve"

    def run(self, ctx: StageContext) -> StageContext:
        if ctx.orchestration is not None:  # replayed: already solved
            return ctx
        ctx.orchestration = ctx.optimizer.solve(
            ctx.pg, ctx.candidates or [], ctx.identifier_report,
            warm_incumbent=self._near_miss_incumbent(ctx),
        )
        self._record_solution(ctx)
        return ctx

    @staticmethod
    def _near_miss_incumbent(ctx: StageContext) -> list[int] | None:
        """A neighbor's solution as a 0/1 vector over this BLP's variables."""
        memo = ctx.solve_memo
        if memo is None or not ctx.config.solver_near_miss_incumbents:
            return None
        if not ctx.candidates:
            return None
        node_names = frozenset(node.name for node in ctx.pg.nodes)
        entry = memo.neighbor(node_names, ctx.config.engine.solve_memo_max_delta)
        if entry is None:
            return None
        index_of = {
            (frozenset(k.node_names), tuple(sorted(k.outputs))): position
            for position, k in enumerate(ctx.candidates)
        }
        values = [0] * len(ctx.candidates)
        for key in entry.selected:
            position = index_of.get(key)
            if position is None:
                return None  # neighbor uses a kernel this partition lacks
            values[position] = 1
        ctx.identifier_report.extra["near_miss_seeded"] = 1
        return values

    @staticmethod
    def _record_solution(ctx: StageContext) -> None:
        memo = ctx.solve_memo
        if memo is None or not ctx.candidates:
            return
        solve = ctx.orchestration.solve_result
        if not solve.values or not solve.is_feasible:
            return
        from .memo import SolveMemoEntry

        selected = tuple(
            (frozenset(ctx.candidates[i].node_names), tuple(sorted(ctx.candidates[i].outputs)))
            for i in solve.selected()
        )
        memo.put(
            _profile_key(ctx),
            SolveMemoEntry(
                node_names=frozenset(node.name for node in ctx.pg.nodes),
                selected=selected,
                objective=solve.objective,
            ),
        )


class AssembleStage(Stage):
    """Stitch the selected kernels into an executable and final result."""

    name = "assemble"

    def run(self, ctx: StageContext) -> StageContext:
        if ctx.config.engine.verify_level in ("plan", "full"):
            self._verify_plan(ctx)
        ctx.executable = Executable.from_strategy(ctx.orchestration.strategy)
        ctx.result = PartitionResult(
            partition=ctx.partition,
            fission_report=ctx.fission_report,
            optimizer_report=ctx.optimizer_report,
            orchestration=ctx.orchestration,
            executable=ctx.executable,
            timings=ctx.timings,
            diagnostics=list(ctx.diagnostics),
        )
        return ctx

    @staticmethod
    def _verify_plan(ctx: StageContext) -> None:
        """Statically check the assembled strategy (``verify_level`` debug
        mode); ERROR findings raise, WARNING/INFO ride along on the result."""
        from ..diagnostics import DiagnosticError, errors
        from ..analysis.verify import verify_strategy

        strategy = ctx.orchestration.strategy
        if not strategy.pg.nodes:
            return
        found = verify_strategy(
            strategy.pg,
            strategy.kernels,
            location=f"{ctx.partition.graph.name}",
        )
        ctx.diagnostics.extend(found)
        bad = errors(found)
        if bad:
            raise DiagnosticError(
                f"plan verification failed for partition {ctx.partition.graph.name!r}",
                bad,
            )


class ExecuteStage(Stage):
    """Run the freshly assembled executable through the plan executor.

    Deliberately **not** part of :data:`DEFAULT_STAGES`: execution observes
    the plan (it runs and optionally verifies it) but never changes it, and
    keeping the default flow execution-free preserves the bit-identity
    guarantees the cache keys are built on.  Append it to a custom stage
    sequence — or use :meth:`repro.engine.engine.KorchEngine.execute` for
    whole-model execution with measurement and metrics.

    With ``verify=True`` (the default) a numerically divergent plan raises
    :class:`ExecutionVerificationError` instead of returning silently wrong
    tensors; the execution report is left on ``ctx.execution`` either way.
    """

    name = "execute"

    def __init__(
        self,
        library=None,
        verify: bool = True,
        tolerance: float = 1e-4,
    ) -> None:
        self.library = library
        self.verify = verify
        self.tolerance = tolerance

    def run(self, ctx: StageContext) -> StageContext:
        from ..runtime.executor import PlanExecutor

        executor = PlanExecutor.for_executable(
            ctx.partition.graph, ctx.executable, library=self.library
        )
        ctx.execution = executor.run()
        if self.verify:
            ctx.execution.verification = executor.verify(tolerance=self.tolerance)
            if not ctx.execution.verification.equivalent:
                raise ExecutionVerificationError(
                    f"executed plan for partition {ctx.partition.graph.name!r} diverges "
                    f"from the reference: max abs error "
                    f"{ctx.execution.verification.max_abs_error:.3e} > {self.tolerance}"
                )
        return ctx


class ExecutionVerificationError(RuntimeError):
    """An executed plan's outputs diverged from the reference executor."""


#: The Figure 1 flow; replace or extend to customize the engine.
DEFAULT_STAGES: tuple[Stage, ...] = (
    FissionStage(),
    GraphOptStage(),
    IdentifyStage(),
    ProfileStage(),
    SolveStage(),
    AssembleStage(),
)


def run_stages(
    ctx: StageContext,
    stages: Sequence[Stage] = DEFAULT_STAGES,
    observe: Callable[[str, float], None] | None = None,
) -> StageContext:
    """Run ``stages`` in order, recording per-stage wall-clock time.

    ``observe(stage_name, seconds)`` is called once per stage when given —
    the hook the engine uses to feed its per-stage latency histograms
    without the stages knowing about metrics.  It must stay ``None`` on
    process-pool workers (the prologue ships timings back instead).
    """
    for stage in stages:
        started = time.perf_counter()
        ctx = stage.run(ctx)
        elapsed = time.perf_counter() - started
        ctx.timings[stage.name] = ctx.timings.get(stage.name, 0.0) + elapsed
        if observe is not None:
            observe(stage.name, elapsed)
    return ctx
