"""SLO-driven admission control for :class:`~repro.engine.service.KorchService`.

A static ``max_pending`` knob protects memory but not latency: with a slow
engine, a full-but-legal queue means every accepted request blows its
latency budget anyway.  The :class:`AdmissionController` closes the loop
from *observed* queue wait to the *effective* pending cap:

* the service feeds it one sample per request (the measured queue wait, at
  the moment the request starts running);
* every ``window`` samples the controller computes the window's p99 and
  decides: p99 over the SLO → shrink the cap multiplicatively (fast
  backoff), p99 comfortably under the SLO (below ``healthy_fraction`` of
  it) → grow it additively (slow recovery), AIMD-style;
* the cap always stays inside ``[min_pending, max_pending]``.

Decisions are functions of the observed samples alone — no timers, no
wall-clock reads — so the controller is deterministic under synthetic
inputs and directly unit-testable.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass

__all__ = ["AdmissionConfig", "AdmissionController"]


@dataclass(frozen=True)
class AdmissionConfig:
    """Bounds and SLO of one admission-control loop."""

    #: The queue-wait p99 objective, in seconds.  A decision window whose
    #: p99 exceeds this shrinks the effective pending cap.
    slo_p99_queue_wait_s: float
    #: The floor the cap can shrink to (never reject everything).
    min_pending: int = 1
    #: The ceiling the cap can recover to (the old static ``max_pending``).
    max_pending: int = 64
    #: Queue-wait samples per decision.
    window: int = 32
    #: Multiplicative shrink on an SLO breach (0 < factor < 1).
    shrink_factor: float = 0.5
    #: Additive growth per healthy window.
    grow_step: int = 1
    #: A window counts as healthy (eligible for growth) when its p99 is
    #: below ``healthy_fraction * slo`` — hysteresis against cap flapping.
    healthy_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.slo_p99_queue_wait_s <= 0:
            raise ValueError("slo_p99_queue_wait_s must be positive")
        if self.min_pending < 1:
            raise ValueError("min_pending must be at least 1")
        if self.max_pending < self.min_pending:
            raise ValueError("max_pending must be >= min_pending")
        if self.window < 1:
            raise ValueError("window must be at least 1")
        if not 0.0 < self.shrink_factor < 1.0:
            raise ValueError("shrink_factor must be in (0, 1)")
        if self.grow_step < 1:
            raise ValueError("grow_step must be at least 1")
        if not 0.0 < self.healthy_fraction <= 1.0:
            raise ValueError("healthy_fraction must be in (0, 1]")


class AdmissionController:
    """AIMD effective-pending-cap controller driven by queue-wait samples."""

    def __init__(self, config: AdmissionConfig) -> None:
        self.config = config
        self._lock = threading.Lock()
        self._cap = config.max_pending
        self._window: list[float] = []
        self.shrinks = 0
        self.grows = 0
        #: p99 of the last completed decision window (diagnostic).
        self.last_window_p99_s: float | None = None

    @property
    def cap(self) -> int:
        """The current effective pending cap."""
        with self._lock:
            return self._cap

    def observe(self, queue_wait_s: float) -> str | None:
        """Feed one queue-wait sample; returns ``"shrink"``/``"grow"`` when
        this sample completed a window that changed the cap, else ``None``."""
        config = self.config
        with self._lock:
            self._window.append(float(queue_wait_s))
            if len(self._window) < config.window:
                return None
            samples = sorted(self._window)
            self._window.clear()
            # Nearest-rank p99 over the window.
            rank = max(1, math.ceil(0.99 * len(samples)))
            p99 = samples[rank - 1]
            self.last_window_p99_s = p99
            if p99 > config.slo_p99_queue_wait_s:
                shrunk = max(
                    config.min_pending,
                    min(self._cap - 1, int(self._cap * config.shrink_factor)),
                )
                if shrunk < self._cap:
                    self._cap = shrunk
                    self.shrinks += 1
                    return "shrink"
                return None
            if p99 <= config.slo_p99_queue_wait_s * config.healthy_fraction:
                grown = min(config.max_pending, self._cap + config.grow_step)
                if grown > self._cap:
                    self._cap = grown
                    self.grows += 1
                    return "grow"
            return None

    def as_dict(self) -> dict[str, float | int | None]:
        with self._lock:
            return {
                "cap": self._cap,
                "min_pending": self.config.min_pending,
                "max_pending": self.config.max_pending,
                "slo_p99_queue_wait_s": self.config.slo_p99_queue_wait_s,
                "shrinks": self.shrinks,
                "grows": self.grows,
                "last_window_p99_s": self.last_window_p99_s,
            }
