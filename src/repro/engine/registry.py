"""Process-level registry of shared cache stores.

Stores (and their plan caches) are shared per cache *directory* so every
engine and pipeline in the process reuses one SQLite connection and one
in-memory plan tier — this is what makes back-to-back ``optimize_model``
calls warm.  Directories are identified by their resolved absolute path, so
``cache``, ``./cache`` and ``/abs/path/cache`` all map to the same open
store, and the registry is capped: beyond the configured maximum the
least-recently-used store is closed and evicted instead of leaking an open
SQLite connection per spelling forever.

Eviction contract: a pipeline or engine still holding an evicted store keeps
working — ``CacheStore.close`` flushes to disk and degrades the handle to
in-memory operation (results stay correct; only that holder's *later* writes
stop persisting).  A process that genuinely needs more concurrently-hot
cache directories should raise the cap
(``KorchEngineConfig.max_open_stores`` or :func:`set_max_open_stores`) or
hand those engines distinct ``CacheStore`` instances directly.

Lifecycle is explicit: :func:`close_store` flushes and evicts one directory,
:func:`clear` flushes and evicts everything.  Tests and long-lived services
use these instead of reaching into module-private state.
"""

from __future__ import annotations

import threading
from pathlib import Path

from ..cache import CacheStore, PlanCache

__all__ = [
    "shared_store",
    "open_stores",
    "close_store",
    "clear",
    "set_max_open_stores",
    "max_open_stores",
    "MAX_OPEN_STORES",
]

#: Default cap on stores kept open at once; the least-recently-used one is
#: closed beyond it.  Generous on purpose: eviction is a leak backstop, and
#: closing a store a live engine still holds ends that engine's persistence
#: (see above).  Configurable per process via :func:`set_max_open_stores`
#: or per engine via ``KorchEngineConfig.max_open_stores``.
MAX_OPEN_STORES = 32

_STORE_LOCK = threading.Lock()
_STORES: dict[str, CacheStore] = {}
_PLAN_CACHES: dict[str, PlanCache] = {}
_MAX_OPEN = MAX_OPEN_STORES


def _resolve(cache_dir: str | Path) -> str:
    return str(Path(cache_dir).expanduser().resolve())


def set_max_open_stores(limit: int) -> None:
    """Set the process-wide open-store cap; evicts LRU stores beyond it."""
    global _MAX_OPEN
    with _STORE_LOCK:
        _MAX_OPEN = max(1, int(limit))
        _evict_over_cap_locked(reserve=0)


def max_open_stores() -> int:
    """The current process-wide open-store cap."""
    with _STORE_LOCK:
        return _MAX_OPEN


def _evict_over_cap_locked(reserve: int) -> None:
    while len(_STORES) + reserve > _MAX_OPEN:
        oldest = next(iter(_STORES))
        _STORES.pop(oldest).close()
        _PLAN_CACHES.pop(oldest, None)


def shared_store(
    cache_dir: str | Path, max_entries: int, max_open: int | None = None
) -> tuple[CacheStore, PlanCache]:
    """The process-wide (store, plan cache) pair for ``cache_dir``.

    ``max_open`` (when given) updates the process-wide open-store cap —
    engines pass ``KorchEngineConfig.max_open_stores`` through here so the
    most recently configured engine wins, mirroring ``max_entries``.
    """
    global _MAX_OPEN
    key = _resolve(cache_dir)
    with _STORE_LOCK:
        if max_open is not None:
            _MAX_OPEN = max(1, int(max_open))
        store = _STORES.get(key)
        if store is None:
            _evict_over_cap_locked(reserve=1)
            store = CacheStore(key, max_entries=max_entries)
            _STORES[key] = store
            _PLAN_CACHES[key] = PlanCache(store)
        else:
            # LRU touch, and honor the most recent cap rather than silently
            # keeping the first one.
            _STORES[key] = _STORES.pop(key)
            _PLAN_CACHES[key] = _PLAN_CACHES.pop(key)
            store.max_entries = max(1, int(max_entries))
            _evict_over_cap_locked(reserve=0)
        return store, _PLAN_CACHES[key]


def open_stores() -> dict[str, CacheStore]:
    """Snapshot of the currently open stores, keyed by resolved directory."""
    with _STORE_LOCK:
        return dict(_STORES)


def close_store(cache_dir: str | Path) -> bool:
    """Flush and evict one directory's store; returns whether it was open.

    Holders of the evicted store degrade per the eviction contract above.
    The next ``shared_store`` call for the directory reopens it fresh from
    disk — which is also how tests simulate a new serving process.
    """
    key = _resolve(cache_dir)
    with _STORE_LOCK:
        store = _STORES.pop(key, None)
        _PLAN_CACHES.pop(key, None)
    if store is None:
        return False
    store.close()
    return True


def clear() -> int:
    """Flush and evict every open store; returns how many were closed."""
    with _STORE_LOCK:
        stores = list(_STORES.values())
        _STORES.clear()
        _PLAN_CACHES.clear()
    for store in stores:
        store.close()
    return len(stores)
