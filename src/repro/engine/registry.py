"""Process-level registry of shared cache stores.

Stores (and their plan caches) are shared per cache *directory* so every
engine and pipeline in the process reuses one SQLite connection and one
in-memory plan tier — this is what makes back-to-back ``optimize_model``
calls warm.  Directories are identified by their resolved absolute path, so
``cache``, ``./cache`` and ``/abs/path/cache`` all map to the same open
store, and the registry is capped: beyond ``MAX_OPEN_STORES`` directories
the least-recently-used store is closed and evicted instead of leaking an
open SQLite connection per spelling forever.

Eviction contract: a pipeline or engine still holding an evicted store keeps
working — ``CacheStore.close`` flushes to disk and degrades the handle to
in-memory operation (results stay correct; only that holder's *later* writes
stop persisting).  A process that genuinely needs more than
``MAX_OPEN_STORES`` concurrently-hot cache directories should hand those
engines distinct ``CacheStore`` instances directly rather than go through
the shared registry.
"""

from __future__ import annotations

import threading
from pathlib import Path

from ..cache import CacheStore, PlanCache

__all__ = ["shared_store", "open_stores", "MAX_OPEN_STORES"]

#: Open stores kept at once; the least-recently-used one is closed beyond it.
#: Generous on purpose: eviction is a leak backstop, and closing a store a
#: live engine still holds ends that engine's persistence (see above).
MAX_OPEN_STORES = 32

_STORE_LOCK = threading.Lock()
_STORES: dict[str, CacheStore] = {}
_PLAN_CACHES: dict[str, PlanCache] = {}


def shared_store(cache_dir: str | Path, max_entries: int) -> tuple[CacheStore, PlanCache]:
    """The process-wide (store, plan cache) pair for ``cache_dir``."""
    key = str(Path(cache_dir).expanduser().resolve())
    with _STORE_LOCK:
        store = _STORES.get(key)
        if store is None:
            while len(_STORES) >= MAX_OPEN_STORES:
                oldest = next(iter(_STORES))
                _STORES.pop(oldest).close()
                _PLAN_CACHES.pop(oldest, None)
            store = CacheStore(key, max_entries=max_entries)
            _STORES[key] = store
            _PLAN_CACHES[key] = PlanCache(store)
        else:
            # LRU touch, and honor the most recent cap rather than silently
            # keeping the first one.
            _STORES[key] = _STORES.pop(key)
            _PLAN_CACHES[key] = _PLAN_CACHES.pop(key)
            store.max_entries = max(1, int(max_entries))
        return store, _PLAN_CACHES[key]


def open_stores() -> dict[str, CacheStore]:
    """Snapshot of the currently open stores, keyed by resolved directory."""
    with _STORE_LOCK:
        return dict(_STORES)
