"""Configuration of the Korch engine (and of the compatibility pipeline).

``KorchConfig`` describes *what* to optimize for — GPU, partitioning limits,
identifier pruning, solver settings — plus the orthogonal execution knobs
(cache directory, worker count) that change how fast an answer is computed
but never what the answer is.  ``fingerprint()`` captures exactly the
result-determining subset, which is what plan-cache keys are built from.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from pathlib import Path

from ..gpu.specs import GpuSpec, get_gpu
from ..orchestration import KernelIdentifierConfig
from ..partition import PartitionConfig
from ..transforms import GraphOptimizerConfig

__all__ = ["KorchEngineConfig", "KorchConfig"]


@dataclass
class KorchEngineConfig:
    """Execution knobs of the engine runtime (scheduler, executors, stores).

    Everything here changes *how* the engine computes — never *what* it
    computes — so none of it enters :meth:`KorchConfig.fingerprint` or any
    cache key.  Results are bit-identical across every setting combination.
    """

    #: Where stage tasks run: ``"thread"`` (default; shared grow-only thread
    #: pool), ``"process"`` (GIL-bound prologue work — fission, graph
    #: optimization, candidate enumeration — runs on a process pool), or
    #: ``"serial"`` (inline, no pool; what ``num_workers=1`` used to mean).
    executor: str = "thread"
    #: Process-pool workers for ``executor="process"``; 0 = one per CPU.
    process_workers: int = 0
    #: Multiprocessing start method for the process pool.  ``"spawn"`` is the
    #: safe default with a multi-threaded parent; ``"fork"`` starts faster on
    #: POSIX when no conflicting threads hold locks.
    process_start_method: str = "spawn"
    #: Hard cap on tasks admitted to executors at once, across every batch
    #: sharing the engine-wide scheduler (concurrent ``optimize_many`` calls
    #: and service request workers included).  ``None`` derives it from the
    #: resolved worker count; the live cap only ever grows, so a small batch
    #: never throttles a concurrent larger one.
    admission_cap: int | None = None
    #: Entry cap of the identify-stage memo (enumeration results keyed on
    #: primitive-graph structure); 0 disables memoization.
    identify_memo_entries: int = 512
    #: Entry cap of the dominance memo (specs the profiler discarded, keyed
    #: on structure + tensor types); repeats skip pricing those specs.  The
    #: surviving candidate set is provably unchanged, so this is a pure
    #: speed knob; 0 disables it.
    dominance_memo_entries: int = 512
    #: Entry cap of the solve memo backing the near-miss warm incumbents
    #: (see ``KorchConfig.solver_near_miss_incumbents``); 0 disables it.
    solve_memo_entries: int = 128
    #: Maximum symmetric node-set difference for a memoized solution to
    #: count as a near-miss neighbor of a new partition.
    solve_memo_max_delta: int = 4
    #: Entry cap of the profile-cache snapshot :meth:`KorchEngine.warm_up`
    #: broadcasts into process-pool workers (newest entries win), so spawned
    #: workers answer graph-optimizer pricing from the parent's cache instead
    #: of re-deriving it; 0 disables the broadcast.  Pure speed knob: a
    #: snapshot hit returns byte-for-byte what the parent would have read.
    worker_snapshot_entries: int = 4096
    #: Process-wide cap on concurrently open cache stores (see
    #: :mod:`repro.engine.registry`); the LRU store beyond it is closed.
    max_open_stores: int = 32
    #: Opt-in verification debug mode (see :mod:`repro.analysis.verify`):
    #: ``"off"`` (default) — no checks; ``"plan"`` — statically verify every
    #: assembled kernel plan; ``"full"`` — additionally verify each fission
    #: result and every applied graph rewrite.  Verification never changes
    #: results (it only observes them, raising
    #: :class:`~repro.diagnostics.DiagnosticError` on violations), which is
    #: why the knob lives here and stays out of every cache key.
    verify_level: str = "off"


@dataclass
class KorchConfig:
    """Configuration of the full pipeline."""

    gpu: str | GpuSpec = "V100"
    enable_graph_optimizer: bool = True
    enable_tensorrt_backend: bool = False
    partition: PartitionConfig = field(default_factory=PartitionConfig)
    identifier: KernelIdentifierConfig = field(default_factory=KernelIdentifierConfig)
    graph_optimizer: GraphOptimizerConfig = field(default_factory=GraphOptimizerConfig)
    solver_method: str = "auto"
    solver_time_limit_s: float = 1000.0
    #: Relative optimality gap accepted per subgraph BLP (0 = prove optimal).
    #: The default trades <2% of modeled latency for a large solver speedup.
    solver_mip_rel_gap: float = 0.02
    #: Evaluation core of the in-repo solvers: ``"bitset"`` (default) packs
    #: the ±1 incidence structure into machine-word masks, ``"reference"``
    #: keeps the original dict-of-sets scans.  Bit-identical answers either
    #: way (asserted in tests), so the knob stays out of :meth:`fingerprint`.
    solver_core: str = "bitset"
    #: Opt-in: seed branch and bound with a memoized near-miss neighbor's
    #: solution as a warm incumbent (see :class:`repro.engine.memo.SolveMemo`).
    #: The objective stays exact, but among *equal-cost* optima the returned
    #: selection may follow the seed — i.e. depend on which partitions were
    #: solved earlier — so this result-affecting knob defaults to off and is
    #: part of :meth:`fingerprint`.  No effect on the scipy MILP path, which
    #: has no incumbent-injection API.
    solver_near_miss_incumbents: bool = False
    #: Directory of the persistent profile/plan cache; ``None`` disables
    #: persistence (profiles are still memoized per process, as before).
    cache_dir: str | Path | None = None
    #: Store whole-model plans (in addition to kernel profiles) so repeated
    #: (graph, gpu, config) runs skip enumeration + solving.  Only effective
    #: with ``cache_dir`` set.
    enable_plan_cache: bool = True
    #: Concurrent partition-optimization workers; 1 = serial (the default),
    #: 0 = one worker per CPU.  Results are independent of the worker count.
    num_workers: int = 1
    #: Per-namespace entry cap of the persistent cache (LRU-evicted).
    cache_max_entries: int = 200_000
    #: Runtime knobs of the engine (executors, admission, memo, registry);
    #: excluded from :meth:`fingerprint` — see :class:`KorchEngineConfig`.
    engine: KorchEngineConfig = field(default_factory=KorchEngineConfig)

    def resolve_gpu(self) -> GpuSpec:
        return self.gpu if isinstance(self.gpu, GpuSpec) else get_gpu(self.gpu)

    def resolve_num_workers(self, num_tasks: int) -> int:
        import os

        workers = self.num_workers if self.num_workers > 0 else (os.cpu_count() or 1)
        return max(1, min(workers, num_tasks))

    def fingerprint(self) -> dict:
        """The part of the config that determines optimization *results*.

        Cache and parallelism knobs are deliberately excluded: a plan
        computed serially without a cache is byte-identical to one computed
        by 8 workers with one, so they must share cache keys.
        """
        return {
            "enable_graph_optimizer": self.enable_graph_optimizer,
            "enable_tensorrt_backend": self.enable_tensorrt_backend,
            "partition": dataclasses.asdict(self.partition),
            "identifier": dataclasses.asdict(self.identifier),
            "graph_optimizer": dataclasses.asdict(self.graph_optimizer),
            "solver_method": self.solver_method,
            "solver_time_limit_s": self.solver_time_limit_s,
            "solver_mip_rel_gap": self.solver_mip_rel_gap,
            "solver_near_miss_incumbents": self.solver_near_miss_incumbents,
        }

    def solver_config(self):
        """The :class:`repro.solver.SolverConfig` this pipeline solves with."""
        from ..solver import SolverConfig

        return SolverConfig(
            core=self.solver_core,
            near_miss_incumbents=self.solver_near_miss_incumbents,
        )
