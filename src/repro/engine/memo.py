"""Identify-stage memoization: enumeration results keyed on graph structure.

Candidate enumeration (the first half of Algorithm 1) is pure Python and
depends only on the primitive graph's *structure* — node names, primitive
signatures, wiring, graph outputs — plus the identifier configuration.  It is
the engine's remaining GIL-bound serial bottleneck, and serving workloads
repeat it constantly: the same partition structure shows up again within a
model (repeated blocks) and across models (fine-tuned twins).  The memo keys
enumeration results on a canonical structure hash so repeats skip the
enumeration entirely; hits surface as ``EngineStats.identify_memo_hits``.

Correctness: :func:`repro.orchestration.identifier.enumerate_candidate_specs`
is deterministic in (structure, config) — enumeration never reads tensor
shapes or dtypes beyond what primitive signatures embed — and the key covers
both, so a memo hit returns exactly what fresh enumeration would.  Reports
are deep-copied on the way in and out because the profile stage mutates them.
"""

from __future__ import annotations

import copy
import dataclasses
import hashlib
import json
import threading

from ..orchestration import KernelIdentifierConfig, KernelIdentifierReport
from ..orchestration.identifier import CandidateSpec
from ..primitives.graph import PrimitiveGraph

__all__ = [
    "pg_structure_key",
    "pg_profile_key",
    "IdentifyMemo",
    "DominanceMemo",
    "SolveMemo",
    "SolveMemoEntry",
]


def _structure_payload(pg: PrimitiveGraph, config: KernelIdentifierConfig) -> dict:
    return {
        "nodes": [
            (node.name, list(node.prim.signature()), list(node.inputs), node.output)
            for node in pg.nodes
        ],
        "outputs": list(pg.outputs),
        "config": dataclasses.asdict(config),
    }


def _digest(payload: dict) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def pg_structure_key(pg: PrimitiveGraph, config: KernelIdentifierConfig) -> str:
    """Canonical hash of everything candidate enumeration reads.

    Nodes are listed in graph order (enumeration iterates them), each as
    (name, primitive signature, inputs, output); graph outputs close the
    payload.  Two partitions with equal keys enumerate identical spec lists.
    """
    return _digest(_structure_payload(pg, config))


def pg_profile_key(pg: PrimitiveGraph, config: KernelIdentifierConfig) -> str:
    """Canonical hash of everything enumeration *and profiling* read.

    Strictly finer than :func:`pg_structure_key`: primitive signatures carry
    no tensor shapes or dtypes, but profiled latencies — and therefore which
    candidates the dominance prune discards and which kernels the solver
    selects — depend on them.  Memos whose payloads embed profile-derived
    facts (:class:`DominanceMemo`, :class:`SolveMemo`) must key on this, not
    on the structure key.
    """
    payload = _structure_payload(pg, config)
    payload["tensors"] = sorted(
        (name, str(t.dtype), list(t.shape)) for name, t in pg.tensors.items()
    )
    return _digest(payload)


class IdentifyMemo:
    """Thread-safe LRU memo of ``(specs, report)`` enumeration results."""

    def __init__(self, max_entries: int = 512) -> None:
        self.max_entries = max(0, int(max_entries))
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._entries: dict[str, tuple[list[CandidateSpec], KernelIdentifierReport]] = {}

    @property
    def enabled(self) -> bool:
        return self.max_entries > 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(
        self, pg: PrimitiveGraph, config: KernelIdentifierConfig
    ) -> tuple[list[CandidateSpec], KernelIdentifierReport] | None:
        if not self.enabled:
            return None
        key = pg_structure_key(pg, config)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries[key] = self._entries.pop(key)  # LRU touch
            self.hits += 1
            specs, report = entry
        # Specs are frozen and shared; the report is mutated downstream by
        # the profile stage, so every consumer gets its own copy.
        return list(specs), copy.deepcopy(report)

    def put(
        self,
        pg: PrimitiveGraph,
        config: KernelIdentifierConfig,
        specs: list[CandidateSpec],
        report: KernelIdentifierReport,
    ) -> None:
        if not self.enabled:
            return
        key = pg_structure_key(pg, config)
        with self._lock:
            self._entries.pop(key, None)
            self._entries[key] = (list(specs), copy.deepcopy(report))
            while len(self._entries) > self.max_entries:
                self._entries.pop(next(iter(self._entries)))

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


#: Canonical identity of a candidate spec, as produced by
#: :func:`repro.orchestration.identifier.spec_key`.
SpecKey = tuple[frozenset, tuple]


class DominanceMemo:
    """LRU memo of specs that profiling discarded, keyed on profile key.

    After the profile stage prices a partition's specs, any spec that yields
    no surviving candidate — dominated by a cheaper candidate with the same
    I/O, or rejected by every backend — is recorded here.  A later partition
    with an equal :func:`pg_profile_key` skips those specs *before* pricing
    (and, when enumeration runs fresh, before even constructing them):
    profiling is deterministic in (structure, tensor types, backends, GPU),
    so the skipped specs would be discarded again, and the surviving
    candidate list — the only thing downstream stages see — is unchanged.

    Entries are recorded only for partitions whose enumeration and profiling
    ran un-truncated (no ``max_candidates`` cap binding), so a memo-guided
    run can never consider specs a cold run would not have reached.
    """

    def __init__(self, max_entries: int = 512) -> None:
        self.max_entries = max(0, int(max_entries))
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._entries: dict[str, frozenset[SpecKey]] = {}

    @property
    def enabled(self) -> bool:
        return self.max_entries > 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, profile_key: str) -> frozenset[SpecKey] | None:
        if not self.enabled:
            return None
        with self._lock:
            entry = self._entries.get(profile_key)
            if entry is None:
                self.misses += 1
                return None
            self._entries[profile_key] = self._entries.pop(profile_key)  # LRU touch
            self.hits += 1
            return entry

    def put(self, profile_key: str, pruned: frozenset[SpecKey]) -> None:
        """Record ``pruned``, merging with any earlier entry: a memo-guided
        run discovers pruned specs *on top of* the ones it already skipped."""
        if not self.enabled:
            return
        with self._lock:
            existing = self._entries.pop(profile_key, None)
            if existing is not None:
                pruned = pruned | existing
            self._entries[profile_key] = frozenset(pruned)
            while len(self._entries) > self.max_entries:
                self._entries.pop(next(iter(self._entries)))

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


@dataclasses.dataclass(frozen=True)
class SolveMemoEntry:
    """One solved partition: its node names, selection, and objective."""

    node_names: frozenset[str]
    selected: tuple[SpecKey, ...]
    objective: float


class SolveMemo:
    """LRU memo of BLP solutions for near-miss warm incumbents.

    Keyed on :func:`pg_profile_key` for identity, but queried by *node-set
    distance*: when a new partition's nodes differ from a memoized one's by
    at most ``max_delta`` names (partition-boundary jitter — a lookback
    window shifting one or two nodes between neighboring partitions), the
    neighbor's selected kernels that still exist among the new candidates
    seed branch and bound as a warm incumbent.  The seed is re-validated for
    feasibility and only ever *tightens* pruning, so exact methods keep
    their optimal objective; among equal-cost optima the returned selection
    may be the seed's, which is why the engine gates the feature behind the
    opt-in ``solver_near_miss_incumbents`` flag.
    """

    def __init__(self, max_entries: int = 128) -> None:
        self.max_entries = max(0, int(max_entries))
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._entries: dict[str, SolveMemoEntry] = {}

    @property
    def enabled(self) -> bool:
        return self.max_entries > 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def neighbor(
        self, node_names: frozenset[str], max_delta: int, exclude_key: str | None = None
    ) -> SolveMemoEntry | None:
        """The memoized partition nearest to ``node_names`` (smallest
        symmetric node-set difference ≤ ``max_delta``); earliest-recorded
        wins ties so the answer is deterministic for a given memo state."""
        if not self.enabled:
            return None
        best: SolveMemoEntry | None = None
        best_delta = max_delta + 1
        with self._lock:
            for key, entry in self._entries.items():
                if key == exclude_key:
                    continue
                delta = len(entry.node_names ^ node_names)
                if delta < best_delta:
                    best = entry
                    best_delta = delta
            if best is None:
                self.misses += 1
            else:
                self.hits += 1
        return best

    def put(self, profile_key: str, entry: SolveMemoEntry) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._entries.pop(profile_key, None)
            self._entries[profile_key] = entry
            while len(self._entries) > self.max_entries:
                self._entries.pop(next(iter(self._entries)))

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
