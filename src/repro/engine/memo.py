"""Identify-stage memoization: enumeration results keyed on graph structure.

Candidate enumeration (the first half of Algorithm 1) is pure Python and
depends only on the primitive graph's *structure* — node names, primitive
signatures, wiring, graph outputs — plus the identifier configuration.  It is
the engine's remaining GIL-bound serial bottleneck, and serving workloads
repeat it constantly: the same partition structure shows up again within a
model (repeated blocks) and across models (fine-tuned twins).  The memo keys
enumeration results on a canonical structure hash so repeats skip the
enumeration entirely; hits surface as ``EngineStats.identify_memo_hits``.

Correctness: :func:`repro.orchestration.identifier.enumerate_candidate_specs`
is deterministic in (structure, config) — enumeration never reads tensor
shapes or dtypes beyond what primitive signatures embed — and the key covers
both, so a memo hit returns exactly what fresh enumeration would.  Reports
are deep-copied on the way in and out because the profile stage mutates them.
"""

from __future__ import annotations

import copy
import dataclasses
import hashlib
import json
import threading

from ..orchestration import KernelIdentifierConfig, KernelIdentifierReport
from ..orchestration.identifier import CandidateSpec
from ..primitives.graph import PrimitiveGraph

__all__ = ["pg_structure_key", "IdentifyMemo"]


def pg_structure_key(pg: PrimitiveGraph, config: KernelIdentifierConfig) -> str:
    """Canonical hash of everything candidate enumeration reads.

    Nodes are listed in graph order (enumeration iterates them), each as
    (name, primitive signature, inputs, output); graph outputs close the
    payload.  Two partitions with equal keys enumerate identical spec lists.
    """
    payload = {
        "nodes": [
            (node.name, list(node.prim.signature()), list(node.inputs), node.output)
            for node in pg.nodes
        ],
        "outputs": list(pg.outputs),
        "config": dataclasses.asdict(config),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class IdentifyMemo:
    """Thread-safe LRU memo of ``(specs, report)`` enumeration results."""

    def __init__(self, max_entries: int = 512) -> None:
        self.max_entries = max(0, int(max_entries))
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._entries: dict[str, tuple[list[CandidateSpec], KernelIdentifierReport]] = {}

    @property
    def enabled(self) -> bool:
        return self.max_entries > 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(
        self, pg: PrimitiveGraph, config: KernelIdentifierConfig
    ) -> tuple[list[CandidateSpec], KernelIdentifierReport] | None:
        if not self.enabled:
            return None
        key = pg_structure_key(pg, config)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries[key] = self._entries.pop(key)  # LRU touch
            self.hits += 1
            specs, report = entry
        # Specs are frozen and shared; the report is mutated downstream by
        # the profile stage, so every consumer gets its own copy.
        return list(specs), copy.deepcopy(report)

    def put(
        self,
        pg: PrimitiveGraph,
        config: KernelIdentifierConfig,
        specs: list[CandidateSpec],
        report: KernelIdentifierReport,
    ) -> None:
        if not self.enabled:
            return
        key = pg_structure_key(pg, config)
        with self._lock:
            self._entries.pop(key, None)
            self._entries[key] = (list(specs), copy.deepcopy(report))
            while len(self._entries) > self.max_entries:
                self._entries.pop(next(iter(self._entries)))

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
