"""Result types of the Korch engine: per-partition and model-level.

These used to live in :mod:`repro.pipeline`; they moved here with the staged
engine so that stages can build them without importing the compatibility
wrapper.  ``repro.pipeline`` re-exports them under their old names.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..backends import TuningTimeReport
from ..cache import CacheStats
from ..fission import FissionReport
from ..gpu.profiler import ProfilerStats
from ..gpu.specs import GpuSpec
from ..ir.graph import Graph
from ..orchestration import OrchestrationResult
from ..partition import Partition
from ..runtime.executable import Executable, ModelExecutable
from ..transforms import GraphOptimizerReport

__all__ = ["PartitionResult", "CacheReport", "KorchResult", "STAGE_ORDER"]

#: Canonical stage order, used for stable summary/reporting keys.
STAGE_ORDER = ("fission", "graph_opt", "identify", "profile", "solve", "assemble")


@dataclass
class PartitionResult:
    """Everything produced for one partition."""

    partition: Partition
    fission_report: FissionReport
    optimizer_report: GraphOptimizerReport | None
    orchestration: OrchestrationResult
    executable: Executable
    #: Wall-clock seconds spent in each engine stage for this partition.
    timings: dict[str, float] = field(default_factory=dict)
    #: Non-fatal verification findings (``verify_level`` debug mode); ERROR
    #: findings raise during the run instead of landing here.
    diagnostics: list = field(default_factory=list)

    @property
    def latency_s(self) -> float:
        return self.orchestration.strategy.total_latency_s

    @property
    def num_kernels(self) -> int:
        return self.orchestration.strategy.num_kernels

    @property
    def replayed(self) -> bool:
        """Whether this partition's strategy came from the plan cache."""
        return bool(self.orchestration.extra.get("replayed"))


@dataclass
class CacheReport:
    """Cache and parallelism accounting of one pipeline run."""

    #: "off" (no cache_dir), "miss", "memory-hit" or "disk-hit".
    plan_cache: str = "off"
    #: Partitions whose strategy was replayed from a stored plan.
    partitions_replayed: int = 0
    #: Aggregated profiler statistics across every profiler the run used.
    profiler: ProfilerStats = field(default_factory=ProfilerStats)
    #: Store-level statistics (shared across namespaces).
    store: CacheStats | None = None
    #: Worker threads actually used for partition orchestration.
    num_workers: int = 1

    @property
    def profile_cache_hits(self) -> int:
        return self.profiler.memory_hits + self.profiler.persistent_hits

    @property
    def backend_estimate_calls(self) -> int:
        return self.profiler.backend_estimate_calls


@dataclass
class KorchResult:
    """Model-level result of the Korch pipeline."""

    graph: Graph
    spec: GpuSpec
    partitions: list[PartitionResult]
    executable: ModelExecutable
    tuning: TuningTimeReport
    cache: CacheReport = field(default_factory=CacheReport)

    @property
    def latency_s(self) -> float:
        """Predicted end-to-end latency (sum over partitions and kernels)."""
        return sum(part.latency_s for part in self.partitions)

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3

    @property
    def num_kernels(self) -> int:
        return sum(part.num_kernels for part in self.partitions)

    @property
    def num_primitives(self) -> int:
        return sum(len(part.orchestration.strategy.pg.nodes) for part in self.partitions)

    @property
    def num_candidate_kernels(self) -> int:
        return sum(part.orchestration.num_candidates for part in self.partitions)

    @property
    def stage_seconds(self) -> dict[str, float]:
        """Wall-clock seconds per engine stage, summed over partitions."""
        totals: dict[str, float] = {}
        for part in self.partitions:
            for name, seconds in part.timings.items():
                totals[name] = totals.get(name, 0.0) + seconds
        return totals

    def summary(self) -> dict[str, float | int | str]:
        """Flat summary used by reports and benchmarks."""
        summary: dict[str, float | int | str] = {
            "model": self.graph.name,
            "gpu": self.spec.name,
            "latency_ms": self.latency_ms,
            "num_partitions": len(self.partitions),
            "num_primitives": self.num_primitives,
            "num_candidate_kernels": self.num_candidate_kernels,
            "num_kernels": self.num_kernels,
            "tuning_hours": self.tuning.total_hours,
            "plan_cache": self.cache.plan_cache,
            "partitions_replayed": self.cache.partitions_replayed,
            "profile_cache_hits": self.cache.profile_cache_hits,
            "backend_estimate_calls": self.cache.backend_estimate_calls,
            "num_workers": self.cache.num_workers,
        }
        stage_seconds = self.stage_seconds
        for name in STAGE_ORDER:
            summary[f"stage_{name}_s"] = round(stage_seconds.get(name, 0.0), 6)
        return summary
