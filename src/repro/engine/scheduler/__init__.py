"""Pluggable scheduler/executor core of the Korch engine.

Separates *what runs* (:class:`~repro.engine.scheduler.task.Task` graphs
over stage contexts) from *where it runs*
(:class:`~repro.engine.scheduler.executors.Executor` implementations), with
a :class:`~repro.engine.scheduler.scheduler.Scheduler` doing dependency
ordering, admission control and per-model fair dispatch in between.  See
each module's docstring for the contract.
"""

from .executors import Executor, ProcessExecutor, SerialExecutor, ThreadExecutor
from .scheduler import Scheduler, SchedulerError
from .task import Dep, DependencyFailed, Task, TaskCancelled, TaskError
from .worker import PrologueResult, run_partition_prologue

__all__ = [
    "Dep",
    "Task",
    "TaskError",
    "TaskCancelled",
    "DependencyFailed",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "Scheduler",
    "SchedulerError",
    "PrologueResult",
    "run_partition_prologue",
]
