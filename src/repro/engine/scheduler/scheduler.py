"""The scheduler: topological dispatch of tasks onto pluggable executors.

``Scheduler.submit`` takes a batch of :class:`~repro.engine.scheduler.task.Task`
objects, validates the dependency graph (unique keys, known deps, acyclic —
a topological check up front, so a bad graph fails loudly instead of
deadlocking), and dispatches tasks whose dependencies have completed onto
the executor registered for their ``kind``.  Scheduling policy:

* **Admission cap** — at most ``admission_cap`` tasks are in flight across
  all executors at once (``None`` = unlimited).  This is what bounds one
  ``optimize_many`` call's concurrency regardless of executor pool sizes.
* **Priority** — among ready tasks, lower ``priority`` dispatches first.
  The engine uses this to drain in-flight partitions (profile/solve) before
  admitting new ones (fission), keeping memory bounded.
* **Per-model fairness** — within a priority class, dispatch round-robins
  across ``model_id`` so one big model cannot starve the rest of the batch.

Every task gets a :class:`concurrent.futures.Future`.  Failures propagate:
a task that raises (or whose process-pool worker dies) fails its future, and
every transitive dependent fails with :class:`DependencyFailed` — nothing
ever hangs waiting on a dead dependency.  Cancelling a future before
dispatch keeps the task from running and cancels its dependents.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import CancelledError, Future
from typing import Any, Mapping, Sequence

from ...metrics import MetricRegistry
from .executors import Executor
from .task import Dep, DependencyFailed, Task, TaskCancelled

__all__ = ["SchedulerError", "Scheduler"]


class SchedulerError(RuntimeError):
    """Invalid task graph or scheduler misuse."""


class _ReadyQueue:
    """Priority buckets with round-robin across models inside each bucket."""

    def __init__(self) -> None:
        #: priority -> model_id -> FIFO of tasks; model order is rotation order.
        self._buckets: dict[int, dict[int, deque[Task]]] = {}

    def __len__(self) -> int:
        return sum(
            len(queue) for bucket in self._buckets.values() for queue in bucket.values()
        )

    def push(self, task: Task) -> None:
        bucket = self._buckets.setdefault(task.priority, {})
        bucket.setdefault(task.model_id, deque()).append(task)

    def pop(self) -> Task | None:
        for priority in sorted(self._buckets):
            bucket = self._buckets[priority]
            if not bucket:
                continue
            # Take from the first model in rotation order, then move that
            # model to the back so the next pop serves a different model.
            model_id, queue = next(iter(bucket.items()))
            task = queue.popleft()
            del bucket[model_id]
            if queue:
                bucket[model_id] = queue
            if not bucket:
                del self._buckets[priority]
            return task
        return None

    def remove(self, key: str) -> Task | None:
        for priority, bucket in list(self._buckets.items()):
            for model_id, queue in list(bucket.items()):
                for task in queue:
                    if task.key == key:
                        queue.remove(task)
                        # Never leave an empty deque behind: pop() assumes
                        # every present queue is non-empty.
                        if not queue:
                            del bucket[model_id]
                        if not bucket:
                            del self._buckets[priority]
                        return task
        return None


class Scheduler:
    """Dispatches dependency-ordered tasks onto named executors."""

    def __init__(
        self,
        executors: Executor | Mapping[str, Executor],
        admission_cap: int | None = None,
        metrics: MetricRegistry | None = None,
    ) -> None:
        if isinstance(executors, Executor):
            executors = {"default": executors}
        if "default" not in executors:
            raise SchedulerError("scheduler needs a 'default' executor")
        self.executors: dict[str, Executor] = dict(executors)
        self.admission_cap = admission_cap if admission_cap is None else max(1, admission_cap)
        self.metrics = metrics
        self._dispatch_wait_hist = self._ready_gauge = self._in_flight_gauge = None
        self._task_seconds_hist = None
        if metrics is not None:
            self._dispatch_wait_hist = metrics.histogram(
                "korch_scheduler_dispatch_wait_seconds",
                "Seconds tasks spent ready before dispatching to an executor",
            )
            self._task_seconds_hist = metrics.histogram(
                "korch_scheduler_task_seconds",
                "Executor-side task seconds by task kind",
                labelnames=("kind",),
            )
            self._ready_gauge = metrics.gauge(
                "korch_scheduler_ready_depth", "Tasks ready but not yet dispatched"
            )
            self._in_flight_gauge = metrics.gauge(
                "korch_scheduler_in_flight", "Tasks currently running on executors"
            )

        self._lock = threading.RLock()
        self._futures: dict[str, Future] = {}
        self._tasks: dict[str, Task] = {}
        #: Successful results only; failed/cancelled outcomes live in
        #: ``_failures`` so a later batch depending on them fails too
        #: instead of resolving its ``Dep`` to ``None``.
        self._results: dict[str, Any] = {}
        self._failures: dict[str, tuple[BaseException | None, bool]] = {}
        self._remaining: dict[str, set[str]] = {}  # key -> unfinished deps
        self._dependents: dict[str, list[str]] = {}
        self._ready = _ReadyQueue()
        #: Metrics bookkeeping: when each key became ready / was dispatched.
        self._ready_since: dict[str, float] = {}
        self._dispatched_at: dict[str, float] = {}
        self._in_flight = 0
        self._pumping = False
        self._closed = False
        self._idle = threading.Condition(self._lock)

    # ------------------------------------------------------------------- api
    def submit(self, tasks: Sequence[Task]) -> dict[str, Future]:
        """Enqueue ``tasks``; returns one future per task key."""
        self._validate(tasks)
        with self._lock:
            if self._closed:
                raise SchedulerError("scheduler is closed")
            futures: dict[str, Future] = {}
            for task in tasks:
                future: Future = Future()
                self._futures[task.key] = future
                self._tasks[task.key] = task
                futures[task.key] = future
            for task in tasks:
                failed_dep = next((d for d in task.deps if d in self._failures), None)
                if failed_dep is not None:
                    error, cancelled = self._failures[failed_dep]
                    self._fail_dependent_locked(task.key, failed_dep, error, cancelled)
                    continue
                pending = {
                    dep for dep in task.deps if dep not in self._results
                }
                for dep in pending:
                    self._dependents.setdefault(dep, []).append(task.key)
                if pending:
                    self._remaining[task.key] = pending
                else:
                    self._push_ready_locked(task)
            self._pump_locked()
            return futures

    def run(self, tasks: Sequence[Task]) -> dict[str, Any]:
        """Submit, wait for every task, and return results by key.

        Raises the first failure (in task submission order) after all tasks
        settle, mirroring the fail-fast behavior of a serial loop.
        """
        futures = self.submit(tasks)
        for future in futures.values():
            try:
                future.result()
            except (CancelledError, Exception):
                # Task failures re-raise in submission order below.  The
                # waiter's own KeyboardInterrupt/SystemExit must NOT be
                # swallowed here — they propagate immediately.
                pass
        for task in tasks:
            future = futures[task.key]
            if future.cancelled():
                raise CancelledError(f"task {task.key!r} was cancelled")
            error = future.exception()
            if error is not None:
                raise error
        return {key: future.result() for key, future in futures.items()}

    def set_admission_cap(self, cap: int | None) -> None:
        """Raise (or lift) the in-flight cap; shrinking is ignored.

        A long-lived scheduler serves batches whose concurrency needs differ;
        the cap only ever grows so an already-admitted wide batch is never
        starved by a later narrow one.  ``None`` removes the bound."""
        with self._lock:
            if cap is None:
                self.admission_cap = None
            elif self.admission_cap is not None:
                self.admission_cap = max(self.admission_cap, max(1, int(cap)))
            self._pump_locked()

    def forget(self, keys: Sequence[str]) -> None:
        """Retire settled tasks so a long-lived scheduler stays bounded.

        Drops the futures, results/failures and task records of ``keys``;
        every key must have settled (done, failed or cancelled) — forgetting
        in-flight work would break dependency resolution.  Unknown keys are
        ignored (idempotent), so callers can retire a batch from a ``finally``
        block without tracking partial failures."""
        with self._lock:
            unsettled = [
                key
                for key in keys
                if key in self._futures
                and key not in self._results
                and key not in self._failures
            ]
            if unsettled:
                raise SchedulerError(
                    f"cannot forget unsettled tasks: {sorted(unsettled)[:3]!r}"
                )
            for key in keys:
                self._futures.pop(key, None)
                self._tasks.pop(key, None)
                self._results.pop(key, None)
                self._failures.pop(key, None)
                self._dependents.pop(key, None)

    def cancel(self, key: str) -> bool:
        """Cancel a not-yet-dispatched task (and its dependents)."""
        with self._lock:
            future = self._futures.get(key)
            if future is None:
                return False
            if not future.cancel():
                return False
            self._remove_ready_locked(key)
            self._remaining.pop(key, None)
            self._settle_locked(key, cancelled=True)
            self._pump_locked()
            return True

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every submitted task has settled."""
        with self._idle:
            return self._idle.wait_for(self._quiescent_locked, timeout=timeout)

    def close(self, wait: bool = True, cancel_pending: bool = False) -> None:
        """Stop accepting tasks; optionally cancel the queued ones.

        With ``wait=True`` (default) blocks until in-flight work settles.
        Executors are owned by the caller and are *not* shut down here.
        """
        with self._lock:
            self._closed = True
            if cancel_pending:
                for key, future in list(self._futures.items()):
                    settled = key in self._results or key in self._failures
                    if not settled and future.cancel():
                        self._remove_ready_locked(key)
                        self._remaining.pop(key, None)
                        self._settle_locked(key, cancelled=True)
        if wait:
            self.drain()

    # ------------------------------------------------------------- internals
    def _quiescent_locked(self) -> bool:
        return self._in_flight == 0 and len(self._ready) == 0 and not self._remaining

    def _validate(self, tasks: Sequence[Task]) -> None:
        keys = [task.key for task in tasks]
        if len(set(keys)) != len(keys):
            raise SchedulerError("duplicate task keys in batch")
        with self._lock:
            clobbered = [key for key in keys if key in self._futures]
            if clobbered:
                raise SchedulerError(
                    f"task keys already submitted: {clobbered[:3]!r}"
                )
            known = set(self._tasks) | set(keys)
        batch = {task.key: task for task in tasks}
        for task in tasks:
            for dep in task.deps:
                if dep not in known:
                    raise SchedulerError(f"task {task.key!r} depends on unknown {dep!r}")
            if task.kind not in self.executors:
                raise SchedulerError(
                    f"task {task.key!r} has kind {task.kind!r} but no such executor"
                )
        # Cycle check (within the batch; completed tasks cannot form cycles).
        # Iterative three-color DFS with an explicit stack: dependency chains
        # come from real model graphs and routinely run thousands of tasks
        # deep, far past the interpreter recursion limit.
        state: dict[str, int] = {}  # 1 = on the stack, 2 = fully explored
        for root in batch:
            if root in state:
                continue
            state[root] = 1
            stack = [(root, iter(batch[root].deps))]
            while stack:
                key, deps = stack[-1]
                advanced = False
                for dep in deps:
                    if dep not in batch:
                        continue
                    mark = state.get(dep)
                    if mark == 1:
                        raise SchedulerError(f"dependency cycle through {dep!r}")
                    if mark is None:
                        state[dep] = 1
                        stack.append((dep, iter(batch[dep].deps)))
                        advanced = True
                        break
                if not advanced:
                    state[key] = 2
                    stack.pop()

        # Resource-ordering check: two tasks declaring the same
        # ``meta["resources"]`` entry (e.g. a store namespace) must be
        # dependency-ordered or their accesses race.  Imported lazily so the
        # scheduler pays nothing when no task declares resources.
        if any(task.meta.get("resources") for task in tasks):
            from ...analysis.verify.concurrency import check_task_resources

            findings = check_task_resources(tasks)
            if findings:
                raise SchedulerError(
                    "unordered shared-resource access:\n"
                    + "\n".join(d.format() for d in findings)
                )

    def _pump_locked(self) -> None:
        """Dispatch ready tasks up to the admission cap.

        Re-entrant calls (a SerialExecutor completes inline, its done
        callback lands back here) just mark more work available; the
        outermost pump loops until nothing is dispatchable.
        """
        if self._pumping:
            return
        self._pumping = True
        try:
            while True:
                if self.admission_cap is not None and self._in_flight >= self.admission_cap:
                    return
                task = self._ready.pop()
                if task is None:
                    return
                if self._dispatch_wait_hist is not None:
                    became_ready = self._ready_since.pop(task.key, None)
                    if became_ready is not None:
                        self._dispatch_wait_hist.observe(time.perf_counter() - became_ready)
                    self._ready_gauge.set(len(self._ready))
                self._dispatch_locked(task)
        finally:
            self._pumping = False
            self._idle.notify_all()

    def _dispatch_locked(self, task: Task) -> None:
        future = self._futures[task.key]
        if not future.set_running_or_notify_cancel():
            self._settle_locked(task.key, cancelled=True)
            return
        try:
            args = tuple(
                self._results[arg.key] if isinstance(arg, Dep) else arg for arg in task.args
            )
            inner = self.executors[task.kind].submit(task.fn, *args)
        except BaseException as exc:  # noqa: BLE001 - submission failure = task failure
            future.set_exception(exc)
            self._settle_locked(task.key, error=exc)
            return
        self._in_flight += 1
        if self._task_seconds_hist is not None:
            self._dispatched_at[task.key] = time.perf_counter()
            self._in_flight_gauge.set(self._in_flight)
        inner.add_done_callback(lambda done, key=task.key: self._on_done(key, done))

    def _on_done(self, key: str, inner: Future) -> None:
        with self._lock:
            self._in_flight -= 1
            if self._task_seconds_hist is not None:
                dispatched = self._dispatched_at.pop(key, None)
                if dispatched is not None:
                    self._task_seconds_hist.labels(kind=self._tasks[key].kind).observe(
                        time.perf_counter() - dispatched
                    )
                self._in_flight_gauge.set(self._in_flight)
            future = self._futures[key]
            error = inner.exception()
            if error is not None:
                future.set_exception(error)
                self._settle_locked(key, error=error)
            else:
                result = inner.result()
                future.set_result(result)
                self._settle_locked(key, result=result)
            self._pump_locked()

    def _push_ready_locked(self, task: Task) -> None:
        self._ready.push(task)
        if self._dispatch_wait_hist is not None:
            self._ready_since[task.key] = time.perf_counter()
            self._ready_gauge.set(len(self._ready))

    def _remove_ready_locked(self, key: str) -> Task | None:
        task = self._ready.remove(key)
        self._ready_since.pop(key, None)
        if task is not None and self._ready_gauge is not None:
            self._ready_gauge.set(len(self._ready))
        return task

    def _settle_locked(
        self,
        key: str,
        result: Any = None,
        error: BaseException | None = None,
        cancelled: bool = False,
    ) -> None:
        """Record an outcome and release or fail the task's dependents.

        Failure propagation walks the dependent graph with an explicit
        worklist: a failing root of a thousands-deep chain must fail every
        transitive dependent without recursing once per edge.
        """
        worklist: list[tuple[str, Any, BaseException | None, bool]] = [
            (key, result, error, cancelled)
        ]
        while worklist:
            key, result, error, cancelled = worklist.pop()
            failed = error is not None or cancelled
            if failed:
                self._failures[key] = (error, cancelled)
            else:
                self._results[key] = result
            for dependent in self._dependents.pop(key, []):
                if failed:
                    exc = self._fail_one_locked(dependent, key, error, cancelled)
                    if exc is not None:
                        # The dependent failed with ``exc``; its own
                        # dependents see a plain dependency failure.
                        worklist.append((dependent, None, exc, False))
                    continue
                pending = self._remaining.get(dependent)
                if pending is None:
                    continue
                pending.discard(key)
                if not pending:
                    del self._remaining[dependent]
                    self._push_ready_locked(self._tasks[dependent])
        self._idle.notify_all()

    def _fail_one_locked(
        self, key: str, dep: str, error: BaseException | None, cancelled: bool
    ) -> BaseException | None:
        """Fail one task because its dependency settled badly; returns the
        exception set on its future (``None`` when it was already settled)."""
        self._remaining.pop(key, None)
        self._remove_ready_locked(key)
        future = self._futures[key]
        if future.cancelled() or future.done():
            return None
        exc: BaseException = (
            TaskCancelled(key, dep) if cancelled else DependencyFailed(key, dep, error)
        )
        future.set_exception(exc)
        return exc

    def _fail_dependent_locked(
        self, key: str, dep: str, error: BaseException | None, cancelled: bool
    ) -> None:
        exc = self._fail_one_locked(key, dep, error, cancelled)
        if exc is not None:
            self._settle_locked(key, error=exc)
