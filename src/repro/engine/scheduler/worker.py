"""Process-pool side of the engine: the picklable partition prologue.

``ProcessExecutor`` tasks run in worker processes that share nothing with
the engine — no backends, no profiler caches, no SQLite store.  This module
is everything such a worker needs: a pure function over picklable inputs
(:class:`~repro.partition.Partition`, :class:`~repro.engine.config.KorchConfig`,
:class:`~repro.gpu.specs.GpuSpec`) that runs the GIL-bound prologue of the
staged flow — operator fission, primitive-graph optimization and candidate
enumeration — and returns a picklable :class:`PrologueResult`.

Two kinds of state produced in the child are routed back through the parent:

* **Profile-cache writes** — the graph optimizer prices singleton kernels
  through a :class:`~repro.gpu.profiler.KernelProfiler`; in the parent those
  writes land in the shared persistent cache.  The child records them with a
  :class:`_RecordingProfileCache` and the parent replays them into its own
  cache (``tuned=False``, exactly like the parent-side cost-proxy profiler),
  so later models still hit warm entries whichever executor produced them.
* **Identify-memo hits** — each worker process keeps its own
  :class:`~repro.engine.memo.IdentifyMemo`; hits are reported back and folded
  into ``EngineStats.identify_memo_hits``.

Determinism: fission, graph optimization and enumeration are pure functions
of their inputs, so a prologue computed in a worker process is bit-identical
to one computed on an engine thread.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from ...fission import FissionEngine, FissionReport
from ...gpu.profiler import KernelProfiler, ProfilerStats
from ...gpu.specs import GpuSpec
from ...orchestration import KernelIdentifierReport
from ...orchestration.identifier import CandidateSpec, enumerate_candidate_specs
from ...partition import Partition
from ...primitives.graph import PrimitiveGraph
from ...transforms import GraphOptimizerReport, PrimitiveGraphOptimizer
from ..memo import IdentifyMemo

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..config import KorchConfig

__all__ = [
    "PrologueResult",
    "run_partition_prologue",
    "install_profile_snapshot",
    "profile_snapshot_size",
]


@dataclass
class PrologueResult:
    """Everything the prologue produced, shippable across the process gap."""

    pg: PrimitiveGraph
    fission_report: FissionReport
    optimizer_report: GraphOptimizerReport | None
    #: Enumerated candidate specs, or ``None`` when enumeration was skipped
    #: (a stored plan makes replay likely; the parent enumerates on replay
    #: failure only).
    specs: list[CandidateSpec] | None
    report: KernelIdentifierReport | None
    #: Whether the worker-local identify memo answered the enumeration.
    memo_hit: bool = False
    #: Graph-optimizer profile-cache writes to replay in the parent:
    #: (signature, profile-or-None, tuned) triples.
    cache_writes: list[tuple] = field(default_factory=list)
    #: The child graph-opt profiler's accounting (merged into the parent's).
    profiler_stats: ProfilerStats = field(default_factory=ProfilerStats)
    #: Wall-clock seconds per stage name, recorded in the worker.
    timings: dict[str, float] = field(default_factory=dict)


class _RecordingProfileCache:
    """Duck-typed persistent profile cache that records writes for the parent.

    Reads always miss (the child has no view of the parent's cache); writes
    are captured as picklable triples.  The profiler's own in-memory memo
    still deduplicates within the partition.
    """

    def __init__(self, writes: list[tuple]) -> None:
        self._writes = writes

    def get(self, signature: tuple, key: str | None = None):
        return False, None, False

    def put(self, signature: tuple, profile, tuned: bool = True, key: str | None = None) -> None:
        self._writes.append((signature, profile, tuned))

    def for_backends(self, backends: Sequence) -> "_RecordingProfileCache":
        return self


class _SnapshotProfileCache(_RecordingProfileCache):
    """Recording cache whose reads are answered from a shipped snapshot.

    The engine broadcasts a ``{profile_key: payload}`` snapshot of its
    persistent profile cache into every worker at :meth:`warm_up`
    (:func:`install_profile_snapshot`); reads then resolve exactly like
    :meth:`repro.cache.PersistentProfileCache.get` — same content-addressed
    key, same payload decoding — so a snapshot hit returns byte-for-byte
    what the parent-side profiler would have read from the store.  Misses
    fall through to live profiling and their writes still travel back to the
    parent, which is what keeps results bit-identical with or without a
    snapshot: the snapshot only moves *where* a cached answer is read.
    """

    def __init__(self, snapshot: dict[str, dict], spec, backends: Sequence, writes: list[tuple]) -> None:
        super().__init__(writes)
        from ...cache.keys import backend_fingerprint, profile_key

        self._snapshot = snapshot
        self._spec = spec
        self._backend_names = backend_fingerprint(backends)
        self._profile_key = profile_key

    def get(self, signature: tuple, key: str | None = None):
        from ...cache.profile_cache import decode_profile

        payload = self._snapshot.get(
            key or self._profile_key(signature, self._spec, self._backend_names)
        )
        if not isinstance(payload, dict):
            return False, None, False
        ok, profile = decode_profile(payload)
        if not ok:
            return False, None, False
        return True, profile, bool(payload.get("tuned", True))

    def for_backends(self, backends: Sequence) -> "_SnapshotProfileCache":
        return _SnapshotProfileCache(self._snapshot, self._spec, backends, self._writes)


#: Per-worker-process profile snapshot, installed by the warm-up broadcast.
_WORKER_SNAPSHOT: dict[str, dict] | None = None


def install_profile_snapshot(snapshot: dict[str, dict]) -> int:
    """Warm-up broadcast target: adopt the parent's profile-cache snapshot.

    Runs once per worker process (module-level so it pickles under spawn).
    Re-broadcasts replace the previous snapshot wholesale — the parent's
    store is the source of truth and its newest export wins.
    """
    global _WORKER_SNAPSHOT
    # korch-lint: ignore[conc/global-mutation] one snapshot per worker process; pool workers are single-threaded
    _WORKER_SNAPSHOT = dict(snapshot)
    return len(_WORKER_SNAPSHOT)


def profile_snapshot_size() -> int:
    """Submit-able probe: entries in this process's installed snapshot."""
    return len(_WORKER_SNAPSHOT or {})


#: Per-worker-process identify memo; repeated partition structures arriving
#: at the same worker skip enumeration without any cross-process traffic.
_WORKER_MEMO: IdentifyMemo | None = None


def _worker_memo(max_entries: int) -> IdentifyMemo:
    global _WORKER_MEMO
    if _WORKER_MEMO is None or _WORKER_MEMO.max_entries != max_entries:
        # korch-lint: ignore[conc/global-mutation] one memo per worker process; pool workers are single-threaded
        _WORKER_MEMO = IdentifyMemo(max_entries)
    return _WORKER_MEMO


def run_partition_prologue(
    partition: Partition,
    config: "KorchConfig",
    spec: GpuSpec,
    enumerate_specs: bool = True,
) -> PrologueResult:
    """Fission + graph optimization (+ enumeration) for one partition."""
    import time

    timings: dict[str, float] = {}
    writes: list[tuple] = []

    verify_full = config.engine.verify_level == "full"

    started = time.perf_counter()
    pg, fission_report = FissionEngine().run(partition.graph)
    timings["fission"] = time.perf_counter() - started
    if verify_full:
        # Lazy: the verify package is debug-mode-only; default workers must
        # not import it.  DiagnosticError pickles and fails the task's future.
        from ...analysis.verify import checked_fission

        checked_fission(partition.graph, pg)

    optimizer_report = None
    profiler_stats = ProfilerStats()
    started = time.perf_counter()
    if config.enable_graph_optimizer:
        if _WORKER_SNAPSHOT:
            from ...backends import default_korch_backends

            # Same backend context as the profiler below (its default set),
            # so snapshot keys line up with what the parent's graph-opt
            # cache wrote.
            cache = _SnapshotProfileCache(
                _WORKER_SNAPSHOT, spec, default_korch_backends(), writes
            )
        else:
            cache = _RecordingProfileCache(writes)
        profiler = KernelProfiler(
            spec,
            persistent_cache=cache,
            tuning_authoritative=False,
        )
        verifier = None
        if verify_full:
            from ...analysis.verify import checked_rewrite

            verifier = checked_rewrite
        graph_optimizer = PrimitiveGraphOptimizer(
            spec, config=config.graph_optimizer, profiler=profiler, verifier=verifier
        )
        pg, optimizer_report = graph_optimizer.optimize(pg)
        profiler_stats.merge(profiler.stats)
    timings["graph_opt"] = time.perf_counter() - started

    specs: list[CandidateSpec] | None = None
    report: KernelIdentifierReport | None = None
    memo_hit = False
    if enumerate_specs:
        started = time.perf_counter()
        memo = _worker_memo(config.engine.identify_memo_entries)
        cached = memo.get(pg, config.identifier)
        if cached is not None:
            specs, report = cached
            memo_hit = True
        else:
            report = KernelIdentifierReport()
            specs = enumerate_candidate_specs(pg, config.identifier, report)
            memo.put(pg, config.identifier, specs, report)
        timings["identify"] = time.perf_counter() - started

    return PrologueResult(
        pg=pg,
        fission_report=fission_report,
        optimizer_report=optimizer_report,
        specs=specs,
        report=report,
        memo_hit=memo_hit,
        cache_writes=writes,
        profiler_stats=profiler_stats,
        timings=timings,
    )
