"""Scheduler task model: what runs, after what, and where.

A :class:`Task` is one unit of work — in the engine, one stage-group run over
a :class:`~repro.engine.context.StageContext` — with declared dependencies on
other tasks.  Tasks carry three pieces of scheduling metadata:

``kind``
    Which executor runs the task (``"default"`` or ``"cpu"``); the scheduler
    maps kinds to :class:`~repro.engine.scheduler.executors.Executor`
    instances.  CPU-kind tasks may run in another *process*, so their
    function and arguments must be picklable.
``model_id`` / ``priority``
    Ready-queue ordering: lower priority values dispatch first, and within a
    priority class the scheduler round-robins across model ids so one large
    model cannot starve the others.

Dependency results flow through :class:`Dep` placeholders: an argument equal
to ``Dep("other-task")`` is substituted with that task's result at dispatch
time, which keeps task functions pure and picklable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Dep", "Task", "TaskError", "DependencyFailed", "TaskCancelled"]


class TaskError(RuntimeError):
    """Base class for scheduler-raised task failures."""


class DependencyFailed(TaskError):
    """A task could not run because one of its dependencies failed."""

    def __init__(self, key: str, dep: str, cause: BaseException | None = None) -> None:
        # Truncate the cause's repr: failure propagation chains one
        # DependencyFailed inside the next, and embedding each full message
        # in its successor makes a thousands-deep chain build
        # quadratically-sized strings.
        cause_repr = repr(cause)
        if len(cause_repr) > 200:
            cause_repr = cause_repr[:200] + "...'"
        super().__init__(f"task {key!r} skipped: dependency {dep!r} failed ({cause_repr})")
        self.key = key
        self.dep = dep
        self.cause = cause


class TaskCancelled(TaskError):
    """A task could not run because a dependency was cancelled."""

    def __init__(self, key: str, dep: str) -> None:
        super().__init__(f"task {key!r} skipped: dependency {dep!r} was cancelled")
        self.key = key
        self.dep = dep


@dataclass(frozen=True)
class Dep:
    """Placeholder argument resolved to the named task's result at dispatch."""

    key: str


@dataclass
class Task:
    """One schedulable unit of work."""

    #: Unique key within one :meth:`Scheduler.submit` batch.
    key: str
    #: The work; called as ``fn(*args)`` with :class:`Dep` args resolved.
    fn: Callable[..., Any]
    args: tuple = ()
    #: Keys of tasks that must complete before this one may dispatch.
    deps: tuple[str, ...] = ()
    #: Executor routing key ("default" unless the task is CPU-bound work
    #: destined for a process pool).
    kind: str = "default"
    #: Model the task belongs to (ready-queue fairness across models).
    model_id: int = 0
    #: Dispatch class: lower runs first among ready tasks.  The engine gives
    #: later pipeline stages lower values so in-flight partitions drain
    #: before new ones start (bounded memory, depth-first progress).
    priority: int = 0
    #: Free-form metadata (not interpreted by the scheduler).
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.key:
            raise ValueError("task key must be non-empty")
        if self.key in self.deps:
            raise ValueError(f"task {self.key!r} depends on itself")
