"""Pluggable executors: *where* scheduler tasks run.

The scheduler separates what runs (tasks and their dependencies) from where
it runs (an :class:`Executor`).  Three implementations:

``SerialExecutor``
    Runs submissions inline on the calling thread.  This is the engine's
    ``num_workers=1`` fast path — zero pool overhead, and execution order is
    exactly the scheduler's dispatch order, which keeps serial results (and
    their stage timings) bit-identical to the pre-scheduler engine.
``ThreadExecutor``
    A grow-only thread pool, replicating the engine's historical lifetime
    pool: sized by the largest request so far (never above ``cap``), shared
    by every ``optimize_many`` call, per-call concurrency bounded by the
    scheduler's admission cap rather than by pool size.
``ProcessExecutor``
    A lazily-started :class:`concurrent.futures.ProcessPoolExecutor` for
    GIL-bound work (the identify stage's pure-Python enumeration).  Tasks
    and results must be picklable.  A crashed worker surfaces as
    ``BrokenProcessPool`` on the task's future — the scheduler turns that
    into a failed task, never a hang.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor

__all__ = ["Executor", "SerialExecutor", "ThreadExecutor", "ProcessExecutor"]

#: How long a warm-up task occupies its worker.  The sleep is a barrier: as
#: long as every already-started worker is still sleeping, the pool has no
#: idle worker to give the next warm-up task to and must start a fresh one,
#: which is what guarantees the broadcast reaches *every* worker exactly once.
_WARM_SLEEP_S = 0.2


class Executor:
    """Minimal executor contract the scheduler dispatches onto."""

    name = "executor"

    def submit(self, fn, /, *args) -> Future:
        raise NotImplementedError

    def ensure(self, workers: int) -> None:
        """Hint that up to ``workers`` concurrent submissions are coming."""

    def shutdown(self, wait: bool = True) -> None:
        """Release the executor's resources; idempotent."""

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)


class SerialExecutor(Executor):
    """Runs every submission inline; the future is already resolved."""

    name = "serial"

    def submit(self, fn, /, *args) -> Future:
        future: Future = Future()
        future.set_running_or_notify_cancel()
        try:
            result = fn(*args)
        except BaseException as exc:  # noqa: BLE001 - routed to the future
            future.set_exception(exc)
        else:
            future.set_result(result)
        return future


class ThreadExecutor(Executor):
    """Grow-only thread pool (the engine's historical pool semantics).

    Growing replaces the inner executor with a bigger one; the old pool is
    shut down *without* waiting — its already-submitted work still completes,
    and submission is serialized under the lock so nothing can be about to
    submit to it.  Shrinking never happens; smaller requests are bounded by
    the scheduler's admission cap instead.
    """

    name = "thread"

    def __init__(self, workers: int = 1, cap: int = 32, thread_name_prefix: str = "korch"):
        self.cap = max(1, int(cap))
        self._lock = threading.Lock()
        self._pool: ThreadPoolExecutor | None = None
        self._size = 0
        self._prefix = thread_name_prefix
        self._closed = False
        if workers:
            self.ensure(workers)

    @property
    def size(self) -> int:
        return self._size

    def ensure(self, workers: int) -> None:
        size = min(self.cap, max(1, int(workers)))
        with self._lock:
            if self._closed:
                raise RuntimeError("ThreadExecutor is shut down")
            if self._pool is None or self._size < size:
                if self._pool is not None:
                    self._pool.shutdown(wait=False)
                self._pool = ThreadPoolExecutor(
                    max_workers=size, thread_name_prefix=self._prefix
                )
                self._size = size

    def submit(self, fn, /, *args) -> Future:
        with self._lock:
            if self._closed:
                raise RuntimeError("ThreadExecutor is shut down")
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix=self._prefix
                )
                self._size = 1
            return self._pool.submit(fn, *args)

    def warm_up(self) -> None:
        """Start every pool thread now (``ThreadPoolExecutor`` spawns lazily).

        Same sleep-barrier broadcast as :meth:`ProcessExecutor.warm_up`, with
        the shared ``_WARM_SLEEP_S`` constant.  Raises ``RuntimeError`` after
        :meth:`shutdown` (submitting to a released pool would hang or leak);
        calling it repeatedly on a live executor is harmless.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("ThreadExecutor is shut down")
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix=self._prefix
                )
                self._size = 1
            pool, size = self._pool, self._size
        futures = [pool.submit(_warm) for _ in range(size)]
        for future in futures:
            future.result()

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
            self._size = 0
        if pool is not None:
            pool.shutdown(wait=wait)


class ProcessExecutor(Executor):
    """Process pool for CPU-bound tasks; functions and args must pickle.

    ``start_method`` defaults to ``"spawn"``: the parent engine is
    multi-threaded, and forking a threaded process is where the deadlocks
    live.  Workers are long-lived, so the spawn cost is paid once per worker
    per engine lifetime; :meth:`warm_up` pays it eagerly so benchmarks and
    latency-sensitive services keep it off the critical path.
    """

    name = "process"

    def __init__(self, workers: int = 0, start_method: str = "spawn"):
        self.workers = int(workers) if workers and workers > 0 else (os.cpu_count() or 1)
        self.start_method = start_method
        self._lock = threading.Lock()
        self._pool: ProcessPoolExecutor | None = None
        self._closed = False

    def _pool_locked(self) -> ProcessPoolExecutor:
        if self._closed:
            raise RuntimeError("ProcessExecutor is shut down")
        if self._pool is None:
            import multiprocessing

            context = multiprocessing.get_context(self.start_method)
            self._pool = ProcessPoolExecutor(max_workers=self.workers, mp_context=context)
        return self._pool

    def submit(self, fn, /, *args) -> Future:
        with self._lock:
            return self._pool_locked().submit(fn, *args)

    def warm_up(self, fn=None, args: tuple = ()) -> None:
        """Start every worker now (spawned workers import the package once).

        ``fn(*args)`` — when given — runs once in *each* worker before the
        barrier sleep: the broadcast hook the engine uses to install
        per-process state (e.g. a profile-cache snapshot, see
        :func:`repro.engine.scheduler.worker.install_profile_snapshot`).
        Both ``fn`` and ``args`` must pickle.  Raises ``RuntimeError`` after
        :meth:`shutdown`; repeat calls on a live pool just re-broadcast.
        """
        with self._lock:
            pool = self._pool_locked()
        # The warmers sleep briefly so no worker reports idle between the
        # submissions — that is what makes the pool spawn all of them.
        futures = [pool.submit(_warm_call, fn, args) for _ in range(self.workers)]
        for future in futures:
            future.result()

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait)


def _warm(sleep_s: float = _WARM_SLEEP_S) -> None:
    """Module-level so it pickles under the spawn start method."""
    import time

    time.sleep(sleep_s)


def _warm_call(fn, args: tuple, sleep_s: float = _WARM_SLEEP_S) -> None:
    """Run the broadcast hook (if any), then hold the worker at the barrier."""
    if fn is not None:
        fn(*args)
    _warm(sleep_s)
