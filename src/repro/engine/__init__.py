"""The staged Korch engine (Figure 1, decomposed).

The monolithic pipeline is split into composable stages with a uniform
``run(ctx) -> ctx`` contract (:mod:`~repro.engine.stages`), threaded over a
per-partition :class:`~repro.engine.context.StageContext`, and driven by a
long-lived :class:`~repro.engine.engine.KorchEngine` that owns the backends,
profiler caches, persistent store and executors across many models.

Concurrency flows through the pluggable scheduler/executor core
(:mod:`~repro.engine.scheduler`): each partition is a prep → identify →
finish task chain, dispatched with admission control and per-model fairness
onto a serial, thread or process executor
(``KorchEngineConfig.executor``).  On top of the engine,
:class:`~repro.engine.service.KorchService` provides the async serving
front-end: prioritized queued ``submit`` with futures, graceful drain and
per-request statistics.

:mod:`repro.pipeline` keeps the old ``KorchPipeline``/``optimize_model``
API as thin wrappers over a short-lived engine.
"""

from .admission import AdmissionConfig, AdmissionController
from .config import KorchConfig, KorchEngineConfig
from .context import StageContext
from .engine import EngineStats, KorchEngine
from .memo import IdentifyMemo, pg_structure_key
from .registry import (
    MAX_OPEN_STORES,
    close_store,
    max_open_stores,
    open_stores,
    set_max_open_stores,
    shared_store,
)
from .result import STAGE_ORDER, CacheReport, KorchResult, PartitionResult
from .scheduler import (
    Dep,
    DependencyFailed,
    Executor,
    ProcessExecutor,
    Scheduler,
    SchedulerError,
    SerialExecutor,
    Task,
    TaskCancelled,
    TaskError,
    ThreadExecutor,
)
from .service import (
    KorchService,
    Priority,
    ServiceClosed,
    ServiceDeadlineExceeded,
    ServiceOverloaded,
    ServiceReport,
    ServiceRequest,
    ServiceStats,
)
from .stages import (
    DEFAULT_STAGES,
    AssembleStage,
    FissionStage,
    GraphOptStage,
    IdentifyStage,
    ProfileStage,
    SolveStage,
    Stage,
    run_stages,
)

__all__ = [
    "KorchConfig",
    "KorchEngineConfig",
    "StageContext",
    "EngineStats",
    "KorchEngine",
    "CacheReport",
    "KorchResult",
    "PartitionResult",
    "STAGE_ORDER",
    "Stage",
    "FissionStage",
    "GraphOptStage",
    "IdentifyStage",
    "ProfileStage",
    "SolveStage",
    "AssembleStage",
    "DEFAULT_STAGES",
    "run_stages",
    "IdentifyMemo",
    "pg_structure_key",
    "Dep",
    "Task",
    "TaskError",
    "TaskCancelled",
    "DependencyFailed",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "Scheduler",
    "SchedulerError",
    "AdmissionConfig",
    "AdmissionController",
    "KorchService",
    "Priority",
    "ServiceClosed",
    "ServiceDeadlineExceeded",
    "ServiceOverloaded",
    "ServiceReport",
    "ServiceRequest",
    "ServiceStats",
    "shared_store",
    "open_stores",
    "close_store",
    "set_max_open_stores",
    "max_open_stores",
    "MAX_OPEN_STORES",
]
