"""The staged Korch engine (Figure 1, decomposed).

The monolithic pipeline is split into composable stages with a uniform
``run(ctx) -> ctx`` contract (:mod:`~repro.engine.stages`), threaded over a
per-partition :class:`~repro.engine.context.StageContext`, and driven by a
long-lived :class:`~repro.engine.engine.KorchEngine` that owns the backends,
profiler caches, persistent store and worker pool across many models —
including :meth:`~repro.engine.engine.KorchEngine.optimize_many`, which
interleaves partitions from different models onto the shared pool and reuses
warm profiles across models.

:mod:`repro.pipeline` keeps the old ``KorchPipeline``/``optimize_model``
API as thin wrappers over a short-lived engine.
"""

from .config import KorchConfig
from .context import StageContext
from .engine import EngineStats, KorchEngine
from .registry import MAX_OPEN_STORES, open_stores, shared_store
from .result import STAGE_ORDER, CacheReport, KorchResult, PartitionResult
from .stages import (
    DEFAULT_STAGES,
    AssembleStage,
    FissionStage,
    GraphOptStage,
    IdentifyStage,
    ProfileStage,
    SolveStage,
    Stage,
    run_stages,
)

__all__ = [
    "KorchConfig",
    "StageContext",
    "EngineStats",
    "KorchEngine",
    "CacheReport",
    "KorchResult",
    "PartitionResult",
    "STAGE_ORDER",
    "Stage",
    "FissionStage",
    "GraphOptStage",
    "IdentifyStage",
    "ProfileStage",
    "SolveStage",
    "AssembleStage",
    "DEFAULT_STAGES",
    "run_stages",
    "shared_store",
    "open_stores",
    "MAX_OPEN_STORES",
]
