"""Per-partition stage context.

A :class:`StageContext` is the single mutable value threaded through the
engine's stages (``run(ctx) -> ctx``).  It starts with the partition and the
collaborators the engine built for it (fission engine, orchestration
optimizer, optional graph optimizer, optional stored plan) and accumulates
every intermediate artifact — primitive graph, candidate specs, profiled
candidates, orchestration, executable — plus per-stage wall-clock timings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from ..fission import FissionEngine, FissionReport
from ..gpu.specs import GpuSpec
from ..orchestration import (
    CandidateKernel,
    CandidateSpec,
    KernelIdentifierReport,
    KernelOrchestrationOptimizer,
    OrchestrationResult,
)
from ..partition import Partition
from ..primitives.graph import PrimitiveGraph
from ..runtime.executable import Executable
from ..transforms import GraphOptimizerReport, PrimitiveGraphOptimizer
from .config import KorchConfig
from .result import PartitionResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache import PartitionPlan

__all__ = ["StageContext"]


@dataclass
class StageContext:
    """State carried through the stage pipeline for one partition."""

    # --- inputs (set by the engine before the first stage runs)
    partition: Partition
    config: KorchConfig
    spec: GpuSpec
    fission: FissionEngine
    optimizer: KernelOrchestrationOptimizer
    graph_optimizer: PrimitiveGraphOptimizer | None = None
    #: Stored plan to replay (skips identify/profile/solve when valid).
    plan: "PartitionPlan | None" = None

    # --- artifacts (filled in by successive stages)
    pg: PrimitiveGraph | None = None
    fission_report: FissionReport | None = None
    optimizer_report: GraphOptimizerReport | None = None
    candidate_specs: Sequence[CandidateSpec] | None = None
    identifier_report: KernelIdentifierReport | None = None
    candidates: list[CandidateKernel] | None = None
    orchestration: OrchestrationResult | None = None
    executable: Executable | None = None
    result: PartitionResult | None = None

    #: Wall-clock seconds per stage name, recorded by ``run_stages``.
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def replayed(self) -> bool:
        return bool(self.orchestration is not None and self.orchestration.extra.get("replayed"))
