"""Per-partition stage context.

A :class:`StageContext` is the single mutable value threaded through the
engine's stages (``run(ctx) -> ctx``).  It starts with the partition and the
collaborators the engine built for it (fission engine, orchestration
optimizer, optional graph optimizer, optional stored plan) and accumulates
every intermediate artifact — primitive graph, candidate specs, profiled
candidates, orchestration, executable — plus per-stage wall-clock timings.

Contexts are **picklable**: pickling keeps the data (partition, config,
spec, plan, artifacts) and drops the process-bound collaborators (fission
engine, optimizers, memo), which a receiving process rebuilds for itself.
That is what lets the scheduler ship stage work to process-pool workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from ..fission import FissionEngine, FissionReport
from ..gpu.specs import GpuSpec
from ..orchestration import (
    CandidateKernel,
    CandidateSpec,
    KernelIdentifierReport,
    KernelOrchestrationOptimizer,
    OrchestrationResult,
)
from ..partition import Partition
from ..primitives.graph import PrimitiveGraph
from ..runtime.executable import Executable
from ..transforms import GraphOptimizerReport, PrimitiveGraphOptimizer
from .config import KorchConfig
from .result import PartitionResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache import PartitionPlan

__all__ = ["StageContext"]


@dataclass
class StageContext:
    """State carried through the stage pipeline for one partition."""

    # --- inputs (set by the engine before the first stage runs)
    partition: Partition
    config: KorchConfig
    spec: GpuSpec
    fission: FissionEngine | None = None
    optimizer: KernelOrchestrationOptimizer | None = None
    graph_optimizer: PrimitiveGraphOptimizer | None = None
    #: Stored plan to replay (skips identify/profile/solve when valid).
    plan: "PartitionPlan | None" = None
    #: Engine-owned memo of enumeration results (see
    #: :class:`repro.engine.memo.IdentifyMemo`); ``None`` disables lookups.
    identify_memo: object | None = None
    #: Engine-owned memo of profiler-discarded specs keyed on structure +
    #: tensor types (:class:`repro.engine.memo.DominanceMemo`); ``None``
    #: disables the memo-guided pruning.
    dominance_memo: object | None = None
    #: Engine-owned memo of BLP solutions for near-miss warm incumbents
    #: (:class:`repro.engine.memo.SolveMemo`); ``None`` disables seeding.
    solve_memo: object | None = None

    # --- artifacts (filled in by successive stages)
    pg: PrimitiveGraph | None = None
    fission_report: FissionReport | None = None
    optimizer_report: GraphOptimizerReport | None = None
    candidate_specs: Sequence[CandidateSpec] | None = None
    identifier_report: KernelIdentifierReport | None = None
    candidates: list[CandidateKernel] | None = None
    orchestration: OrchestrationResult | None = None
    executable: Executable | None = None
    result: PartitionResult | None = None
    #: Execution report of the assembled executable, when an
    #: :class:`~repro.engine.stages.ExecuteStage` ran (plain data).
    execution: "object | None" = None

    #: Whether the identify stage was answered from the memo.
    identify_memo_hit: bool = False
    #: ``pg_profile_key`` of ``ctx.pg``, computed lazily by the first memo
    #: consumer and shared by the rest (plain string, picklable).
    profile_key: str | None = None
    #: Profiler accounting carried back from a process-pool prologue worker
    #: (merged into the partition's stats by the finish task).
    worker_profiler_stats: "object | None" = None

    #: Wall-clock seconds per stage name, recorded by ``run_stages``.
    timings: dict[str, float] = field(default_factory=dict)

    #: Verification findings accumulated by the ``verify_level`` debug mode
    #: (:mod:`repro.analysis.verify`); plain data, picklable.
    diagnostics: list = field(default_factory=list)

    #: Fields that never cross a process boundary: collaborators bound to the
    #: engine's process (caches, locks, SQLite handles ride inside them).
    _UNPICKLABLE = (
        "fission",
        "optimizer",
        "graph_optimizer",
        "identify_memo",
        "dominance_memo",
        "solve_memo",
    )

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        for name in self._UNPICKLABLE:
            state[name] = None
        return state

    @property
    def replayed(self) -> bool:
        return bool(self.orchestration is not None and self.orchestration.extra.get("replayed"))
