"""Portable cache snapshots: one file that any store can merge.

The shared cache tier's exchange format.  A serving fleet runs one
:class:`~repro.cache.store.CacheStore` per process (or per host); profiles
and plans are content-addressed, so every store converges on the same
payloads — they just discover them at different times.  Snapshots close the
loop: any store can :func:`dump_snapshot` its entries to a single JSON file,
and any other store can :func:`merge_snapshot` that file in (local entries
win; both sides computed the same bytes for the same key).  The cycle

    host A: ``python -m repro.cache export CACHE --out snap.json``
    host B: ``python -m repro.cache merge  CACHE --snapshot snap.json``

is lossless — export → merge into an empty store reproduces every row,
timestamps included — and commutative across stores, because conflicting
keys carry identical payloads by construction.  :class:`KorchService` can
publish snapshots automatically (``snapshot_path=``): merged on startup,
re-exported on drain/close and periodically while serving.

Distinct from :func:`repro.cache.profile_cache.export_snapshot`, which
builds the capped in-memory *profile* snapshot broadcast to process-pool
workers; this module moves whole stores between processes via files.

Format (JSON, one object)::

    {
      "format": "korch-cache-snapshot",
      "snapshot_version": 1,
      "schema_version": <store SCHEMA_VERSION>,
      "created_at": <unix seconds>,
      "entries": [[namespace, key, payload, created_at, last_used_at], ...]
    }
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from .store import SCHEMA_VERSION, CacheStore

__all__ = [
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "SnapshotError",
    "dump_snapshot",
    "load_snapshot",
    "merge_snapshot",
]

SNAPSHOT_FORMAT = "korch-cache-snapshot"
SNAPSHOT_VERSION = 1


class SnapshotError(ValueError):
    """The file is not a cache snapshot this version can merge."""


def dump_snapshot(
    store: CacheStore,
    path: str | os.PathLike,
    namespace: str | None = None,
) -> int:
    """Write ``store``'s rows (optionally one namespace) to ``path``.

    The write is atomic — a temporary file in the target directory is
    renamed into place — so a reader polling a published snapshot never
    sees a half-written file.  Returns the number of entries exported.
    """
    rows = store.dump(namespace)
    payload = {
        "format": SNAPSHOT_FORMAT,
        "snapshot_version": SNAPSHOT_VERSION,
        "schema_version": SCHEMA_VERSION,
        "created_at": time.time(),
        "entries": [list(row) for row in rows],
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    try:
        tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)
    except BaseException:
        # A failed write (disk full, permission change, interrupt) must not
        # strand the temp file next to the snapshot it failed to replace.
        tmp.unlink(missing_ok=True)
        raise
    return len(rows)


def load_snapshot(path: str | os.PathLike) -> list[tuple[str, str, str, float, float]]:
    """Read and validate a snapshot file; returns its rows.

    Raises :class:`SnapshotError` for anything that is not a compatible
    snapshot — wrong format marker, future snapshot version, or a store
    schema this build would misinterpret.  (The store itself *discards* an
    incompatible on-disk database; a snapshot merge must instead refuse,
    because the caller's local store is healthy and must not be polluted.)
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise SnapshotError(f"unreadable snapshot {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(f"{path} is not a {SNAPSHOT_FORMAT} file")
    if payload.get("snapshot_version") != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot version {payload.get('snapshot_version')!r} unsupported "
            f"(this build reads version {SNAPSHOT_VERSION})"
        )
    if payload.get("schema_version") != SCHEMA_VERSION:
        raise SnapshotError(
            f"snapshot carries store schema {payload.get('schema_version')!r}, "
            f"this build uses {SCHEMA_VERSION}"
        )
    entries = payload.get("entries")
    if not isinstance(entries, list):
        raise SnapshotError(f"{path} has no entries list")
    rows: list[tuple[str, str, str, float, float]] = []
    for entry in entries:
        if not (isinstance(entry, list) and len(entry) == 5):
            raise SnapshotError(f"{path} has a malformed entry: {entry!r}")
        namespace, key, value, created_at, last_used_at = entry
        rows.append(
            (str(namespace), str(key), str(value), float(created_at), float(last_used_at))
        )
    return rows


def merge_snapshot(store: CacheStore, path: str | os.PathLike) -> int:
    """Merge a snapshot file into ``store``; returns how many entries were
    added (existing local keys win, see :meth:`CacheStore.merge`)."""
    return store.merge(load_snapshot(path))
