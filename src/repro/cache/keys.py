"""Content-addressed cache keys.

Every cache entry is addressed by a SHA-256 digest of a *canonical JSON*
rendering of its identity: the kernel's structural signature (for profile
entries) or the full operator graph (for plan entries), always combined with
the GPU specification and the backend set that produced the result.  Keys are
pure functions of value — no filenames, counters or timestamps — so two
processes that profile the same kernel on the same GPU with the same backends
compute the same key, which is what makes the cache shareable across runs,
models and machines (the paper's profile-database amortization, §6.5).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any, Iterable, Sequence

import numpy as np

__all__ = [
    "canonicalize",
    "stable_hash",
    "backend_fingerprint",
    "gpu_fingerprint",
    "profile_key",
    "plan_key",
]


def canonicalize(value: Any) -> Any:
    """Reduce ``value`` to JSON-representable types, deterministically.

    Tuples and lists both become lists (kernel signatures use tuples purely
    as immutable containers), sets are sorted, enums take their value, numpy
    scalars/arrays take their Python equivalents and dataclasses their field
    dicts.  Dict ordering is handled later by ``json.dumps(sort_keys=True)``.
    """
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, enum.Enum):
        return canonicalize(value.value)
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return [value.shape, str(value.dtype), value.tolist()]
    if isinstance(value, (list, tuple)):
        return [canonicalize(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(canonicalize(v) for v in value)
    if isinstance(value, dict):
        return {str(k): canonicalize(v) for k, v in value.items()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return canonicalize(dataclasses.asdict(value))
    raise TypeError(f"cannot canonicalize {type(value).__name__} for cache keying")


def stable_hash(value: Any) -> str:
    """SHA-256 hex digest of the canonical JSON rendering of ``value``."""
    payload = json.dumps(canonicalize(value), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def backend_fingerprint(backends: Iterable) -> list[str]:
    """Order-independent identity of a backend set.

    Backends are latency *models*; two instances of the same class are
    interchangeable, so class name + display name identifies one — plus the
    backend's ``MODEL_VERSION``, which a backend bumps whenever its latency
    formula changes so persisted profiles computed under the old formula are
    invalidated rather than silently replayed.
    """
    return sorted(
        f"{type(b).__name__}:{b.name}:v{getattr(b, 'MODEL_VERSION', 1)}" for b in backends
    )


def gpu_fingerprint(spec) -> dict[str, Any]:
    """Identity of a GPU spec: all of its (frozen dataclass) fields."""
    return canonicalize(dataclasses.asdict(spec))


def profile_key(signature: tuple, spec, backend_names: Sequence[str]) -> str:
    """Cache key of one profiled kernel: structure + GPU + backend set."""
    return stable_hash(
        {
            "kind": "kernel-profile",
            "signature": signature,
            "gpu": gpu_fingerprint(spec),
            "backends": list(backend_names),
        }
    )


def plan_key(graph_dict: dict, spec, backend_names: Sequence[str], config_fingerprint: dict) -> str:
    """Cache key of one (graph, gpu, config) optimization plan."""
    return stable_hash(
        {
            "kind": "orchestration-plan",
            "graph": graph_dict,
            "gpu": gpu_fingerprint(spec),
            "backends": list(backend_names),
            "config": config_fingerprint,
        }
    )
