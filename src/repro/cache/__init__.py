"""Persistent, content-addressed caching for the Korch pipeline.

The paper amortizes its dominant cost — profiling candidate kernels —
through a TVM tuning database (§6.5).  This package generalizes that idea
into a durable cache layer for the whole pipeline:

* :mod:`~repro.cache.store` — a versioned, corruption-tolerant, LRU-capped
  SQLite key-value store shared by every cache namespace.
* :mod:`~repro.cache.keys` — content-addressed keys: SHA-256 over canonical
  JSON of (kernel signature | operator graph) + GPU spec + backend set.
* :mod:`~repro.cache.profile_cache` — per-kernel latency profiles, including
  negative ("no backend supports this") entries.
* :mod:`~repro.cache.plan_cache` — whole-model orchestration plans that let
  a warm run skip candidate enumeration and the BLP solve entirely.
"""

from .keys import (
    backend_fingerprint,
    canonicalize,
    gpu_fingerprint,
    plan_key,
    profile_key,
    stable_hash,
)
from .plan_cache import KernelPlan, ModelPlan, PartitionPlan, PlanCache
from .snapshot import (
    SNAPSHOT_VERSION,
    SnapshotError,
    dump_snapshot,
    load_snapshot,
    merge_snapshot,
)
from .profile_cache import (
    PersistentProfileCache,
    decode_profile,
    encode_profile,
    export_snapshot,
    snapshot_nbytes,
)
from .store import DEFAULT_DB_NAME, SCHEMA_VERSION, CacheStats, CacheStore

__all__ = [
    "CacheStats",
    "CacheStore",
    "DEFAULT_DB_NAME",
    "SCHEMA_VERSION",
    "PersistentProfileCache",
    "encode_profile",
    "decode_profile",
    "export_snapshot",
    "snapshot_nbytes",
    "SNAPSHOT_VERSION",
    "SnapshotError",
    "dump_snapshot",
    "load_snapshot",
    "merge_snapshot",
    "PlanCache",
    "ModelPlan",
    "PartitionPlan",
    "KernelPlan",
    "canonicalize",
    "stable_hash",
    "backend_fingerprint",
    "gpu_fingerprint",
    "profile_key",
    "plan_key",
]
