"""Cache maintenance CLI: ``python -m repro.cache <stats|gc|clear>``.

Operates on one persistent cache directory (``--dir``, or the
``KORCH_CACHE_DIR`` environment variable):

``stats``
    Per-namespace entry counts, on-disk database size, and the serialized
    size of the worker profile snapshot the engine would broadcast from this
    store (``--snapshot-entries`` caps it, like the engine's
    ``worker_snapshot_entries``).  (Hit/miss counters are in-process
    accounting and are reported by the running pipeline/engine —
    ``result.cache`` and ``EngineStats`` — not here.)

``gc``
    Garbage collection.  Drops profile *and* plan entries recorded under a
    backend ``MODEL_VERSION`` different from the one currently in the code
    (their latency formula changed, so the keys can never be looked up
    again), then trims each namespace's least-recently-used tail to
    ``--keep`` entries.

``clear``
    Drop every entry (or one ``--namespace``).

``export``
    Write the store to a portable snapshot file (``--out``), the shared
    cache tier's exchange format (:mod:`repro.cache.snapshot`).

``merge``
    Fold one or more snapshot files (``--snapshot``, repeatable) into the
    store, creating it if absent.  Existing local entries win; merging the
    same snapshot twice is a no-op, so fleets can republish freely.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from ..backends import FrameworkEagerBackend, default_korch_backends
from .profile_cache import export_snapshot, snapshot_nbytes
from .snapshot import SnapshotError, dump_snapshot, merge_snapshot
from .store import DEFAULT_DB_NAME, CacheStore

__all__ = ["main", "current_backend_versions", "stale_keys"]

#: Namespaces whose payloads record the backend set they were computed
#: under ("backends": [...]), making them eligible for staleness GC.
_VERSIONED_NAMESPACES = ("kernel-profiles", "orchestration-plans")


def current_backend_versions() -> dict[str, int]:
    """``{backend class name: MODEL_VERSION}`` for every known backend."""
    backends = [*default_korch_backends(enable_tensorrt=True), FrameworkEagerBackend()]
    return {type(b).__name__: getattr(b, "MODEL_VERSION", 1) for b in backends}


def stale_keys(
    store: CacheStore, namespace: str, versions: dict[str, int] | None = None
) -> list[str]:
    """Keys of one namespace's entries written under an outdated backend.

    Profile *and* plan payloads record the backend set that produced them.
    An entry is stale when any recorded backend names a class we know under
    a *different* ``MODEL_VERSION`` — its result was computed by a latency
    formula that no longer exists, and its content-addressed key (which
    embeds the old version) can never be looked up again.  Entries recording
    unknown classes, or none at all (written before payloads carried the
    backend list), are left alone.
    """
    versions = versions if versions is not None else current_backend_versions()
    stale: list[str] = []
    for key, payload in store.items(namespace):
        try:
            recorded = json.loads(payload).get("backends") or []
        except (json.JSONDecodeError, AttributeError):
            stale.append(key)  # undecodable payloads are dead weight too
            continue
        for name in recorded:
            parts = str(name).split(":")
            if len(parts) != 3 or not parts[2].startswith("v"):
                continue
            current = versions.get(parts[0])
            if current is not None and parts[2] != f"v{current}":
                stale.append(key)
                break
    return stale


def _open(directory: str) -> CacheStore:
    path = Path(directory)
    database = path if path.suffix == ".sqlite" else path / DEFAULT_DB_NAME
    if not database.exists():
        raise SystemExit(f"no cache database at {database}")
    return CacheStore(path)


def _db_size_bytes(store: CacheStore) -> int:
    return store.path.stat().st_size if store.path is not None and store.path.exists() else 0


def cmd_stats(args: argparse.Namespace) -> int:
    store = _open(args.dir)
    rows = {ns: store.count(ns) for ns in store.namespaces()}
    print(f"cache: {store.path}")
    print(f"size:  {_db_size_bytes(store) / 1e6:.2f} MB, {store.count()} entries")
    for namespace, count in rows.items():
        print(f"  {namespace}: {count}")
    # The worker snapshot the engine would broadcast from this store at
    # warm_up (capped like the default KorchEngineConfig), so the per-worker
    # shipping cost of the process executor is observable offline.
    snapshot = export_snapshot(store, args.snapshot_entries)
    print(
        f"worker snapshot: {len(snapshot)} entries, "
        f"{snapshot_nbytes(snapshot) / 1e6:.2f} MB serialized "
        f"(cap {args.snapshot_entries})"
    )
    store.close()
    return 0


def cmd_gc(args: argparse.Namespace) -> int:
    store = _open(args.dir)
    versions = current_backend_versions()
    dropped = 0
    for namespace in _VERSIONED_NAMESPACES:
        for key in stale_keys(store, namespace, versions):
            store.delete(namespace, key)
            dropped += 1
    trimmed = {ns: store.trim(ns, args.keep) for ns in store.namespaces()}
    print(f"gc: dropped {dropped} stale profile/plan entries")
    for namespace, dropped in trimmed.items():
        if dropped:
            print(f"  {namespace}: trimmed {dropped} LRU entries (keep={args.keep})")
    print(f"remaining: {store.count()} entries, {_db_size_bytes(store) / 1e6:.2f} MB")
    store.close()
    return 0


def cmd_clear(args: argparse.Namespace) -> int:
    store = _open(args.dir)
    before = store.count(args.namespace)
    store.clear(args.namespace)
    where = args.namespace or "all namespaces"
    print(f"cleared {before} entries from {where}")
    store.close()
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    store = _open(args.dir)
    count = dump_snapshot(store, args.out, namespace=args.namespace)
    where = args.namespace or "all namespaces"
    print(f"exported {count} entries ({where}) to {args.out}")
    store.close()
    return 0


def cmd_merge(args: argparse.Namespace) -> int:
    # Unlike the other commands, merge may *create* the store: converging a
    # fresh host onto the fleet's published snapshot is the point.
    store = CacheStore(args.dir)
    added = 0
    try:
        for snapshot in args.snapshot:
            added += merge_snapshot(store, snapshot)
    except SnapshotError as exc:
        store.close()
        raise SystemExit(str(exc)) from exc
    print(f"merged {added} new entries; store now holds {store.count()}")
    store.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cache",
        description="Maintain a persistent Korch profile/plan cache.",
    )
    parser.add_argument(
        "--dir",
        default=os.environ.get("KORCH_CACHE_DIR"),
        help="cache directory (default: $KORCH_CACHE_DIR)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    stats = sub.add_parser(
        "stats", help="per-namespace entry counts, database and snapshot size"
    )
    stats.add_argument(
        "--snapshot-entries",
        type=int,
        default=4096,
        help="worker-snapshot entry cap to size (default matches the engine: 4096)",
    )
    gc = sub.add_parser("gc", help="drop stale MODEL_VERSION entries and the LRU tail")
    gc.add_argument(
        "--keep",
        type=int,
        default=200_000,
        help="entries to keep per namespace after trimming (default: 200000)",
    )
    clear = sub.add_parser("clear", help="drop entries")
    clear.add_argument("--namespace", default=None, help="only this namespace")
    export = sub.add_parser("export", help="write the store to a snapshot file")
    export.add_argument("--out", required=True, help="snapshot file to write")
    export.add_argument("--namespace", default=None, help="only this namespace")
    merge = sub.add_parser("merge", help="fold snapshot files into the store")
    merge.add_argument(
        "--snapshot",
        action="append",
        required=True,
        help="snapshot file to merge (repeatable)",
    )

    args = parser.parse_args(argv)
    if args.dir is None:
        parser.error("--dir is required (or set KORCH_CACHE_DIR)")
    handler = {
        "stats": cmd_stats,
        "gc": cmd_gc,
        "clear": cmd_clear,
        "export": cmd_export,
        "merge": cmd_merge,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
