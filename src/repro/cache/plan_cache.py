"""Persistent plan cache: remembers the *outcome* of the whole pipeline.

A plan records, for every partition of a model, exactly which kernels the BLP
selected — each kernel as its primitive-node names, external inputs and
output tensors — plus the solver metadata.  Keyed on the full (operator
graph, GPU, backend set, config) identity, a stored plan lets a warm
``optimize_model`` skip the two expensive pipeline stages entirely: candidate
enumeration + profiling (Algorithm 1) and the per-partition BLP solve.  The
warm run replays the stored selection against the deterministically
re-derived primitive graph and re-prices each selected kernel through the
(persistent) profile cache, reproducing the cold strategy bit for bit.

Two tiers:

* an in-process memory tier mapping plan key -> the full
  :class:`~repro.pipeline.KorchResult`, for repeated ``optimize_model`` calls
  in one process, and
* the durable store tier holding the replayable JSON plan.

Replay is strictly validated (node names, tensors and partition count must
match the regenerated primitive graphs); any mismatch — a stale plan after a
code change, a corrupted payload — falls back to the cold path for that
partition and the plan is rewritten.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .store import CacheStore

__all__ = ["KernelPlan", "PartitionPlan", "ModelPlan", "PlanCache"]

_NAMESPACE = "orchestration-plans"
#: Payload format version; bump when the plan encoding changes.
_PAYLOAD_VERSION = 1


@dataclass
class KernelPlan:
    """One selected kernel, by name — enough to rebuild it from the graph."""

    node_names: list[str]
    external_inputs: list[str]
    outputs: list[str]

    def to_payload(self) -> dict[str, Any]:
        return {
            "nodes": list(self.node_names),
            "inputs": list(self.external_inputs),
            "outputs": list(self.outputs),
        }

    @staticmethod
    def from_payload(data: dict[str, Any]) -> "KernelPlan":
        return KernelPlan(
            node_names=[str(n) for n in data["nodes"]],
            external_inputs=[str(t) for t in data["inputs"]],
            outputs=[str(t) for t in data["outputs"]],
        )


@dataclass
class PartitionPlan:
    """The solved strategy of one partition, in execution order."""

    kernels: list[KernelPlan]
    objective_s: float
    solver_status: str
    solver_method: str
    num_candidates: int = 0

    def to_payload(self) -> dict[str, Any]:
        return {
            "kernels": [k.to_payload() for k in self.kernels],
            "objective_s": self.objective_s,
            "solver_status": self.solver_status,
            "solver_method": self.solver_method,
            "num_candidates": self.num_candidates,
        }

    @staticmethod
    def from_payload(data: dict[str, Any]) -> "PartitionPlan":
        return PartitionPlan(
            kernels=[KernelPlan.from_payload(k) for k in data["kernels"]],
            objective_s=float(data["objective_s"]),
            solver_status=str(data["solver_status"]),
            solver_method=str(data["solver_method"]),
            num_candidates=int(data.get("num_candidates", 0)),
        )


@dataclass
class ModelPlan:
    """Per-partition plans for one (graph, gpu, config) triple."""

    partitions: list[PartitionPlan] = field(default_factory=list)
    #: The cold run's model-level tuning report
    #: (:meth:`repro.backends.TuningTimeReport.as_payload`), so a fully
    #: replayed run reports the same Table 2 statistics as the run that
    #: computed the plan.  ``None`` on plans stored before this field existed.
    tuning: dict[str, Any] | None = None
    #: Backend fingerprint the plan was computed under.  Redundant with the
    #: *key* (which embeds it), but recorded in the payload so maintenance
    #: tooling can recognize plans whose keys became unreachable after a
    #: backend ``MODEL_VERSION`` bump (``python -m repro.cache gc``).
    backends: list[str] | None = None

    def to_payload(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "v": _PAYLOAD_VERSION,
            "partitions": [p.to_payload() for p in self.partitions],
        }
        if self.tuning is not None:
            payload["tuning"] = self.tuning
        if self.backends is not None:
            payload["backends"] = list(self.backends)
        return payload

    @staticmethod
    def from_payload(data: dict[str, Any]) -> "ModelPlan | None":
        try:
            if data.get("v") != _PAYLOAD_VERSION:
                return None
            tuning = data.get("tuning")
            backends = data.get("backends")
            return ModelPlan(
                partitions=[PartitionPlan.from_payload(p) for p in data["partitions"]],
                tuning=tuning if isinstance(tuning, dict) else None,
                backends=[str(b) for b in backends] if isinstance(backends, list) else None,
            )
        except (KeyError, TypeError, ValueError):
            return None


class PlanCache:
    """Two-tier (memory + store) cache of model optimization plans."""

    #: Memory-tier cap.  Full ``KorchResult`` objects are heavy (graphs,
    #: strategies, executables), so unlike the store tier this is small;
    #: evicted entries fall back to the disk-replay path.
    MAX_MEMORY_RESULTS = 32

    def __init__(self, store: CacheStore) -> None:
        self.store = store
        self._memory: dict[str, Any] = {}

    # -------------------------------------------------------- memory tier
    def get_result(self, key: str) -> Any | None:
        """In-process tier: the full KorchResult of an earlier optimize()."""
        result = self._memory.get(key)
        if result is not None:
            self._memory[key] = self._memory.pop(key)  # LRU touch
        return result

    def put_result(self, key: str, result: Any) -> None:
        self._memory.pop(key, None)
        self._memory[key] = result
        while len(self._memory) > self.MAX_MEMORY_RESULTS:
            self._memory.pop(next(iter(self._memory)))

    # --------------------------------------------------------- store tier
    def load(self, key: str) -> ModelPlan | None:
        """Replayable plan from the durable store, or ``None``."""
        payload = self.store.get_json(_NAMESPACE, key)
        if not isinstance(payload, dict):
            return None
        return ModelPlan.from_payload(payload)

    def save(self, key: str, plan: ModelPlan) -> None:
        self.store.put_json(_NAMESPACE, key, plan.to_payload())

    def __len__(self) -> int:
        return self.store.count(_NAMESPACE)
