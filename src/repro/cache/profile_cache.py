"""Persistent kernel-profile cache.

Wraps a :class:`~repro.cache.store.CacheStore` namespace with the
encode/decode logic for :class:`~repro.gpu.profiler.KernelProfile` objects,
keyed by the profiler's structural kernel signature plus the GPU spec and
backend set (:func:`repro.cache.keys.profile_key`).  "No backend supports
this kernel" is a cacheable answer too — negative entries save the profiler
from re-asking every backend about a kernel it already rejected.

This is the durable version of the paper's TVM-database amortization (§6.5):
structurally identical candidate kernels are profiled once *ever*, not once
per process.
"""

from __future__ import annotations

import json
import pickle
from typing import Any, Sequence

from ..gpu.cost_model import CostBreakdown
from ..gpu.features import ConvShape, GemmShape, KernelFeatures
from ..gpu.profiler import KernelProfile
from ..ir.dtype import DataType
from .keys import backend_fingerprint, profile_key
from .store import CacheStore

__all__ = [
    "PersistentProfileCache",
    "encode_profile",
    "decode_profile",
    "export_snapshot",
    "snapshot_nbytes",
]

_NAMESPACE = "kernel-profiles"
#: Payload format version; bump when the encoded shape of a profile changes.
_PAYLOAD_VERSION = 1


# ---------------------------------------------------------------- encoding
def encode_profile(profile: KernelProfile | None) -> dict[str, Any]:
    """JSON-representable payload for a profile (or a negative result)."""
    if profile is None:
        return {"v": _PAYLOAD_VERSION, "supported": False}
    features = profile.features
    return {
        "v": _PAYLOAD_VERSION,
        "supported": True,
        "latency_s": profile.latency_s,
        "backend": profile.backend,
        "breakdown": {
            "latency_s": profile.breakdown.latency_s,
            "launch_s": profile.breakdown.launch_s,
            "memory_s": profile.breakdown.memory_s,
            "compute_s": profile.breakdown.compute_s,
            "traffic_bytes": profile.breakdown.traffic_bytes,
            "flops": profile.breakdown.flops,
            "bandwidth_efficiency": profile.breakdown.bandwidth_efficiency,
            "compute_efficiency": profile.breakdown.compute_efficiency,
        },
        "features": {
            "num_primitives": features.num_primitives,
            "category_counts": dict(features.category_counts),
            "input_bytes": features.input_bytes,
            "output_bytes": features.output_bytes,
            "flops": features.flops,
            "linear_flops": features.linear_flops,
            "multipass_bytes": features.multipass_bytes,
            "output_elements": features.output_elements,
            "num_outputs": features.num_outputs,
            "branch_shapes": [list(shape) for shape in features.branch_shapes],
            "resize_factors": list(features.resize_factors),
            "gemms": [[g.batch, g.m, g.n, g.k] for g in features.gemms],
            "convs": [
                [c.batch, c.in_channels, c.out_channels, c.kernel_h, c.kernel_w,
                 c.out_h, c.out_w, c.groups]
                for c in features.convs
            ],
            "has_opaque": features.has_opaque,
            "dtype": features.dtype.value,
        },
    }


def decode_profile(payload: dict[str, Any]) -> tuple[bool, KernelProfile | None]:
    """Rebuild ``(decodable, profile)`` from an :func:`encode_profile` payload.

    Returns ``(False, None)`` for undecodable or version-mismatched payloads
    (the caller treats that as a cache miss), and ``(True, None)`` for a
    cached negative result.
    """
    try:
        if payload.get("v") != _PAYLOAD_VERSION:
            return False, None
        if not payload["supported"]:
            return True, None
        f = payload["features"]
        features = KernelFeatures(
            num_primitives=int(f["num_primitives"]),
            category_counts={str(k): int(v) for k, v in f["category_counts"].items()},
            input_bytes=int(f["input_bytes"]),
            output_bytes=int(f["output_bytes"]),
            flops=int(f["flops"]),
            linear_flops=int(f["linear_flops"]),
            multipass_bytes=int(f["multipass_bytes"]),
            output_elements=int(f["output_elements"]),
            num_outputs=int(f["num_outputs"]),
            branch_shapes=tuple(tuple(int(d) for d in shape) for shape in f["branch_shapes"]),
            resize_factors=tuple(float(x) for x in f["resize_factors"]),
            gemms=tuple(GemmShape(*(int(d) for d in g)) for g in f["gemms"]),
            convs=tuple(ConvShape(*(int(d) for d in c)) for c in f["convs"]),
            has_opaque=bool(f["has_opaque"]),
            dtype=DataType(f["dtype"]),
        )
        b = payload["breakdown"]
        breakdown = CostBreakdown(
            latency_s=float(b["latency_s"]),
            launch_s=float(b["launch_s"]),
            memory_s=float(b["memory_s"]),
            compute_s=float(b["compute_s"]),
            traffic_bytes=int(b["traffic_bytes"]),
            flops=int(b["flops"]),
            bandwidth_efficiency=float(b["bandwidth_efficiency"]),
            compute_efficiency=float(b["compute_efficiency"]),
        )
        profile = KernelProfile(
            latency_s=float(payload["latency_s"]),
            backend=str(payload["backend"]),
            breakdown=breakdown,
            features=features,
        )
        return True, profile
    except (KeyError, TypeError, ValueError):
        return False, None


# --------------------------------------------------------------- snapshots
def export_snapshot(store: CacheStore, max_entries: int | None = None) -> dict[str, dict]:
    """``{key: payload}`` snapshot of the profile namespace, for shipping.

    This is what the engine broadcasts to freshly spawned process-pool
    workers (:meth:`repro.engine.scheduler.executors.ProcessExecutor.warm_up`)
    so they start with the parent's profile knowledge instead of re-deriving
    every kernel cost.  Keys are the content-addressed profile keys — they
    already embed GPU spec and backend set, so a worker under any context
    simply misses on entries that do not apply.  ``max_entries`` keeps the
    pickled payload bounded; the *newest* entries win (``store.items`` yields
    oldest-first), matching the store's own LRU preference.  Undecodable
    payloads are dropped rather than shipped.
    """
    items = store.items(_NAMESPACE)
    if max_entries is not None and len(items) > max_entries:
        items = items[-max_entries:]
    snapshot: dict[str, dict] = {}
    for key, payload in items:
        try:
            decoded = json.loads(payload)
        except json.JSONDecodeError:
            continue
        if isinstance(decoded, dict):
            snapshot[key] = decoded
    return snapshot


def snapshot_nbytes(snapshot: dict[str, dict]) -> int:
    """Serialized size of a snapshot — the bytes :meth:`warm_up` actually
    ships to each worker (pickle, protocol matching the process pool's)."""
    return len(pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL))


# ------------------------------------------------------------------- cache
class PersistentProfileCache:
    """Profile cache bound to one (store, GPU spec, backend set) context.

    Entries carry a ``tuned`` flag: whether the run that wrote the entry
    charged the kernel's tuning cost to a tuning-time report.  Profilers that
    deliberately bypass tuning accounting (the graph optimizer's cost proxy,
    the segmentation-cover probes) write ``tuned=False``; when a
    tuning-authoritative profiler later hits such an entry it records the
    real tuning cost and promotes the entry, so a cold run produces the same
    Table 2 numbers with or without a cache directory.
    """

    def __init__(self, store: CacheStore, spec, backends: Sequence) -> None:
        self.store = store
        self.spec = spec
        self.backend_names = backend_fingerprint(backends)

    def for_backends(self, backends: Sequence) -> "PersistentProfileCache":
        """Sibling cache over the same store keyed by another backend set
        (used for the identifier's framework-fallback profiler)."""
        return PersistentProfileCache(self.store, self.spec, backends)

    def key(self, signature: tuple) -> str:
        return profile_key(signature, self.spec, self.backend_names)

    def get(
        self, signature: tuple, key: str | None = None
    ) -> tuple[bool, KernelProfile | None, bool]:
        """``(hit, profile, tuned)`` for a signature; a hit may carry ``None``
        (cached "unsupported", always considered tuned).  Pass ``key`` when
        the caller already computed :meth:`key` to avoid re-hashing."""
        payload = self.store.get_json(_NAMESPACE, key or self.key(signature))
        if not isinstance(payload, dict):
            return False, None, False
        ok, profile = decode_profile(payload)
        if not ok:
            return False, None, False
        return True, profile, bool(payload.get("tuned", True))

    def put(
        self,
        signature: tuple,
        profile: KernelProfile | None,
        tuned: bool = True,
        key: str | None = None,
    ) -> None:
        payload = encode_profile(profile)
        payload["tuned"] = bool(tuned) or profile is None
        # The backend set is already part of the *key*; recording it in the
        # payload as well lets maintenance tooling (``python -m repro.cache
        # gc``) recognize entries written under outdated backend
        # MODEL_VERSIONs without being able to invert the hash.
        payload["backends"] = list(self.backend_names)
        self.store.put_json(_NAMESPACE, key or self.key(signature), payload)

    def __len__(self) -> int:
        return self.store.count(_NAMESPACE)

    def export_snapshot(self, max_entries: int | None = None) -> dict[str, dict]:
        """Shippable ``{key: payload}`` view of this cache's namespace (the
        whole namespace — keys are self-describing, see
        :func:`export_snapshot`)."""
        return export_snapshot(self.store, max_entries)
