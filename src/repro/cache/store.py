"""Persistent key-value store backing the profile and plan caches.

A single SQLite file (stdlib ``sqlite3``) holds every cache namespace; SQLite
gives atomic writes, cheap point lookups and safe concurrent access from the
pipeline's worker threads for free.  The store is deliberately paranoid:

* **Versioning** — a ``meta`` table records the schema version; opening a
  store written by an incompatible version discards the stale contents and
  starts fresh instead of failing.
* **Corruption tolerance** — any ``sqlite3`` error (truncated file, garbage
  bytes, concurrent clobbering) degrades the store to an in-memory dict for
  the rest of the process.  A broken cache must never break an optimization
  run; the worst case is re-profiling.
* **Eviction** — each namespace is capped at ``max_entries`` and trimmed in
  least-recently-used order, so a long-lived profile database cannot grow
  without bound.

Payloads are JSON strings; interpretation belongs to the caller
(:mod:`repro.cache.profile_cache`, :mod:`repro.cache.plan_cache`).
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["CacheStats", "CacheStore", "SCHEMA_VERSION", "DEFAULT_DB_NAME"]

SCHEMA_VERSION = 1
DEFAULT_DB_NAME = "korch_cache.sqlite"

#: Fraction of a full namespace evicted in one trim, so eviction cost is
#: amortized instead of paid on every put at the cap.
_EVICTION_BATCH_FRACTION = 0.10

#: Recency resolution of the LRU clock.  A read refreshes an entry's
#: ``last_used_at`` only when it is older than this, so the warm-run hot
#: path does plain SELECTs instead of one write transaction per lookup —
#: eviction order only needs coarse recency, not microsecond accuracy.
_LRU_TOUCH_INTERVAL_S = 300.0


@dataclass
class CacheStats:
    """Hit/miss accounting for one store (shared by all its namespaces)."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0
    errors: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, int | float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
            "errors": self.errors,
            "hit_rate": round(self.hit_rate, 4),
        }

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.writes += other.writes
        self.evictions += other.evictions
        self.errors += other.errors


@dataclass
class _MemoryFallback:
    """In-memory stand-in used after the SQLite file proves unusable."""

    entries: dict[tuple[str, str], str] = field(default_factory=dict)


class CacheStore:
    """Namespaced, versioned, LRU-capped persistent key-value store."""

    def __init__(
        self,
        path: str | os.PathLike | None,
        max_entries: int = 200_000,
    ) -> None:
        """Open (or create) the store at ``path``.

        ``path`` may be a directory (the default database file name is used
        inside it) or a file path; ``None`` keeps the store purely in memory,
        which is how the pipeline runs when no cache directory is configured.
        """
        self.max_entries = max(1, int(max_entries))
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._fallback: _MemoryFallback | None = None
        self._conn: sqlite3.Connection | None = None
        self.path: Path | None = None

        if path is None:
            self._fallback = _MemoryFallback()
            return

        path = Path(path)
        if path.suffix != ".sqlite":
            path = path / DEFAULT_DB_NAME
        self.path = path
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            self._conn = self._open(path)
        except (sqlite3.Error, OSError, ValueError):
            self.stats.errors += 1
            self._degrade()

    # ----------------------------------------------------------------- setup
    def _open(self, path: Path) -> sqlite3.Connection:
        conn = sqlite3.connect(str(path), check_same_thread=False)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute(
            "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT NOT NULL)"
        )
        conn.execute(
            "CREATE TABLE IF NOT EXISTS entries ("
            " namespace TEXT NOT NULL,"
            " key TEXT NOT NULL,"
            " payload TEXT NOT NULL,"
            " created_at REAL NOT NULL,"
            " last_used_at REAL NOT NULL,"
            " PRIMARY KEY (namespace, key))"
        )
        conn.execute(
            "CREATE INDEX IF NOT EXISTS idx_entries_lru ON entries (namespace, last_used_at)"
        )
        row = conn.execute("SELECT value FROM meta WHERE key = 'schema_version'").fetchone()
        if row is None:
            conn.execute(
                "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
            conn.commit()
        elif row[0] != str(SCHEMA_VERSION):
            # Incompatible on-disk format: discard rather than misinterpret.
            conn.execute("DELETE FROM entries")
            conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
            conn.commit()
        return conn

    def _degrade(self) -> None:
        """Switch to the in-memory fallback after a storage failure."""
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None
        if self._fallback is None:
            self._fallback = _MemoryFallback()

    @property
    def persistent(self) -> bool:
        """Whether entries are actually reaching disk."""
        return self._conn is not None

    # ------------------------------------------------------------------- api
    def get(self, namespace: str, key: str) -> str | None:
        """Payload stored under ``(namespace, key)``, or ``None``."""
        with self._lock:
            if self._conn is not None:
                try:
                    row = self._conn.execute(
                        "SELECT payload, last_used_at FROM entries WHERE namespace = ? AND key = ?",
                        (namespace, key),
                    ).fetchone()
                    if row is not None:
                        now = time.time()
                        if now - float(row[1]) > _LRU_TOUCH_INTERVAL_S:
                            self._conn.execute(
                                "UPDATE entries SET last_used_at = ? WHERE namespace = ? AND key = ?",
                                (now, namespace, key),
                            )
                            self._conn.commit()
                        self.stats.hits += 1
                        return row[0]
                    self.stats.misses += 1
                    return None
                except sqlite3.Error:
                    self.stats.errors += 1
                    self._degrade()
            assert self._fallback is not None
            payload = self._fallback.entries.get((namespace, key))
            if payload is None:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
            return payload

    def put(self, namespace: str, key: str, payload: str) -> None:
        """Store ``payload`` under ``(namespace, key)``, evicting if full."""
        now = time.time()
        with self._lock:
            self.stats.writes += 1
            if self._conn is not None:
                try:
                    self._conn.execute(
                        "INSERT OR REPLACE INTO entries "
                        "(namespace, key, payload, created_at, last_used_at) "
                        "VALUES (?, ?, ?, ?, ?)",
                        (namespace, key, payload, now, now),
                    )
                    self._evict_locked(namespace)
                    self._conn.commit()
                    return
                except sqlite3.Error:
                    self.stats.errors += 1
                    self._degrade()
            assert self._fallback is not None
            self._fallback.entries[(namespace, key)] = payload
            self._evict_fallback_locked(namespace)

    def get_json(self, namespace: str, key: str) -> object | None:
        """Like :meth:`get` but decodes JSON; undecodable payloads are treated
        as missing (a corrupted entry must not be fatal)."""
        payload = self.get(namespace, key)
        if payload is None:
            return None
        try:
            return json.loads(payload)
        except (json.JSONDecodeError, UnicodeDecodeError):
            self.stats.errors += 1
            return None

    def put_json(self, namespace: str, key: str, value: object) -> None:
        self.put(namespace, key, json.dumps(value, sort_keys=True, separators=(",", ":")))

    def count(self, namespace: str | None = None) -> int:
        """Number of entries (in one namespace, or in total)."""
        with self._lock:
            if self._conn is not None:
                try:
                    if namespace is None:
                        row = self._conn.execute("SELECT COUNT(*) FROM entries").fetchone()
                    else:
                        row = self._conn.execute(
                            "SELECT COUNT(*) FROM entries WHERE namespace = ?", (namespace,)
                        ).fetchone()
                    return int(row[0])
                except sqlite3.Error:
                    self.stats.errors += 1
                    self._degrade()
            assert self._fallback is not None
            if namespace is None:
                return len(self._fallback.entries)
            return sum(1 for ns, _ in self._fallback.entries if ns == namespace)

    def namespaces(self) -> list[str]:
        """Sorted list of namespaces with at least one entry."""
        with self._lock:
            if self._conn is not None:
                try:
                    rows = self._conn.execute(
                        "SELECT DISTINCT namespace FROM entries ORDER BY namespace"
                    ).fetchall()
                    return [row[0] for row in rows]
                except sqlite3.Error:
                    self.stats.errors += 1
                    self._degrade()
            assert self._fallback is not None
            return sorted({ns for ns, _ in self._fallback.entries})

    def items(self, namespace: str) -> list[tuple[str, str]]:
        """All ``(key, payload)`` pairs of one namespace (maintenance scans)."""
        with self._lock:
            if self._conn is not None:
                try:
                    rows = self._conn.execute(
                        "SELECT key, payload FROM entries WHERE namespace = ?", (namespace,)
                    ).fetchall()
                    return [(row[0], row[1]) for row in rows]
                except sqlite3.Error:
                    self.stats.errors += 1
                    self._degrade()
            assert self._fallback is not None
            return [
                (key, payload)
                for (ns, key), payload in self._fallback.entries.items()
                if ns == namespace
            ]

    def dump(self, namespace: str | None = None) -> list[tuple[str, str, str, float, float]]:
        """Every ``(namespace, key, payload, created_at, last_used_at)`` row
        (of one namespace, or all), ordered by ``(namespace, key)``.

        This is the snapshot-export surface: unlike :meth:`items` it carries
        the timestamps, so a merged entry keeps its LRU standing instead of
        jumping to the front of the eviction order.  The in-memory fallback
        has no timestamps; its rows are stamped with the dump time.
        """
        with self._lock:
            if self._conn is not None:
                try:
                    if namespace is None:
                        rows = self._conn.execute(
                            "SELECT namespace, key, payload, created_at, last_used_at"
                            " FROM entries ORDER BY namespace, key"
                        ).fetchall()
                    else:
                        rows = self._conn.execute(
                            "SELECT namespace, key, payload, created_at, last_used_at"
                            " FROM entries WHERE namespace = ? ORDER BY namespace, key",
                            (namespace,),
                        ).fetchall()
                    return [
                        (row[0], row[1], row[2], float(row[3]), float(row[4]))
                        for row in rows
                    ]
                except sqlite3.Error:
                    self.stats.errors += 1
                    self._degrade()
            assert self._fallback is not None
            now = time.time()
            return sorted(
                (ns, key, payload, now, now)
                for (ns, key), payload in self._fallback.entries.items()
                if namespace is None or ns == namespace
            )

    def merge(self, rows: list[tuple[str, str, str, float, float]]) -> int:
        """Fold exported rows into this store; returns how many were added.

        **Local wins**: a row whose ``(namespace, key)`` already exists here
        is skipped — both sides derived their payloads from the same
        content-addressed computation, and the local entry's recency is
        live while the snapshot's is stale.  Imported rows keep their
        original timestamps, and each touched namespace is re-capped at
        ``max_entries`` afterwards.
        """
        added = 0
        touched: set[str] = set()
        with self._lock:
            if self._conn is not None:
                try:
                    for namespace, key, payload, created_at, last_used_at in rows:
                        cursor = self._conn.execute(
                            "INSERT OR IGNORE INTO entries "
                            "(namespace, key, payload, created_at, last_used_at) "
                            "VALUES (?, ?, ?, ?, ?)",
                            (namespace, key, payload, float(created_at), float(last_used_at)),
                        )
                        if cursor.rowcount > 0:
                            added += 1
                            touched.add(namespace)
                    for namespace in touched:
                        self._evict_locked(namespace)
                    self._conn.commit()
                    self.stats.writes += added
                    return added
                except sqlite3.Error:
                    self.stats.errors += 1
                    self._degrade()
            assert self._fallback is not None
            for namespace, key, payload, _created_at, _last_used_at in rows:
                if (namespace, key) not in self._fallback.entries:
                    self._fallback.entries[(namespace, key)] = payload
                    added += 1
                    touched.add(namespace)
            for namespace in touched:
                self._evict_fallback_locked(namespace)
            self.stats.writes += added
            return added

    def delete(self, namespace: str, key: str) -> bool:
        """Drop one entry; returns whether it existed."""
        with self._lock:
            if self._conn is not None:
                try:
                    cursor = self._conn.execute(
                        "DELETE FROM entries WHERE namespace = ? AND key = ?", (namespace, key)
                    )
                    self._conn.commit()
                    return cursor.rowcount > 0
                except sqlite3.Error:
                    self.stats.errors += 1
                    self._degrade()
            assert self._fallback is not None
            return self._fallback.entries.pop((namespace, key), None) is not None

    def trim(self, namespace: str, keep: int) -> int:
        """Drop the least-recently-used tail of a namespace beyond ``keep``
        entries; returns how many entries were removed."""
        keep = max(0, int(keep))
        with self._lock:
            if self._conn is not None:
                try:
                    row = self._conn.execute(
                        "SELECT COUNT(*) FROM entries WHERE namespace = ?", (namespace,)
                    ).fetchone()
                    overflow = int(row[0]) - keep
                    if overflow <= 0:
                        return 0
                    self._conn.execute(
                        "DELETE FROM entries WHERE rowid IN ("
                        " SELECT rowid FROM entries WHERE namespace = ?"
                        " ORDER BY last_used_at ASC LIMIT ?)",
                        (namespace, overflow),
                    )
                    self._conn.commit()
                    self.stats.evictions += overflow
                    return overflow
                except sqlite3.Error:
                    self.stats.errors += 1
                    self._degrade()
            assert self._fallback is not None
            keys = [k for k in self._fallback.entries if k[0] == namespace]
            overflow = len(keys) - keep
            if overflow <= 0:
                return 0
            for ns_key in keys[:overflow]:
                del self._fallback.entries[ns_key]
            self.stats.evictions += overflow
            return overflow

    def clear(self, namespace: str | None = None) -> None:
        """Drop entries (of one namespace, or all)."""
        with self._lock:
            if self._conn is not None:
                try:
                    if namespace is None:
                        self._conn.execute("DELETE FROM entries")
                    else:
                        self._conn.execute("DELETE FROM entries WHERE namespace = ?", (namespace,))
                    self._conn.commit()
                    return
                except sqlite3.Error:
                    self.stats.errors += 1
                    self._degrade()
            assert self._fallback is not None
            if namespace is None:
                self._fallback.entries.clear()
            else:
                for ns_key in [k for k in self._fallback.entries if k[0] == namespace]:
                    del self._fallback.entries[ns_key]

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                try:
                    self._conn.commit()
                    self._conn.close()
                except sqlite3.Error:
                    pass
                self._conn = None
                if self._fallback is None:
                    self._fallback = _MemoryFallback()

    # -------------------------------------------------------------- eviction
    def _evict_locked(self, namespace: str) -> None:
        assert self._conn is not None
        row = self._conn.execute(
            "SELECT COUNT(*) FROM entries WHERE namespace = ?", (namespace,)
        ).fetchone()
        count = int(row[0])
        if count <= self.max_entries:
            return
        batch = max(count - self.max_entries, int(self.max_entries * _EVICTION_BATCH_FRACTION))
        self._conn.execute(
            "DELETE FROM entries WHERE rowid IN ("
            " SELECT rowid FROM entries WHERE namespace = ?"
            " ORDER BY last_used_at ASC LIMIT ?)",
            (namespace, batch),
        )
        self.stats.evictions += batch

    def _evict_fallback_locked(self, namespace: str) -> None:
        assert self._fallback is not None
        keys = [k for k in self._fallback.entries if k[0] == namespace]
        overflow = len(keys) - self.max_entries
        if overflow <= 0:
            return
        # Dicts iterate in insertion order, so the front is the oldest.
        for ns_key in keys[:overflow]:
            del self._fallback.entries[ns_key]
        self.stats.evictions += overflow

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = str(self.path) if self.persistent else "memory"
        return f"CacheStore({where}, entries={self.count()})"
