"""Greedy feasibility heuristic for the orchestration BLP.

Used to obtain an initial incumbent for branch and bound and as a last-resort
fallback when the exact solvers are unavailable.  The heuristic exploits the
structure of the kernel orchestration problem: selecting variables never
*breaks* an already-satisfied ``>=`` constraint (all left-hand-side
coefficients on other variables are non-negative there), so repeatedly
repairing the most violated constraint with the cheapest helpful variable
terminates with a feasible solution whenever one exists within the candidate
set.

Two interchangeable cores implement the strategy.  The default packs the
constraint incidence into Python-int bitsets (:mod:`repro.solver.bitset`) so
each scan is a handful of popcounts; this module keeps the original
dict-of-sets implementation as the readable reference, selectable via
``SolverConfig(core="reference")`` and asserted bit-identical in tests.
"""

from __future__ import annotations

import numpy as np

from .bitset import DEFAULT_SOLVER_CONFIG, BitsetProblem, SolverConfig, solve_greedy_bitset
from .problem import BinaryLinearProgram, SolveResult, SolveStatus

__all__ = ["solve_greedy"]


def solve_greedy(
    problem: BinaryLinearProgram,
    max_rounds: int | None = None,
    config: SolverConfig | None = None,
) -> SolveResult:
    """Greedily construct a feasible 0/1 assignment.

    Strategy: start from the all-zeros assignment, and while some constraint
    is violated, pick the variable with the best (violation reduction / cost)
    ratio among variables that help the most-violated constraint.  A final
    pruning pass unsets variables whose removal keeps feasibility, in
    descending cost order.

    ``config`` selects the evaluation core (bitset by default, with automatic
    fallback to the reference path for programs outside the ±1/integer
    fragment); the answer is identical either way.
    """
    config = config or DEFAULT_SOLVER_CONFIG
    if config.core == "bitset":
        bits = BitsetProblem.from_problem(problem)
        if bits is not None:
            return solve_greedy_bitset(problem, bits, max_rounds)
    return _solve_greedy_reference(problem, max_rounds)


def _solve_greedy_reference(
    problem: BinaryLinearProgram, max_rounds: int | None = None
) -> SolveResult:
    """The original dict-of-sets implementation (specification of record)."""
    n = problem.num_variables
    costs = problem.costs
    x = np.zeros(n)
    max_rounds = max_rounds or (4 * n + 16)

    rounds = 0
    violated = _violated_constraints(problem, x)
    while violated:
        if rounds >= max_rounds:
            return SolveResult(SolveStatus.INFEASIBLE, float("inf"), [0] * n, method="greedy")
        # Cost-effectiveness selection (the classic set-cover greedy): among
        # the variables that help the most-violated constraint, prefer the one
        # whose cost is amortized over *all* currently-violated constraints it
        # helps.  Repairing one constraint at a time with the locally cheapest
        # variable degenerates into covers of many tiny kernels, each dragging
        # in fresh dependency constraints.
        constraint, shortfall = max(violated, key=lambda item: item[1])
        candidates = [
            (idx, coef) for idx, coef in constraint.coeffs if coef > 0 and x[idx] < 0.5
        ]
        if constraint.sense == "<=":
            candidates = [
                (idx, -coef) for idx, coef in constraint.coeffs if coef < 0 and x[idx] < 0.5
            ]
        if not candidates:
            return SolveResult(SolveStatus.INFEASIBLE, float("inf"), [0] * n, method="greedy")
        helped = _help_counts(violated, {idx for idx, _ in candidates})
        best_idx = min(
            candidates,
            key=lambda item: (
                costs[item[0]] / max(1, helped.get(item[0], 0)),
                costs[item[0]],
            ),
        )[0]
        x[best_idx] = 1.0
        rounds += 1
        violated = _violated_constraints(problem, x)

    # Pruning pass: drop selected variables that are not needed, most
    # expensive first.
    selected = sorted((i for i in range(n) if x[i] > 0.5), key=lambda i: -costs[i])
    for index in selected:
        x[index] = 0.0
        if not problem.is_feasible(x):
            x[index] = 1.0

    values = [int(round(v)) for v in x]
    return SolveResult(
        SolveStatus.FEASIBLE, problem.objective(values), values, method="greedy"
    )


def _violated_constraints(problem: BinaryLinearProgram, x: np.ndarray):
    """Every violated constraint with its shortfall."""
    violated = []
    for constraint in problem.constraints:
        value = constraint.evaluate(x)
        if constraint.sense == ">=":
            shortfall = constraint.rhs - value
        elif constraint.sense == "<=":
            shortfall = value - constraint.rhs
        else:
            shortfall = abs(value - constraint.rhs)
        if shortfall > 1e-6:
            violated.append((constraint, shortfall))
    return violated


def _help_counts(violated, candidate_indices: set[int]) -> dict[int, int]:
    """How many violated constraints each candidate variable would help."""
    counts: dict[int, int] = {}
    for constraint, _ in violated:
        for idx, coef in constraint.coeffs:
            if idx not in candidate_indices:
                continue
            helps = coef > 0 if constraint.sense == ">=" else coef < 0
            if helps:
                counts[idx] = counts.get(idx, 0) + 1
    return counts
