"""Greedy feasibility heuristic for the orchestration BLP.

Used to obtain an initial incumbent for branch and bound and as a last-resort
fallback when the exact solvers are unavailable.  The heuristic exploits the
structure of the kernel orchestration problem: selecting variables never
*breaks* an already-satisfied ``>=`` constraint (all left-hand-side
coefficients on other variables are non-negative there), so repeatedly
repairing the most violated constraint with the cheapest helpful variable
terminates with a feasible solution whenever one exists within the candidate
set.
"""

from __future__ import annotations

import numpy as np

from .problem import BinaryLinearProgram, SolveResult, SolveStatus

__all__ = ["solve_greedy"]


def solve_greedy(problem: BinaryLinearProgram, max_rounds: int | None = None) -> SolveResult:
    """Greedily construct a feasible 0/1 assignment.

    Strategy: start from the all-zeros assignment, and while some constraint
    is violated, pick the variable with the best (violation reduction / cost)
    ratio among variables that help the most-violated constraint.  A final
    pruning pass unsets variables whose removal keeps feasibility, in
    descending cost order.
    """
    n = problem.num_variables
    costs = problem.costs
    x = np.zeros(n)
    max_rounds = max_rounds or (4 * n + 16)

    for _ in range(max_rounds):
        violated = _most_violated(problem, x)
        if violated is None:
            break
        constraint, shortfall = violated
        candidates = [
            (idx, coef) for idx, coef in constraint.coeffs if coef > 0 and x[idx] < 0.5
        ]
        if constraint.sense == "<=":
            candidates = [
                (idx, -coef) for idx, coef in constraint.coeffs if coef < 0 and x[idx] < 0.5
            ]
        if not candidates:
            return SolveResult(SolveStatus.INFEASIBLE, float("inf"), [0] * n, method="greedy")
        best_idx = min(
            candidates,
            key=lambda item: (costs[item[0]] / min(item[1], shortfall), costs[item[0]]),
        )[0]
        x[best_idx] = 1.0
    else:
        if _most_violated(problem, x) is not None:
            return SolveResult(SolveStatus.INFEASIBLE, float("inf"), [0] * n, method="greedy")

    if _most_violated(problem, x) is not None:
        return SolveResult(SolveStatus.INFEASIBLE, float("inf"), [0] * n, method="greedy")

    # Pruning pass: drop selected variables that are not needed, most
    # expensive first.
    selected = sorted((i for i in range(n) if x[i] > 0.5), key=lambda i: -costs[i])
    for index in selected:
        x[index] = 0.0
        if not problem.is_feasible(x):
            x[index] = 1.0

    values = [int(round(v)) for v in x]
    return SolveResult(
        SolveStatus.FEASIBLE, problem.objective(values), values, method="greedy"
    )


def _most_violated(problem: BinaryLinearProgram, x: np.ndarray):
    """Return ``(constraint, shortfall)`` for the most violated constraint."""
    worst = None
    worst_shortfall = 1e-6
    for constraint in problem.constraints:
        value = constraint.evaluate(x)
        if constraint.sense == ">=":
            shortfall = constraint.rhs - value
        elif constraint.sense == "<=":
            shortfall = value - constraint.rhs
        else:
            shortfall = abs(value - constraint.rhs)
        if shortfall > worst_shortfall:
            worst = constraint
            worst_shortfall = shortfall
    if worst is None:
        return None
    return worst, worst_shortfall
