"""Exact BLP solving through scipy's HiGHS-based MILP interface.

This is the default production path (the counterpart of the paper's PuLP +
CBC).  It handles the largest per-subgraph problems in the evaluation —
thousands of candidate kernels — in well under the 1000-second budget the
paper reports.
"""

from __future__ import annotations

import numpy as np

from .problem import BinaryLinearProgram, SolveResult, SolveStatus

__all__ = ["solve_with_scipy", "scipy_milp_available"]


def scipy_milp_available() -> bool:
    """Whether scipy.optimize.milp can be imported in this environment."""
    try:
        from scipy.optimize import milp  # noqa: F401
    except Exception:  # pragma: no cover - only on very old scipy
        return False
    return True


#: Objective values are latencies in seconds (1e-6..1e-2); scaling them to
#: microseconds keeps HiGHS's absolute tolerances meaningful.
_OBJECTIVE_SCALE = 1e6


def solve_with_scipy(
    problem: BinaryLinearProgram,
    time_limit_s: float | None = None,
    mip_rel_gap: float = 0.0,
) -> SolveResult:
    """Solve the BLP exactly with scipy.optimize.milp (HiGHS branch and cut).

    ``mip_rel_gap`` trades a bounded amount of optimality (e.g. 0.02 = 2%) for
    solve time; the kernel orchestration objective is a profiled latency with
    far larger measurement noise than that, so the paper's "optimal" claim is
    preserved in any practical sense.
    """
    from scipy.optimize import Bounds, LinearConstraint, milp

    n = problem.num_variables
    if n == 0:
        return SolveResult(SolveStatus.OPTIMAL, 0.0, [], method="scipy-milp")
    c, a_ub, b_ub, a_eq, b_eq = problem.to_matrices()

    constraints = []
    if a_ub.shape[0]:
        constraints.append(LinearConstraint(a_ub, -np.inf, b_ub))
    if a_eq.shape[0]:
        constraints.append(LinearConstraint(a_eq, b_eq, b_eq))

    options = {}
    if time_limit_s is not None:
        options["time_limit"] = float(time_limit_s)
    if mip_rel_gap:
        options["mip_rel_gap"] = float(mip_rel_gap)

    result = milp(
        c=c * _OBJECTIVE_SCALE,
        constraints=constraints,
        integrality=np.ones(n),
        bounds=Bounds(np.zeros(n), np.ones(n)),
        options=options,
    )

    if result.x is None:
        status = SolveStatus.INFEASIBLE if result.status == 2 else SolveStatus.ERROR
        return SolveResult(status, float("inf"), [0] * n, method="scipy-milp")

    values = [int(round(v)) for v in result.x]
    status = SolveStatus.OPTIMAL if result.status == 0 else SolveStatus.FEASIBLE
    return SolveResult(
        status,
        problem.objective(values),
        values,
        method="scipy-milp",
        gap=float(getattr(result, "mip_gap", 0.0) or 0.0),
    )
