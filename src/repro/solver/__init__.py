"""Binary linear programming solver stack.

The public entry point is :func:`solve_blp`, which picks the best available
exact method: scipy's HiGHS MILP when present (the production path, standing
in for the paper's PuLP), otherwise the bundled branch-and-bound solver, with
the greedy heuristic as an explicit opt-in for quick approximate answers.
"""

from __future__ import annotations

from .bitset import DEFAULT_SOLVER_CONFIG, BitsetProblem, SolverConfig
from .branch_and_bound import BranchAndBoundSolver, solve_branch_and_bound
from .greedy import solve_greedy
from .problem import BinaryLinearProgram, Constraint, SolveResult, SolveStatus
from .scipy_backend import scipy_milp_available, solve_with_scipy
from .simplex import LpResult, solve_lp

__all__ = [
    "BinaryLinearProgram",
    "BitsetProblem",
    "Constraint",
    "SolveResult",
    "SolveStatus",
    "SolverConfig",
    "DEFAULT_SOLVER_CONFIG",
    "solve_blp",
    "solve_with_scipy",
    "scipy_milp_available",
    "solve_branch_and_bound",
    "BranchAndBoundSolver",
    "solve_greedy",
    "solve_lp",
    "LpResult",
]


def solve_blp(
    problem: BinaryLinearProgram,
    method: str = "auto",
    time_limit_s: float | None = None,
    mip_rel_gap: float = 0.0,
    config: SolverConfig | None = None,
    warm_incumbent: list[int] | None = None,
) -> SolveResult:
    """Solve a binary linear program.

    Parameters
    ----------
    problem:
        The BLP to solve.
    method:
        ``"auto"`` (scipy MILP if available, else branch and bound),
        ``"scipy"``, ``"branch-and-bound"``, or ``"greedy"``.
    time_limit_s:
        Optional wall-clock limit passed to the scipy backend.
    mip_rel_gap:
        Optional relative optimality gap for the scipy backend.
    config:
        :class:`SolverConfig` selecting the evaluation core (bitset vs
        reference) for the in-repo solvers; never changes answers.
    warm_incumbent:
        Optional known-good assignment to seed branch and bound with (the
        engine's near-miss solve memo).  Ignored by the scipy backend, which
        has no incumbent-injection API.
    """
    config = config or DEFAULT_SOLVER_CONFIG
    if method == "auto":
        method = "scipy" if scipy_milp_available() else "branch-and-bound"
    if method == "scipy":
        result = solve_with_scipy(problem, time_limit_s=time_limit_s, mip_rel_gap=mip_rel_gap)
        return _greedy_backstop(problem, result, config)
    if method == "branch-and-bound":
        return solve_branch_and_bound(
            problem, incumbent_values=warm_incumbent, config=config
        )
    if method == "greedy":
        return solve_greedy(problem, config=config)
    raise ValueError(f"unknown solver method {method!r}")


def _greedy_backstop(
    problem: BinaryLinearProgram,
    result: SolveResult,
    config: SolverConfig | None = None,
) -> SolveResult:
    """Guard a time/gap-limited exact solve with the greedy heuristic.

    Under a wall-clock limit a MILP solver may stop at an arbitrarily bad
    incumbent (observed: gap 0.999 on large orchestration subgraphs).  The
    greedy cover is cheap to compute, so whenever the exact solve came back
    without a proven optimum — infeasible-by-timeout or merely "feasible" —
    take the better of the two answers.
    """
    if result.status == SolveStatus.OPTIMAL:
        return result
    greedy = solve_greedy(problem, config=config)
    if not greedy.is_feasible:
        return result
    if not result.is_feasible or greedy.objective < result.objective:
        greedy.method = f"{result.method}+greedy-backstop" if result.method else "greedy-backstop"
        greedy.gap = result.gap
        return greedy
    return result
