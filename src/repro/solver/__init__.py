"""Binary linear programming solver stack.

The public entry point is :func:`solve_blp`, which picks the best available
exact method: scipy's HiGHS MILP when present (the production path, standing
in for the paper's PuLP), otherwise the bundled branch-and-bound solver, with
the greedy heuristic as an explicit opt-in for quick approximate answers.
"""

from __future__ import annotations

from .branch_and_bound import BranchAndBoundSolver, solve_branch_and_bound
from .greedy import solve_greedy
from .problem import BinaryLinearProgram, Constraint, SolveResult, SolveStatus
from .scipy_backend import scipy_milp_available, solve_with_scipy
from .simplex import LpResult, solve_lp

__all__ = [
    "BinaryLinearProgram",
    "Constraint",
    "SolveResult",
    "SolveStatus",
    "solve_blp",
    "solve_with_scipy",
    "scipy_milp_available",
    "solve_branch_and_bound",
    "BranchAndBoundSolver",
    "solve_greedy",
    "solve_lp",
    "LpResult",
]


def solve_blp(
    problem: BinaryLinearProgram,
    method: str = "auto",
    time_limit_s: float | None = None,
    mip_rel_gap: float = 0.0,
) -> SolveResult:
    """Solve a binary linear program.

    Parameters
    ----------
    problem:
        The BLP to solve.
    method:
        ``"auto"`` (scipy MILP if available, else branch and bound),
        ``"scipy"``, ``"branch-and-bound"``, or ``"greedy"``.
    time_limit_s:
        Optional wall-clock limit passed to the scipy backend.
    mip_rel_gap:
        Optional relative optimality gap for the scipy backend.
    """
    if method == "auto":
        method = "scipy" if scipy_milp_available() else "branch-and-bound"
    if method == "scipy":
        return solve_with_scipy(problem, time_limit_s=time_limit_s, mip_rel_gap=mip_rel_gap)
    if method == "branch-and-bound":
        return solve_branch_and_bound(problem)
    if method == "greedy":
        return solve_greedy(problem)
    raise ValueError(f"unknown solver method {method!r}")
