"""Bitset representation of the orchestration BLP's incidence structure.

The kernel-orchestration BLP (§4.2, Eq. 3/4) has a very particular shape:
every coefficient is exactly ``+1`` or ``-1`` and every right-hand side is a
small integer — each constraint is really "count of selected producers minus
count of selected consumers compared to an integer".  That makes the whole
problem an incidence matrix, which Python can evaluate with machine-word
operations: pack each constraint's positive and negative columns into two
ints (one bit per variable) and a constraint evaluation collapses from a
Python loop over ``(index, coef)`` pairs into two ``&`` + ``bit_count()``
calls.  The greedy cover's violated-constraint scan and help counts, and
branch and bound's integral feasibility checks, all run on this
representation.

:class:`BitsetProblem` is a *lossless* view: :meth:`from_problem` refuses
(returns ``None``) any program outside the ±1/integer fragment, and callers
fall back to the reference dict-of-sets path, so generality is never lost.
Selection order, tie-breaking, and float arithmetic of the greedy heuristic
are replicated exactly — the bitset core must produce bit-identical selected
kernels and objectives (asserted in tests and benchmarks), never merely
equivalent ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from .problem import BinaryLinearProgram, SolveResult, SolveStatus

__all__ = ["SolverConfig", "BitsetProblem", "iter_bits", "DEFAULT_SOLVER_CONFIG"]

#: Coefficients must be this close to ±1 and right-hand sides this close to
#: an integer for the bitset view to be lossless.
_EXACTNESS_TOL = 1e-9


@dataclass(frozen=True)
class SolverConfig:
    """Solver-stack tuning knobs (speed only — never changes answers).

    ``core``
        ``"bitset"`` (default) evaluates constraints on :class:`BitsetProblem`
        whenever the program fits the ±1/integer fragment, falling back to the
        reference implementation otherwise; ``"reference"`` forces the
        original dict-of-sets path everywhere (kept for equivalence testing
        and as the readable specification of the algorithm).
    ``near_miss_incumbents``
        Allow the engine to seed branch and bound with a memoized neighbor's
        solution as a warm incumbent when a partition's canonical hash
        differs from a previously solved one by a small node delta.  Exact
        methods keep their optimal objective either way; the seed only
        tightens pruning.
    """

    core: str = "bitset"
    near_miss_incumbents: bool = True

    def __post_init__(self) -> None:
        if self.core not in ("bitset", "reference"):
            raise ValueError(f"unknown solver core {self.core!r}")


DEFAULT_SOLVER_CONFIG = SolverConfig()


def iter_bits(mask: int) -> Iterator[int]:
    """Indices of the set bits of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class BitsetProblem:
    """A :class:`BinaryLinearProgram` packed into per-constraint bit masks.

    For constraint ``i``, ``pos[i]`` has a bit per variable with coefficient
    ``+1`` and ``neg[i]`` per ``-1`` coefficient, so the left-hand side of an
    assignment mask ``x`` is ``(pos[i] & x).bit_count() - (neg[i] &
    x).bit_count()`` — exact integer arithmetic, no tolerance games.
    """

    __slots__ = ("num_variables", "senses", "pos", "neg", "rhs", "full_mask")

    def __init__(
        self,
        num_variables: int,
        senses: list[str],
        pos: list[int],
        neg: list[int],
        rhs: list[int],
    ) -> None:
        self.num_variables = num_variables
        self.senses = senses
        self.pos = pos
        self.neg = neg
        self.rhs = rhs
        self.full_mask = (1 << num_variables) - 1

    # ------------------------------------------------------------ conversion
    @classmethod
    def from_problem(cls, problem: BinaryLinearProgram) -> "BitsetProblem | None":
        """Pack ``problem`` into bitsets, or ``None`` if it does not fit.

        Only programs whose coefficients are all exactly ±1 and whose
        right-hand sides are integers are representable; anything else (none
        of the orchestration BLPs, but user-built programs may be arbitrary)
        must use the reference path.
        """
        senses: list[str] = []
        pos: list[int] = []
        neg: list[int] = []
        rhs: list[int] = []
        for constraint in problem.constraints:
            p = 0
            n = 0
            for index, coef in constraint.coeffs:
                if abs(coef - 1.0) <= _EXACTNESS_TOL:
                    p |= 1 << index
                elif abs(coef + 1.0) <= _EXACTNESS_TOL:
                    n |= 1 << index
                else:
                    return None
            r = round(constraint.rhs)
            if abs(constraint.rhs - r) > _EXACTNESS_TOL:
                return None
            senses.append(constraint.sense)
            pos.append(p)
            neg.append(n)
            rhs.append(int(r))
        return cls(problem.num_variables, senses, pos, neg, rhs)

    # ------------------------------------------------------------ evaluation
    def lhs(self, index: int, x: int) -> int:
        """Left-hand-side value of constraint ``index`` for assignment ``x``."""
        return (self.pos[index] & x).bit_count() - (self.neg[index] & x).bit_count()

    def violated(self, x: int) -> list[tuple[int, int]]:
        """``(constraint index, integer shortfall)`` for every violated
        constraint, in problem order — mirrors the reference scan exactly
        (integer shortfall ``>= 1`` iff float shortfall ``> 1e-6`` on the
        ±1/integer fragment)."""
        out: list[tuple[int, int]] = []
        for i in range(len(self.senses)):
            value = (self.pos[i] & x).bit_count() - (self.neg[i] & x).bit_count()
            sense = self.senses[i]
            if sense == ">=":
                shortfall = self.rhs[i] - value
            elif sense == "<=":
                shortfall = value - self.rhs[i]
            else:
                shortfall = abs(value - self.rhs[i])
            if shortfall > 0:
                out.append((i, shortfall))
        return out

    def is_feasible(self, x: int) -> bool:
        """Whether assignment mask ``x`` satisfies every constraint."""
        pos = self.pos
        neg = self.neg
        rhs = self.rhs
        for i, sense in enumerate(self.senses):
            value = (pos[i] & x).bit_count() - (neg[i] & x).bit_count()
            if sense == ">=":
                if value < rhs[i]:
                    return False
            elif sense == "<=":
                if value > rhs[i]:
                    return False
            elif value != rhs[i]:
                return False
        return True

    # ------------------------------------------------------- mask utilities
    @staticmethod
    def mask_of(values: Sequence[float]) -> int:
        """Pack a 0/1 assignment (possibly float-typed) into a mask."""
        mask = 0
        for index, value in enumerate(values):
            if value >= 0.5:
                mask |= 1 << index
        return mask

    def values_of(self, mask: int) -> list[int]:
        """Unpack a mask into the dense 0/1 list the solvers return."""
        return [(mask >> i) & 1 for i in range(self.num_variables)]


def solve_greedy_bitset(
    problem: BinaryLinearProgram,
    bits: BitsetProblem,
    max_rounds: int | None = None,
) -> SolveResult:
    """Bitset twin of :func:`repro.solver.greedy.solve_greedy`.

    Step-for-step identical to the reference heuristic — same constraint
    scan order, same most-violated pick (first maximum), same candidate
    order (ascending variable index), same ``(cost/helped, cost)``
    tie-breaking on the same float values, same descending-cost pruning pass
    — so the selected variables and objective are bit-identical.  Only the
    evaluation machinery differs: popcounts instead of per-pair Python
    loops.
    """
    n = problem.num_variables
    costs = problem.costs
    x = 0
    max_rounds = max_rounds or (4 * n + 16)
    infeasible = SolveResult(SolveStatus.INFEASIBLE, float("inf"), [0] * n, method="greedy")

    rounds = 0
    violated = bits.violated(x)
    while violated:
        if rounds >= max_rounds:
            return infeasible
        index, _ = max(violated, key=lambda item: item[1])
        # Candidates: unselected variables that reduce the shortfall —
        # positive coefficients for ">="/"==" rows, negative for "<=".
        helping = bits.neg[index] if bits.senses[index] == "<=" else bits.pos[index]
        candidate_mask = helping & ~x
        if not candidate_mask:
            return infeasible
        # Help counts over every currently-violated constraint.  Note the
        # asymmetry with the candidate pick above: the reference counts
        # negative coefficients as helping for both "<=" and "==" rows.
        counts: dict[int, int] = {}
        for ci, _ in violated:
            helps = bits.pos[ci] if bits.senses[ci] == ">=" else bits.neg[ci]
            for idx in iter_bits(helps & candidate_mask):
                counts[idx] = counts.get(idx, 0) + 1
        best_idx = min(
            iter_bits(candidate_mask),
            key=lambda idx: (costs[idx] / max(1, counts.get(idx, 0)), costs[idx]),
        )
        x |= 1 << best_idx
        rounds += 1
        violated = bits.violated(x)

    # Pruning pass: drop selected variables that are not needed, most
    # expensive first (stable sort keeps ascending index among equal costs,
    # matching the reference).
    for index in sorted(iter_bits(x), key=lambda i: -costs[i]):
        without = x & ~(1 << index)
        if bits.is_feasible(without):
            x = without

    values = bits.values_of(x)
    return SolveResult(
        SolveStatus.FEASIBLE, problem.objective(values), values, method="greedy"
    )
