"""Binary linear program model.

Korch formalizes kernel orchestration as a binary linear program (BLP):
minimize the summed kernel latencies subject to the output and dependency
constraints of §4.2.  The paper solves it with PuLP; this repo ships its own
solver stack (:mod:`repro.solver`), and this module defines the problem
container every solver backend consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

__all__ = ["Constraint", "BinaryLinearProgram", "SolveResult", "SolveStatus"]


@dataclass(frozen=True)
class Constraint:
    """One linear constraint ``sum(coeffs[i] * x[i])  <sense>  rhs``."""

    coeffs: tuple[tuple[int, float], ...]
    sense: str
    rhs: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.sense not in (">=", "<=", "=="):
            raise ValueError(f"invalid constraint sense {self.sense!r}")

    def evaluate(self, x: Sequence[float]) -> float:
        """Left-hand-side value for an assignment ``x``."""
        return float(sum(coef * x[idx] for idx, coef in self.coeffs))

    def satisfied(self, x: Sequence[float], tol: float = 1e-6) -> bool:
        value = self.evaluate(x)
        if self.sense == ">=":
            return value >= self.rhs - tol
        if self.sense == "<=":
            return value <= self.rhs + tol
        return abs(value - self.rhs) <= tol


class SolveStatus:
    """Status constants shared by all solver backends."""

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"


@dataclass
class SolveResult:
    """Outcome of solving a :class:`BinaryLinearProgram`."""

    status: str
    objective: float
    values: list[int]
    method: str = ""
    nodes_explored: int = 0
    gap: float = 0.0

    @property
    def is_feasible(self) -> bool:
        return self.status in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)

    def selected(self) -> list[int]:
        """Indices of variables set to 1."""
        return [i for i, v in enumerate(self.values) if v >= 0.5]


class BinaryLinearProgram:
    """Minimization problem over binary variables with linear constraints."""

    def __init__(self, name: str = "blp") -> None:
        self.name = name
        self._costs: list[float] = []
        self._names: list[str] = []
        self.constraints: list[Constraint] = []

    # ------------------------------------------------------------ variables
    def add_variable(self, name: str, cost: float) -> int:
        """Add a binary variable with objective coefficient ``cost``."""
        self._names.append(name)
        self._costs.append(float(cost))
        return len(self._costs) - 1

    @property
    def num_variables(self) -> int:
        return len(self._costs)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    @property
    def costs(self) -> np.ndarray:
        return np.asarray(self._costs, dtype=float)

    def variable_name(self, index: int) -> str:
        return self._names[index]

    # ---------------------------------------------------------- constraints
    def add_constraint(
        self,
        coeffs: Mapping[int, float] | Sequence[tuple[int, float]],
        sense: str,
        rhs: float,
        name: str = "",
    ) -> Constraint:
        """Add a constraint; coefficients may be a dict or (index, coef) pairs."""
        if isinstance(coeffs, Mapping):
            pairs = tuple(sorted(coeffs.items()))
        else:
            pairs = tuple(sorted(coeffs))
        for index, _ in pairs:
            if not 0 <= index < self.num_variables:
                raise IndexError(f"constraint references unknown variable index {index}")
        constraint = Constraint(pairs, sense, float(rhs), name)
        self.constraints.append(constraint)
        return constraint

    # ------------------------------------------------------------ utilities
    def objective(self, x: Sequence[float]) -> float:
        """Objective value of an assignment."""
        costs = self.costs
        return float(sum(costs[i] * x[i] for i in range(self.num_variables)))

    def is_feasible(self, x: Sequence[float], tol: float = 1e-6) -> bool:
        """Whether ``x`` satisfies every constraint (ignores integrality)."""
        return all(constraint.satisfied(x, tol) for constraint in self.constraints)

    def to_matrices(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Dense ``(c, A_ub, b_ub, A_eq, b_eq)`` with all inequalities as ≤.

        ``>=`` constraints are negated into ``<=`` rows, which is the form
        scipy's linprog/milp and the bundled simplex expect.
        """
        n = self.num_variables
        c = self.costs
        ub_rows: list[np.ndarray] = []
        ub_rhs: list[float] = []
        eq_rows: list[np.ndarray] = []
        eq_rhs: list[float] = []
        for constraint in self.constraints:
            row = np.zeros(n)
            for index, coef in constraint.coeffs:
                row[index] = coef
            if constraint.sense == "<=":
                ub_rows.append(row)
                ub_rhs.append(constraint.rhs)
            elif constraint.sense == ">=":
                ub_rows.append(-row)
                ub_rhs.append(-constraint.rhs)
            else:
                eq_rows.append(row)
                eq_rhs.append(constraint.rhs)
        a_ub = np.vstack(ub_rows) if ub_rows else np.zeros((0, n))
        a_eq = np.vstack(eq_rows) if eq_rows else np.zeros((0, n))
        return c, a_ub, np.asarray(ub_rhs), a_eq, np.asarray(eq_rhs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BinaryLinearProgram({self.name!r}, vars={self.num_variables}, "
            f"constraints={self.num_constraints})"
        )
