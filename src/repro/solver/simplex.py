"""Dense two-phase simplex for LP relaxations.

A compact, dependency-free LP solver for problems of the form::

    minimize    c·x
    subject to  A_ub·x <= b_ub,   A_eq·x == b_eq,   0 <= x <= 1

It exists so the branch-and-bound solver can run without scipy and so the
solver stack can be tested end-to-end from first principles.  The scipy/HiGHS
backend remains the default for large instances (thousands of kernels); this
implementation uses Bland's rule to avoid cycling and is intended for the
small-to-medium LPs produced by per-subgraph orchestration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LpResult", "solve_lp"]

_TOL = 1e-9


@dataclass
class LpResult:
    """Result of one LP solve."""

    status: str  # "optimal", "infeasible", or "unbounded"
    objective: float
    x: np.ndarray


def solve_lp(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    a_eq: np.ndarray | None = None,
    b_eq: np.ndarray | None = None,
    upper_bounds: np.ndarray | None = None,
    max_iterations: int = 20000,
) -> LpResult:
    """Solve the bounded LP with a two-phase tableau simplex.

    Variable upper bounds (default 1.0) are encoded as explicit ``x_i <= u_i``
    rows, which keeps the implementation simple at the cost of extra rows —
    acceptable for the per-subgraph problem sizes this solver targets.
    """
    c = np.asarray(c, dtype=float)
    n = c.size
    a_ub = np.asarray(a_ub, dtype=float).reshape(-1, n) if a_ub is not None and np.size(a_ub) else np.zeros((0, n))
    b_ub = np.asarray(b_ub, dtype=float).ravel() if b_ub is not None else np.zeros(0)
    a_eq = np.asarray(a_eq, dtype=float).reshape(-1, n) if a_eq is not None and np.size(a_eq) else np.zeros((0, n))
    b_eq = np.asarray(b_eq, dtype=float).ravel() if b_eq is not None else np.zeros(0)
    if upper_bounds is None:
        upper_bounds = np.ones(n)
    upper_bounds = np.asarray(upper_bounds, dtype=float)

    # Append upper-bound rows x_i <= u_i for finite bounds.
    bound_rows = []
    bound_rhs = []
    for i, ub in enumerate(upper_bounds):
        if np.isfinite(ub):
            row = np.zeros(n)
            row[i] = 1.0
            bound_rows.append(row)
            bound_rhs.append(ub)
    if bound_rows:
        a_ub = np.vstack([a_ub, np.vstack(bound_rows)])
        b_ub = np.concatenate([b_ub, np.asarray(bound_rhs)])

    num_ub, num_eq = a_ub.shape[0], a_eq.shape[0]
    m = num_ub + num_eq

    # Standard form: [A_ub | I_slack] x = b_ub, [A_eq | 0] x = b_eq.
    a = np.zeros((m, n + num_ub))
    b = np.concatenate([b_ub, b_eq])
    a[:num_ub, :n] = a_ub
    a[:num_ub, n : n + num_ub] = np.eye(num_ub)
    a[num_ub:, :n] = a_eq

    # Make every right-hand side non-negative.
    negative = b < 0
    a[negative] *= -1
    b[negative] *= -1

    total_vars = n + num_ub
    # Phase 1: add one artificial per row, minimize their sum.
    tableau = np.zeros((m + 1, total_vars + m + 1))
    tableau[:m, :total_vars] = a
    tableau[:m, total_vars : total_vars + m] = np.eye(m)
    tableau[:m, -1] = b
    basis = list(range(total_vars, total_vars + m))
    # Phase-1 objective row: minimize sum of artificials.
    tableau[m, total_vars : total_vars + m] = 1.0
    for row in range(m):
        tableau[m] -= tableau[row]

    status = _iterate(tableau, basis, total_vars + m, max_iterations)
    if status != "optimal" or tableau[m, -1] < -1e-6:
        return LpResult("infeasible", float("inf"), np.zeros(n))

    # Drive artificial variables out of the basis when possible.
    for row, var in enumerate(basis):
        if var >= total_vars:
            pivot_col = next(
                (j for j in range(total_vars) if abs(tableau[row, j]) > _TOL), None
            )
            if pivot_col is not None:
                _pivot(tableau, basis, row, pivot_col)

    # Phase 2: replace the objective row with the real costs.
    tableau[m, :] = 0.0
    tableau[m, :n] = c
    for row, var in enumerate(basis):
        if var < total_vars and abs(tableau[m, var]) > _TOL:
            tableau[m] -= tableau[m, var] * tableau[row]
    # Forbid artificial columns from re-entering.
    tableau[:, total_vars : total_vars + m] = 0.0

    status = _iterate(tableau, basis, total_vars, max_iterations)
    if status == "unbounded":
        return LpResult("unbounded", -float("inf"), np.zeros(n))

    x = np.zeros(total_vars)
    for row, var in enumerate(basis):
        if var < total_vars:
            x[var] = tableau[row, -1]
    solution = x[:n]
    return LpResult("optimal", float(c @ solution), solution)


def _iterate(tableau: np.ndarray, basis: list[int], num_columns: int, max_iterations: int) -> str:
    """Run simplex pivots (Bland's rule) until optimal or unbounded."""
    m = tableau.shape[0] - 1
    for _ in range(max_iterations):
        objective_row = tableau[m, :num_columns]
        entering = next((j for j in range(num_columns) if objective_row[j] < -_TOL), None)
        if entering is None:
            return "optimal"
        ratios = []
        for row in range(m):
            coef = tableau[row, entering]
            if coef > _TOL:
                ratios.append((tableau[row, -1] / coef, basis[row], row))
        if not ratios:
            return "unbounded"
        # Bland's rule: smallest ratio, ties broken by smallest basis variable.
        _, _, leaving_row = min(ratios)
        _pivot(tableau, basis, leaving_row, entering)
    return "optimal"


def _pivot(tableau: np.ndarray, basis: list[int], row: int, col: int) -> None:
    """Pivot the tableau so column ``col`` becomes basic in ``row``."""
    tableau[row] /= tableau[row, col]
    for other in range(tableau.shape[0]):
        if other != row and abs(tableau[other, col]) > _TOL:
            tableau[other] -= tableau[other, col] * tableau[row]
    basis[row] = col
