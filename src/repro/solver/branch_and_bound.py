"""Branch-and-bound 0/1 ILP solver built on LP relaxations.

A from-scratch exact solver for binary linear programs: best-first search over
variable fixings, bounded by the LP relaxation of each node and warm-started
by the greedy heuristic.  The LP relaxation can be solved either with the
bundled two-phase simplex (:mod:`repro.solver.simplex`) or with scipy's
``linprog`` (HiGHS) when available — the relaxation solver is injectable so
the two can be cross-checked in tests.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .bitset import DEFAULT_SOLVER_CONFIG, BitsetProblem, SolverConfig
from .greedy import solve_greedy
from .problem import BinaryLinearProgram, SolveResult, SolveStatus
from .simplex import solve_lp

__all__ = ["BranchAndBoundSolver", "solve_branch_and_bound"]

_INTEGRALITY_TOL = 1e-6

LpRelaxationSolver = Callable[
    [np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    tuple[str, float, np.ndarray],
]


def _simplex_relaxation(c, a_ub, b_ub, a_eq, b_eq, lower, upper):
    """LP relaxation via the bundled simplex (lower bounds folded by shifting)."""
    # Fix variables whose bounds pin them, substitute, and solve the rest.
    n = c.size
    free = [i for i in range(n) if upper[i] - lower[i] > _INTEGRALITY_TOL]
    fixed_value = lower.copy()
    if not free:
        x = fixed_value
        feasible = np.all(a_ub @ x <= b_ub + 1e-7) if a_ub.size else True
        feasible = feasible and (np.allclose(a_eq @ x, b_eq, atol=1e-7) if a_eq.size else True)
        return ("optimal" if feasible else "infeasible", float(c @ x), x)

    a_ub_free = a_ub[:, free] if a_ub.size else np.zeros((0, len(free)))
    b_ub_free = b_ub - (a_ub @ fixed_value) if a_ub.size else np.zeros(0)
    a_eq_free = a_eq[:, free] if a_eq.size else np.zeros((0, len(free)))
    b_eq_free = b_eq - (a_eq @ fixed_value) if a_eq.size else np.zeros(0)
    result = solve_lp(
        c[free],
        a_ub_free,
        b_ub_free,
        a_eq_free,
        b_eq_free,
        upper_bounds=upper[free] - lower[free],
    )
    x = fixed_value.copy()
    if result.status == "optimal":
        x[free] = result.x + lower[free]
    return (result.status, float(c @ x), x)


def _scipy_relaxation(c, a_ub, b_ub, a_eq, b_eq, lower, upper):
    """LP relaxation via scipy.optimize.linprog (HiGHS)."""
    from scipy.optimize import linprog

    result = linprog(
        c,
        A_ub=a_ub if a_ub.size else None,
        b_ub=b_ub if b_ub.size else None,
        A_eq=a_eq if a_eq.size else None,
        b_eq=b_eq if b_eq.size else None,
        bounds=list(zip(lower, upper)),
        method="highs",
    )
    if not result.success:
        status = "infeasible" if result.status in (2,) else "error"
        return (status, float("inf"), np.zeros(c.size))
    return ("optimal", float(result.fun), np.asarray(result.x))


@dataclass(order=True)
class _Node:
    """One branch-and-bound search node, ordered by LP bound (best first)."""

    bound: float
    sequence: int
    lower: np.ndarray = field(compare=False)
    upper: np.ndarray = field(compare=False)
    relaxation: np.ndarray = field(compare=False)


class BranchAndBoundSolver:
    """Best-first branch and bound over binary variables."""

    def __init__(
        self,
        use_scipy_relaxation: bool = True,
        max_nodes: int = 20000,
        gap_tolerance: float = 1e-9,
        config: SolverConfig | None = None,
    ) -> None:
        self.max_nodes = max_nodes
        self.gap_tolerance = gap_tolerance
        self.config = config or DEFAULT_SOLVER_CONFIG
        self._relaxation: LpRelaxationSolver
        if use_scipy_relaxation:
            self._relaxation = _scipy_relaxation
        else:
            self._relaxation = _simplex_relaxation

    def solve(
        self,
        problem: BinaryLinearProgram,
        incumbent_values: list[int] | None = None,
    ) -> SolveResult:
        """Solve ``problem`` to optimality (within ``max_nodes``).

        ``incumbent_values`` optionally seeds the search with a known-good
        assignment (e.g. a structurally-near neighbor's solution from the
        engine's solve memo).  The seed only tightens pruning — it is
        validated for feasibility and competes with the greedy warm start —
        so the optimal objective is unchanged; among equal-cost optima the
        returned selection may be the seed's.
        """
        n = problem.num_variables
        if n == 0:
            return SolveResult(SolveStatus.OPTIMAL, 0.0, [], method="branch-and-bound")
        c, a_ub, b_ub, a_eq, b_eq = problem.to_matrices()
        bits = (
            BitsetProblem.from_problem(problem)
            if self.config.core == "bitset"
            else None
        )

        def feasible(values) -> bool:
            if bits is not None:
                return bits.is_feasible(BitsetProblem.mask_of(values))
            return problem.is_feasible(values)

        # Warm start with the greedy heuristic.
        incumbent = solve_greedy(problem, config=self.config)
        best_values = incumbent.values if incumbent.is_feasible else None
        best_objective = incumbent.objective if incumbent.is_feasible else math.inf

        if incumbent_values is not None and len(incumbent_values) == n:
            seeded = [int(round(v)) for v in incumbent_values]
            if feasible(seeded):
                seeded_objective = problem.objective(seeded)
                if seeded_objective < best_objective:
                    best_values = seeded
                    best_objective = seeded_objective

        counter = itertools.count()
        root_lower = np.zeros(n)
        root_upper = np.ones(n)
        status, bound, relaxation = self._relaxation(c, a_ub, b_ub, a_eq, b_eq, root_lower, root_upper)
        if status == "infeasible":
            return SolveResult(SolveStatus.INFEASIBLE, float("inf"), [0] * n, method="branch-and-bound")

        heap: list[_Node] = [_Node(bound, next(counter), root_lower, root_upper, relaxation)]
        nodes_explored = 0

        while heap and nodes_explored < self.max_nodes:
            node = heapq.heappop(heap)
            nodes_explored += 1
            if node.bound >= best_objective - self.gap_tolerance:
                continue  # cannot improve on the incumbent

            fractional = self._most_fractional(node.relaxation, node.lower, node.upper)
            if fractional is None:
                # Integral relaxation: new incumbent.
                values = [int(round(v)) for v in node.relaxation]
                if feasible(values) and problem.objective(values) < best_objective:
                    best_objective = problem.objective(values)
                    best_values = values
                continue

            for fixed_value in (1.0, 0.0):
                lower = node.lower.copy()
                upper = node.upper.copy()
                lower[fractional] = fixed_value
                upper[fractional] = fixed_value
                status, bound, relaxation = self._relaxation(c, a_ub, b_ub, a_eq, b_eq, lower, upper)
                if status == "infeasible" or bound >= best_objective - self.gap_tolerance:
                    continue
                heapq.heappush(heap, _Node(bound, next(counter), lower, upper, relaxation))

        if best_values is None:
            return SolveResult(
                SolveStatus.INFEASIBLE, float("inf"), [0] * n,
                method="branch-and-bound", nodes_explored=nodes_explored,
            )
        status = SolveStatus.OPTIMAL if not heap or nodes_explored < self.max_nodes else SolveStatus.FEASIBLE
        return SolveResult(
            status,
            best_objective,
            best_values,
            method="branch-and-bound",
            nodes_explored=nodes_explored,
        )

    @staticmethod
    def _most_fractional(x: np.ndarray, lower: np.ndarray, upper: np.ndarray) -> int | None:
        """Index of the most fractional unfixed variable, or None if integral."""
        fractionality = np.abs(x - np.round(x))
        fractionality[upper - lower < _INTEGRALITY_TOL] = 0.0
        index = int(np.argmax(fractionality))
        if fractionality[index] <= _INTEGRALITY_TOL:
            return None
        return index


def solve_branch_and_bound(
    problem: BinaryLinearProgram,
    incumbent_values: list[int] | None = None,
    **kwargs,
) -> SolveResult:
    """Convenience wrapper around :class:`BranchAndBoundSolver`."""
    return BranchAndBoundSolver(**kwargs).solve(problem, incumbent_values=incumbent_values)
