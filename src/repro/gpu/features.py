"""Static features of a candidate kernel subgraph.

The kernel profiler and every backend latency model consume a
:class:`KernelFeatures` summary instead of walking the primitive graph
themselves.  Features capture exactly the quantities the roofline model and
the backend efficiency heuristics need: memory traffic, arithmetic work,
primitive composition, GEMM/conv shapes, and the structural properties
(reduction passes, heterogeneous branches) that determine how well a code
generator can fuse the subgraph into one kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..ir.dtype import DataType
from ..primitives.base import PrimitiveCategory
from ..primitives.graph import PrimitiveGraph, PrimitiveNode
from ..primitives.linear import ConvPrimitive, ConvTransposePrimitive, MatMulPrimitive
from ..primitives.reduce_broadcast import ReducePrimitive

__all__ = ["GemmShape", "ConvShape", "KernelFeatures", "extract_features"]


@dataclass(frozen=True)
class GemmShape:
    """Dimensions of one GEMM inside a kernel: ``batch × (M×K) @ (K×N)``."""

    batch: int
    m: int
    n: int
    k: int

    @property
    def flops(self) -> int:
        return 2 * self.batch * self.m * self.n * self.k

    @property
    def aspect_ratio(self) -> float:
        """Ratio between the largest and smallest of (M, N, K); extreme ratios
        are the shapes vendor GEMM kernels handle poorly (Figure 8)."""
        dims = [self.m, self.n, self.k]
        return max(dims) / max(1, min(dims))


@dataclass(frozen=True)
class ConvShape:
    """Dimensions of one convolution inside a kernel."""

    batch: int
    in_channels: int
    out_channels: int
    kernel_h: int
    kernel_w: int
    out_h: int
    out_w: int
    groups: int = 1

    @property
    def flops(self) -> int:
        per_output = 2 * (self.in_channels // self.groups) * self.kernel_h * self.kernel_w
        return self.batch * self.out_channels * self.out_h * self.out_w * per_output


@dataclass
class KernelFeatures:
    """Summary of one candidate kernel used by all latency models."""

    num_primitives: int = 0
    category_counts: dict[str, int] = field(default_factory=dict)
    input_bytes: int = 0
    output_bytes: int = 0
    flops: int = 0
    linear_flops: int = 0
    multipass_bytes: int = 0
    output_elements: int = 0
    num_outputs: int = 1
    branch_shapes: tuple[tuple[int, ...], ...] = ()
    resize_factors: tuple[float, ...] = ()
    gemms: tuple[GemmShape, ...] = ()
    convs: tuple[ConvShape, ...] = ()
    has_opaque: bool = False
    dtype: DataType = DataType.FLOAT32

    # ------------------------------------------------------------ derived
    @property
    def num_linear(self) -> int:
        return self.category_counts.get(PrimitiveCategory.LINEAR.value, 0)

    @property
    def num_reduce(self) -> int:
        return self.category_counts.get(PrimitiveCategory.REDUCE.value, 0)

    @property
    def num_layout(self) -> int:
        return self.category_counts.get(PrimitiveCategory.LAYOUT.value, 0)

    @property
    def num_elementwise(self) -> int:
        return self.category_counts.get(PrimitiveCategory.ELEMENTWISE.value, 0)

    @property
    def num_broadcast(self) -> int:
        return self.category_counts.get(PrimitiveCategory.BROADCAST.value, 0)

    @property
    def is_memory_bound(self) -> bool:
        """Kernels without a linear primitive are memory-intensive (§5.2)."""
        return self.num_linear == 0

    @property
    def traffic_bytes(self) -> int:
        """Device-memory traffic of the fused kernel.

        External inputs are read once, outputs written once, and reductions
        whose result is consumed inside the kernel force a second pass over
        their source data (``multipass_bytes``) — this is what makes a
        monolithic softmax kernel slower than an orchestrated one (§1).
        """
        return self.input_bytes + self.output_bytes + self.multipass_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of device-memory traffic."""
        return self.flops / max(1, self.traffic_bytes)

    @property
    def branch_heterogeneity(self) -> int:
        """How many differently-shaped data streams the fused kernel mixes.

        A fused kernel that produces several differently-shaped outputs, or
        that re-samples several branches with different Resize factors before
        combining them (the Segformer MLP-decoder subgraph of Figure 11),
        forces the code generator to compromise on a single tiling, degrading
        achieved bandwidth (Figure 13).  Computed as the larger of
        (#distinct output shapes - 1) and (#distinct resize factors - 1).
        """
        output_based = max(0, len(set(self.branch_shapes)) - 1)
        resize_based = max(0, len(set(self.resize_factors)) - 1)
        return max(output_based, resize_based)


def extract_features(
    pg: PrimitiveGraph,
    nodes: Sequence[PrimitiveNode],
    external_inputs: Sequence[str],
    outputs: Sequence[str],
) -> KernelFeatures:
    """Compute :class:`KernelFeatures` for the kernel executing ``nodes``."""
    features = KernelFeatures()
    node_names = {node.name for node in nodes}
    features.num_primitives = len(nodes)

    # External memory traffic: inputs read once, outputs written once.
    for tensor in external_inputs:
        features.input_bytes += pg.tensor_type(tensor).size_bytes
    output_shapes: list[tuple[int, ...]] = []
    for tensor in outputs:
        ttype = pg.tensor_type(tensor)
        features.output_bytes += ttype.size_bytes
        features.output_elements += ttype.num_elements
        output_shapes.append(ttype.shape)
    features.num_outputs = len(outputs)
    features.branch_shapes = tuple(output_shapes)

    if outputs:
        features.dtype = pg.tensor_type(outputs[0]).dtype
    elif external_inputs:
        features.dtype = pg.tensor_type(external_inputs[0]).dtype

    for node in nodes:
        category = node.category.value
        features.category_counts[category] = features.category_counts.get(category, 0) + 1
        input_types = [pg.tensor_type(t) for t in node.inputs]
        output_type = pg.tensor_type(node.output)
        node_flops = node.prim.flops(input_types, output_type)
        features.flops += node_flops
        if node.is_linear:
            features.linear_flops += node_flops
            features.gemms, features.convs = _record_linear_shapes(
                node, input_types, output_type, features.gemms, features.convs
            )
        if node.category is PrimitiveCategory.OPAQUE:
            features.has_opaque = True
        if isinstance(node.prim, ReducePrimitive):
            features.multipass_bytes += _multipass_bytes(pg, node, node_names, input_types)
        if node.prim.op == "Resize":
            in_elements = max(1, input_types[0].num_elements)
            factor = round(output_type.num_elements / in_elements, 4)
            features.resize_factors = features.resize_factors + (factor,)

    return features


def _record_linear_shapes(
    node: PrimitiveNode,
    input_types,
    output_type,
    gemms: tuple[GemmShape, ...],
    convs: tuple[ConvShape, ...],
) -> tuple[tuple[GemmShape, ...], tuple[ConvShape, ...]]:
    prim = node.prim
    if isinstance(prim, MatMulPrimitive):
        batch, m, n, k = prim.gemm_dims(input_types)
        return gemms + (GemmShape(batch, m, n, k),), convs
    if isinstance(prim, (ConvPrimitive, ConvTransposePrimitive)):
        weight = input_types[1]
        out_shape = output_type.shape
        if isinstance(prim, ConvPrimitive):
            oc, ic_per_group, kh, kw = weight.shape
            groups = prim.attr("group", 1)
            in_channels = ic_per_group * groups
        else:
            ic, oc_per_group, kh, kw = weight.shape
            groups = prim.attr("group", 1)
            oc = oc_per_group * groups
            in_channels = ic
        conv = ConvShape(
            batch=out_shape[0],
            in_channels=in_channels,
            out_channels=oc,
            kernel_h=kh,
            kernel_w=kw,
            out_h=out_shape[2],
            out_w=out_shape[3],
            groups=groups,
        )
        return gemms, convs + (conv,)
    return gemms, convs


def _multipass_bytes(
    pg: PrimitiveGraph,
    reduce_node: PrimitiveNode,
    kernel_nodes: set[str],
    input_types,
) -> int:
    """Extra traffic caused by fusing a reduction with its consumers.

    When the output of a reduce primitive is consumed by later primitives in
    the *same* kernel (softmax's normalization, a normalization's centering),
    the generated kernel needs a second pass over the reduction's source data
    (or an equivalent grid synchronization that spills it).  We charge one
    extra read plus one extra write of the reduce input, which is the
    behaviour of the two-pass kernels TVM/TensorRT generate for such fusions.
    """
    consumed_inside = any(
        consumer.name in kernel_nodes for consumer in pg.consumers(reduce_node.output)
    )
    if not consumed_inside:
        return 0
    return 2 * sum(t.size_bytes for t in input_types)
