"""Roofline-based kernel latency model.

Every backend expresses a kernel's latency as::

    latency = launch_overhead
            + max( traffic / (peak_bw   * bandwidth_efficiency),
                   flops   / (peak_flop * compute_efficiency) )

where the efficiencies (0, 1] encode how well the backend's generated or
hand-written kernel uses the hardware for this particular subgraph.  The
structure of optimal orchestration strategies — which is all the BLP consumes
— depends on the *relative* latencies, so an internally-consistent analytical
model is an adequate stand-in for the on-GPU profiler of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from .features import KernelFeatures
from .specs import GpuSpec

__all__ = ["CostBreakdown", "roofline_latency", "parallelism_factor"]


@dataclass(frozen=True)
class CostBreakdown:
    """Latency estimate with its components, for reports and debugging."""

    latency_s: float
    launch_s: float
    memory_s: float
    compute_s: float
    traffic_bytes: int
    flops: int
    bandwidth_efficiency: float
    compute_efficiency: float

    @property
    def bound(self) -> str:
        """Which roofline term dominates: 'memory' or 'compute'."""
        return "memory" if self.memory_s >= self.compute_s else "compute"

    @property
    def latency_us(self) -> float:
        return self.latency_s * 1e6

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3


def parallelism_factor(features: KernelFeatures, spec: GpuSpec) -> float:
    """Fraction of peak bandwidth reachable given the kernel's parallelism.

    Kernels with fewer output elements than the GPU needs to fill its SMs
    achieve proportionally lower bandwidth; tiny kernels are bounded below at
    10% so the model never predicts absurd slowdowns for scalar work.
    """
    if features.output_elements <= 0:
        return 0.1
    return max(0.1, min(1.0, features.output_elements / spec.saturation_elements))


def roofline_latency(
    features: KernelFeatures,
    spec: GpuSpec,
    bandwidth_efficiency: float,
    compute_efficiency: float,
    launch_overhead_s: float | None = None,
    extra_traffic_bytes: int = 0,
    extra_flops: int = 0,
) -> CostBreakdown:
    """Latency of one kernel under the roofline model.

    ``extra_traffic_bytes`` / ``extra_flops`` let backends add model-specific
    costs (e.g. an implicit-GEMM conv reads the im2col expansion).
    """
    bandwidth_efficiency = min(1.0, max(1e-3, bandwidth_efficiency))
    compute_efficiency = min(1.0, max(1e-3, compute_efficiency))
    launch = spec.kernel_launch_s if launch_overhead_s is None else launch_overhead_s

    traffic = features.traffic_bytes + extra_traffic_bytes
    flops = features.flops + extra_flops

    memory_s = traffic / (spec.mem_bandwidth_bytes * bandwidth_efficiency)
    compute_s = flops / (spec.peak_flops(features.dtype) * compute_efficiency)
    latency = launch + max(memory_s, compute_s)
    return CostBreakdown(
        latency_s=latency,
        launch_s=launch,
        memory_s=memory_s,
        compute_s=compute_s,
        traffic_bytes=traffic,
        flops=flops,
        bandwidth_efficiency=bandwidth_efficiency,
        compute_efficiency=compute_efficiency,
    )
