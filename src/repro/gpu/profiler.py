"""Kernel profiler: the ``Profiling()`` routine of Algorithm 1.

Given a candidate set of primitives (with its external inputs and required
outputs), the profiler extracts the kernel's features, asks each registered
backend for a latency estimate, and returns the best supported one — or
``None`` when no backend can generate the kernel, which corresponds to the
paper's profiler returning ∞.

The profiler memoizes on the candidate's structural signature, mirroring the
TVM database the paper uses to avoid re-tuning identical kernels (§6.5), and
feeds the tuning-time model used by the Table 2 reproduction.  An optional
*persistent* cache (:class:`repro.cache.PersistentProfileCache`) extends the
memoization across processes: a hit there skips feature extraction and every
backend ``estimate`` call, and its amortized tuning cost is recorded as a
cache hit rather than a fresh profiling run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..backends import KernelBackend, TuningTimeModel, default_korch_backends
from ..primitives.graph import PrimitiveGraph, PrimitiveNode
from .cost_model import CostBreakdown
from .features import KernelFeatures, extract_features
from .specs import GpuSpec

__all__ = ["KernelProfile", "KernelProfiler", "ProfilerStats"]


@dataclass(frozen=True)
class KernelProfile:
    """Result of profiling one candidate kernel."""

    latency_s: float
    backend: str
    breakdown: CostBreakdown
    features: KernelFeatures

    @property
    def latency_us(self) -> float:
        return self.latency_s * 1e6


@dataclass
class ProfilerStats:
    """Where each profile request was answered, and what it cost.

    ``backend_estimate_calls`` counts actual backend model evaluations — the
    stand-in for on-GPU kernel measurement, i.e. the work the caches exist to
    avoid.  A fully warm run performs zero of them.
    """

    memory_hits: int = 0
    persistent_hits: int = 0
    misses: int = 0
    backend_estimate_calls: int = 0

    @property
    def requests(self) -> int:
        return self.memory_hits + self.persistent_hits + self.misses

    def as_dict(self) -> dict[str, int]:
        return {
            "memory_hits": self.memory_hits,
            "persistent_hits": self.persistent_hits,
            "misses": self.misses,
            "backend_estimate_calls": self.backend_estimate_calls,
        }

    def merge(self, other: "ProfilerStats") -> None:
        self.memory_hits += other.memory_hits
        self.persistent_hits += other.persistent_hits
        self.misses += other.misses
        self.backend_estimate_calls += other.backend_estimate_calls


class KernelProfiler:
    """Profiles candidate kernels against a set of backend latency models."""

    def __init__(
        self,
        spec: GpuSpec,
        backends: Sequence[KernelBackend] | None = None,
        tuning_model: TuningTimeModel | None = None,
        persistent_cache=None,
        tuning_authoritative: bool = True,
    ) -> None:
        self.spec = spec
        self.backends: list[KernelBackend] = list(backends or default_korch_backends())
        self.tuning_model = tuning_model if tuning_model is not None else TuningTimeModel()
        #: Optional :class:`repro.cache.PersistentProfileCache` (duck-typed so
        #: the gpu layer does not depend on the cache package).
        self.persistent_cache = persistent_cache
        #: Whether this profiler's tuning-time records are the accounting of
        #: record — False for cost-proxy profilers (graph optimizer, segment
        #: probes), whose persistent entries are written ``tuned=False`` and
        #: promoted by the first authoritative profiler that consumes them.
        self.tuning_authoritative = tuning_authoritative
        self.stats = ProfilerStats()
        self._cache: dict[tuple, KernelProfile | None] = {}

    # ------------------------------------------------------------------ api
    def profile(
        self,
        pg: PrimitiveGraph,
        nodes: Sequence[PrimitiveNode],
        external_inputs: Sequence[str],
        outputs: Sequence[str],
    ) -> KernelProfile | None:
        """Profile one candidate kernel; ``None`` means no backend supports it."""
        signature = self.kernel_signature(pg, nodes, external_inputs, outputs)
        if signature in self._cache:
            self.stats.memory_hits += 1
            return self._cache[signature]

        if self.persistent_cache is not None:
            hit, cached, tuned = self.persistent_cache.get(signature)
            if hit:
                self.stats.persistent_hits += 1
                self._cache[signature] = cached
                if cached is not None and self.tuning_authoritative:
                    if tuned:
                        # Amortized by an earlier run: zero fresh tuning time.
                        self.tuning_model.record_cache_hit(signature, cached.features)
                    else:
                        # Written by a cost-proxy profiler that bypasses the
                        # accounting; this kernel's tuning cost has never been
                        # charged — record it now and promote the entry, so
                        # cold runs report the same tuning totals with or
                        # without a cache directory.
                        self._record_tuning(signature, cached)
                        self.persistent_cache.put(signature, cached, tuned=True)
                return cached

        self.stats.misses += 1
        features = extract_features(pg, nodes, external_inputs, outputs)
        best: KernelProfile | None = None
        for backend in self.backends:
            self.stats.backend_estimate_calls += 1
            breakdown = backend.estimate(features, self.spec)
            if breakdown is None:
                continue
            profile = KernelProfile(
                latency_s=breakdown.latency_s,
                backend=backend.name,
                breakdown=breakdown,
                features=features,
            )
            if best is None or profile.latency_s < best.latency_s:
                best = profile

        if best is not None:
            self._record_tuning(signature, best)
        self._cache[signature] = best
        if self.persistent_cache is not None:
            self.persistent_cache.put(signature, best, tuned=self.tuning_authoritative)
        return best

    def _record_tuning(self, signature: tuple, profile: KernelProfile) -> None:
        tuning_backend = next(b for b in self.backends if b.name == profile.backend)
        self.tuning_model.record(
            signature, profile.features, profile.backend,
            tuning_backend.tuning_time_s(profile.features),
        )

    # ------------------------------------------------------------- internals
    @staticmethod
    def kernel_signature(
        pg: PrimitiveGraph,
        nodes: Sequence[PrimitiveNode],
        external_inputs: Sequence[str],
        outputs: Sequence[str],
    ) -> tuple:
        """Structural identity of a candidate kernel.

        Two candidates with the same multiset of (primitive, input shapes,
        output shape) triples and the same I/O tensor types are the same
        kernel for tuning purposes, regardless of tensor names.
        """
        node_sigs = tuple(
            sorted(
                (
                    node.prim.signature(),
                    tuple(pg.tensor_type(t).shape for t in node.inputs),
                    pg.tensor_type(node.output).shape,
                )
                for node in nodes
            )
        )
        input_sigs = tuple(sorted((pg.tensor_type(t).shape, pg.tensor_type(t).dtype.value) for t in external_inputs))
        output_sigs = tuple(sorted((pg.tensor_type(t).shape, pg.tensor_type(t).dtype.value) for t in outputs))
        return (node_sigs, input_sigs, output_sigs)
