"""Kernel profiler: the ``Profiling()`` routine of Algorithm 1.

Given a candidate set of primitives (with its external inputs and required
outputs), the profiler extracts the kernel's features, asks each registered
backend for a latency estimate, and returns the best supported one — or
``None`` when no backend can generate the kernel, which corresponds to the
paper's profiler returning ∞.

The profiler memoizes on the candidate's structural signature, mirroring the
TVM database the paper uses to avoid re-tuning identical kernels (§6.5), and
feeds the tuning-time model used by the Table 2 reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..backends import KernelBackend, TuningTimeModel, default_korch_backends
from ..primitives.graph import PrimitiveGraph, PrimitiveNode
from .cost_model import CostBreakdown
from .features import KernelFeatures, extract_features
from .specs import GpuSpec

__all__ = ["KernelProfile", "KernelProfiler"]


@dataclass(frozen=True)
class KernelProfile:
    """Result of profiling one candidate kernel."""

    latency_s: float
    backend: str
    breakdown: CostBreakdown
    features: KernelFeatures

    @property
    def latency_us(self) -> float:
        return self.latency_s * 1e6


class KernelProfiler:
    """Profiles candidate kernels against a set of backend latency models."""

    def __init__(
        self,
        spec: GpuSpec,
        backends: Sequence[KernelBackend] | None = None,
        tuning_model: TuningTimeModel | None = None,
    ) -> None:
        self.spec = spec
        self.backends: list[KernelBackend] = list(backends or default_korch_backends())
        self.tuning_model = tuning_model if tuning_model is not None else TuningTimeModel()
        self._cache: dict[tuple, KernelProfile | None] = {}

    # ------------------------------------------------------------------ api
    def profile(
        self,
        pg: PrimitiveGraph,
        nodes: Sequence[PrimitiveNode],
        external_inputs: Sequence[str],
        outputs: Sequence[str],
    ) -> KernelProfile | None:
        """Profile one candidate kernel; ``None`` means no backend supports it."""
        signature = self.kernel_signature(pg, nodes, external_inputs, outputs)
        if signature in self._cache:
            return self._cache[signature]

        features = extract_features(pg, nodes, external_inputs, outputs)
        best: KernelProfile | None = None
        for backend in self.backends:
            breakdown = backend.estimate(features, self.spec)
            if breakdown is None:
                continue
            profile = KernelProfile(
                latency_s=breakdown.latency_s,
                backend=backend.name,
                breakdown=breakdown,
                features=features,
            )
            if best is None or profile.latency_s < best.latency_s:
                best = profile

        if best is not None:
            tuning_backend = next(b for b in self.backends if b.name == best.backend)
            self.tuning_model.record(
                signature, features, best.backend, tuning_backend.tuning_time_s(features)
            )
        self._cache[signature] = best
        return best

    # ------------------------------------------------------------- internals
    @staticmethod
    def kernel_signature(
        pg: PrimitiveGraph,
        nodes: Sequence[PrimitiveNode],
        external_inputs: Sequence[str],
        outputs: Sequence[str],
    ) -> tuple:
        """Structural identity of a candidate kernel.

        Two candidates with the same multiset of (primitive, input shapes,
        output shape) triples and the same I/O tensor types are the same
        kernel for tuning purposes, regardless of tensor names.
        """
        node_sigs = tuple(
            sorted(
                (
                    node.prim.signature(),
                    tuple(pg.tensor_type(t).shape for t in node.inputs),
                    pg.tensor_type(node.output).shape,
                )
                for node in nodes
            )
        )
        input_sigs = tuple(sorted((pg.tensor_type(t).shape, pg.tensor_type(t).dtype.value) for t in external_inputs))
        output_sigs = tuple(sorted((pg.tensor_type(t).shape, pg.tensor_type(t).dtype.value) for t in outputs))
        return (node_sigs, input_sigs, output_sigs)
