"""GPU hardware specifications used by the analytical cost model.

The numbers are the published peak specifications of the SXM variants of each
GPU generation (the paper's Figure 5 compares exactly these).  The cost model
never claims to predict absolute kernel latencies on real hardware; it uses
the *ratios* between compute throughput and memory bandwidth, which is what
determines the structure of good kernel orchestration strategies.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.dtype import DataType

__all__ = ["GpuSpec", "GPU_SPECS", "get_gpu", "gpu_generation_trends", "V100", "A100", "P100", "H100"]


@dataclass(frozen=True)
class GpuSpec:
    """Peak capabilities of one GPU model.

    Attributes
    ----------
    name:
        Marketing name, e.g. ``"V100"``.
    fp32_tflops / tf32_tflops / fp16_tflops:
        Peak throughput in TFLOP/s.  ``tf32_tflops`` is the tensor-core TF32
        rate (equal to FP32 on pre-Ampere GPUs, which have no TF32 mode).
    mem_bandwidth_gbs:
        Peak device-memory bandwidth in GB/s.
    l2_cache_mb:
        L2 cache capacity in MB; used by the TVM codegen-quality model.
    kernel_launch_us:
        Fixed host-side cost of launching one kernel, in microseconds.
    sm_count:
        Number of streaming multiprocessors; used to model how many elements
        are needed before a kernel saturates the GPU.
    """

    name: str
    fp32_tflops: float
    tf32_tflops: float
    fp16_tflops: float
    mem_bandwidth_gbs: float
    l2_cache_mb: float
    kernel_launch_us: float
    sm_count: int

    # ------------------------------------------------------------ derived
    @property
    def mem_bandwidth_bytes(self) -> float:
        """Peak memory bandwidth in bytes/second."""
        return self.mem_bandwidth_gbs * 1e9

    @property
    def l2_cache_bytes(self) -> float:
        return self.l2_cache_mb * 1e6

    @property
    def kernel_launch_s(self) -> float:
        return self.kernel_launch_us * 1e-6

    def peak_flops(self, dtype: DataType) -> float:
        """Peak FLOP/s for arithmetic in ``dtype`` (FLOPs, not TFLOPs)."""
        if dtype in (DataType.FLOAT16, DataType.BFLOAT16):
            return self.fp16_tflops * 1e12
        if dtype is DataType.TF32:
            return self.tf32_tflops * 1e12
        return self.fp32_tflops * 1e12

    def ridge_intensity(self, dtype: DataType) -> float:
        """Roofline ridge point in FLOPs/byte for ``dtype``."""
        return self.peak_flops(dtype) / self.mem_bandwidth_bytes

    @property
    def saturation_elements(self) -> int:
        """Rough number of output elements needed to keep every SM busy.

        Modeled as 8 resident thread blocks of 256 threads per SM, which is
        the occupancy regime where memory-bound kernels reach peak bandwidth.
        """
        return self.sm_count * 8 * 256


# Published SXM specifications per generation (dense, non-sparsity numbers).
P100 = GpuSpec(
    name="P100",
    fp32_tflops=10.6,
    tf32_tflops=10.6,
    fp16_tflops=21.2,
    mem_bandwidth_gbs=732.0,
    l2_cache_mb=4.0,
    kernel_launch_us=6.0,
    sm_count=56,
)

V100 = GpuSpec(
    name="V100",
    fp32_tflops=15.7,
    tf32_tflops=15.7,
    fp16_tflops=125.0,
    mem_bandwidth_gbs=900.0,
    l2_cache_mb=6.0,
    kernel_launch_us=5.0,
    sm_count=80,
)

A100 = GpuSpec(
    name="A100",
    fp32_tflops=19.5,
    tf32_tflops=156.0,
    fp16_tflops=312.0,
    mem_bandwidth_gbs=2039.0,
    l2_cache_mb=40.0,
    kernel_launch_us=4.0,
    sm_count=108,
)

H100 = GpuSpec(
    name="H100",
    fp32_tflops=67.0,
    tf32_tflops=494.5,
    fp16_tflops=989.5,
    mem_bandwidth_gbs=3350.0,
    l2_cache_mb=50.0,
    kernel_launch_us=4.0,
    sm_count=132,
)

GPU_SPECS: dict[str, GpuSpec] = {spec.name: spec for spec in (P100, V100, A100, H100)}


def get_gpu(name: str) -> GpuSpec:
    """Look up a GPU spec by name (case-insensitive)."""
    try:
        return GPU_SPECS[name.upper()]
    except KeyError:
        raise KeyError(f"unknown GPU {name!r}; known: {sorted(GPU_SPECS)}") from None


def gpu_generation_trends(baseline: str = "P100") -> dict[str, dict[str, float]]:
    """Figure 5 of the paper: per-generation memory bandwidth and FP32/FP16
    throughput, normalized to ``baseline``.

    Returns ``{gpu_name: {"mem_bw": r, "fp32": r, "fp16": r}}`` where each
    value is the ratio to the baseline GPU.
    """
    base = get_gpu(baseline)
    trends: dict[str, dict[str, float]] = {}
    for name in ("P100", "V100", "A100", "H100"):
        spec = GPU_SPECS[name]
        trends[name] = {
            "mem_bw": spec.mem_bandwidth_gbs / base.mem_bandwidth_gbs,
            "fp32": spec.fp32_tflops / base.fp32_tflops,
            "fp16": spec.fp16_tflops / base.fp16_tflops,
        }
    return trends
