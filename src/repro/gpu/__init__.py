"""Simulated GPU substrate: specs, roofline cost model, profiler, executor."""

from .cost_model import CostBreakdown, parallelism_factor, roofline_latency
from .executor import PrimitiveGraphExecutor, execute_primitive_graph, synthesize_tensor
from .features import ConvShape, GemmShape, KernelFeatures, extract_features
from .profiler import KernelProfile, KernelProfiler
from .specs import A100, GPU_SPECS, H100, P100, V100, GpuSpec, get_gpu, gpu_generation_trends

__all__ = [
    "GpuSpec",
    "GPU_SPECS",
    "get_gpu",
    "gpu_generation_trends",
    "P100",
    "V100",
    "A100",
    "H100",
    "CostBreakdown",
    "roofline_latency",
    "parallelism_factor",
    "KernelFeatures",
    "GemmShape",
    "ConvShape",
    "extract_features",
    "KernelProfile",
    "KernelProfiler",
    "PrimitiveGraphExecutor",
    "execute_primitive_graph",
    "synthesize_tensor",
]
