"""Functional (numpy) execution of primitive graphs.

The real Korch generates CUDA kernels; this reproduction executes primitives
with numpy so that the runtime can check that an orchestrated executable is
numerically equivalent to the original model.  The executor also supports
running a *subset* of nodes (one candidate kernel) given its external inputs,
which is how the kernel-level tests validate the kernel identifier.

Weights are never materialized in graphs; :func:`synthesize_tensor` fabricates
deterministic pseudo-random data per tensor name, so the operator-level
reference executor and the primitive-level executor see identical parameter
values and their results can be compared exactly.
"""

from __future__ import annotations

import hashlib
from typing import Mapping, Sequence

import numpy as np

from ..ir.tensor_type import TensorType
from ..primitives.graph import PrimitiveGraph, PrimitiveNode

__all__ = ["synthesize_tensor", "PrimitiveGraphExecutor", "execute_primitive_graph"]


def synthesize_tensor(name: str, ttype: TensorType, scale: float = 0.1) -> np.ndarray:
    """Deterministic pseudo-random data for a named tensor.

    The seed derives from the tensor name only, so every executor produces the
    same values for the same parameter.  Values are small (±3·scale) to keep
    exponentials and normalizations numerically tame.  Tensors whose name
    marks them as variance statistics (``"var"`` in the name, e.g. BatchNorm's
    running variance) are made strictly positive, matching real checkpoints.
    """
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    seed = int.from_bytes(digest[:8], "little")
    rng = np.random.default_rng(seed)
    data = rng.standard_normal(ttype.num_elements).astype(ttype.dtype.to_numpy())
    data = data * scale
    if "var" in name.lower():
        data = np.abs(data) + scale
    return data.reshape(ttype.shape)


class PrimitiveGraphExecutor:
    """Executes a primitive graph (or a subset of it) with numpy."""

    def __init__(self, pg: PrimitiveGraph) -> None:
        self.pg = pg

    # ------------------------------------------------------------ full graph
    def source_values(self, feeds: Mapping[str, np.ndarray] | None = None) -> dict[str, np.ndarray]:
        """Values of every graph source: feeds for inputs, synthesized params,
        literal constants."""
        feeds = dict(feeds or {})
        values: dict[str, np.ndarray] = {}
        for name in self.pg.inputs:
            if name in feeds:
                values[name] = np.asarray(feeds[name])
            else:
                values[name] = synthesize_tensor(name, self.pg.tensor_type(name))
        for name, ttype in self.pg.params.items():
            values[name] = feeds.get(name, synthesize_tensor(name, ttype))
        for name, constant in self.pg.constants.items():
            values[name] = constant
        return values

    def run(
        self,
        feeds: Mapping[str, np.ndarray] | None = None,
        keep_intermediates: bool = False,
    ) -> dict[str, np.ndarray]:
        """Execute the whole graph; returns graph outputs (and optionally all
        intermediate tensors)."""
        values = self.source_values(feeds)
        for node in self.pg.topological_order():
            inputs = [values[t] for t in node.inputs]
            values[node.output] = node.prim.compute(inputs)
        if keep_intermediates:
            return values
        return {name: values[name] for name in self.pg.outputs}

    # --------------------------------------------------------------- kernels
    def run_kernel(
        self,
        nodes: Sequence[PrimitiveNode],
        input_values: Mapping[str, np.ndarray],
        outputs: Sequence[str],
    ) -> dict[str, np.ndarray]:
        """Execute one kernel: the given nodes, in a valid order, from the
        kernel's external input values; returns only the requested outputs.

        Raises ``KeyError`` if the nodes reference a tensor that is neither an
        external input value nor produced inside the kernel — i.e. if the
        caller passed a non-convex or under-specified kernel.
        """
        values: dict[str, np.ndarray] = dict(input_values)
        remaining = list(nodes)
        progress = True
        while remaining and progress:
            progress = False
            for node in list(remaining):
                if all(t in values for t in node.inputs):
                    values[node.output] = node.prim.compute([values[t] for t in node.inputs])
                    remaining.remove(node)
                    progress = True
        if remaining:
            missing = {t for node in remaining for t in node.inputs if t not in values}
            raise KeyError(
                f"kernel execution stuck; missing tensors {sorted(missing)} "
                f"for nodes {[n.name for n in remaining]}"
            )
        return {name: values[name] for name in outputs}


def execute_primitive_graph(
    pg: PrimitiveGraph, feeds: Mapping[str, np.ndarray] | None = None
) -> dict[str, np.ndarray]:
    """Convenience wrapper: run ``pg`` and return its output tensors."""
    return PrimitiveGraphExecutor(pg).run(feeds)
