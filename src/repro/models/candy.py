"""Candy: fast neural style transfer CNN (Johnson et al.).

The network is an encoder (three downsampling convolutions), five residual
blocks, and a decoder (two transposed convolutions plus an output
convolution); every convolution is followed by InstanceNorm and ReLU and is
preceded by explicit padding — the pattern whose kernel orchestration the
Candy case study (Figure 12) analyses.  Default input: 1×3×224×224.
"""

from __future__ import annotations

from ..ir.builder import GraphBuilder
from ..ir.graph import Graph
from .common import conv_in_relu

__all__ = ["build_candy", "build_candy_block"]


def _residual_block(b: GraphBuilder, x: str, channels: int, index: int) -> str:
    y = conv_in_relu(b, x, channels, kernel=3, name=f"res{index}a")
    # Second conv of the residual block has no ReLU (per the original network).
    y = b.pad(y, (0, 0, 1, 1, 0, 0, 1, 1))
    y = b.conv2d(y, channels, kernel=3, padding=0, name=f"res{index}b")
    y = b.instance_norm(y)
    return b.add(x, y)


def build_candy(resolution: int = 224, batch: int = 1, num_residual_blocks: int = 5) -> Graph:
    """Fast style-transfer network at the paper's default 224×224 resolution."""
    b = GraphBuilder("candy")
    x = b.input("image", (batch, 3, resolution, resolution))

    # Encoder.
    y = conv_in_relu(b, x, 32, kernel=9, stride=1, pad=4, name="enc1")
    y = conv_in_relu(b, y, 64, kernel=3, stride=2, pad=1, name="enc2")
    y = conv_in_relu(b, y, 128, kernel=3, stride=2, pad=1, name="enc3")

    # Residual blocks.
    for index in range(num_residual_blocks):
        y = _residual_block(b, y, 128, index)

    # Decoder.
    y = b.conv_transpose2d(y, 64, kernel=3, stride=2, padding=1, output_padding=1, name="dec1")
    y = b.instance_norm(y)
    y = b.relu(y)
    y = b.conv_transpose2d(y, 32, kernel=3, stride=2, padding=1, output_padding=1, name="dec2")
    y = b.instance_norm(y)
    y = b.relu(y)
    y = b.pad(y, (0, 0, 4, 4, 0, 0, 4, 4))
    y = b.conv2d(y, 3, kernel=9, padding=0, name="out_conv")

    b.output(y)
    return b.build()


def build_candy_block(channels: int = 128, resolution: int = 56, batch: int = 1) -> Graph:
    """The InstanceNorm → ReLU → Pad pattern of Figure 12 in isolation.

    The pattern appears between consecutive convolutions inside Candy's
    residual blocks; the case-study benchmark compares TensorRT's three
    kernels against Korch's orchestration of the decomposed InstanceNorm.
    """
    b = GraphBuilder("candy_in_relu_pad")
    x = b.input("features", (batch, channels, resolution, resolution))
    y = b.instance_norm(x)
    y = b.relu(y)
    y = b.pad(y, (0, 0, 1, 1, 0, 0, 1, 1))
    b.output(y)
    return b.build()
