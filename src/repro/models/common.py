"""Shared building blocks for the model zoo.

The five evaluation workloads are re-implemented in this repo's IR at the
paper's input resolutions.  They are faithful to the operator *patterns* the
paper's optimizations exploit (InstanceNorm+ReLU+Pad chains in Candy,
softmax attention in Segformer, ReLU linear attention in EfficientViT,
Mish/SiLU CSP blocks in the YOLOs) while keeping the layer counts at a scale
the analytical pipeline optimizes in seconds rather than hours.
"""

from __future__ import annotations

from ..ir.builder import GraphBuilder

__all__ = [
    "conv_bn_act",
    "conv_in_relu",
    "depthwise_separable",
    "focus_layer",
    "spp_block",
    "mlp_block",
]


def conv_bn_act(
    b: GraphBuilder,
    x: str,
    out_channels: int,
    kernel: int = 3,
    stride: int = 1,
    activation: str = "Relu",
    groups: int = 1,
    name: str = "cba",
) -> str:
    """Conv → BatchNorm → activation, the standard detector block."""
    y = b.conv2d(x, out_channels, kernel=kernel, stride=stride, groups=groups, bias=False, name=name)
    y = b.batch_norm(y)
    if activation:
        y = b.op(activation, y)
    return y


def conv_in_relu(
    b: GraphBuilder,
    x: str,
    out_channels: int,
    kernel: int = 3,
    stride: int = 1,
    pad: int | None = None,
    name: str = "cir",
) -> str:
    """Pad → Conv → InstanceNorm → ReLU, the Candy style-transfer block.

    The padding is an explicit operator (reflection padding in the original
    network, constant padding here) so the InstanceNorm/ReLU/Pad pattern of
    Figure 12 appears in the graph.
    """
    if pad is None:
        pad = kernel // 2
    if pad:
        y = b.pad(x, (0, 0, pad, pad, 0, 0, pad, pad))
    else:
        y = x
    y = b.conv2d(y, out_channels, kernel=kernel, stride=stride, padding=0, name=name)
    y = b.instance_norm(y)
    return b.relu(y)


def depthwise_separable(
    b: GraphBuilder,
    x: str,
    out_channels: int,
    stride: int = 1,
    activation: str = "Silu",
    name: str = "dw",
) -> str:
    """Depthwise 3x3 + pointwise 1x1, both with BN + activation (YOLOX-Nano)."""
    channels = b.shape(x)[1]
    y = conv_bn_act(b, x, channels, kernel=3, stride=stride, activation=activation,
                    groups=channels, name=f"{name}_dw")
    return conv_bn_act(b, y, out_channels, kernel=1, stride=1, activation=activation, name=f"{name}_pw")


def focus_layer(b: GraphBuilder, x: str, out_channels: int, activation: str = "Silu") -> str:
    """YOLO Focus layer: space-to-depth via four strided slices + concat."""
    n, c, h, w = b.shape(x)
    patches = []
    for dy in (0, 1):
        for dx in (0, 1):
            patches.append(
                b.slice(x, starts=(dy, dx), ends=(h, w), axes=(2, 3), steps=(2, 2))
            )
    y = b.concat(patches, axis=1)
    return conv_bn_act(b, y, out_channels, kernel=3, activation=activation, name="focus")


def spp_block(b: GraphBuilder, x: str, out_channels: int, activation: str = "Mish") -> str:
    """Spatial pyramid pooling: parallel max-pools concatenated (YOLOv4 neck)."""
    channels = b.shape(x)[1]
    y = conv_bn_act(b, x, channels // 2, kernel=1, activation=activation, name="spp_in")
    pools = [y]
    for kernel in (5, 9, 13):
        pools.append(b.max_pool(y, kernel=kernel, stride=1, padding=kernel // 2))
    y = b.concat(pools, axis=1)
    return conv_bn_act(b, y, out_channels, kernel=1, activation=activation, name="spp_out")


def mlp_block(b: GraphBuilder, x: str, hidden: int, name: str = "mlp") -> str:
    """Transformer MLP: Linear → GELU → Linear with residual add."""
    features = b.shape(x)[-1]
    y = b.layer_norm(x)
    y = b.linear(y, hidden, name=f"{name}_fc1")
    y = b.gelu(y)
    y = b.linear(y, features, name=f"{name}_fc2")
    return b.add(x, y)
