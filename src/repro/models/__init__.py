"""Model zoo: the five DNN workloads of the paper's evaluation plus the
case-study subgraphs (§6.1, §6.4)."""

from .candy import build_candy, build_candy_block
from .efficientvit import build_efficientvit, build_efficientvit_attention_block
from .segformer import (
    build_segformer,
    build_segformer_attention_block,
    build_segformer_decoder_subgraph,
)
from .yolov4 import build_yolov4
from .yolox import build_yolox_nano

__all__ = [
    "build_candy",
    "build_candy_block",
    "build_segformer",
    "build_segformer_attention_block",
    "build_segformer_decoder_subgraph",
    "build_efficientvit",
    "build_efficientvit_attention_block",
    "build_yolov4",
    "build_yolox_nano",
    "MODEL_BUILDERS",
    "build_model",
]

#: Name -> builder for the Figure 6 / Table 2 sweeps.
MODEL_BUILDERS = {
    "candy": build_candy,
    "efficientvit": build_efficientvit,
    "yolox": build_yolox_nano,
    "yolov4": build_yolov4,
    "segformer": build_segformer,
}


def build_model(name: str, **kwargs):
    """Build one of the five evaluation models by name."""
    try:
        builder = MODEL_BUILDERS[name.lower()]
    except KeyError:
        raise KeyError(f"unknown model {name!r}; known: {sorted(MODEL_BUILDERS)}") from None
    return builder(**kwargs)
