"""YOLOX-Nano: anchor-free detector with depthwise-separable convolutions.

YOLOX-Nano uses a Focus stem (space-to-depth slices + concat), depthwise
separable CSP blocks with SiLU activations, and a decoupled head whose
classification/regression outputs are concatenated and passed through
sigmoids — a mix of memory-bound layout, elementwise and small compute
operators that stresses kernel orchestration differently than the larger
CNNs.  Default input: 1×3×416×416.
"""

from __future__ import annotations

from ..ir.builder import GraphBuilder
from ..ir.graph import Graph
from .common import conv_bn_act, depthwise_separable, focus_layer

__all__ = ["build_yolox_nano"]

#: (out_channels, csp blocks) per stage of the CSPDarknet-nano backbone.
_STAGES = ((32, 1), (64, 2), (128, 2), (256, 1))


def _csp_layer(b: GraphBuilder, x: str, out_channels: int, num_blocks: int, name: str) -> str:
    """Depthwise CSP layer used by both the backbone and the PAFPN neck."""
    half = out_channels // 2
    main = conv_bn_act(b, x, half, kernel=1, activation="Silu", name=f"{name}_main")
    route = conv_bn_act(b, x, half, kernel=1, activation="Silu", name=f"{name}_route")
    for block in range(num_blocks):
        bottleneck = depthwise_separable(b, main, half, activation="Silu", name=f"{name}_b{block}")
        main = b.add(main, bottleneck)
    merged = b.concat([main, route], axis=1)
    return conv_bn_act(b, merged, out_channels, kernel=1, activation="Silu", name=f"{name}_out")


def _decoupled_head(b: GraphBuilder, x: str, num_classes: int, name: str) -> str:
    """YOLOX decoupled head: shared stem, then class and box/objectness branches."""
    stem = conv_bn_act(b, x, 64, kernel=1, activation="Silu", name=f"{name}_stem")

    cls_branch = depthwise_separable(b, stem, 64, activation="Silu", name=f"{name}_cls1")
    cls_branch = depthwise_separable(b, cls_branch, 64, activation="Silu", name=f"{name}_cls2")
    cls_out = b.conv2d(cls_branch, num_classes, kernel=1, padding=0, name=f"{name}_cls_pred")
    cls_out = b.sigmoid(cls_out)

    reg_branch = depthwise_separable(b, stem, 64, activation="Silu", name=f"{name}_reg1")
    reg_branch = depthwise_separable(b, reg_branch, 64, activation="Silu", name=f"{name}_reg2")
    box_out = b.conv2d(reg_branch, 4, kernel=1, padding=0, name=f"{name}_box_pred")
    obj_out = b.conv2d(reg_branch, 1, kernel=1, padding=0, name=f"{name}_obj_pred")
    obj_out = b.sigmoid(obj_out)

    return b.concat([box_out, obj_out, cls_out], axis=1)


def build_yolox_nano(resolution: int = 416, batch: int = 1, num_classes: int = 80) -> Graph:
    """YOLOX-Nano at the paper's 416×416 resolution."""
    b = GraphBuilder("yolox_nano")
    x = b.input("image", (batch, 3, resolution, resolution))

    # Backbone (CSPDarknet-nano with Focus stem).
    y = focus_layer(b, x, 16, activation="Silu")
    features = []
    for index, (channels, blocks) in enumerate(_STAGES):
        y = depthwise_separable(b, y, channels, stride=2, activation="Silu", name=f"down{index}")
        y = _csp_layer(b, y, channels, blocks, name=f"stage{index}")
        features.append(y)
    c3, c4, c5 = features[1], features[2], features[3]

    # PAFPN neck.
    p5 = conv_bn_act(b, c5, 128, kernel=1, activation="Silu", name="lateral5")
    p5_up = b.resize(p5, 2.0)
    p4 = b.concat([p5_up, c4], axis=1)
    p4 = _csp_layer(b, p4, 128, 1, name="fpn_p4")
    p4_lat = conv_bn_act(b, p4, 64, kernel=1, activation="Silu", name="lateral4")
    p4_up = b.resize(p4_lat, 2.0)
    p3 = b.concat([p4_up, c3], axis=1)
    p3 = _csp_layer(b, p3, 64, 1, name="fpn_p3")

    p3_down = depthwise_separable(b, p3, 64, stride=2, activation="Silu", name="pan_down3")
    p4 = b.concat([p3_down, p4_lat], axis=1)
    p4 = _csp_layer(b, p4, 128, 1, name="pan_p4")
    p4_down = depthwise_separable(b, p4, 128, stride=2, activation="Silu", name="pan_down4")
    p5 = b.concat([p4_down, p5], axis=1)
    p5 = _csp_layer(b, p5, 256, 1, name="pan_p5")

    # Decoupled heads at /8, /16, /32.
    out_small = _decoupled_head(b, p3, num_classes, name="head_small")
    out_medium = _decoupled_head(b, p4, num_classes, name="head_medium")
    out_large = _decoupled_head(b, p5, num_classes, name="head_large")
    b.output(out_small, out_medium, out_large)
    return b.build()
