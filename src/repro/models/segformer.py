"""Segformer-B0: hierarchical vision Transformer for semantic segmentation.

Four encoder stages (overlapped patch embedding + efficient self-attention +
Mix-FFN) followed by the all-MLP decoder that resizes every stage's features
to a common resolution and concatenates them — the subgraph Figure 11/13
studies.  Default input: 1×3×512×512 (the paper's Segformer resolution).

Simplifications relative to the reference implementation (documented per the
repro policy in DESIGN.md): single-head attention (so attention tensors stay
rank-3) and two transformer blocks per stage.  Neither changes the operator
patterns the evaluation exercises (softmax attention, LayerNorm, GELU MLPs,
the Resize/Concat decoder).
"""

from __future__ import annotations

import math

from ..ir.builder import GraphBuilder
from ..ir.graph import Graph

__all__ = [
    "build_segformer",
    "build_segformer_attention_block",
    "build_segformer_decoder_subgraph",
]

# Segformer-B0 stage configuration: (embed dim, spatial-reduction ratio, depth).
_STAGES = (
    (32, 8, 2),
    (64, 4, 2),
    (160, 2, 2),
    (256, 1, 2),
)
_PATCH_STRIDES = (4, 2, 2, 2)
_DECODER_DIM = 256


def _tokens(b: GraphBuilder, x: str) -> tuple[str, int, int, int]:
    """NCHW feature map -> (tokens tensor of shape (N, H*W, C), C, H, W)."""
    n, c, h, w = b.shape(x)
    flat = b.reshape(x, (n, c, h * w))
    tokens = b.transpose(flat, (0, 2, 1))
    return tokens, c, h, w


def _feature_map(b: GraphBuilder, tokens: str, channels: int, height: int, width: int) -> str:
    """(N, H*W, C) tokens -> NCHW feature map."""
    n = b.shape(tokens)[0]
    swapped = b.transpose(tokens, (0, 2, 1))
    return b.reshape(swapped, (n, channels, height, width))


def _efficient_attention(
    b: GraphBuilder, tokens: str, channels: int, height: int, width: int, sr_ratio: int, name: str
) -> str:
    """Segformer's efficient self-attention with spatial reduction."""
    normed = b.layer_norm(tokens)
    query = b.linear(normed, channels, name=f"{name}_q")

    if sr_ratio > 1:
        fmap = _feature_map(b, normed, channels, height, width)
        reduced = b.conv2d(fmap, channels, kernel=sr_ratio, stride=sr_ratio, padding=0, name=f"{name}_sr")
        kv_tokens, _, _, _ = _tokens(b, reduced)
        kv_tokens = b.layer_norm(kv_tokens)
    else:
        kv_tokens = normed

    key = b.linear(kv_tokens, channels, name=f"{name}_k")
    value = b.linear(kv_tokens, channels, name=f"{name}_v")

    key_t = b.transpose(key, (0, 2, 1))
    scores = b.matmul(query, key_t)
    scale = b.constant(f"{name}_scale", [math.sqrt(channels)])
    scores = b.div(scores, scale)
    probs = b.softmax(scores, axis=-1)
    context = b.matmul(probs, value)
    projected = b.linear(context, channels, name=f"{name}_proj")
    return b.add(tokens, projected)


def _mix_ffn(
    b: GraphBuilder, tokens: str, channels: int, height: int, width: int, name: str
) -> str:
    """Mix-FFN: Linear → depthwise 3x3 conv → GELU → Linear, with residual."""
    hidden = channels * 4
    normed = b.layer_norm(tokens)
    expanded = b.linear(normed, hidden, name=f"{name}_fc1")
    fmap = _feature_map(b, expanded, hidden, height, width)
    mixed = b.conv2d(fmap, hidden, kernel=3, groups=hidden, name=f"{name}_dwconv")
    mixed_tokens, _, _, _ = _tokens(b, mixed)
    activated = b.gelu(mixed_tokens)
    contracted = b.linear(activated, channels, name=f"{name}_fc2")
    return b.add(tokens, contracted)


def build_segformer(resolution: int = 512, batch: int = 1, num_classes: int = 150) -> Graph:
    """Segformer-B0 encoder + all-MLP decoder at 512×512."""
    b = GraphBuilder("segformer")
    x = b.input("image", (batch, 3, resolution, resolution))

    stage_outputs: list[tuple[str, int, int, int]] = []
    current = x
    for stage, ((channels, sr_ratio, depth), stride) in enumerate(zip(_STAGES, _PATCH_STRIDES)):
        kernel = stride * 2 - 1
        current = b.conv2d(
            current, channels, kernel=kernel, stride=stride, padding=kernel // 2,
            name=f"patch_embed{stage}",
        )
        tokens, c, h, w = _tokens(b, current)
        tokens = b.layer_norm(tokens)
        for block in range(depth):
            tokens = _efficient_attention(b, tokens, c, h, w, sr_ratio, f"s{stage}b{block}_attn")
            tokens = _mix_ffn(b, tokens, c, h, w, f"s{stage}b{block}_ffn")
        tokens = b.layer_norm(tokens)
        current = _feature_map(b, tokens, c, h, w)
        stage_outputs.append((tokens, c, h, w))

    # All-MLP decoder: project every stage to a common dim, reshape to NCHW,
    # resize to 1/4 resolution, concatenate, fuse (Figure 11's subgraph).
    target = resolution // 4
    decoded = []
    for stage, (tokens, channels, height, width) in enumerate(stage_outputs):
        projected = b.linear(tokens, _DECODER_DIM, name=f"dec_proj{stage}")
        fmap = _feature_map(b, projected, _DECODER_DIM, height, width)
        if height != target:
            fmap = b.resize_to(fmap, (batch, _DECODER_DIM, target, target), mode="bilinear")
        decoded.append(fmap)
    fused = b.concat(decoded[::-1], axis=1)
    fused = b.conv2d(fused, _DECODER_DIM, kernel=1, padding=0, name="dec_fuse")
    fused = b.batch_norm(fused)
    fused = b.relu(fused)
    logits = b.conv2d(fused, num_classes, kernel=1, padding=0, name="classifier")
    b.output(logits)
    return b.build()


def build_segformer_attention_block(
    tokens: int = 4096, channels: int = 64, kv_tokens: int = 256, batch: int = 1
) -> Graph:
    """The self-attention subgraph of Figures 2a/4a.

    ``MatMul → Div → Softmax → MatMul`` with a transposed key operand, the
    pattern whose decomposition lets Korch map Softmax across four kernels
    (§6.4, "Map one operator to different kernels").
    """
    b = GraphBuilder("segformer_attention")
    query = b.input("query", (batch, tokens, channels))
    key = b.input("key", (batch, kv_tokens, channels))
    value = b.input("value", (batch, kv_tokens, channels))

    key_t = b.transpose(key, (0, 2, 1))
    scores = b.matmul(query, key_t)
    scale = b.constant("scale", [math.sqrt(channels)])
    scaled = b.div(scores, scale)
    probs = b.softmax(scaled, axis=-1)
    context = b.matmul(probs, value)
    b.output(context)
    return b.build()


def build_segformer_decoder_subgraph(batch: int = 1, channels: int = _DECODER_DIM) -> Graph:
    """The MLP-decoder subgraph of Figure 11.

    Four branches — ``Add (bias) → Transpose → Reshape → Resize`` over token
    counts 16384/4096/1024/256 — feeding one Concat.  TVM fuses the whole
    subgraph into one kernel; Korch picks that plan at batch 1 but a
    five-kernel plan at batch 16 (Figure 13).
    """
    b = GraphBuilder("segformer_decoder")
    token_counts = (16384, 4096, 1024, 256)
    target = 128
    branches = []
    for index, tokens in enumerate(token_counts):
        x = b.input(f"branch{index}", (batch, tokens, channels))
        bias = b.param(f"bias{index}", (channels,))
        y = b.add(x, bias)
        y = b.transpose(y, (0, 2, 1))
        side = int(math.isqrt(tokens))
        y = b.reshape(y, (batch, channels, side, side))
        if side != target:
            y = b.resize_to(y, (batch, channels, target, target), mode="bilinear")
        branches.append(y)
    fused = b.concat(branches, axis=1)
    b.output(fused)
    return b.build()
