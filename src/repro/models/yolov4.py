"""YOLOv4: CSPDarknet53 backbone + SPP + PANet neck + three detection heads.

Mish activations in the backbone, LeakyReLU in the neck, and the
concatenation-heavy CSP/PAN topology are the operator patterns that matter
for kernel orchestration on this workload.  Default input: 1×3×416×416.

The stage depths are reduced relative to the full 53-layer backbone
(documented simplification) so the end-to-end pipeline optimizes the model in
seconds; the operator mix and tensor shapes per stage match the original.
"""

from __future__ import annotations

from ..ir.builder import GraphBuilder
from ..ir.graph import Graph
from .common import conv_bn_act, spp_block

__all__ = ["build_yolov4"]

#: (out_channels, number of residual units) per downsampling stage.
_BACKBONE_STAGES = ((64, 1), (128, 1), (256, 2), (512, 2), (1024, 1))


def _csp_stage(b: GraphBuilder, x: str, out_channels: int, num_blocks: int, name: str) -> str:
    """Cross-stage-partial stage: downsample, split, residual units, merge."""
    y = conv_bn_act(b, x, out_channels, kernel=3, stride=2, activation="Mish", name=f"{name}_down")
    route = conv_bn_act(b, y, out_channels // 2, kernel=1, activation="Mish", name=f"{name}_route")
    main = conv_bn_act(b, y, out_channels // 2, kernel=1, activation="Mish", name=f"{name}_main")
    for block in range(num_blocks):
        residual = conv_bn_act(b, main, out_channels // 2, kernel=1, activation="Mish",
                               name=f"{name}_b{block}_1")
        residual = conv_bn_act(b, residual, out_channels // 2, kernel=3, activation="Mish",
                               name=f"{name}_b{block}_2")
        main = b.add(main, residual)
    main = conv_bn_act(b, main, out_channels // 2, kernel=1, activation="Mish", name=f"{name}_post")
    merged = b.concat([main, route], axis=1)
    return conv_bn_act(b, merged, out_channels, kernel=1, activation="Mish", name=f"{name}_out")


def _conv_set(b: GraphBuilder, x: str, channels: int, name: str) -> str:
    """The five-convolution block used throughout the PANet neck."""
    y = conv_bn_act(b, x, channels, kernel=1, activation="LeakyRelu", name=f"{name}_1")
    y = conv_bn_act(b, y, channels * 2, kernel=3, activation="LeakyRelu", name=f"{name}_2")
    y = conv_bn_act(b, y, channels, kernel=1, activation="LeakyRelu", name=f"{name}_3")
    y = conv_bn_act(b, y, channels * 2, kernel=3, activation="LeakyRelu", name=f"{name}_4")
    return conv_bn_act(b, y, channels, kernel=1, activation="LeakyRelu", name=f"{name}_5")


def _detect_head(b: GraphBuilder, x: str, channels: int, num_outputs: int, name: str) -> str:
    y = conv_bn_act(b, x, channels * 2, kernel=3, activation="LeakyRelu", name=f"{name}_conv")
    return b.conv2d(y, num_outputs, kernel=1, padding=0, name=f"{name}_out")


def build_yolov4(resolution: int = 416, batch: int = 1, num_classes: int = 80) -> Graph:
    """YOLOv4 object detector at the paper's 416×416 resolution."""
    b = GraphBuilder("yolov4")
    x = b.input("image", (batch, 3, resolution, resolution))
    num_outputs = 3 * (num_classes + 5)

    # Backbone.
    y = conv_bn_act(b, x, 32, kernel=3, activation="Mish", name="stem")
    features = []
    for index, (channels, blocks) in enumerate(_BACKBONE_STAGES):
        y = _csp_stage(b, y, channels, blocks, name=f"csp{index}")
        features.append(y)
    c3, c4, c5 = features[2], features[3], features[4]

    # SPP on the deepest feature map.
    p5 = spp_block(b, c5, 512, activation="LeakyRelu")
    p5 = _conv_set(b, p5, 512, name="p5_set")

    # Top-down path.
    p5_up = conv_bn_act(b, p5, 256, kernel=1, activation="LeakyRelu", name="p5_up_conv")
    p5_up = b.resize(p5_up, 2.0)
    c4_lat = conv_bn_act(b, c4, 256, kernel=1, activation="LeakyRelu", name="c4_lateral")
    p4 = b.concat([c4_lat, p5_up], axis=1)
    p4 = _conv_set(b, p4, 256, name="p4_set")

    p4_up = conv_bn_act(b, p4, 128, kernel=1, activation="LeakyRelu", name="p4_up_conv")
    p4_up = b.resize(p4_up, 2.0)
    c3_lat = conv_bn_act(b, c3, 128, kernel=1, activation="LeakyRelu", name="c3_lateral")
    p3 = b.concat([c3_lat, p4_up], axis=1)
    p3 = _conv_set(b, p3, 128, name="p3_set")

    # Bottom-up path.
    p3_down = conv_bn_act(b, p3, 256, kernel=3, stride=2, activation="LeakyRelu", name="p3_down")
    p4 = b.concat([p3_down, p4], axis=1)
    p4 = _conv_set(b, p4, 256, name="p4_set2")

    p4_down = conv_bn_act(b, p4, 512, kernel=3, stride=2, activation="LeakyRelu", name="p4_down")
    p5 = b.concat([p4_down, p5], axis=1)
    p5 = _conv_set(b, p5, 512, name="p5_set2")

    # Detection heads at /8, /16, /32.
    out_small = _detect_head(b, p3, 128, num_outputs, name="head_small")
    out_medium = _detect_head(b, p4, 256, num_outputs, name="head_medium")
    out_large = _detect_head(b, p5, 512, num_outputs, name="head_large")
    b.output(out_small, out_medium, out_large)
    return b.build()
