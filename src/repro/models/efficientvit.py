"""EfficientViT: high-resolution vision backbone with ReLU linear attention.

The paper evaluates EfficientViT at 2048×2048 input, where the lightweight
multi-scale attention module dominates: Q/K/V come from a 1×1 convolution,
queries and keys pass through ReLU, and attention is computed linearly as
``Q (Kᵀ V) / (Q (Kᵀ·1) + ε)`` — the subgraph of Figure 8a with its Slice,
ReLU, Transpose, MatMul, ReduceSum, MatMul, MatMul, Add, Div primitives.
The EfficientViT case study (Figures 8–10) runs on the attention block built
by :func:`build_efficientvit_attention_block`.
"""

from __future__ import annotations

from ..ir.builder import GraphBuilder
from ..ir.graph import Graph
from .common import conv_bn_act

__all__ = ["build_efficientvit", "build_efficientvit_attention_block"]


def _mbconv(b: GraphBuilder, x: str, out_channels: int, stride: int, expand: int, name: str) -> str:
    """MobileNet-style inverted bottleneck with HardSwish activations."""
    in_channels = b.shape(x)[1]
    hidden = in_channels * expand
    y = conv_bn_act(b, x, hidden, kernel=1, activation="HardSwish", name=f"{name}_expand")
    y = conv_bn_act(b, y, hidden, kernel=3, stride=stride, groups=hidden,
                    activation="HardSwish", name=f"{name}_dw")
    y = conv_bn_act(b, y, out_channels, kernel=1, activation="", name=f"{name}_project")
    if stride == 1 and in_channels == out_channels:
        y = b.add(x, y)
    return y


def _relu_linear_attention(b: GraphBuilder, x: str, dim: int, name: str) -> str:
    """EfficientViT's ReLU linear attention over an NCHW feature map."""
    n, c, h, w = b.shape(x)
    qkv = b.conv2d(x, 3 * dim, kernel=1, padding=0, name=f"{name}_qkv")
    tokens = b.reshape(qkv, (n, 3 * dim, h * w))
    tokens = b.transpose(tokens, (0, 2, 1))  # (N, HW, 3*dim)

    query = b.slice(tokens, starts=(0,), ends=(dim,), axes=(2,))
    key = b.slice(tokens, starts=(dim,), ends=(2 * dim,), axes=(2,))
    value = b.slice(tokens, starts=(2 * dim,), ends=(3 * dim,), axes=(2,))

    query = b.relu(query)
    key = b.relu(key)
    key_t = b.transpose(key, (0, 2, 1))  # (N, dim, HW)

    context = b.matmul(key_t, value)  # (N, dim, dim)
    numerator = b.matmul(query, context)  # (N, HW, dim)
    key_sum = b.reduce_sum(key_t, axes=(-1,), keepdims=True)  # (N, dim, 1)
    denominator = b.matmul(query, key_sum)  # (N, HW, 1)
    eps = b.constant(f"{name}_eps", [1e-6])
    denominator = b.add(denominator, eps)
    attended = b.div(numerator, denominator)

    attended = b.transpose(attended, (0, 2, 1))
    fmap = b.reshape(attended, (n, dim, h, w))
    projected = b.conv2d(fmap, c, kernel=1, padding=0, name=f"{name}_proj")
    return b.add(x, projected)


def build_efficientvit(resolution: int = 2048, batch: int = 1, num_classes: int = 19) -> Graph:
    """EfficientViT backbone + segmentation head at 2048×2048."""
    b = GraphBuilder("efficientvit")
    x = b.input("image", (batch, 3, resolution, resolution))

    # Stem: /4.
    y = conv_bn_act(b, x, 16, kernel=3, stride=2, activation="HardSwish", name="stem1")
    y = conv_bn_act(b, y, 16, kernel=3, stride=2, activation="HardSwish", name="stem2")

    # Convolutional stages: /8, /16.
    y = _mbconv(b, y, 32, stride=2, expand=4, name="stage1_0")
    y = _mbconv(b, y, 32, stride=1, expand=4, name="stage1_1")
    y = _mbconv(b, y, 64, stride=2, expand=4, name="stage2_0")
    y = _mbconv(b, y, 64, stride=1, expand=4, name="stage2_1")

    # Attention stages at /16 and /32.
    y = _relu_linear_attention(b, y, dim=16, name="attn1")
    y = _mbconv(b, y, 64, stride=1, expand=4, name="stage3_0")
    y = _mbconv(b, y, 128, stride=2, expand=4, name="stage4_0")
    y = _relu_linear_attention(b, y, dim=16, name="attn2")
    y = _mbconv(b, y, 128, stride=1, expand=4, name="stage4_1")

    # Segmentation head: 1x1 convs + upsample to /8 resolution.
    head = conv_bn_act(b, y, 64, kernel=1, activation="HardSwish", name="head_reduce")
    head = b.resize(head, 4.0, mode="bilinear")
    head = conv_bn_act(b, head, 64, kernel=3, activation="HardSwish", name="head_conv")
    logits = b.conv2d(head, num_classes, kernel=1, padding=0, name="head_out")
    b.output(logits)
    return b.build()


def build_efficientvit_attention_block(
    resolution: int = 128, channels: int = 48, dim: int = 16, batch: int = 1
) -> Graph:
    """The attention block of Figure 8a in isolation.

    At 2048×2048 model input the /16 feature map is 128×128, i.e. 16384
    tokens with a head dimension of 16 — the 1024:1 aspect-ratio GEMM whose
    data layout Korch's strategy fixes by fusing a Transpose (Figure 8b).
    """
    b = GraphBuilder("efficientvit_attention")
    x = b.input("features", (batch, channels, resolution, resolution))
    y = _relu_linear_attention(b, x, dim=dim, name="attn")
    b.output(y)
    return b.build()
