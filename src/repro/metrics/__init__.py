"""Production observability: counters, gauges, histograms, registries.

See :mod:`repro.metrics.core` for the primitives and
``python -m repro.metrics dump`` (:mod:`repro.metrics.cli`) for an
end-to-end export of a short serving session.  This package never imports
the engine — the engine (and service, scheduler, caches) import *it*.
"""

from .core import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
]
