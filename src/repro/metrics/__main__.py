"""Entry point for ``python -m repro.metrics``."""

import sys

from .cli import main

sys.exit(main())
