"""Lock-cheap metrics primitives: counters, gauges, histograms, a registry.

A serving system is blind without aggregate timing truth: per-request stats
tell you what *one* request saw, but admission control and capacity planning
need distributions — p99 queue wait, stage-latency histograms, cache hit
rates over time.  This module provides the minimal production trio:

* :class:`Counter` — monotonically increasing totals (requests, rejections).
* :class:`Gauge` — last-written values (queue depth, effective caps).
* :class:`Histogram` — fixed-bucket latency histograms with interpolated
  quantile estimation (p50/p95/p99) and min/max clamping, so tails are
  readable without storing samples.

Metrics live in a :class:`MetricRegistry`, addressed by name and optional
label sets (``family.labels(stage="solve")``), and export two ways:
``as_dict()`` for JSON consumers and ``render_prometheus()`` in the
Prometheus text exposition format.  Registered *collectors* run just before
either export, which is how point-in-time sources (engine statistics, cache
store counters) surface as gauges without instrumenting their hot paths.

Every mutation takes one short per-metric lock — no global lock on the hot
path — so instrumented code pays nanoseconds, not contention.  This module
deliberately imports nothing from the engine; the engine imports it.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Callable, Iterable, Mapping, Sequence

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
]

#: Log-spaced seconds buckets covering sub-millisecond kernels through
#: multi-minute optimization runs; the terminal +inf bucket is implicit.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)


class Counter:
    """A monotonically increasing value."""

    kind = "counter"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def as_value(self) -> float:
        return self.value


class Gauge:
    """A value that can go up and down (or be set outright)."""

    kind = "gauge"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def as_value(self) -> float:
        return self.value


class Histogram:
    """Fixed-bucket histogram with interpolated quantile estimation.

    Buckets are cumulative-upper-bound style (Prometheus semantics): an
    observation lands in the first bucket whose bound is >= the value, with
    an implicit +inf terminal bucket.  ``quantile`` linearly interpolates
    within the target bucket and clamps to the observed min/max, which keeps
    estimates honest when a bucket is much wider than the data inside it.
    """

    kind = "histogram"

    def __init__(self, buckets: Sequence[float] | None = None) -> None:
        bounds = tuple(sorted(float(b) for b in (buckets or DEFAULT_LATENCY_BUCKETS)))
        if not bounds:
            raise ValueError("histogram needs at least one finite bucket bound")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError("bucket bounds must be finite (+inf is implicit)")
        if len(set(bounds)) != len(bounds):
            raise ValueError("duplicate bucket bounds")
        self._lock = threading.Lock()
        self.bounds: tuple[float, ...] = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: the +inf bucket
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        # Bisect by hand: bucket counts are small tuples and the lock must
        # cover the whole update anyway.
        index = len(self.bounds)
        for position, bound in enumerate(self.bounds):
            if value <= bound:
                index = position
                break
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def _snapshot(self) -> tuple[list[int], int, float, float, float]:
        with self._lock:
            return list(self._counts), self._count, self._sum, self._min, self._max

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 <= q <= 1); 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        counts, total, _, minimum, maximum = self._snapshot()
        if total == 0:
            return 0.0
        rank = q * total
        cumulative = 0
        lower = 0.0
        for bound, count in zip(self.bounds, counts):
            if count and cumulative + count >= rank:
                fraction = (rank - cumulative) / count
                estimate = lower + (bound - lower) * min(1.0, max(0.0, fraction))
                return min(maximum, max(minimum, estimate))
            cumulative += count
            lower = bound
        return maximum  # the +inf bucket: the best point estimate is the max

    def summary(self) -> dict[str, float | int]:
        """JSON-friendly digest: count, sum, mean, min/max, p50/p95/p99."""
        counts, total, total_sum, minimum, maximum = self._snapshot()
        del counts
        if total == 0:
            return {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "count": total,
            "sum": total_sum,
            "mean": total_sum / total,
            "min": minimum,
            "max": maximum,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, ending with +inf."""
        counts, _, _, _, _ = self._snapshot()
        cumulative = 0
        pairs: list[tuple[float, int]] = []
        for bound, count in zip((*self.bounds, math.inf), counts):
            cumulative += count
            pairs.append((bound, cumulative))
        return pairs

    def as_value(self) -> dict[str, float | int]:
        return self.summary()


class _Family:
    """One named metric and its labeled children (one child when unlabeled)."""

    def __init__(
        self,
        name: str,
        help: str,
        kind: str,
        labelnames: tuple[str, ...],
        factory: Callable[[], Counter | Gauge | Histogram],
    ) -> None:
        self.name = name
        self.help = help
        self.kind = kind
        self.labelnames = labelnames
        self._factory = factory
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], Counter | Gauge | Histogram] = {}

    def labels(self, **labels: str) -> Counter | Gauge | Histogram:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames!r}, got {tuple(labels)!r}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._factory()
                self._children[key] = child
            return child

    def samples(self) -> list[tuple[dict[str, str], Counter | Gauge | Histogram]]:
        with self._lock:
            children = dict(self._children)
        return [
            (dict(zip(self.labelnames, key)), child)
            for key, child in sorted(children.items())
        ]


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: Mapping[str, str], extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [*labels.items(), *extra]
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{_escape_label_value(str(value))}"' for name, value in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class MetricRegistry:
    """Named metric families plus export-time collectors.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first call
    with a name defines kind, help and labels, later calls must agree and
    return the same family.  For unlabeled metrics the call returns the
    metric itself; with ``labelnames`` it returns the family, and children
    are addressed via ``family.labels(stage="solve")``.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: dict[str, _Family] = {}
        self._collectors: list[Callable[[], None]] = []

    # ----------------------------------------------------------- definition
    def _family(
        self,
        name: str,
        help: str,
        kind: str,
        labelnames: Sequence[str],
        factory: Callable[[], Counter | Gauge | Histogram],
    ):
        labelnames = tuple(str(label) for label in labelnames)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, help, kind, labelnames, factory)
                self._families[name] = family
            elif family.kind != kind or family.labelnames != labelnames:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind} with "
                    f"labels {family.labelnames!r}"
                )
        return family if labelnames else family.labels()

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        return self._family(name, help, "counter", labelnames, Counter)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        return self._family(name, help, "gauge", labelnames, Gauge)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ):
        return self._family(
            name, help, "histogram", labelnames, lambda: Histogram(buckets)
        )

    def add_collector(self, collect: Callable[[], None]) -> None:
        """Register a zero-arg callable run before every export; collectors
        refresh gauges from point-in-time sources (engine stats, cache
        counters) so instrumenting their hot paths is unnecessary."""
        with self._lock:
            self._collectors.append(collect)

    def families(self) -> Iterable[_Family]:
        with self._lock:
            return list(self._families.values())

    def _run_collectors(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for collect in collectors:
            collect()

    # --------------------------------------------------------------- export
    def as_dict(self) -> dict[str, dict]:
        """JSON-safe export: every family, every labeled child."""
        self._run_collectors()
        payload: dict[str, dict] = {}
        for family in sorted(self.families(), key=lambda f: f.name):
            values = []
            for labels, metric in family.samples():
                entry: dict = {"labels": labels}
                if isinstance(metric, Histogram):
                    entry.update(metric.summary())
                else:
                    entry["value"] = metric.value
                values.append(entry)
            payload[family.name] = {
                "type": family.kind,
                "help": family.help,
                "values": values,
            }
        return payload

    def render_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=False)

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        self._run_collectors()
        lines: list[str] = []
        for family in sorted(self.families(), key=lambda f: f.name):
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labels, metric in family.samples():
                if isinstance(metric, Histogram):
                    for bound, cumulative in metric.bucket_counts():
                        suffix = _format_labels(labels, (("le", _format_value(bound)),))
                        lines.append(f"{family.name}_bucket{suffix} {cumulative}")
                    base = _format_labels(labels)
                    lines.append(f"{family.name}_sum{base} {_format_value(metric.sum)}")
                    lines.append(f"{family.name}_count{base} {metric.count}")
                else:
                    suffix = _format_labels(labels)
                    lines.append(f"{family.name}{suffix} {_format_value(metric.value)}")
        return "\n".join(lines) + "\n"
