"""Metrics CLI: ``python -m repro.metrics dump``.

Runs a short, self-contained :class:`~repro.engine.service.KorchService`
session — a few small attention models submitted through the queue, some of
them duplicates so the cache tiers actually hit — then prints the full
metrics export.  This is the end-to-end smoke of the observability path: if
the dump shows non-zero queue-wait/run histograms and cache hit counters,
the instrumented service/scheduler/engine/cache plumbing is alive.

``--format json`` (default) prints the registry's JSON export;
``--format prometheus`` prints the text exposition format a scraper would
ingest.  The engine imports stay inside :func:`cmd_dump` so importing
``repro.metrics`` never pulls the engine in.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main"]


def _demo_model(name: str, heads: int = 2):
    """A tiny attention block: enough structure to exercise every stage."""
    from ..ir import GraphBuilder

    b = GraphBuilder(name)
    x = b.input("x", (1, heads, 16, 8))
    w = b.param("w", (1, heads, 8, 16))
    v = b.param("v", (1, heads, 16, 8))
    b.output(b.matmul(b.softmax(b.matmul(x, w), axis=-1), v))
    return b.build()


def cmd_dump(args: argparse.Namespace) -> int:
    from ..engine import KorchConfig, KorchService

    config = KorchConfig(gpu=args.gpu)
    with KorchService(config=config, workers=args.workers) as service:
        # Half the submissions repeat the first graph: repeats answer from
        # the plan cache's memory tier, so hit counters come out non-zero.
        graphs = [
            _demo_model("metrics-demo-a"),
            *[_demo_model("metrics-demo-a") for _ in range(max(0, args.requests - 2))],
            _demo_model("metrics-demo-b", heads=4),
        ]
        for request in service.submit_many(graphs[: max(1, args.requests)]):
            request.result(timeout=600)
        service.drain(timeout=600)
        if args.format == "prometheus":
            sys.stdout.write(service.metrics_text())
        else:
            print(service.registry.render_json())
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.metrics",
        description="Export metrics from a short Korch serving session.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    dump = sub.add_parser(
        "dump", help="run a short service session and print its metrics export"
    )
    dump.add_argument(
        "--format",
        choices=("json", "prometheus"),
        default="json",
        help="export format (default: json)",
    )
    dump.add_argument("--gpu", default="V100", help="GPU spec name (default: V100)")
    dump.add_argument(
        "--requests", type=int, default=4, help="requests to submit (default: 4)"
    )
    dump.add_argument(
        "--workers", type=int, default=2, help="service worker threads (default: 2)"
    )
    args = parser.parse_args(argv)
    handler = {"dump": cmd_dump}[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
